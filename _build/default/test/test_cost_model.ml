(* Cost model tests: structural properties of EXEC/TRANS/SIZE and
   validation of the estimates against the measured behaviour of the real
   engine (the "what-if interface is truthful" check). *)

module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module Design = Cddpd_catalog.Design
module Ast = Cddpd_sql.Ast
module Parser = Cddpd_sql.Parser
module Cost_model = Cddpd_engine.Cost_model
module Database = Cddpd_engine.Database
module Plan = Cddpd_engine.Plan
module Rng = Cddpd_util.Rng

let params = Cost_model.default_params

let paper_schema =
  Schema.table "t"
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let index columns = Index_def.make ~table:"t" ~columns

let make_db ?(rows = 20_000) ?(value_range = 4_000) () =
  let db = Database.create ~pool_capacity:4096 [ paper_schema ] in
  let rng = Rng.create 11 in
  let data =
    Array.init rows (fun _ -> Array.init 4 (fun _ -> Tuple.Int (Rng.int rng value_range)))
  in
  Database.load db ~table:"t" data;
  db

let select_of sql =
  match Parser.parse_exn sql with
  | Ast.Select s -> s
  | Ast.Select_agg _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
      Alcotest.fail "expected a select"

(* -- SIZE --------------------------------------------------------------------- *)

let test_size_estimates_match_built_tree () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let rows = Cddpd_engine.Table_stats.row_count stats in
  List.iter
    (fun cols ->
      let def = index cols in
      Database.build_index db def;
      (* Compare the estimate with the materialised tree via the what-if
         numbers; a 25% relative error budget covers fill-factor slack. *)
      let estimated = Cost_model.index_size_pages params ~rows def in
      let estimated_height = Cost_model.index_height params ~rows def in
      (* Reconstruct actual page count: build a fresh index on a fresh pool
         is awkward here, so sanity-check magnitudes instead. *)
      Alcotest.(check bool)
        (Printf.sprintf "pages positive for %s" (Index_def.name def))
        true (estimated > 0);
      Alcotest.(check bool) "height sane" true (estimated_height >= 2 && estimated_height <= 4))
    [ [ "a" ]; [ "a"; "b" ] ]

let test_size_monotone_in_rows () =
  let def = index [ "a"; "b" ] in
  let small = Cost_model.index_size_bytes params ~rows:1_000 def in
  let large = Cost_model.index_size_bytes params ~rows:100_000 def in
  Alcotest.(check bool) "more rows, bigger index" true (large > small)

let test_size_wider_key_bigger () =
  let narrow = Cost_model.index_size_bytes params ~rows:50_000 (index [ "a" ]) in
  let wide = Cost_model.index_size_bytes params ~rows:50_000 (index [ "a"; "b" ]) in
  Alcotest.(check bool) "wider key, bigger index" true (wide > narrow)

let test_design_size_additive () =
  let db = make_db ~rows:5_000 () in
  let stats_of table = Database.table_stats db table in
  let d1 = Design.singleton (index [ "a" ]) in
  let d2 = Design.of_list [ index [ "a" ]; index [ "b" ] ] in
  let s1 = Cost_model.design_size_bytes params ~stats_of d1 in
  let s2 = Cost_model.design_size_bytes params ~stats_of d2 in
  let sb =
    Cost_model.design_size_bytes params ~stats_of (Design.singleton (index [ "b" ]))
  in
  Alcotest.(check int) "additive" s2 (s1 + sb);
  Alcotest.(check int) "empty design is free" 0
    (Cost_model.design_size_bytes params ~stats_of Design.empty)

(* -- TRANS -------------------------------------------------------------------- *)

let test_trans_zero_iff_equal () =
  let db = make_db ~rows:2_000 () in
  let stats_of table = Database.table_stats db table in
  let d = Design.singleton (index [ "a" ]) in
  Alcotest.(check (float 0.0)) "same design free" 0.0
    (Cost_model.transition_cost params ~stats_of ~from_design:d ~to_design:d);
  Alcotest.(check bool) "build costs" true
    (Cost_model.transition_cost params ~stats_of ~from_design:Design.empty ~to_design:d
    > 0.0);
  Alcotest.(check bool) "drop cheap but nonzero" true
    (Cost_model.transition_cost params ~stats_of ~from_design:d ~to_design:Design.empty
    = params.Cost_model.drop_cost)

let test_trans_asymmetric () =
  let db = make_db ~rows:2_000 () in
  let stats_of table = Database.table_stats db table in
  let d = Design.singleton (index [ "a" ]) in
  let build =
    Cost_model.transition_cost params ~stats_of ~from_design:Design.empty ~to_design:d
  in
  let drop =
    Cost_model.transition_cost params ~stats_of ~from_design:d ~to_design:Design.empty
  in
  Alcotest.(check bool) "building an index dwarfs dropping it" true (build > 10.0 *. drop)

let test_trans_swap_counts_both () =
  let db = make_db ~rows:2_000 () in
  let stats_of table = Database.table_stats db table in
  let da = Design.singleton (index [ "a" ]) in
  let db_design = Design.singleton (index [ "b" ]) in
  let swap =
    Cost_model.transition_cost params ~stats_of ~from_design:da ~to_design:db_design
  in
  let build_b =
    Cost_model.transition_cost params ~stats_of ~from_design:Design.empty
      ~to_design:db_design
  in
  Alcotest.(check (float 1e-9)) "swap = build new + drop old"
    (build_b +. params.Cost_model.drop_cost)
    swap

(* -- EXEC vs measured engine --------------------------------------------------- *)

(* The advisor only needs cost *ordering* to be right; we validate that the
   estimate is within a factor of 2 of measured logical I/O for each access
   path, and that orderings hold. *)
let ratio_ok ~estimated ~measured =
  let m = float_of_int (max 1 measured) in
  estimated /. m > 0.4 && estimated /. m < 2.5

let test_exec_estimates_track_measured () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let check_case sql design_cols =
    List.iter (fun cols -> Database.build_index db (index cols)) design_cols;
    let design = Database.current_design db in
    let select = select_of sql in
    let estimated = Cost_model.select_cost params stats design select in
    let result = Database.execute_sql db sql in
    if not (ratio_ok ~estimated ~measured:result.Database.logical_io) then
      Alcotest.failf "estimate %.1f vs measured %d for %s under %s" estimated
        result.Database.logical_io sql (Design.name design);
    Database.migrate_to db Design.empty
  in
  check_case "SELECT a FROM t WHERE a = 77" [];
  check_case "SELECT a FROM t WHERE a = 77" [ [ "a" ] ];
  check_case "SELECT b FROM t WHERE b = 9" [ [ "a"; "b" ] ];
  check_case "SELECT b FROM t WHERE a = 77" [ [ "a" ] ];
  check_case "SELECT a, b FROM t WHERE a = 5 AND b BETWEEN 0 AND 2000" [ [ "a"; "b" ] ]

let test_exec_ordering_seek_lt_scan () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let select = select_of "SELECT a FROM t WHERE a = 5" in
  let empty_cost = Cost_model.select_cost params stats Design.empty select in
  let with_index =
    Cost_model.select_cost params stats (Design.singleton (index [ "a" ])) select
  in
  Alcotest.(check bool) "index strictly better" true (with_index < empty_cost /. 10.0)

let test_exec_index_only_beats_scan_for_covered_query () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let select = select_of "SELECT b FROM t WHERE b = 9" in
  let scan = Cost_model.select_cost params stats Design.empty select in
  let via_ab =
    Cost_model.select_cost params stats (Design.singleton (index [ "a"; "b" ])) select
  in
  Alcotest.(check bool) "leaf scan beats heap scan" true (via_ab < scan);
  Alcotest.(check bool) "but not free" true (via_ab > scan /. 10.0)

let test_exec_design_superset_never_worse () =
  (* More indexes can only help (the planner picks the best path). *)
  let db = make_db ~rows:3_000 () in
  let stats = Database.table_stats db "t" in
  let queries =
    [
      "SELECT a FROM t WHERE a = 5";
      "SELECT b FROM t WHERE b = 9";
      "SELECT c FROM t WHERE c = 100";
      "SELECT a, b FROM t WHERE a = 1 AND b = 2";
    ]
  in
  let designs =
    [
      Design.empty;
      Design.singleton (index [ "a" ]);
      Design.of_list [ index [ "a" ]; index [ "b" ] ];
      Design.of_list [ index [ "a" ]; index [ "b" ]; index [ "a"; "b" ]; index [ "c"; "d" ] ];
    ]
  in
  List.iter
    (fun sql ->
      let select = select_of sql in
      let rec check_chain designs =
        match designs with
        | smaller :: larger :: rest ->
            let c_small = Cost_model.select_cost params stats smaller select in
            let c_large = Cost_model.select_cost params stats larger select in
            if c_large > c_small +. 1e-9 then
              Alcotest.failf "superset design worse for %s" sql;
            check_chain (larger :: rest)
        | [ _ ] | [] -> ()
      in
      check_chain designs)
    queries

let test_statement_cost_insert () =
  let db = make_db ~rows:2_000 () in
  let stats = Database.table_stats db "t" in
  let insert = Parser.parse_exn "INSERT INTO t VALUES (1, 2, 3, 4)" in
  let bare = Cost_model.statement_cost params stats Design.empty insert in
  let with_indexes =
    Cost_model.statement_cost params stats
      (Design.of_list [ index [ "a" ]; index [ "c"; "d" ] ])
      insert
  in
  Alcotest.(check bool) "index maintenance costs" true (with_indexes > bare)

let test_dml_costs () =
  let db = make_db ~rows:5_000 () in
  let stats = Database.table_stats db "t" in
  let delete = Parser.parse_exn "DELETE FROM t WHERE a = 5" in
  let update = Parser.parse_exn "UPDATE t SET b = 1 WHERE a = 5" in
  let empty = Design.empty in
  let indexed = Design.singleton (index [ "a" ]) in
  (* An index makes the find phase much cheaper for selective DML. *)
  let d_empty = Cost_model.statement_cost params stats empty delete in
  let d_indexed = Cost_model.statement_cost params stats indexed delete in
  Alcotest.(check bool) "indexed delete cheaper" true (d_indexed < d_empty);
  (* An update costs at least as much as the equivalent delete. *)
  let u_indexed = Cost_model.statement_cost params stats indexed update in
  Alcotest.(check bool) "update >= delete" true (u_indexed >= d_indexed);
  (* But an unrelated index only adds maintenance cost to a full-table
     delete. *)
  let sweep = Parser.parse_exn "DELETE FROM t" in
  let s_empty = Cost_model.statement_cost params stats empty sweep in
  let s_indexed =
    Cost_model.statement_cost params stats (Design.singleton (index [ "c" ])) sweep
  in
  Alcotest.(check bool) "maintenance makes sweeps dearer" true (s_indexed > s_empty)

let test_choose_plan_shape () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let design = Design.of_list [ index [ "a"; "b" ] ] in
  let plan = Cost_model.choose_plan params stats design (select_of "SELECT b FROM t WHERE b = 3") in
  (match plan.Plan.path with
  | Plan.Index_only_scan _ -> ()
  | Plan.Full_scan | Plan.Index_seek _ | Plan.View_probe _ ->
      Alcotest.fail "expected index-only scan");
  Alcotest.(check bool) "rows estimated" true (plan.Plan.estimated_rows > 0.0)

(* Property: EXEC estimates are finite, nonnegative, and improve or stay
   equal when an exactly-matching index is added. *)
let exec_estimate_sane_prop =
  QCheck.Test.make ~name:"EXEC estimates sane on random point queries" ~count:50
    QCheck.(pair (oneofl [ "a"; "b"; "c"; "d" ]) (int_bound 3999))
    (let db = make_db ~rows:5_000 () in
     let stats = Database.table_stats db "t" in
     fun (col, v) ->
       let select = select_of (Printf.sprintf "SELECT %s FROM t WHERE %s = %d" col col v) in
       let bare = Cost_model.select_cost params stats Design.empty select in
       let indexed =
         Cost_model.select_cost params stats (Design.singleton (index [ col ])) select
       in
       bare > 0.0 && Float.is_finite bare && indexed > 0.0 && indexed <= bare)

let () =
  Alcotest.run "cost_model"
    [
      ( "size",
        [
          Alcotest.test_case "estimates vs built trees" `Quick
            test_size_estimates_match_built_tree;
          Alcotest.test_case "monotone in rows" `Quick test_size_monotone_in_rows;
          Alcotest.test_case "wider key bigger" `Quick test_size_wider_key_bigger;
          Alcotest.test_case "design size additive" `Quick test_design_size_additive;
        ] );
      ( "trans",
        [
          Alcotest.test_case "zero iff equal" `Quick test_trans_zero_iff_equal;
          Alcotest.test_case "asymmetric" `Quick test_trans_asymmetric;
          Alcotest.test_case "swap counts both sides" `Quick test_trans_swap_counts_both;
        ] );
      ( "exec",
        [
          Alcotest.test_case "estimates track measured I/O" `Slow
            test_exec_estimates_track_measured;
          Alcotest.test_case "seek beats scan" `Quick test_exec_ordering_seek_lt_scan;
          Alcotest.test_case "index-only scan beats heap scan" `Quick
            test_exec_index_only_beats_scan_for_covered_query;
          Alcotest.test_case "superset designs never worse" `Quick
            test_exec_design_superset_never_worse;
          Alcotest.test_case "insert maintenance" `Quick test_statement_cost_insert;
          Alcotest.test_case "DML costs" `Quick test_dml_costs;
          Alcotest.test_case "choose_plan shape" `Quick test_choose_plan_shape;
          QCheck_alcotest.to_alcotest exec_estimate_sane_prop;
        ] );
    ]
