test/test_btree.ml: Alcotest Array Bytes Cddpd_storage Int64 List QCheck QCheck_alcotest Set String
