test/test_sql.ml: Alcotest Cddpd_sql Cddpd_storage List QCheck QCheck_alcotest String
