test/test_engine.ml: Alcotest Array Cddpd_catalog Cddpd_engine Cddpd_sql Cddpd_storage Cddpd_util Hashtbl List Option Printf QCheck QCheck_alcotest Result
