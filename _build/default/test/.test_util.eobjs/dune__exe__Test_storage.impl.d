test/test_storage.ml: Alcotest Array Bytes Cddpd_storage Hashtbl List QCheck QCheck_alcotest String
