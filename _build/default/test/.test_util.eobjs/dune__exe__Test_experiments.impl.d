test/test_experiments.ml: Alcotest Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_experiments Lazy List
