test/test_util.ml: Alcotest Array Cddpd_util List QCheck QCheck_alcotest
