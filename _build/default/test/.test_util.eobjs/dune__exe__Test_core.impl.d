test/test_core.ml: Alcotest Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_sql Cddpd_storage Cddpd_util Cddpd_workload Char Float List Printf QCheck QCheck_alcotest String
