test/test_cost_model.ml: Alcotest Array Cddpd_catalog Cddpd_engine Cddpd_sql Cddpd_storage Cddpd_util Float List Printf QCheck QCheck_alcotest
