test/test_graph.ml: Alcotest Array Cddpd_graph Float List Option Printf QCheck QCheck_alcotest Seq
