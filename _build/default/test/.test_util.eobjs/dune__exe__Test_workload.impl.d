test/test_workload.ml: Alcotest Array Cddpd_sql Cddpd_storage Cddpd_util Cddpd_workload Filename Fun List Printf QCheck QCheck_alcotest Result String Sys
