(* B+-tree tests: unit cases plus model-based properties against a
   reference Set. *)

module Page = Cddpd_storage.Page
module Disk = Cddpd_storage.Disk
module Buffer_pool = Cddpd_storage.Buffer_pool
module Btree = Cddpd_storage.Btree

let make_pool ?(capacity = 512) () = Buffer_pool.create ~capacity (Disk.create ())

module Key_set = Set.Make (struct
  type t = int array

  let compare = compare
end)

let collect_all tree =
  let out = ref [] in
  Btree.iter_all tree (fun k -> out := Array.copy k :: !out);
  List.rev !out

let collect_range tree ~lo ~hi =
  let out = ref [] in
  Btree.iter_range tree ~lo ~hi (fun k -> out := Array.copy k :: !out);
  List.rev !out

(* -- unit tests -------------------------------------------------------------- *)

let test_empty_tree () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  Alcotest.(check int) "no entries" 0 (Btree.n_entries tree);
  Alcotest.(check int) "height 1" 1 (Btree.height tree);
  Alcotest.(check bool) "mem" false (Btree.mem tree [| 5 |]);
  Alcotest.(check (list (array int))) "iter_all" [] (collect_all tree)

let test_insert_mem () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  Btree.insert tree [| 3 |];
  Btree.insert tree [| 1 |];
  Btree.insert tree [| 2 |];
  Alcotest.(check bool) "mem 1" true (Btree.mem tree [| 1 |]);
  Alcotest.(check bool) "mem 4" false (Btree.mem tree [| 4 |]);
  Alcotest.(check int) "count" 3 (Btree.n_entries tree)

let test_insert_duplicate () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  Btree.insert tree [| 7 |];
  Btree.insert tree [| 7 |];
  Alcotest.(check int) "duplicate is no-op" 1 (Btree.n_entries tree)

let test_sorted_iteration () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  List.iter (fun v -> Btree.insert tree [| v |]) [ 5; 3; 9; 1; 7 ];
  Alcotest.(check (list (array int))) "sorted"
    [ [| 1 |]; [| 3 |]; [| 5 |]; [| 7 |]; [| 9 |] ]
    (collect_all tree)

let test_many_inserts_split () =
  let tree = Btree.create (make_pool ()) ~key_len:2 in
  let n = 20_000 in
  for i = 0 to n - 1 do
    (* A scrambled but collision-free order. *)
    Btree.insert tree [| (i * 7919) mod n; i |]
  done;
  Alcotest.(check int) "all entries" n (Btree.n_entries tree);
  Alcotest.(check bool) "height grew" true (Btree.height tree >= 2);
  Alcotest.(check bool) "many pages" true (Btree.n_pages tree > 50);
  (* Iteration is fully sorted. *)
  let prev = ref [| min_int; min_int |] in
  let sorted = ref true in
  Btree.iter_all tree (fun k ->
      if compare !prev k >= 0 then sorted := false;
      prev := Array.copy k);
  Alcotest.(check bool) "iteration sorted" true !sorted

let test_descending_inserts () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  for i = 5000 downto 1 do
    Btree.insert tree [| i |]
  done;
  Alcotest.(check int) "all there" 5000 (Btree.n_entries tree);
  Alcotest.(check bool) "first found" true (Btree.mem tree [| 1 |]);
  Alcotest.(check bool) "last found" true (Btree.mem tree [| 5000 |])

let test_range_basic () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  for i = 0 to 99 do
    Btree.insert tree [| i * 2 |]
  done;
  Alcotest.(check (list (array int))) "inclusive range"
    [ [| 10 |]; [| 12 |]; [| 14 |] ]
    (collect_range tree ~lo:[| 9 |] ~hi:[| 14 |]);
  Alcotest.(check (list (array int))) "empty range" []
    (collect_range tree ~lo:[| 15 |] ~hi:[| 15 |])

let test_range_reversed_bounds () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  Btree.insert tree [| 1 |];
  Alcotest.(check (list (array int))) "lo > hi yields nothing" []
    (collect_range tree ~lo:[| 5 |] ~hi:[| 2 |])

let test_prefix_scan () =
  let tree = Btree.create (make_pool ()) ~key_len:2 in
  List.iter (Btree.insert tree)
    [ [| 1; 10 |]; [| 1; 20 |]; [| 2; 5 |]; [| 2; 6 |]; [| 3; 1 |] ];
  let out = ref [] in
  Btree.iter_prefix tree ~prefix:[| 2 |] (fun k -> out := Array.copy k :: !out);
  Alcotest.(check (list (array int))) "prefix 2" [ [| 2; 5 |]; [| 2; 6 |] ] (List.rev !out)

let test_delete () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  List.iter (fun v -> Btree.insert tree [| v |]) [ 1; 2; 3 ];
  Alcotest.(check bool) "delete present" true (Btree.delete tree [| 2 |]);
  Alcotest.(check bool) "delete absent" false (Btree.delete tree [| 2 |]);
  Alcotest.(check bool) "gone" false (Btree.mem tree [| 2 |]);
  Alcotest.(check (list (array int))) "others intact" [ [| 1 |]; [| 3 |] ]
    (collect_all tree);
  Alcotest.(check int) "count" 2 (Btree.n_entries tree)

let test_delete_heavy () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  let n = 5000 in
  for i = 0 to n - 1 do
    Btree.insert tree [| i |]
  done;
  for i = 0 to n - 1 do
    if i mod 2 = 0 then ignore (Btree.delete tree [| i |])
  done;
  Alcotest.(check int) "half deleted" (n / 2) (Btree.n_entries tree);
  for i = 0 to n - 1 do
    let expected = i mod 2 = 1 in
    if Btree.mem tree [| i |] <> expected then Alcotest.failf "key %d wrong" i
  done

let test_bulk_load_roundtrip () =
  let n = 30_000 in
  let keys = Array.init n (fun i -> [| i / 100; i mod 100; i |]) in
  let tree = Btree.bulk_load (make_pool ~capacity:2048 ()) ~key_len:3 keys in
  Alcotest.(check int) "count" n (Btree.n_entries tree);
  Alcotest.(check bool) "first" true (Btree.mem tree keys.(0));
  Alcotest.(check bool) "middle" true (Btree.mem tree keys.(n / 2));
  Alcotest.(check bool) "last" true (Btree.mem tree keys.(n - 1));
  Alcotest.(check bool) "absent" false (Btree.mem tree [| -1; 0; 0 |]);
  let all = collect_all tree in
  Alcotest.(check int) "iteration complete" n (List.length all);
  Alcotest.(check bool) "iteration matches input" true
    (List.for_all2 (fun a b -> a = b) all (Array.to_list keys))

let test_bulk_load_empty () =
  let tree = Btree.bulk_load (make_pool ()) ~key_len:1 [||] in
  Alcotest.(check int) "empty" 0 (Btree.n_entries tree);
  Alcotest.(check bool) "mem nothing" false (Btree.mem tree [| 0 |])

let test_bulk_load_unsorted_rejected () =
  Alcotest.(check bool) "unsorted rejected" true
    (match Btree.bulk_load (make_pool ()) ~key_len:1 [| [| 2 |]; [| 1 |] |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_bulk_load_then_insert () =
  let keys = Array.init 1000 (fun i -> [| i * 2 |]) in
  let tree = Btree.bulk_load (make_pool ()) ~key_len:1 keys in
  for i = 0 to 999 do
    Btree.insert tree [| (i * 2) + 1 |]
  done;
  Alcotest.(check int) "mixed count" 2000 (Btree.n_entries tree);
  let all = collect_all tree in
  Alcotest.(check (list (array int))) "fully sorted"
    (List.init 2000 (fun i -> [| i |]))
    all

let test_wrong_key_len () =
  let tree = Btree.create (make_pool ()) ~key_len:2 in
  Alcotest.(check bool) "wrong arity rejected" true
    (match Btree.insert tree [| 1 |] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_negative_and_extreme_keys () =
  let tree = Btree.create (make_pool ()) ~key_len:1 in
  List.iter (fun v -> Btree.insert tree [| v |]) [ max_int; min_int; 0; -1; 1 ];
  Alcotest.(check (list (array int))) "extremes sorted"
    [ [| min_int |]; [| -1 |]; [| 0 |]; [| 1 |]; [| max_int |] ]
    (collect_all tree)

(* -- model-based properties --------------------------------------------------- *)

let key_gen key_len range =
  QCheck.Gen.(map Array.of_list (list_repeat key_len (int_bound range)))

let print_keys keys =
  String.concat ";"
    (List.map (fun k -> "[" ^ String.concat "," (List.map string_of_int (Array.to_list k)) ^ "]") keys)

let insert_matches_set_prop =
  QCheck.Test.make ~name:"insert/mem/iter match a reference set" ~count:50
    (QCheck.make ~print:print_keys QCheck.Gen.(list_size (int_bound 400) (key_gen 2 20)))
    (fun keys ->
      let tree = Btree.create (make_pool ()) ~key_len:2 in
      let reference =
        List.fold_left
          (fun acc k ->
            Btree.insert tree k;
            Key_set.add (Array.copy k) acc)
          Key_set.empty keys
      in
      Btree.n_entries tree = Key_set.cardinal reference
      && collect_all tree = Key_set.elements reference
      && Key_set.for_all (Btree.mem tree) reference)

let delete_matches_set_prop =
  QCheck.Test.make ~name:"delete matches a reference set" ~count:50
    (QCheck.make ~print:QCheck.Print.(pair print_keys print_keys)
       QCheck.Gen.(
         pair
           (list_size (int_bound 300) (key_gen 1 40))
           (list_size (int_bound 300) (key_gen 1 40))))
    (fun (inserts, deletes) ->
      let tree = Btree.create (make_pool ()) ~key_len:1 in
      let reference =
        List.fold_left
          (fun acc k ->
            Btree.insert tree k;
            Key_set.add (Array.copy k) acc)
          Key_set.empty inserts
      in
      let reference =
        List.fold_left
          (fun acc k ->
            let present = Key_set.mem k acc in
            let deleted = Btree.delete tree k in
            if present <> deleted then failwith "delete result mismatch";
            Key_set.remove k acc)
          reference deletes
      in
      collect_all tree = Key_set.elements reference)

let range_matches_set_prop =
  QCheck.Test.make ~name:"range scan matches a reference set" ~count:100
    (QCheck.make
       ~print:
         QCheck.Print.(triple print_keys (fun i -> string_of_int i) (fun i -> string_of_int i))
       QCheck.Gen.(
         triple (list_size (int_bound 300) (key_gen 1 60)) (int_bound 60) (int_bound 60)))
    (fun (keys, b1, b2) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let tree = Btree.create (make_pool ()) ~key_len:1 in
      let reference =
        List.fold_left
          (fun acc k ->
            Btree.insert tree k;
            Key_set.add (Array.copy k) acc)
          Key_set.empty keys
      in
      let expected =
        Key_set.elements (Key_set.filter (fun k -> k.(0) >= lo && k.(0) <= hi) reference)
      in
      collect_range tree ~lo:[| lo |] ~hi:[| hi |] = expected)

let bulk_load_equals_inserts_prop =
  QCheck.Test.make ~name:"bulk_load equals repeated inserts" ~count:40
    (QCheck.make ~print:print_keys QCheck.Gen.(list_size (int_bound 500) (key_gen 2 50)))
    (fun keys ->
      let unique = Key_set.elements (Key_set.of_list (List.map Array.copy keys)) in
      let loaded =
        Btree.bulk_load (make_pool ()) ~key_len:2 (Array.of_list unique)
      in
      let inserted = Btree.create (make_pool ()) ~key_len:2 in
      List.iter (Btree.insert inserted) unique;
      collect_all loaded = collect_all inserted
      && Btree.n_entries loaded = Btree.n_entries inserted)

let slices_agree_prop =
  QCheck.Test.make ~name:"iter_range_slices agrees with iter_range" ~count:50
    (QCheck.make ~print:print_keys QCheck.Gen.(list_size (int_bound 300) (key_gen 2 30)))
    (fun keys ->
      let tree = Btree.create (make_pool ()) ~key_len:2 in
      List.iter (Btree.insert tree) keys;
      let lo = [| 5; min_int |] and hi = [| 25; max_int |] in
      let via_arrays = collect_range tree ~lo ~hi in
      let via_slices = ref [] in
      Btree.iter_range_slices tree ~lo ~hi (fun buf pos ->
          via_slices :=
            [|
              Int64.to_int (Bytes.get_int64_le buf pos);
              Int64.to_int (Bytes.get_int64_le buf (pos + 8));
            |]
            :: !via_slices);
      via_arrays = List.rev !via_slices)

let () =
  Alcotest.run "btree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "insert/mem" `Quick test_insert_mem;
          Alcotest.test_case "duplicate insert" `Quick test_insert_duplicate;
          Alcotest.test_case "sorted iteration" `Quick test_sorted_iteration;
          Alcotest.test_case "many inserts with splits" `Slow test_many_inserts_split;
          Alcotest.test_case "descending inserts" `Quick test_descending_inserts;
          Alcotest.test_case "range basic" `Quick test_range_basic;
          Alcotest.test_case "range reversed bounds" `Quick test_range_reversed_bounds;
          Alcotest.test_case "prefix scan" `Quick test_prefix_scan;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete heavy" `Slow test_delete_heavy;
          Alcotest.test_case "bulk load roundtrip" `Slow test_bulk_load_roundtrip;
          Alcotest.test_case "bulk load empty" `Quick test_bulk_load_empty;
          Alcotest.test_case "bulk load unsorted" `Quick test_bulk_load_unsorted_rejected;
          Alcotest.test_case "bulk load then insert" `Quick test_bulk_load_then_insert;
          Alcotest.test_case "wrong key_len" `Quick test_wrong_key_len;
          Alcotest.test_case "extreme keys" `Quick test_negative_and_extreme_keys;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest insert_matches_set_prop;
          QCheck_alcotest.to_alcotest delete_matches_set_prop;
          QCheck_alcotest.to_alcotest range_matches_set_prop;
          QCheck_alcotest.to_alcotest bulk_load_equals_inserts_prop;
          QCheck_alcotest.to_alcotest slices_agree_prop;
        ] );
    ]
