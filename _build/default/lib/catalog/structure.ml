type t = Index of Index_def.t | View of View_def.t

let index i = Index i

let view v = View v

let table t =
  match t with Index i -> Index_def.table i | View v -> View_def.table v

let name t = match t with Index i -> Index_def.name i | View v -> View_def.name v

let compare a b =
  match (a, b) with
  | Index i1, Index i2 -> Index_def.compare i1 i2
  | View v1, View v2 -> View_def.compare v1 v2
  | Index _, View _ -> -1
  | View _, Index _ -> 1

let equal a b = compare a b = 0

let as_index t = match t with Index i -> Some i | View _ -> None

let as_view t = match t with View v -> Some v | Index _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
