lib/catalog/design.ml: Format List Printf Stdlib String Structure
