lib/catalog/view_def.ml: Format Printf String
