lib/catalog/schema.ml: Array Cddpd_storage Format List Printf String
