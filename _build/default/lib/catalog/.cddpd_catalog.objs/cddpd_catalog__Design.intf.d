lib/catalog/design.mli: Format Index_def Structure View_def
