lib/catalog/view_def.mli: Format
