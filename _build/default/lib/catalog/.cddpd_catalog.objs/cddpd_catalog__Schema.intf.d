lib/catalog/schema.mli: Cddpd_storage Format
