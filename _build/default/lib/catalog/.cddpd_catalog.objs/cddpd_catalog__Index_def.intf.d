lib/catalog/index_def.mli: Format
