lib/catalog/index_def.ml: Format List Printf String
