lib/catalog/structure.ml: Format Index_def View_def
