lib/catalog/structure.mli: Format Index_def View_def
