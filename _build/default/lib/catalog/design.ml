module Set = Stdlib.Set.Make (Structure)

type t = Set.t

let empty = Set.empty

(* -- structure-level ------------------------------------------------------ *)

let of_structures = Set.of_list

let structures = Set.elements

let add_structure = Set.add

let mem_structure = Set.mem

let remove_structure = Set.remove

let fold = Set.fold

(* -- index-level ----------------------------------------------------------- *)

let of_list indexes = Set.of_list (List.map Structure.index indexes)

let to_list t = List.filter_map Structure.as_index (Set.elements t)

let indexes = to_list

let singleton i = Set.singleton (Structure.index i)

let mem i t = Set.mem (Structure.index i) t

let add i t = Set.add (Structure.index i) t

let remove i t = Set.remove (Structure.index i) t

let fold_indexes f t init =
  Set.fold
    (fun s acc -> match Structure.as_index s with Some i -> f i acc | None -> acc)
    t init

(* -- view-level ------------------------------------------------------------ *)

let views t = List.filter_map Structure.as_view (Set.elements t)

let add_view v t = Set.add (Structure.view v) t

let mem_view v t = Set.mem (Structure.view v) t

let fold_views f t init =
  Set.fold
    (fun s acc -> match Structure.as_view s with Some v -> f v acc | None -> acc)
    t init

(* -- set operations ---------------------------------------------------------- *)

let union = Set.union

let diff = Set.diff

let cardinality = Set.cardinal

let is_empty = Set.is_empty

let compare = Set.compare

let equal = Set.equal

let subset = Set.subset

let name t =
  if is_empty t then "{}"
  else
    Printf.sprintf "{%s}" (String.concat ", " (List.map Structure.name (structures t)))

let pp ppf t = Format.pp_print_string ppf (name t)
