type t = { table : string; group_by : string }

let make ~table ~group_by = { table; group_by }

let table t = t.table

let group_by t = t.group_by

let name t = Printf.sprintf "MV(%s)" t.group_by

let compare a b =
  let c = String.compare a.table b.table in
  if c <> 0 then c else String.compare a.group_by b.group_by

let equal a b = compare a b = 0

let pp ppf t = Format.pp_print_string ppf (name t)
