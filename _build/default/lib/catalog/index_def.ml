type t = { table : string; columns : string list }

let make ~table ~columns =
  if columns = [] then invalid_arg "Index_def.make: no columns";
  let sorted = List.sort_uniq String.compare columns in
  if List.length sorted <> List.length columns then
    invalid_arg "Index_def.make: duplicate columns";
  { table; columns }

let table t = t.table

let columns t = t.columns

let name t = Printf.sprintf "I(%s)" (String.concat "," t.columns)

let compare a b =
  let c = String.compare a.table b.table in
  if c <> 0 then c else List.compare String.compare a.columns b.columns

let equal a b = compare a b = 0

let rec list_is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys -> String.equal x y && list_is_prefix xs ys

let is_prefix_of a b = String.equal a.table b.table && list_is_prefix a.columns b.columns

let pp ppf t = Format.pp_print_string ppf (name t)
