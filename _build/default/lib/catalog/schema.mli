(** Logical schemas: tables and typed columns. *)

type col_type = Int_type | Text_type

type column = { name : string; ty : col_type }

type table = { name : string; columns : column list }

val table : string -> (string * col_type) list -> table
(** [table name columns] builds a table schema.  Raises [Invalid_argument]
    on an empty or duplicate column list. *)

val column_index : table -> string -> int option
(** Position of a column in the tuple layout. *)

val column_index_exn : table -> string -> int
(** Like {!column_index} but raises [Not_found]. *)

val column_type : table -> string -> col_type option
(** Declared type of a column. *)

val mem_column : table -> string -> bool
(** Whether the table has the column. *)

val arity : table -> int
(** Number of columns. *)

val value_matches : col_type -> Cddpd_storage.Tuple.value -> bool
(** Whether a runtime value inhabits the declared type. *)

val validate_tuple : table -> Cddpd_storage.Tuple.t -> (unit, string) result
(** Check arity and per-column types. *)

val pp_table : Format.formatter -> table -> unit
(** Render as [name(col ty, ...)]. *)
