(** Physical design structures: the units a {!Design} is a set of.

    The paper: "A physical design consists of a set of structures (e.g.,
    indexes or materialized views) chosen from a set of candidate
    structures." *)

type t =
  | Index of Index_def.t
  | View of View_def.t

val index : Index_def.t -> t

val view : View_def.t -> t

val table : t -> string
(** The table the structure belongs to. *)

val name : t -> string
(** [I(...)] or [MV(...)]. *)

val compare : t -> t -> int
(** Total order: all indexes before all views, then per-kind order. *)

val equal : t -> t -> bool

val as_index : t -> Index_def.t option

val as_view : t -> View_def.t option

val pp : Format.formatter -> t -> unit
