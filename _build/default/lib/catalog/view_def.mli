(** Materialized-view definitions: the second kind of physical design
    structure the paper mentions alongside indexes.

    A view definition names a table and a grouping column; the
    materialisation stores, per distinct group value, the row count and
    the per-integer-column sums — enough to answer any
    [SELECT g, COUNT( * )|SUM(c) ... GROUP BY g] over the table, and
    incrementally maintainable under inserts, deletes and updates (COUNT
    and SUM are self-maintainable aggregates; MIN/MAX are not, which is
    why they are not offered). *)

type t

val make : table:string -> group_by:string -> t

val table : t -> string

val group_by : t -> string

val name : t -> string
(** Display name, e.g. ["MV(a)"]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
