(** Index definitions: candidate physical design structures.

    An index definition names a table and an ordered list of key columns.
    The paper's design space consists of the single-column indexes I(a),
    I(b), I(c), I(d) and the composite indexes I(a,b) and I(c,d); this
    module supports any column list. *)

type t

val make : table:string -> columns:string list -> t
(** Raises [Invalid_argument] on an empty or duplicate column list. *)

val table : t -> string
(** The indexed table. *)

val columns : t -> string list
(** The key columns, in index order. *)

val name : t -> string
(** Display name in the paper's notation, e.g. ["I(a,b)"]. *)

val compare : t -> t -> int
(** Total order (by table, then columns). *)

val equal : t -> t -> bool

val is_prefix_of : t -> t -> bool
(** [is_prefix_of a b]: same table and [a]'s columns are a prefix of
    [b]'s.  An index subsumed by another this way is redundant for
    equality lookups. *)

val pp : Format.formatter -> t -> unit
