(** Physical designs: sets of structures (indexes and materialized views).

    A design is the unit the optimizers reason about — the configuration
    [C_i] of the paper.  Designs are immutable, canonically ordered sets
    with a total order so they can key maps and be deduplicated.

    Index-only helpers ([of_list], [add], [mem], [indexes], ...) are kept
    alongside the structure-level API because most call sites deal in
    indexes. *)

type t

val empty : t
(** The empty configuration. *)

(** {1 Structure-level API} *)

val of_structures : Structure.t list -> t

val structures : t -> Structure.t list
(** Members in canonical order. *)

val add_structure : Structure.t -> t -> t

val mem_structure : Structure.t -> t -> bool

val remove_structure : Structure.t -> t -> t

val fold : (Structure.t -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Index-level helpers} *)

val of_list : Index_def.t list -> t
(** Build from indexes only (duplicates collapsed). *)

val to_list : t -> Index_def.t list
(** The index members only, in canonical order (views are skipped). *)

val indexes : t -> Index_def.t list
(** Synonym of {!to_list}. *)

val singleton : Index_def.t -> t

val mem : Index_def.t -> t -> bool

val add : Index_def.t -> t -> t

val remove : Index_def.t -> t -> t

val fold_indexes : (Index_def.t -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 View-level helpers} *)

val views : t -> View_def.t list

val add_view : View_def.t -> t -> t

val mem_view : View_def.t -> t -> bool

val fold_views : (View_def.t -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Set operations} *)

val union : t -> t -> t

val diff : t -> t -> t
(** [diff a b]: structures in [a] but not [b] — e.g. the structures that
    must be built when transitioning from [b] to [a]. *)

val cardinality : t -> int

val is_empty : t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b]: every structure of [a] is in [b]. *)

val name : t -> string
(** Paper notation: ["{}"] for the empty design, ["{I(a,b), MV(c)}"], etc. *)

val pp : Format.formatter -> t -> unit
