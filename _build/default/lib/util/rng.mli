(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (SplitMix64).  Every stochastic component
    of the library (workload generation, data loading, property tests that
    need their own stream) takes an explicit [Rng.t] so that runs are
    reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same stream
    as [t] from this point on. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The derived
    stream is (statistically) independent of the remainder of [t]'s
    stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element of [arr].  Raises
    [Invalid_argument] on an empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t choices] picks an element with probability proportional
    to its weight.  Weights must be non-negative and sum to a positive
    value.  Raises [Invalid_argument] otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
