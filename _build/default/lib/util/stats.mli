(** Small descriptive-statistics helpers used by benchmarks and tests. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val minimum : float array -> float
(** Smallest element.  Raises [Invalid_argument] on an empty array. *)

val maximum : float array -> float
(** Largest element.  Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  Does not mutate [xs].  Raises [Invalid_argument] on
    an empty array or [p] outside [\[0,100\]]. *)

val total : float array -> float
(** Sum of the elements. *)

val histogram_counts : float array -> buckets:int -> lo:float -> hi:float -> int array
(** [histogram_counts xs ~buckets ~lo ~hi] counts elements per equal-width
    bucket over [\[lo, hi)]; out-of-range elements are clamped into the
    first/last bucket.  Raises [Invalid_argument] if [buckets <= 0] or
    [hi <= lo]. *)
