lib/util/rng.mli:
