lib/util/stats.mli:
