lib/util/timer.mli:
