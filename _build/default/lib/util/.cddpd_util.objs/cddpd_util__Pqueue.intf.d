lib/util/pqueue.mli:
