type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* SplitMix64 finalizer (Steele, Lea, Flood; JDK SplittableRandom). *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let raw = Int64.logand (next_int64 t) mask in
    let value = Int64.rem raw bound64 in
    if Int64.sub raw value > Int64.sub (Int64.sub mask bound64) Int64.one then loop ()
    else Int64.to_int value
  in
  loop ()

let float t bound =
  (* 53 random bits scaled into [0, bound). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Rng.pick_weighted: negative weight";
        acc +. w)
      0.0 choices
  in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let target = float t total in
  let n = Array.length choices in
  let rec loop i acc =
    if i >= n - 1 then fst choices.(n - 1)
    else
      let acc = acc +. snd choices.(i) in
      if target < acc then fst choices.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
