(** Plain-text table rendering for experiment output.

    The benchmark harness prints paper-style tables; this module renders a
    header plus rows with aligned columns. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : (string * align) list -> t
(** [create columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Raises [Invalid_argument] if the
    number of cells differs from the number of columns. *)

val add_separator : t -> unit
(** Appends a horizontal rule between rows. *)

val render : t -> string
(** Renders the table, including a header rule, as a multi-line string. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)
