(** Minimum-priority queue with float priorities (leftist heap).

    Used by the shortest-path-ranking optimizer to enumerate paths in
    ascending cost order. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val insert : 'a t -> float -> 'a -> 'a t
(** [insert q priority value]. *)

val pop_min : 'a t -> (float * 'a * 'a t) option
(** Remove the minimum-priority element.  Ties are broken arbitrarily. *)

val of_list : (float * 'a) list -> 'a t
