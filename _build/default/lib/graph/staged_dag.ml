type t = {
  n_stages : int;
  n_nodes : int;
  node_cost : int -> int -> float;
  edge_cost : int -> int -> int -> float;
  source_cost : int -> float;
  sink_cost : int -> float;
}

let zero _ = 0.0

let make ~n_stages ~n_nodes ~node_cost ~edge_cost ?(source_cost = zero)
    ?(sink_cost = zero) () =
  if n_stages <= 0 then invalid_arg "Staged_dag.make: n_stages <= 0";
  if n_nodes <= 0 then invalid_arg "Staged_dag.make: n_nodes <= 0";
  { n_stages; n_nodes; node_cost; edge_cost; source_cost; sink_cost }

let check_path t path =
  if Array.length path <> t.n_stages then
    invalid_arg "Staged_dag: path length differs from n_stages";
  Array.iter
    (fun j ->
      if j < 0 || j >= t.n_nodes then invalid_arg "Staged_dag: path node out of range")
    path

let path_cost t path =
  check_path t path;
  let acc = ref (t.source_cost path.(0) +. t.node_cost 0 path.(0)) in
  for s = 1 to t.n_stages - 1 do
    acc := !acc +. t.edge_cost (s - 1) path.(s - 1) path.(s) +. t.node_cost s path.(s)
  done;
  !acc +. t.sink_cost path.(t.n_stages - 1)

let path_changes t ~initial path =
  check_path t path;
  let changes = ref 0 in
  (match initial with
  | Some j -> if path.(0) <> j then incr changes
  | None -> ());
  for s = 1 to t.n_stages - 1 do
    if path.(s) <> path.(s - 1) then incr changes
  done;
  !changes

let shortest_path t =
  let n = t.n_nodes in
  (* dist.(j): best cost of reaching node j of the current stage;
     pred.(s).(j): predecessor of (s, j) on that best path. *)
  let dist = Array.init n (fun j -> t.source_cost j +. t.node_cost 0 j) in
  let pred = Array.make_matrix t.n_stages n (-1) in
  let next = Array.make n infinity in
  for s = 1 to t.n_stages - 1 do
    Array.fill next 0 n infinity;
    for j = 0 to n - 1 do
      let node = t.node_cost s j in
      for i = 0 to n - 1 do
        let candidate = dist.(i) +. t.edge_cost (s - 1) i j +. node in
        if candidate < next.(j) then begin
          next.(j) <- candidate;
          pred.(s).(j) <- i
        end
      done
    done;
    Array.blit next 0 dist 0 n
  done;
  let best = ref 0 in
  let best_cost = ref infinity in
  for j = 0 to n - 1 do
    let total = dist.(j) +. t.sink_cost j in
    if total < !best_cost then begin
      best_cost := total;
      best := j
    end
  done;
  let path = Array.make t.n_stages 0 in
  path.(t.n_stages - 1) <- !best;
  for s = t.n_stages - 1 downto 1 do
    path.(s - 1) <- pred.(s).(path.(s))
  done;
  (!best_cost, path)
