lib/graph/staged_dag.ml: Array
