lib/graph/kaware.ml: Array Staged_dag
