lib/graph/staged_dag.mli:
