lib/graph/ranking.mli: Seq Staged_dag
