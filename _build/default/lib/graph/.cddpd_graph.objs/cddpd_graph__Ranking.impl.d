lib/graph/ranking.ml: Array Cddpd_util List Seq Staged_dag
