lib/graph/kaware.mli: Staged_dag
