(** Staged DAGs — the "sequence graphs" of Agrawal, Chu and Narasayya.

    A staged DAG has [n_stages] columns of [n_nodes] nodes each, a source
    before stage 0 and a sink after the last stage.  Every node of stage
    [s] has an edge to every node of stage [s+1].  Node and edge costs are
    supplied as functions, so graphs are never materialised: a sequence
    graph for [n] statements over [2^m] configurations is represented in
    O(1) space.

    In the physical-design instantiation, a node [(s, j)] is "execute
    statement [s] under configuration [j]" with node cost [EXEC(S_s,C_j)],
    and edge costs are [TRANS(C_i, C_j)]. *)

type t = private {
  n_stages : int;
  n_nodes : int;
  node_cost : int -> int -> float;  (** [node_cost stage node] *)
  edge_cost : int -> int -> int -> float;
      (** [edge_cost stage src dst]: edge from [(stage, src)] to
          [(stage+1, dst)]; [stage] ranges over [0 .. n_stages-2] *)
  source_cost : int -> float;  (** source to [(0, node)] *)
  sink_cost : int -> float;  (** [(n_stages-1, node)] to sink *)
}

val make :
  n_stages:int ->
  n_nodes:int ->
  node_cost:(int -> int -> float) ->
  edge_cost:(int -> int -> int -> float) ->
  ?source_cost:(int -> float) ->
  ?sink_cost:(int -> float) ->
  unit ->
  t
(** Build a graph description.  [source_cost] and [sink_cost] default to
    zero.  Raises [Invalid_argument] if [n_stages] or [n_nodes] is not
    positive. *)

val path_cost : t -> int array -> float
(** Total cost of a source-to-sink path visiting the given node per stage.
    Raises [Invalid_argument] on a wrong-length path. *)

val path_changes : t -> initial:int option -> int array -> int
(** Number of stage boundaries where the node changes; with [initial =
    Some j], a stage-0 node different from [j] also counts. *)

val shortest_path : t -> float * int array
(** The minimum-cost source-to-sink path, by dynamic programming over
    stages in O(n_stages * n_nodes^2) time. *)
