(** k-aware sequence graphs (Section 3 of the paper).

    The staged DAG is replicated into [k+1] layers; a path occupies layer
    [l] after [l] node changes, so paths through the layered graph are
    exactly the paths of the base graph with at most [k] changes.  The
    layered graph is never materialised: the dynamic program below indexes
    states by (stage, layer, node), giving the paper's O(k n 2^2m) bound
    for [2^m] configurations per stage. *)

val solve :
  Staged_dag.t -> k:int -> initial:int option -> (float * int array) option
(** [solve g ~k ~initial] is the minimum-cost source-to-sink path with at
    most [k] node changes (counted as in {!Staged_dag.path_changes}:
    [initial = Some j] makes a stage-0 node other than [j] consume a
    change).  [None] if no such path exists (possible only when [k = 0]
    conflicts with infinite costs, or [k < 0]).  Raises
    [Invalid_argument] if [initial] is out of range. *)
