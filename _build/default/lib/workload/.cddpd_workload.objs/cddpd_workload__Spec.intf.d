lib/workload/spec.mli: Cddpd_sql Format Mix
