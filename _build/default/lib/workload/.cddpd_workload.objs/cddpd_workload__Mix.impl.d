lib/workload/mix.ml: Array Cddpd_sql Cddpd_storage Cddpd_util Char Format List Printf String
