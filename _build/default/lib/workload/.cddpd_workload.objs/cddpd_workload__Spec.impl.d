lib/workload/spec.ml: Array Cddpd_util Format List Mix String
