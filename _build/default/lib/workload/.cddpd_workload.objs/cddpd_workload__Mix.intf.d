lib/workload/mix.mli: Cddpd_sql Cddpd_util Format
