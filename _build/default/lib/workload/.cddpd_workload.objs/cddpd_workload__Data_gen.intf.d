lib/workload/data_gen.mli: Cddpd_storage
