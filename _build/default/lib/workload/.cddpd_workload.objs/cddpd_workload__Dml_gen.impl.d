lib/workload/dml_gen.ml: Array Cddpd_sql Cddpd_storage Cddpd_util
