lib/workload/dml_gen.mli: Cddpd_sql
