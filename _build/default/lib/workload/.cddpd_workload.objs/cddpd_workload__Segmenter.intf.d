lib/workload/segmenter.mli: Cddpd_sql
