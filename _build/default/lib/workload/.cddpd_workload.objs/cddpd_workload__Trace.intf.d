lib/workload/trace.mli: Cddpd_sql
