lib/workload/workloads.ml: Float Printf Spec String
