lib/workload/workloads.mli: Spec
