lib/workload/report_gen.mli: Cddpd_sql Cddpd_util
