lib/workload/data_gen.ml: Array Cddpd_storage Cddpd_util
