lib/workload/trace.ml: Array Cddpd_sql Fun List Printf String
