lib/workload/segmenter.ml: Array Cddpd_sql Float Hashtbl List Option String
