(** Reporting workloads: streams of aggregate (GROUP BY) queries.

    Complements {!Mix} (point queries) for exercising the materialized-view
    side of the design space: a "reporting phase" issues
    [SELECT g, COUNT( * )|SUM(c) FROM t \[WHERE g = v\] GROUP BY g]
    statements. *)

val sample :
  table:string ->
  group_by:string ->
  sum_columns:string list ->
  ?probe_fraction:float ->
  value_range:int ->
  Cddpd_util.Rng.t ->
  Cddpd_sql.Ast.statement
(** One aggregate query: COUNT or SUM over a random column from
    [sum_columns] (COUNT when the list is empty), grouped by [group_by];
    with probability [probe_fraction] (default 0.5) the query probes a
    single random group value instead of scanning all groups. *)

val segment :
  table:string ->
  group_by:string ->
  sum_columns:string list ->
  ?probe_fraction:float ->
  n:int ->
  value_range:int ->
  seed:int ->
  unit ->
  Cddpd_sql.Ast.statement array
(** A deterministic batch of [n] reporting queries. *)
