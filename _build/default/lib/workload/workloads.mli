(** The paper's dynamic workloads (Table 2).

    All three workloads have three phases of 5000 queries: phase 1 and 3
    draw from mixes A/B, phase 2 from mixes C/D ("major shifts" at queries
    5000 and 10000).  Within phases, the mixes alternate ("minor
    shifts"):

    - [w1] alternates every 1000 queries (A A B B ... / C C D D ...),
    - [w2] alternates every 500 queries (A B A B ... / C D C D ...),
    - [w3] alternates every 1000 queries but out of phase with W1
      (B B A A ... / D D C C ...).

    [scale] multiplies every segment length (default 1 gives the paper's
    500-query segments; tests use smaller scales). *)

val w1 : ?scale:float -> unit -> Spec.t
val w2 : ?scale:float -> unit -> Spec.t
val w3 : ?scale:float -> unit -> Spec.t

val by_name : string -> ?scale:float -> unit -> Spec.t
(** ["W1"], ["W2"] or ["W3"] (case-insensitive); raises
    [Invalid_argument] otherwise. *)

val letters_w1 : string
(** The 30 segment mix letters of W1, e.g. ["AABBAABBAA..."]. *)

val letters_w2 : string
val letters_w3 : string

val major_shift_count : int
(** Number of major (phase) shifts: 2. *)
