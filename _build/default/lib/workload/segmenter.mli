(** Automatic trace segmentation by change-point detection.

    The optimizers consume a workload as a sequence of steps; when the
    input is a flat captured trace, something must choose the step
    boundaries.  Fixed-size chopping ({!Trace.segment}) works when the
    capture cadence is known; this module instead detects the points where
    the workload's character shifts, by comparing the predicate-column
    frequency vectors of adjacent windows and splitting where their L1
    distance exceeds a threshold.

    The detected boundaries are exactly the "shifts" of the paper's
    workload model, so [Segmenter] also gives a principled default for the
    change budget: one change per detected major shift. *)

type params = {
  window : int;  (** statements per comparison window (default 250) *)
  threshold : float;
      (** L1 distance in [\[0, 2\]] above which a boundary is declared
          (default 0.5) *)
  min_segment : int;
      (** smallest allowed segment, in statements (default one window) *)
}

val default_params : params

val column_profile : Cddpd_sql.Ast.statement array -> (string * float) list
(** Relative frequency of each predicate column over the statements,
    most frequent first. *)

val profile_distance :
  (string * float) list -> (string * float) list -> float
(** L1 distance between two profiles, in [\[0, 2\]]. *)

val boundaries : ?params:params -> Cddpd_sql.Ast.statement array -> int list
(** Detected change points (statement indexes, ascending, exclusive of 0
    and the end). *)

val segment :
  ?params:params ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_sql.Ast.statement array array
(** Split the trace at the detected boundaries.  A trace with no shifts
    comes back as a single segment. *)

val suggest_k : ?params:params -> Cddpd_sql.Ast.statement array -> int
(** The number of detected boundaries — the paper's "number of anticipated
    fluctuations" heuristic for choosing the change budget. *)
