(** Synthetic table data matching the paper's test database: integer
    columns populated with independently, uniformly selected random values
    in [\[0, value_range)]. *)

val uniform_rows :
  columns:int -> rows:int -> value_range:int -> seed:int -> Cddpd_storage.Tuple.t array
(** Deterministic in [seed].  Raises [Invalid_argument] on non-positive
    [columns], [rows], or [value_range]. *)

val paper_value_range : int
(** 500,000, the paper's value domain. *)

val paper_row_count : int
(** 2,500,000, the paper's table size. *)
