module Ast = Cddpd_sql.Ast
module Tuple = Cddpd_storage.Tuple
module Rng = Cddpd_util.Rng

let to_update rng ~value_range statement =
  match statement with
  | Ast.Select { table; where = [ Ast.Cmp { column; op = Ast.Eq; value } ]; _ } ->
      Ast.Update
        {
          table;
          assignments = [ (column, Tuple.Int (Rng.int rng value_range)) ];
          where = [ Ast.Cmp { column; op = Ast.Eq; value } ];
        }
  | Ast.Select _ | Ast.Select_agg _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
      statement

let blend ~update_fraction ~value_range ~seed statements =
  if update_fraction < 0.0 || update_fraction > 1.0 then
    invalid_arg "Dml_gen.blend: fraction outside [0, 1]";
  let rng = Rng.create seed in
  let out = Array.copy statements in
  for i = 0 to Array.length out - 1 do
    match out.(i) with
    | Ast.Select _ when Rng.float rng 1.0 < update_fraction ->
        out.(i) <- to_update rng ~value_range out.(i)
    | Ast.Select _ | Ast.Select_agg _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ -> ()
  done;
  out

let update_share statements =
  if Array.length statements = 0 then 0.0
  else
    let writes =
      Array.fold_left
        (fun acc s -> if Ast.is_read_only s then acc else acc + 1)
        0 statements
    in
    float_of_int writes /. float_of_int (Array.length statements)
