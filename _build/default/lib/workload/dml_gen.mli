(** Blending updates into query workloads.

    The paper's problem definition covers "queries and updates"; its
    experiments use queries only.  This module turns a fraction of a
    generated query stream into UPDATE statements on the same columns, so
    the update-cost side of the advisor (index maintenance vs. lookup
    benefit) can be exercised — see the [updates] ablation experiment. *)

val blend :
  update_fraction:float ->
  value_range:int ->
  seed:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_sql.Ast.statement array
(** [blend ~update_fraction ~value_range ~seed statements] replaces each
    point SELECT independently with probability [update_fraction] by an
    [UPDATE t SET <col> = <fresh> WHERE <col> = <old>] on the same column
    (so the column access distribution is preserved).  Non-SELECT
    statements pass through.  Deterministic in [seed].  Raises
    [Invalid_argument] if the fraction is outside [\[0, 1\]]. *)

val update_share : Cddpd_sql.Ast.statement array -> float
(** Fraction of statements that are not read-only. *)
