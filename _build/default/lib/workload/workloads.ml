(* The 30 rows of Table 2, 500 queries per row. *)
let letters_w1 = "AABBAABBAA" ^ "CCDDCCDDCC" ^ "AABBAABBAA"
let letters_w2 = "ABABABABAB" ^ "CDCDCDCDCD" ^ "ABABABABAB"
let letters_w3 = "BBAABBAABB" ^ "DDCCDDCCDD" ^ "BBAABBAABB"

let major_shift_count = 2

let base_segment = 500

let scaled scale =
  let n = int_of_float (Float.round (float_of_int base_segment *. scale)) in
  if n <= 0 then invalid_arg "Workloads: scale too small";
  n

let w1 ?(scale = 1.0) () =
  Spec.of_letters ~queries_per_segment:(scaled scale) letters_w1

let w2 ?(scale = 1.0) () =
  Spec.of_letters ~queries_per_segment:(scaled scale) letters_w2

let w3 ?(scale = 1.0) () =
  Spec.of_letters ~queries_per_segment:(scaled scale) letters_w3

let by_name name ?scale () =
  match String.uppercase_ascii name with
  | "W1" -> w1 ?scale ()
  | "W2" -> w2 ?scale ()
  | "W3" -> w3 ?scale ()
  | other -> invalid_arg (Printf.sprintf "Workloads.by_name: unknown workload %s" other)
