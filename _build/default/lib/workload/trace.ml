module Parser = Cddpd_sql.Parser
module Printer = Cddpd_sql.Printer

let to_lines statements = Array.to_list (Array.map Printer.to_string statements)

let of_lines lines =
  let rec go i acc lines =
    match lines with
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || (String.length trimmed > 0 && trimmed.[0] = '#') then
          go (i + 1) acc rest
        else
          (match Parser.parse trimmed with
          | Ok statement -> go (i + 1) (statement :: acc) rest
          | Error message -> Error (Printf.sprintf "line %d: %s" i message))
  in
  go 1 [] lines

let save path statements =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines statements))

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read [])
  with
  | lines -> of_lines lines
  | exception Sys_error message -> Error message

let segment statements ~size =
  if size <= 0 then invalid_arg "Trace.segment: size <= 0";
  let n = Array.length statements in
  let n_segments = (n + size - 1) / size in
  Array.init n_segments (fun i ->
      Array.sub statements (i * size) (min size (n - (i * size))))
