(** Query mixes: probability distributions over queried columns.

    A mix generates point queries of the paper's template
    [SELECT <col> FROM t WHERE <col> = <randValue>], picking the column
    according to the mix weights and the constant uniformly from the value
    range.  Table 1 of the paper defines four mixes A-D over columns
    a, b, c, d. *)

type t

val make : name:string -> (string * float) list -> t
(** [make ~name weights] builds a mix.  Weights must be positive and are
    normalised internally; raises [Invalid_argument] on an empty list,
    non-positive weights, or duplicate columns. *)

val name : t -> string

val weights : t -> (string * float) list
(** Normalised weights (summing to 1), in declaration order. *)

val weight : t -> string -> float
(** Normalised weight of a column (0 if absent). *)

val columns : t -> string list

val sample_column : t -> Cddpd_util.Rng.t -> string
(** Draw a column according to the weights. *)

val sample_query :
  t -> table:string -> value_range:int -> Cddpd_util.Rng.t -> Cddpd_sql.Ast.statement
(** Draw one point query: the column per the mix, the constant uniform in
    [\[0, value_range)], projecting the queried column (as in the paper's
    template). *)

(** {1 The paper's mixes (Table 1)}

    Over columns a, b, c, d with weights in percent:
    A = 55/25/10/10, B = 25/55/10/10, C = 10/10/55/25, D = 10/10/25/55. *)

val mix_a : t
val mix_b : t
val mix_c : t
val mix_d : t

val of_letter : char -> t
(** ['A'..'D'] (case-insensitive) to the corresponding mix; raises
    [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
