(** Workload traces: (de)serialization of statement sequences.

    A trace file holds one SQL statement per line, with [#]-prefixed
    comment lines and blank lines ignored — the capture format a DBA would
    feed the advisor. *)

val to_lines : Cddpd_sql.Ast.statement array -> string list
(** One SQL string per statement. *)

val of_lines : string list -> (Cddpd_sql.Ast.statement array, string) result
(** Parse a trace; the error names the offending line number. *)

val save : string -> Cddpd_sql.Ast.statement array -> unit
(** Write a trace file. *)

val load : string -> (Cddpd_sql.Ast.statement array, string) result
(** Read a trace file; [Error] on I/O or parse problems. *)

val segment : Cddpd_sql.Ast.statement array -> size:int -> Cddpd_sql.Ast.statement array array
(** Chop a flat trace into segments of [size] statements (last segment may
    be shorter).  Raises [Invalid_argument] if [size <= 0]. *)
