module Rng = Cddpd_util.Rng
module Tuple = Cddpd_storage.Tuple

let paper_value_range = 500_000

let paper_row_count = 2_500_000

let uniform_rows ~columns ~rows ~value_range ~seed =
  if columns <= 0 then invalid_arg "Data_gen.uniform_rows: columns <= 0";
  if rows < 0 then invalid_arg "Data_gen.uniform_rows: rows < 0";
  if value_range <= 0 then invalid_arg "Data_gen.uniform_rows: value_range <= 0";
  let rng = Rng.create seed in
  let out = Array.make rows [||] in
  for i = 0 to rows - 1 do
    let tuple = Array.make columns (Tuple.Int 0) in
    for j = 0 to columns - 1 do
      tuple.(j) <- Tuple.Int (Rng.int rng value_range)
    done;
    out.(i) <- tuple
  done;
  out
