(** Workload specifications: sequences of segments, each drawing a number
    of queries from one mix.

    A specification is the ground truth the experiments are built from
    (e.g. "500 queries of mix A, then 500 of mix B, ...").  Generation is
    deterministic given a seed. *)

type segment = { mix : Mix.t; n_queries : int }

type t

val make : segment list -> t
(** Raises [Invalid_argument] on an empty list or non-positive counts. *)

val of_letters : ?queries_per_segment:int -> string -> t
(** [of_letters "AABB"] builds uniform segments from mix letters (default
    500 queries each, the granularity of the paper's Table 2). *)

val segments : t -> segment list

val n_segments : t -> int

val total_queries : t -> int

val mix_letters : t -> string
(** The mix names concatenated, e.g. ["AABB"]. *)

val generate :
  t ->
  table:string ->
  value_range:int ->
  seed:int ->
  Cddpd_sql.Ast.statement array array
(** One statement array per segment, deterministic in [seed]. *)

val generate_flat :
  t -> table:string -> value_range:int -> seed:int -> Cddpd_sql.Ast.statement array
(** All segments concatenated. *)

val pp : Format.formatter -> t -> unit
