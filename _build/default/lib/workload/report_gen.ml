module Ast = Cddpd_sql.Ast
module Tuple = Cddpd_storage.Tuple
module Rng = Cddpd_util.Rng

let sample ~table ~group_by ~sum_columns ?(probe_fraction = 0.5) ~value_range rng =
  let aggregate =
    match sum_columns with
    | [] -> Ast.Count_star
    | _ :: _ ->
        if Rng.bool rng then Ast.Count_star
        else Ast.Sum (Rng.pick rng (Array.of_list sum_columns))
  in
  let where =
    if Rng.float rng 1.0 < probe_fraction then
      [
        Ast.Cmp
          { column = group_by; op = Ast.Eq; value = Tuple.Int (Rng.int rng value_range) };
      ]
    else []
  in
  Ast.Select_agg { table; group_by; aggregate; where }

let segment ~table ~group_by ~sum_columns ?probe_fraction ~n ~value_range ~seed () =
  if n <= 0 then invalid_arg "Report_gen.segment: n <= 0";
  let rng = Rng.create seed in
  let first = sample ~table ~group_by ~sum_columns ?probe_fraction ~value_range rng in
  let out = Array.make n first in
  for i = 1 to n - 1 do
    out.(i) <- sample ~table ~group_by ~sum_columns ?probe_fraction ~value_range rng
  done;
  out
