(** A loaded experimental session, shared across experiments so the test
    database is built once. *)

type t = {
  config : Setup.config;
  db : Cddpd_engine.Database.t;
  steps_w1 : Cddpd_sql.Ast.statement array array;
  steps_w2 : Cddpd_sql.Ast.statement array array;
  steps_w3 : Cddpd_sql.Ast.statement array array;
  problem_w1 : Cddpd_core.Problem.t;
      (** the instance the advisors are run on (designs are always
          recommended from W1, as in the paper) *)
}

val create : Setup.config -> t
(** Load the database and generate the three workloads.  This is the
    expensive part of every experiment (seconds at default scale). *)
