module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Spec = Cddpd_workload.Spec
module Mix = Cddpd_workload.Mix
module Report_gen = Cddpd_workload.Report_gen
module Advisor = Cddpd_core.Advisor
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Simulator = Cddpd_core.Simulator
module Problem = Cddpd_core.Problem
module Text_table = Cddpd_util.Text_table

type result = {
  schedule : (int * int * string) list;
  constrained_cost : float;
  unconstrained_cost : float;
  view_steps : int;
  replay_io_constrained : int;
  replay_io_static_index : int;
}

(* Point-query phase (mix A), a reporting phase grouped by c, and back. *)
let build_steps (session : Session.t) =
  let config = session.Session.config in
  let value_range = config.Setup.value_range in
  let seed = config.Setup.seed + 31 in
  let n = max 1 (int_of_float (Float.round (250. *. config.Setup.scale))) in
  let point mix i =
    let rng = Cddpd_util.Rng.create (seed + i) in
    let first = Mix.sample_query mix ~table:Setup.table_name ~value_range rng in
    let out = Array.make n first in
    for j = 1 to n - 1 do
      out.(j) <- Mix.sample_query mix ~table:Setup.table_name ~value_range rng
    done;
    out
  in
  let report i =
    Report_gen.segment ~table:Setup.table_name ~group_by:"c"
      ~sum_columns:[ "a"; "b"; "d" ] ~probe_fraction:0.3 ~n ~value_range
      ~seed:(seed + 100 + i) ()
  in
  Array.init 12 (fun i ->
      if i < 4 || i >= 8 then point Mix.mix_a i else report i)

let run (session : Session.t) =
  let db = session.Session.db in
  let steps = build_steps session in
  let recommend method_name k =
    Advisor.recommend_exn db
      { (Advisor.default_request ~steps ~table:Setup.table_name) with
        Advisor.method_name; k }
  in
  let constrained = recommend Solution.Kaware (Some 2) in
  let unconstrained = recommend Solution.Unconstrained None in
  let schedule =
    Solution.runs constrained.Advisor.problem constrained.Advisor.solution
    |> List.map (fun (start, len, design) -> (start, len, Design.name design))
  in
  let view_steps =
    Array.fold_left
      (fun acc d -> if Design.views d <> [] then acc + 1 else acc)
      0 constrained.Advisor.schedule
  in
  (* Replay under the constrained schedule vs. the best static design that
     uses only indexes (k = 0 over the index-only sub-space). *)
  Database.migrate_to db Design.empty;
  let replay schedule =
    Database.migrate_to db Design.empty;
    (Simulator.run db ~steps ~schedule).Simulator.total_logical_io
  in
  let replay_io_constrained = replay constrained.Advisor.schedule in
  let index_only_static =
    let request =
      { (Advisor.default_request ~steps ~table:Setup.table_name) with
        Advisor.candidates =
          Some (List.map Cddpd_catalog.Structure.index Setup.paper_candidates);
        method_name = Solution.Kaware; k = Some 0 }
    in
    Advisor.recommend_exn db request
  in
  let replay_io_static_index = replay index_only_static.Advisor.schedule in
  Database.migrate_to db Design.empty;
  {
    schedule;
    constrained_cost = constrained.Advisor.solution.Solution.cost;
    unconstrained_cost = unconstrained.Advisor.solution.Solution.cost;
    view_steps;
    replay_io_constrained;
    replay_io_static_index;
  }

let print result =
  print_endline
    "Views: point-query phases around a reporting phase (k = 2, indexes + MVs)";
  let table =
    Text_table.create
      [ ("steps", Text_table.Left); ("design", Text_table.Left) ]
  in
  List.iter
    (fun (start, len, name) ->
      Text_table.add_row table
        [ Printf.sprintf "%d-%d" start (start + len - 1); name ])
    result.schedule;
  Text_table.print table;
  Printf.printf "steps on a materialized view: %d\n" result.view_steps;
  Printf.printf "cost: constrained %.0f, unconstrained %.0f\n" result.constrained_cost
    result.unconstrained_cost;
  Printf.printf
    "replay: %d page accesses under the k=2 schedule vs %d under the best\n\
     static index-only design (views pay off in the reporting phase)\n"
    result.replay_io_constrained result.replay_io_static_index
