lib/experiments/space_bound.ml: Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_util List Option Printf Session Setup
