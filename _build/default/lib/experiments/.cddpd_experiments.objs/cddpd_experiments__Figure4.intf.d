lib/experiments/figure4.mli: Session
