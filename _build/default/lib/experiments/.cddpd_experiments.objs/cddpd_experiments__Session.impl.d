lib/experiments/session.ml: Cddpd_core Cddpd_engine Cddpd_sql Setup
