lib/experiments/figure3.mli: Session
