lib/experiments/figure3.ml: Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_util List Printf Session Table2
