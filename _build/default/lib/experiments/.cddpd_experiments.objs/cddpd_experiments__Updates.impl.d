lib/experiments/updates.ml: Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_util Cddpd_workload List Printf Session Setup
