lib/experiments/setup.mli: Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_sql Cddpd_workload
