lib/experiments/space_bound.mli: Session
