lib/experiments/table1.ml: Cddpd_util Cddpd_workload Float Hashtbl List Option Printf
