lib/experiments/views.mli: Session
