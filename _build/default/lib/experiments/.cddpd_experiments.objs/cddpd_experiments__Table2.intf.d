lib/experiments/table2.mli: Cddpd_catalog Cddpd_core Session
