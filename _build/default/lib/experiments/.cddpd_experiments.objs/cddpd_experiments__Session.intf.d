lib/experiments/session.mli: Cddpd_core Cddpd_engine Cddpd_sql Setup
