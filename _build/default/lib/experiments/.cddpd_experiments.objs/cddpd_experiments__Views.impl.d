lib/experiments/views.ml: Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_util Cddpd_workload Float List Printf Session Setup
