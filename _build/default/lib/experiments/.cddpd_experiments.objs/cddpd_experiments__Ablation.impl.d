lib/experiments/ablation.ml: Cddpd_core Cddpd_util List Printf Session
