lib/experiments/updates.mli: Session
