lib/experiments/figure4.ml: Array Cddpd_core Cddpd_util List Printf Session Unix
