lib/experiments/ablation.mli: Session
