lib/experiments/table2.ml: Array Cddpd_catalog Cddpd_core Cddpd_util Cddpd_workload Float Format List Printf Session Setup String
