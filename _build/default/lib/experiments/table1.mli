(** Table 1 — the workload query mixes.

    Prints the mix definition table and, as a sanity check, the column
    frequencies actually observed in a generated sample of each mix. *)

type result = {
  mixes : (string * (string * float) list) list;  (** mix name -> weights *)
  observed : (string * (string * float) list) list;
      (** mix name -> observed frequencies over the sample *)
  max_deviation : float;  (** largest |observed - specified| *)
}

val run : ?sample_size:int -> ?seed:int -> unit -> result
(** Default sample: 20_000 queries per mix. *)

val print : result -> unit
