(** Materialized-view experiment (an extension beyond the paper's figures).

    The paper's Definition 1 allows any design structures — "indexes or
    materialized views" — but its experiments use indexes only.  This
    experiment interleaves a reporting phase (GROUP BY aggregates) between
    two point-query phases and runs the constrained advisor over a
    candidate space containing both indexes and a materialized view: the
    k = 2 schedule should hold an index through the point-query phases and
    switch to the view for the reporting phase. *)

type result = {
  schedule : (int * int * string) list;  (** runs: start, length, design *)
  constrained_cost : float;
  unconstrained_cost : float;
  view_steps : int;  (** steps scheduled with a materialized view *)
  replay_io_constrained : int;
  replay_io_static_index : int;
      (** the same workload replayed under the best static index, for
          contrast *)
}

val run : Session.t -> result

val print : result -> unit
