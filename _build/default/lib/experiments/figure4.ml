module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Text_table = Cddpd_util.Text_table

type point = {
  k : int;
  kaware_relative : float;
  merging_relative : float;
  kaware_seconds : float;
  merging_seconds : float;
}

type result = {
  points : point list;
  unconstrained_seconds : float;
  repeats : int;
}

(* Solver runtimes at this instance size are microseconds; time a batch and
   take the per-solve mean, then the median over several batches. *)
let time_batched ~repeats f =
  let batch = 16 in
  let samples =
    Array.init repeats (fun _ ->
        let start = Unix.gettimeofday () in
        for _ = 1 to batch do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. start) /. float_of_int batch)
  in
  Cddpd_util.Stats.percentile samples 50.0

let default_ks = [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ]

let run ?(ks = default_ks) ?(repeats = 32) (session : Session.t) =
  let problem = session.Session.problem_w1 in
  let solve method_name k () =
    Optimizer.solve problem ~method_name ?k ()
  in
  let unconstrained_seconds =
    time_batched ~repeats (solve Solution.Unconstrained None)
  in
  let points =
    List.map
      (fun k ->
        let kaware_seconds = time_batched ~repeats (solve Solution.Kaware (Some k)) in
        let merging_seconds = time_batched ~repeats (solve Solution.Merging (Some k)) in
        {
          k;
          kaware_seconds;
          merging_seconds;
          kaware_relative = kaware_seconds /. unconstrained_seconds;
          merging_relative = merging_seconds /. unconstrained_seconds;
        })
      ks
  in
  { points; unconstrained_seconds; repeats }

let print result =
  print_endline
    "Figure 4: Constrained-optimizer runtime relative to the unconstrained optimizer";
  let table =
    Text_table.create
      [
        ("k", Text_table.Right);
        ("k-aware graph", Text_table.Right);
        ("merging", Text_table.Right);
        ("k-aware (us)", Text_table.Right);
        ("merging (us)", Text_table.Right);
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [
          string_of_int p.k;
          Printf.sprintf "%.0f%%" (p.kaware_relative *. 100.);
          Printf.sprintf "%.0f%%" (p.merging_relative *. 100.);
          Printf.sprintf "%.1f" (p.kaware_seconds *. 1e6);
          Printf.sprintf "%.1f" (p.merging_seconds *. 1e6);
        ])
    result.points;
  Text_table.print table;
  Printf.printf "unconstrained solve: %.1f us (median of %d batches)\n"
    (result.unconstrained_seconds *. 1e6)
    result.repeats
