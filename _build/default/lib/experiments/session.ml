type t = {
  config : Setup.config;
  db : Cddpd_engine.Database.t;
  steps_w1 : Cddpd_sql.Ast.statement array array;
  steps_w2 : Cddpd_sql.Ast.statement array array;
  steps_w3 : Cddpd_sql.Ast.statement array array;
  problem_w1 : Cddpd_core.Problem.t;
}

let create config =
  let db = Setup.make_database config in
  let steps_of name = Setup.workload_steps config (Setup.workload config name) in
  let steps_w1 = steps_of "W1" in
  {
    config;
    db;
    steps_w1;
    steps_w2 = steps_of "W2";
    steps_w3 = steps_of "W3";
    problem_w1 = Setup.build_problem db ~steps:steps_w1;
  }
