module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Solution = Cddpd_core.Solution
module Simulator = Cddpd_core.Simulator
module Text_table = Cddpd_util.Text_table

type measurement = {
  workload : string;
  unconstrained_io : int;
  constrained_io : int;
  relative_unconstrained : float;
  relative_constrained : float;
}

type result = { measurements : measurement list; baseline_io : int }

let replay (session : Session.t) steps schedule =
  let db = session.Session.db in
  (* Leave the previous run's design behind so each replay starts from the
     paper's empty initial configuration. *)
  Database.migrate_to db Design.empty;
  let report = Simulator.run db ~steps ~schedule in
  report.Simulator.total_logical_io

let run (session : Session.t) =
  let table2 = Table2.run session in
  let schedule_unconstrained = table2.Table2.schedule_unconstrained in
  let schedule_k2 = table2.Table2.schedule_k2 in
  let workloads =
    [
      ("W1", session.Session.steps_w1);
      ("W2", session.Session.steps_w2);
      ("W3", session.Session.steps_w3);
    ]
  in
  let raw =
    List.map
      (fun (name, steps) ->
        let unconstrained_io = replay session steps schedule_unconstrained in
        let constrained_io = replay session steps schedule_k2 in
        (name, unconstrained_io, constrained_io))
      workloads
  in
  let baseline_io =
    match raw with
    | ("W1", io, _) :: _ -> io
    | _ -> failwith "Figure3: W1 missing"
  in
  let measurements =
    List.map
      (fun (workload, unconstrained_io, constrained_io) ->
        {
          workload;
          unconstrained_io;
          constrained_io;
          relative_unconstrained =
            float_of_int unconstrained_io /. float_of_int baseline_io;
          relative_constrained = float_of_int constrained_io /. float_of_int baseline_io;
        })
      raw
  in
  { measurements; baseline_io }

let print result =
  print_endline
    "Figure 3: Execution cost relative to W1 under the unconstrained design";
  let table =
    Text_table.create
      [
        ("workload", Text_table.Left);
        ("unconstrained design", Text_table.Right);
        ("constrained design (k=2)", Text_table.Right);
        ("page accesses (unc)", Text_table.Right);
        ("page accesses (k=2)", Text_table.Right);
      ]
  in
  List.iter
    (fun m ->
      Text_table.add_row table
        [
          m.workload;
          Printf.sprintf "%.0f%%" (m.relative_unconstrained *. 100.);
          Printf.sprintf "%.0f%%" (m.relative_constrained *. 100.);
          string_of_int m.unconstrained_io;
          string_of_int m.constrained_io;
        ])
    result.measurements;
  Text_table.print table
