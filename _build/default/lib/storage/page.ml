let size = 4096

type t = bytes

let create () = Bytes.make size '\000'

let copy t = Bytes.copy t

let blit ~src ~dst = Bytes.blit src 0 dst 0 size

let zero t = Bytes.fill t 0 size '\000'

let check t pos len name =
  if pos < 0 || pos + len > Bytes.length t then
    invalid_arg (Printf.sprintf "Page.%s: offset %d (+%d) out of bounds" name pos len)

let get_i64 t pos =
  check t pos 8 "get_i64";
  Int64.to_int (Bytes.get_int64_le t pos)

let set_i64 t pos v =
  check t pos 8 "set_i64";
  Bytes.set_int64_le t pos (Int64.of_int v)

let get_i32 t pos =
  check t pos 4 "get_i32";
  Int32.to_int (Bytes.get_int32_le t pos)

let set_i32 t pos v =
  check t pos 4 "set_i32";
  Bytes.set_int32_le t pos (Int32.of_int v)

let get_u16 t pos =
  check t pos 2 "get_u16";
  Bytes.get_uint16_le t pos

let set_u16 t pos v =
  check t pos 2 "set_u16";
  if v < 0 || v > 0xFFFF then invalid_arg "Page.set_u16: value out of range";
  Bytes.set_uint16_le t pos v

let get_u8 t pos =
  check t pos 1 "get_u8";
  Bytes.get_uint8 t pos

let set_u8 t pos v =
  check t pos 1 "set_u8";
  if v < 0 || v > 0xFF then invalid_arg "Page.set_u8: value out of range";
  Bytes.set_uint8 t pos v

let get_bytes t ~pos ~len =
  check t pos len "get_bytes";
  Bytes.sub t pos len

let set_bytes t ~pos b =
  check t pos (Bytes.length b) "set_bytes";
  Bytes.blit b 0 t pos (Bytes.length b)

let to_bytes t = t

let move t ~src ~dst ~len =
  check t src len "move";
  check t dst len "move";
  Bytes.blit t src t dst len

