lib/storage/heap_file.ml: Buffer_pool Bytes Format List Page Tuple
