lib/storage/tuple.ml: Array Bytes Format Int64 String
