lib/storage/buffer_pool.ml: Array Disk Hashtbl List Page
