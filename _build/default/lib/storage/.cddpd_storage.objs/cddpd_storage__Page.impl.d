lib/storage/page.ml: Bytes Int32 Int64 Printf
