lib/storage/btree.ml: Array Buffer_pool Bytes Int64 List Page
