lib/storage/page.mli:
