(** Tuples (records) and their on-page serialization.

    A tuple is an array of typed values.  The encoding is self-describing
    (per-field tags) so heap files can store tuples without consulting the
    catalog. *)

type value = Int of int | Text of string

type t = value array

val equal : t -> t -> bool
(** Structural equality. *)

val compare_value : value -> value -> int
(** Total order: all [Int]s sort before all [Text]s. *)

val pp_value : Format.formatter -> value -> unit
(** Render a value ([Text] is single-quoted). *)

val pp : Format.formatter -> t -> unit
(** Render a tuple as [(v1, v2, ...)]. *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

val int_exn : value -> int
(** Extract an [Int]; raises [Invalid_argument] on [Text]. *)

val text_exn : value -> string
(** Extract a [Text]; raises [Invalid_argument] on [Int]. *)

val encoded_size : t -> int
(** Number of bytes {!encode} will produce. *)

val encode : t -> bytes
(** Serialize. *)

val decode : bytes -> t
(** Deserialize; raises [Invalid_argument] on malformed input. *)

val field_count : bytes -> int
(** Number of fields of an encoded tuple without decoding it. *)

val get_field : bytes -> int -> value
(** [get_field buf i] decodes only field [i] of an encoded tuple — the
    executor's scan fast path.  Raises [Invalid_argument] on malformed
    input or out-of-range index. *)

val get_field_at : bytes -> base:int -> int -> value
(** Like {!get_field} for a tuple encoded at offset [base] inside a larger
    buffer (e.g. directly inside a page) — the zero-copy scan path. *)
