(** Fixed-size pages, the unit of disk I/O and buffering.

    A page is a mutable byte buffer of {!size} bytes with little-endian
    accessors for the integer widths used by the storage structures.  All
    offsets are byte offsets from the start of the page; accessors raise
    [Invalid_argument] when the access would fall outside the page. *)

val size : int
(** Page size in bytes (4096). *)

type t
(** A single page buffer. *)

val create : unit -> t
(** A fresh zeroed page. *)

val copy : t -> t
(** An independent copy of the page contents. *)

val blit : src:t -> dst:t -> unit
(** Copy the full contents of [src] over [dst]. *)

val zero : t -> unit
(** Reset all bytes to 0. *)

val get_i64 : t -> int -> int
(** Read a 64-bit signed integer. *)

val set_i64 : t -> int -> int -> unit
(** Write a 64-bit signed integer. *)

val get_i32 : t -> int -> int
(** Read a 32-bit signed integer (sign-extended). *)

val set_i32 : t -> int -> int -> unit
(** Write the low 32 bits of an integer. *)

val get_u16 : t -> int -> int
(** Read an unsigned 16-bit integer. *)

val set_u16 : t -> int -> int -> unit
(** Write an unsigned 16-bit integer; raises [Invalid_argument] if the value
    does not fit. *)

val get_u8 : t -> int -> int
(** Read an unsigned byte. *)

val set_u8 : t -> int -> int -> unit
(** Write an unsigned byte; raises [Invalid_argument] if the value does not
    fit. *)

val get_bytes : t -> pos:int -> len:int -> bytes
(** Extract [len] raw bytes starting at [pos]. *)

val set_bytes : t -> pos:int -> bytes -> unit
(** Write raw bytes starting at [pos]. *)

val move : t -> src:int -> dst:int -> len:int -> unit
(** [move t ~src ~dst ~len] copies [len] bytes within the page; the regions
    may overlap. *)

val to_bytes : t -> bytes
(** The page's underlying buffer, as a view (not a copy).  Intended for
    zero-copy scan paths inside the storage layer; mutating it bypasses
    dirty tracking. *)
