(** Page-based B+-trees over fixed-arity integer keys.

    A tree stores a set of unique keys, each an [int array] of the tree's
    [key_len].  Secondary indexes are built on top by appending the record
    id components to the indexed column values, which makes every stored
    key unique and lets prefix scans recover the rids (see
    [Cddpd_engine.Index]).

    All node access goes through the {!Buffer_pool}, so lookups and inserts
    have realistic, countable I/O behaviour.  Deletion removes entries
    without rebalancing: searches stay correct, and space is reclaimed only
    on rebuild — the same simplification real systems make for
    non-compacting deletes. *)

type t

val create : Buffer_pool.t -> key_len:int -> t
(** An empty tree whose keys have [key_len] components.  Raises
    [Invalid_argument] if [key_len] is not in [\[1, 16\]]. *)

val bulk_load : Buffer_pool.t -> key_len:int -> int array array -> t
(** [bulk_load pool ~key_len keys] builds a tree from [keys], which must be
    sorted (lexicographically) and duplicate-free; raises
    [Invalid_argument] otherwise.  Leaves are packed to a 90% fill
    factor. *)

val key_len : t -> int
(** Number of components per key. *)

val insert : t -> int array -> unit
(** Insert a key; inserting an existing key is a no-op.  Raises
    [Invalid_argument] on a key of the wrong length. *)

val mem : t -> int array -> bool
(** Membership test. *)

val delete : t -> int array -> bool
(** Remove a key; returns whether it was present. *)

val iter_range : t -> lo:int array -> hi:int array -> (int array -> unit) -> unit
(** [iter_range t ~lo ~hi f] applies [f] to every stored key [k] with
    [lo <= k <= hi] (lexicographic), in ascending order. *)

val iter_range_slices :
  t -> lo:int array -> hi:int array -> (bytes -> int -> unit) -> unit
(** Like {!iter_range} but the callback receives the leaf page's buffer
    and the byte offset of the entry; key component [j] is the 64-bit
    little-endian integer at [offset + 8 * j].  The buffer is only valid
    for the duration of the call.  This is the zero-allocation path behind
    covering index scans. *)

val iter_prefix : t -> prefix:int array -> (int array -> unit) -> unit
(** [iter_prefix t ~prefix f] applies [f] to every key whose first
    [Array.length prefix] components equal [prefix], in ascending order.
    Raises [Invalid_argument] if the prefix is longer than the key. *)

val iter_all : t -> (int array -> unit) -> unit
(** Full in-order traversal. *)

val n_entries : t -> int
(** Number of stored keys. *)

val height : t -> int
(** Levels from root to leaf inclusive; an empty tree has height 1. *)

val n_pages : t -> int
(** Number of pages the tree occupies (including pages emptied by
    deletions, which are not reclaimed). *)
