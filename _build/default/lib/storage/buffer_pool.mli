(** Buffer pool over a {!Disk} with clock (second-chance) replacement.

    All heap-file and B+-tree page accesses go through the pool.  A fetched
    page is pinned until released; unpinned frames are replaced by a clock
    sweep (approximate LRU, amortised O(1) per miss), writing dirty pages
    back to disk.  Hit and miss counters let the engine report logical vs.
    physical I/O. *)

type t

type handle
(** A pinned page.  The underlying buffer stays valid until {!unpin}. *)

type stats = { hits : int; misses : int; evictions : int }

val create : ?capacity:int -> Disk.t -> t
(** [create ?capacity disk] makes a pool holding at most [capacity] pages
    (default 256).  Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int
(** The number of frames. *)

val fetch : t -> int -> handle
(** [fetch t pid] pins page [pid], reading it from disk on a miss.  Raises
    [Failure] if a miss finds every frame pinned. *)

val allocate : t -> handle
(** Allocate a fresh zeroed page on the disk and pin it (dirty), without a
    disk read. *)

val page : handle -> Page.t
(** The pinned page buffer.  Mutating it requires {!mark_dirty}. *)

val page_id : handle -> int
(** The disk page id of the pinned page. *)

val mark_dirty : handle -> unit
(** Record that the page buffer was modified so eviction writes it back. *)

val unpin : t -> handle -> unit
(** Release the pin.  Raises [Invalid_argument] if the handle is not
    pinned. *)

val flush_all : t -> unit
(** Write all dirty pages back to disk (pages stay cached). *)

val drop_cache : t -> unit
(** Flush and forget every unpinned frame: the next access to any page is a
    disk read.  Used to measure cold-cache costs.  Raises [Failure] if a
    frame is still pinned. *)

val stats : t -> stats
(** Cumulative hit/miss/eviction counts. *)

val reset_stats : t -> unit
(** Zero the counters. *)
