(** Abstract syntax for the supported SQL subset.

    The workloads of the paper are single-table point queries
    ([SELECT <col> FROM t WHERE <col> = <v>]); the subset implemented here
    additionally covers projection lists, conjunctive comparison and
    BETWEEN predicates, and INSERT statements for loading data. *)

type value = Cddpd_storage.Tuple.value

type cmp = Eq | Lt | Le | Gt | Ge

type predicate =
  | Cmp of { column : string; op : cmp; value : value }
  | Between of { column : string; low : value; high : value }

type projection = Star | Columns of string list

type aggregate =
  | Count_star  (** COUNT( * ) *)
  | Sum of string  (** SUM(col) *)

type select = {
  projection : projection;
  table : string;
  where : predicate list;  (** conjunction; empty list means no WHERE *)
}

type statement =
  | Select of select
  | Select_agg of {
      table : string;
      group_by : string;
      aggregate : aggregate;
      where : predicate list;
    }
      (** [SELECT g, AGG FROM t \[WHERE ...\] GROUP BY g] — the query shape
          materialized views answer. *)
  | Insert of { table : string; values : value list }
  | Delete of { table : string; where : predicate list }
  | Update of {
      table : string;
      assignments : (string * value) list;  (** SET col = literal, ... *)
      where : predicate list;
    }

val equal_statement : statement -> statement -> bool
(** Structural equality. *)

val eq_columns : select -> (string * value) list
(** Columns constrained by equality, with their constants, in predicate
    order.  BETWEEN and inequality predicates are excluded. *)

val range_columns : select -> string list
(** Columns constrained by a non-equality predicate, in predicate order. *)

val referenced_columns : statement -> string list
(** Every column mentioned anywhere in the statement (deduplicated,
    in first-mention order).  For DELETE/UPDATE these are the predicate
    (and assigned) columns. *)

val where_of : statement -> predicate list
(** The statement's WHERE conjunction ([\[\]] for INSERT). *)

val is_read_only : statement -> bool
(** True only for SELECT. *)
