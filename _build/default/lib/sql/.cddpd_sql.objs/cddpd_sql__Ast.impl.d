lib/sql/ast.ml: Cddpd_storage List
