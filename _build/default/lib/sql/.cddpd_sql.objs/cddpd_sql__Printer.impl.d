lib/sql/printer.ml: Ast Cddpd_storage Format List Printf String
