lib/sql/lexer.mli:
