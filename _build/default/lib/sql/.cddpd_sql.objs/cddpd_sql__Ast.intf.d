lib/sql/ast.mli: Cddpd_storage
