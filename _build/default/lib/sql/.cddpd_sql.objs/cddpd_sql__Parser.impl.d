lib/sql/parser.ml: Ast Cddpd_storage Lexer List Printf String
