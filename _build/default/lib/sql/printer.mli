(** Render AST statements back to SQL text.

    [Parser.parse_exn (to_string s)] is structurally equal to [s] for every
    well-formed statement; this round-trip is property-tested. *)

val value_to_string : Ast.value -> string
(** SQL literal syntax (strings single-quoted, quotes doubled). *)

val predicate_to_string : Ast.predicate -> string

val to_string : Ast.statement -> string
(** The canonical rendering, without a trailing semicolon. *)

val pp : Format.formatter -> Ast.statement -> unit
