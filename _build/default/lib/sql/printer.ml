module Tuple = Cddpd_storage.Tuple

let escape_quotes s =
  String.concat "''" (String.split_on_char '\'' s)

let value_to_string v =
  match v with
  | Tuple.Int i -> string_of_int i
  | Tuple.Text s -> Printf.sprintf "'%s'" (escape_quotes s)

let cmp_to_string op =
  match op with
  | Ast.Eq -> "="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let predicate_to_string pred =
  match pred with
  | Ast.Cmp { column; op; value } ->
      Printf.sprintf "%s %s %s" column (cmp_to_string op) (value_to_string value)
  | Ast.Between { column; low; high } ->
      Printf.sprintf "%s BETWEEN %s AND %s" column (value_to_string low)
        (value_to_string high)

let where_to_string where =
  match where with
  | [] -> ""
  | _ :: _ -> " WHERE " ^ String.concat " AND " (List.map predicate_to_string where)

let to_string statement =
  match statement with
  | Ast.Select { projection; table; where } ->
      let cols =
        match projection with
        | Ast.Star -> "*"
        | Ast.Columns cs -> String.concat ", " cs
      in
      Printf.sprintf "SELECT %s FROM %s%s" cols table (where_to_string where)
  | Ast.Select_agg { table; group_by; aggregate; where } ->
      let agg =
        match aggregate with
        | Ast.Count_star -> "COUNT(*)"
        | Ast.Sum c -> Printf.sprintf "SUM(%s)" c
      in
      Printf.sprintf "SELECT %s, %s FROM %s%s GROUP BY %s" group_by agg table
        (where_to_string where) group_by
  | Ast.Insert { table; values } ->
      Printf.sprintf "INSERT INTO %s VALUES (%s)" table
        (String.concat ", " (List.map value_to_string values))
  | Ast.Delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" table (where_to_string where)
  | Ast.Update { table; assignments; where } ->
      Printf.sprintf "UPDATE %s SET %s%s" table
        (String.concat ", "
           (List.map
              (fun (column, value) ->
                Printf.sprintf "%s = %s" column (value_to_string value))
              assignments))
        (where_to_string where)

let pp ppf statement = Format.pp_print_string ppf (to_string statement)
