(** Hand-rolled lexer for the SQL subset. *)

type token =
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_between
  | Kw_insert
  | Kw_into
  | Kw_values
  | Kw_delete
  | Kw_update
  | Kw_set
  | Kw_group
  | Kw_by
  | Kw_count
  | Kw_sum
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Comma
  | Lparen
  | Rparen
  | Star
  | Op_eq
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge
  | Semicolon
  | Eof

exception Lex_error of { position : int; message : string }

val tokenize : string -> token list
(** Tokenize a statement.  Keywords are case-insensitive; identifiers are
    lowercased.  String literals are single-quoted with [''] escaping a
    quote.  Raises {!Lex_error} on invalid input. *)

val token_to_string : token -> string
(** For error messages. *)
