lib/engine/index.ml: Array Cddpd_catalog Cddpd_sql Cddpd_storage List Plan Printf
