lib/engine/plan.mli: Cddpd_catalog Cddpd_sql Format
