lib/engine/check.mli: Cddpd_catalog Cddpd_sql
