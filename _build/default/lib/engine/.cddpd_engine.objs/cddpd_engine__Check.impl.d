lib/engine/check.ml: Array Cddpd_catalog Cddpd_sql List Printf Result String
