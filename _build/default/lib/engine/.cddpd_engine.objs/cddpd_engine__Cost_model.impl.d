lib/engine/cost_model.ml: Cddpd_catalog Cddpd_sql Cddpd_storage Float Histogram List Plan String Table_stats
