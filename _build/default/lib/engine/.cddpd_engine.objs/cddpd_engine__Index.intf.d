lib/engine/index.mli: Cddpd_catalog Cddpd_storage Plan
