lib/engine/cost_model.mli: Cddpd_catalog Cddpd_sql Plan Table_stats
