lib/engine/mat_view.mli: Cddpd_catalog Cddpd_storage
