lib/engine/mat_view.ml: Array Cddpd_catalog Cddpd_storage Hashtbl List Printf
