lib/engine/histogram.ml: Array Float Format List
