lib/engine/database.ml: Array Bytes Cddpd_catalog Cddpd_sql Cddpd_storage Check Cost_model Hashtbl Histogram Index Int64 List Mat_view Option Plan Printf String Table_stats
