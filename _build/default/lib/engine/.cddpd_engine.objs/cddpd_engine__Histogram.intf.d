lib/engine/histogram.mli: Format
