lib/engine/table_stats.ml: Cddpd_sql Cddpd_storage Histogram List
