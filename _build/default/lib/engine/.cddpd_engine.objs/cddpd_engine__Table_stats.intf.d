lib/engine/table_stats.mli: Cddpd_sql Histogram
