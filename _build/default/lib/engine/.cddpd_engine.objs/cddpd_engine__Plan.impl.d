lib/engine/plan.ml: Cddpd_catalog Cddpd_sql Format List Printf String
