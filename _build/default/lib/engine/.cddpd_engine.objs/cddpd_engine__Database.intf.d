lib/engine/database.mli: Cddpd_catalog Cddpd_sql Cddpd_storage Cost_model Plan Table_stats
