(** Semantic validation of statements against a schema. *)

val statement :
  Cddpd_catalog.Schema.table list ->
  Cddpd_sql.Ast.statement ->
  (unit, string) result
(** Verify that the referenced table exists, every referenced column
    exists, literal types match the column types, and INSERT arity matches
    the table. *)

val statement_exn : Cddpd_catalog.Schema.table list -> Cddpd_sql.Ast.statement -> unit
(** Like {!statement}; raises [Invalid_argument] with the message. *)
