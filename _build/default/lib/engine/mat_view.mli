(** Materialized aggregate views: the physical realisation of
    {!Cddpd_catalog.View_def}.

    A view stores one row per distinct value of its grouping column:
    [(g, count, sum_c1, sum_c2, ...)] over every integer column of the
    base table, in a heap file with a B+-tree on [g] for point lookups.
    COUNT and SUM are self-maintainable, so base-table inserts, deletes
    and updates are reflected with one view-row rewrite each. *)

type t

type row = {
  group_value : int;
  count : int;
  sums : int array;  (** one sum per {!sum_columns} entry, in order *)
}

val build :
  Cddpd_storage.Buffer_pool.t ->
  Cddpd_catalog.Schema.table ->
  Cddpd_storage.Heap_file.t ->
  Cddpd_catalog.View_def.t ->
  t
(** Scan the base table and materialise the aggregates.  Raises
    [Invalid_argument] if the grouping column is missing or not an
    integer. *)

val def : t -> Cddpd_catalog.View_def.t

val sum_columns : t -> string list
(** The base table's integer columns, in the order [sums] uses. *)

val lookup : t -> int -> row option
(** The aggregate row for one group value ([None]: no base rows). *)

val scan : t -> (row -> unit) -> unit
(** All aggregate rows, in storage (unspecified) order; costs one page
    access per view heap page. *)

val apply_insert : t -> Cddpd_storage.Tuple.t -> unit
(** Reflect a base-table insert. *)

val apply_delete : t -> Cddpd_storage.Tuple.t -> unit
(** Reflect a base-table delete; removes the group row when its count
    reaches zero.  Raises [Failure] if the group is not present (the view
    would be inconsistent with the base table). *)

val n_groups : t -> int

val n_pages : t -> int
(** Heap plus B+-tree pages. *)

val height : t -> int
(** Lookup B+-tree height. *)
