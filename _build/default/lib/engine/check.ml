module Ast = Cddpd_sql.Ast
module Schema = Cddpd_catalog.Schema

let ( let* ) = Result.bind

let find_table tables name =
  match List.find_opt (fun (t : Schema.table) -> String.equal t.name name) tables with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "unknown table %s" name)

let check_column_value table column value =
  match Schema.column_type table column with
  | None -> Error (Printf.sprintf "unknown column %s in table %s" column table.Schema.name)
  | Some ty ->
      if Schema.value_matches ty value then Ok ()
      else Error (Printf.sprintf "literal type mismatch on column %s" column)

let check_predicate table pred =
  match pred with
  | Ast.Cmp { column; value; _ } -> check_column_value table column value
  | Ast.Between { column; low; high } ->
      let* () = check_column_value table column low in
      check_column_value table column high

let rec check_all f items =
  match items with
  | [] -> Ok ()
  | item :: rest ->
      let* () = f item in
      check_all f rest

let statement tables stmt =
  match stmt with
  | Ast.Select { projection; table; where } ->
      let* t = find_table tables table in
      let* () =
        match projection with
        | Ast.Star -> Ok ()
        | Ast.Columns [] -> Error "empty projection list"
        | Ast.Columns cs ->
            check_all
              (fun c ->
                if Schema.mem_column t c then Ok ()
                else Error (Printf.sprintf "unknown column %s in table %s" c table))
              cs
      in
      check_all (check_predicate t) where
  | Ast.Select_agg { table; group_by; aggregate; where } ->
      let* t = find_table tables table in
      let* () =
        if Schema.mem_column t group_by then Ok ()
        else Error (Printf.sprintf "unknown column %s in table %s" group_by table)
      in
      let* () =
        match aggregate with
        | Ast.Count_star -> Ok ()
        | Ast.Sum column -> (
            match Schema.column_type t column with
            | Some Schema.Int_type -> Ok ()
            | Some Schema.Text_type ->
                Error (Printf.sprintf "SUM over text column %s" column)
            | None -> Error (Printf.sprintf "unknown column %s in table %s" column table))
      in
      check_all (check_predicate t) where
  | Ast.Insert { table; values } ->
      let* t = find_table tables table in
      if List.length values <> Schema.arity t then
        Error
          (Printf.sprintf "INSERT arity %d does not match table %s arity %d"
             (List.length values) table (Schema.arity t))
      else
        Schema.validate_tuple t (Array.of_list values)
  | Ast.Delete { table; where } ->
      let* t = find_table tables table in
      check_all (check_predicate t) where
  | Ast.Update { table; assignments; where } ->
      let* t = find_table tables table in
      let* () =
        match assignments with
        | [] -> Error "UPDATE with no assignments"
        | _ :: _ ->
            check_all
              (fun (column, value) -> check_column_value t column value)
              assignments
      in
      check_all (check_predicate t) where

let statement_exn tables stmt =
  match statement tables stmt with
  | Ok () -> ()
  | Error message -> invalid_arg ("Check.statement: " ^ message)
