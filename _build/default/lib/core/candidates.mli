(** Candidate index generation from a workload.

    The paper deliberately leaves candidate generation to prior work
    (Chaudhuri/Narasayya-style tools); this module implements the classic
    syntactic approach those tools start from: a single-column index for
    every column appearing in a sargable predicate, plus composite indexes
    for the highest-frequency column pairs (which, on the paper's
    workloads, recovers I(a,b) and I(c,d)).  Only integer columns are
    considered (the engine's index key restriction). *)

val from_statements :
  Cddpd_catalog.Schema.table ->
  ?composite_pairs:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.Index_def.t list
(** [from_statements table ~composite_pairs stmts] returns candidates for
    [table], most-frequently-useful first: one single-column index per
    predicate column, then up to [composite_pairs] (default 0) two-column
    indexes pairing each of the most frequent predicate columns with the
    column most often co-selected with it (queries that filter on one
    column and project the other benefit from the covering composite). *)

val column_frequencies :
  Cddpd_catalog.Schema.table -> Cddpd_sql.Ast.statement array -> (string * int) list
(** Predicate-column occurrence counts, most frequent first (ties broken
    by name). *)

val view_candidates :
  Cddpd_catalog.Schema.table ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.View_def.t list
(** One materialized-view candidate per grouping column observed in the
    workload's aggregate queries (integer columns only). *)

val structures_from_statements :
  Cddpd_catalog.Schema.table ->
  ?composite_pairs:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.Structure.t list
(** Index candidates ({!from_statements}) followed by view candidates. *)
