module Database = Cddpd_engine.Database

type step_report = {
  step : int;
  design : Cddpd_catalog.Design.t;
  n_statements : int;
  exec_logical_io : int;
  exec_physical_io : int;
  trans_logical_io : int;
}

type report = {
  steps : step_report array;
  exec_logical_io : int;
  trans_logical_io : int;
  total_logical_io : int;
  total_physical_io : int;
  rows_returned : int;
}

let run db ~steps ~schedule =
  if Array.length steps <> Array.length schedule then
    invalid_arg "Simulator.run: schedule length differs from step count";
  let rows_returned = ref 0 in
  (* Steps must run in order (design migrations are stateful), so no
     Array.mapi here. *)
  let run_step s step =
    let logical_before, _ = Database.io_counters db in
    Database.migrate_to db schedule.(s);
    let logical_after_trans, _ = Database.io_counters db in
    let exec_logical = ref 0 in
    let exec_physical = ref 0 in
    Array.iter
      (fun statement ->
        let result = Database.execute db statement in
        rows_returned := !rows_returned + List.length result.Database.rows;
        exec_logical := !exec_logical + result.Database.logical_io;
        exec_physical := !exec_physical + result.Database.physical_io)
      step;
    {
      step = s;
      design = schedule.(s);
      n_statements = Array.length step;
      exec_logical_io = !exec_logical;
      exec_physical_io = !exec_physical;
      trans_logical_io = logical_after_trans - logical_before;
    }
  in
  let reports = ref [] in
  Array.iteri (fun s step -> reports := run_step s step :: !reports) steps;
  let reports = Array.of_list (List.rev !reports) in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
  let exec_logical_io = sum (fun r -> r.exec_logical_io) in
  let trans_logical_io = sum (fun r -> r.trans_logical_io) in
  {
    steps = reports;
    exec_logical_io;
    trans_logical_io;
    total_logical_io = exec_logical_io + trans_logical_io;
    total_physical_io = sum (fun r -> r.exec_physical_io);
    rows_returned = !rows_returned;
  }
