(** Workload replay: execute a workload under a design schedule against
    the real engine, measuring I/O.

    This is the reproduction's stand-in for the paper's wall-clock
    measurements (Figure 3): every statement actually runs — index builds
    included — and the report separates execution I/O from transition
    (index build) I/O.  Page accesses through the buffer pool are the
    deterministic "time" unit. *)

type step_report = {
  step : int;
  design : Cddpd_catalog.Design.t;
  n_statements : int;
  exec_logical_io : int;
  exec_physical_io : int;
  trans_logical_io : int;  (** I/O of the design change entering this step *)
}

type report = {
  steps : step_report array;
  exec_logical_io : int;
  trans_logical_io : int;
  total_logical_io : int;  (** exec + transitions: the Figure 3 quantity *)
  total_physical_io : int;
  rows_returned : int;
}

val run :
  Cddpd_engine.Database.t ->
  steps:Cddpd_sql.Ast.statement array array ->
  schedule:Cddpd_catalog.Design.t array ->
  report
(** Replay the workload: before each step, migrate to the scheduled design;
    then execute the step's statements.  The database is left on the last
    design.  Raises [Invalid_argument] if the schedule length differs from
    the step count. *)
