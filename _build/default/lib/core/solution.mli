(** Solver outputs: a design schedule with its cost and change count. *)

type method_name =
  | Unconstrained  (** sequence-graph shortest path (Agrawal et al.) *)
  | Kaware  (** optimal constrained: k-aware sequence graph (Section 3) *)
  | Greedy_seq  (** candidate reduction + k-aware graph (Section 4.1) *)
  | Merging  (** sequential design merging (Section 4.2) *)
  | Ranking  (** shortest-path ranking (Section 5) *)
  | Hybrid  (** k-aware for small k, merging for large k (Section 6.4) *)

type t = {
  path : int array;  (** config id per step *)
  cost : float;  (** sequence execution cost (Definition 1's objective) *)
  changes : int;  (** design changes under the instance's counting rule *)
  method_name : method_name;
  elapsed : float;  (** solver wall-clock seconds *)
}

val method_to_string : method_name -> string

val schedule : Problem.t -> t -> Cddpd_catalog.Design.t array
(** The designs along the path, one per step. *)

val runs : Problem.t -> t -> (int * int * Cddpd_catalog.Design.t) list
(** Maximal runs of equal designs: (first step, length, design). *)

val pp : Format.formatter -> t -> unit
