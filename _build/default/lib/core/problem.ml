module Ast = Cddpd_sql.Ast
module Cost_model = Cddpd_engine.Cost_model
module Staged_dag = Cddpd_graph.Staged_dag

type t = {
  steps : Ast.statement array array;
  space : Config_space.t;
  initial : int;
  exec : float array array;
  trans : float array array;
  count_initial_change : bool;
}

let n_steps t = Array.length t.steps

let n_configs t = Config_space.size t.space

let build ~params ~stats_of ~steps ~space ~initial ?(count_initial_change = false) () =
  if Array.length steps = 0 then invalid_arg "Problem.build: no steps";
  let initial_id = Config_space.id_of_exn space initial in
  let n_configs = Config_space.size space in
  let table_of statement =
    match statement with
    | Ast.Select { table; _ }
    | Ast.Select_agg { table; _ }
    | Ast.Insert { table; _ }
    | Ast.Delete { table; _ }
    | Ast.Update { table; _ } ->
        table
  in
  let exec =
    Array.map
      (fun step ->
        Array.init n_configs (fun c ->
            let design = Config_space.design space c in
            Array.fold_left
              (fun acc statement ->
                acc
                +. Cost_model.statement_cost params
                     (stats_of (table_of statement))
                     design statement)
              0.0 step))
      steps
  in
  let trans =
    Array.init n_configs (fun i ->
        Array.init n_configs (fun j ->
            if i = j then 0.0
            else
              Cost_model.transition_cost params ~stats_of
                ~from_design:(Config_space.design space i)
                ~to_design:(Config_space.design space j)))
  in
  { steps; space; initial = initial_id; exec; trans; count_initial_change }

let of_matrices ~steps ~space ~initial ~exec ~trans ?(count_initial_change = false) () =
  let n_steps = Array.length steps in
  let n_configs = Config_space.size space in
  if n_steps = 0 then invalid_arg "Problem.of_matrices: no steps";
  if initial < 0 || initial >= n_configs then
    invalid_arg "Problem.of_matrices: initial out of range";
  if Array.length exec <> n_steps then
    invalid_arg "Problem.of_matrices: exec has wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: exec row has wrong width";
      Array.iter
        (fun c -> if c < 0.0 then invalid_arg "Problem.of_matrices: negative exec cost")
        row)
    exec;
  if Array.length trans <> n_configs then
    invalid_arg "Problem.of_matrices: trans has wrong number of rows";
  Array.iteri
    (fun i row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: trans row has wrong width";
      Array.iteri
        (fun j c ->
          if c < 0.0 then invalid_arg "Problem.of_matrices: negative trans cost";
          if i = j && c <> 0.0 then
            invalid_arg "Problem.of_matrices: non-zero self-transition")
        row)
    trans;
  { steps; space; initial; exec; trans; count_initial_change }

let to_graph t =
  Staged_dag.make ~n_stages:(n_steps t) ~n_nodes:(n_configs t)
    ~node_cost:(fun s j -> t.exec.(s).(j))
    ~edge_cost:(fun _s i j -> t.trans.(i).(j))
    ~source_cost:(fun j -> t.trans.(t.initial).(j))
    ()

let initial_for_counting t = if t.count_initial_change then Some t.initial else None

let path_cost t path = Staged_dag.path_cost (to_graph t) path

let path_changes t path =
  Staged_dag.path_changes (to_graph t) ~initial:(initial_for_counting t) path

let restrict t ids =
  let with_initial = if List.mem t.initial ids then ids else t.initial :: ids in
  let sub_space, mapping = Config_space.restrict t.space with_initial in
  let n = Array.length mapping in
  let exec =
    Array.map (fun row -> Array.init n (fun j -> row.(mapping.(j)))) t.exec
  in
  let trans =
    Array.init n (fun i -> Array.init n (fun j -> t.trans.(mapping.(i)).(mapping.(j))))
  in
  let initial =
    let rec find i = if mapping.(i) = t.initial then i else find (i + 1) in
    find 0
  in
  ( {
      steps = t.steps;
      space = sub_space;
      initial;
      exec;
      trans;
      count_initial_change = t.count_initial_change;
    },
    mapping )
