type method_name = Unconstrained | Kaware | Greedy_seq | Merging | Ranking | Hybrid

type t = {
  path : int array;
  cost : float;
  changes : int;
  method_name : method_name;
  elapsed : float;
}

let method_to_string m =
  match m with
  | Unconstrained -> "unconstrained"
  | Kaware -> "k-aware"
  | Greedy_seq -> "greedy-seq"
  | Merging -> "merging"
  | Ranking -> "ranking"
  | Hybrid -> "hybrid"

let schedule problem t =
  Array.map (Config_space.design problem.Problem.space) t.path

let runs problem t =
  let n = Array.length t.path in
  let rec go start acc =
    if start >= n then List.rev acc
    else begin
      let config = t.path.(start) in
      let stop = ref start in
      while !stop < n && t.path.(!stop) = config do
        incr stop
      done;
      go !stop ((start, !stop - start, Config_space.design problem.Problem.space config) :: acc)
    end
  in
  go 0 []

let pp ppf t =
  Format.fprintf ppf "%s: cost=%.2f changes=%d elapsed=%.4fs"
    (method_to_string t.method_name) t.cost t.changes t.elapsed
