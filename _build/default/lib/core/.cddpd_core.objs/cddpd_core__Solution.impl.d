lib/core/solution.ml: Array Config_space Format List Problem
