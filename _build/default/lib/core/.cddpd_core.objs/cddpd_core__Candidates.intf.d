lib/core/candidates.mli: Cddpd_catalog Cddpd_sql
