lib/core/advisor.ml: Array Candidates Cddpd_catalog Cddpd_engine Cddpd_sql Config_space Optimizer Printf Problem Solution
