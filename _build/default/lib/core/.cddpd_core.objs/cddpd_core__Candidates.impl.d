lib/core/candidates.ml: Array Cddpd_catalog Cddpd_sql Hashtbl List Option String
