lib/core/merging.mli: Problem
