lib/core/config_space.mli: Cddpd_catalog Format
