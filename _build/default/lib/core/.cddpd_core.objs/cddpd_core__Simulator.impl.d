lib/core/simulator.ml: Array Cddpd_catalog Cddpd_engine List
