lib/core/k_advisor.mli: Problem
