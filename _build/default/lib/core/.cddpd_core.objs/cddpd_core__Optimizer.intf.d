lib/core/optimizer.mli: Problem Solution
