lib/core/greedy_seq.mli: Problem
