lib/core/online_tuner.ml: Array Problem
