lib/core/problem.ml: Array Cddpd_engine Cddpd_graph Cddpd_sql Config_space List
