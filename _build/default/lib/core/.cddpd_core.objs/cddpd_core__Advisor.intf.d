lib/core/advisor.mli: Cddpd_catalog Cddpd_engine Cddpd_sql Optimizer Problem Solution
