lib/core/greedy_seq.ml: Array Cddpd_graph List Problem
