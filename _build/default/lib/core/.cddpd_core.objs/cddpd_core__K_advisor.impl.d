lib/core/k_advisor.ml: Cddpd_graph List Optimizer Problem Solution
