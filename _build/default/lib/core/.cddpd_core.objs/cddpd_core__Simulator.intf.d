lib/core/simulator.mli: Cddpd_catalog Cddpd_engine Cddpd_sql
