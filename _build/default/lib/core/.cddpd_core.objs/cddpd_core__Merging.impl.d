lib/core/merging.ml: Array List Problem
