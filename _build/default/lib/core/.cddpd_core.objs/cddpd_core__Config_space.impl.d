lib/core/config_space.ml: Array Cddpd_catalog Format List Printf
