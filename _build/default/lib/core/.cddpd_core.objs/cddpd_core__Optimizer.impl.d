lib/core/optimizer.ml: Cddpd_graph Cddpd_util Greedy_seq Merging Printf Problem Result Solution
