lib/core/solution.mli: Cddpd_catalog Format Problem
