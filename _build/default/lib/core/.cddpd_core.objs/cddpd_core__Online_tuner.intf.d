lib/core/online_tuner.mli: Problem
