lib/core/problem.mli: Cddpd_catalog Cddpd_engine Cddpd_graph Cddpd_sql Config_space
