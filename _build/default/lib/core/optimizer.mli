(** Unified entry point to every solver in the paper.

    All solvers return a {!Solution.t} whose [cost] and [changes] are
    recomputed from the instance, so heuristic solvers cannot misreport. *)

type error =
  | Infeasible  (** no schedule satisfies the change budget *)
  | Ranking_gave_up of int
      (** ranking examined this many paths without finding one within the
          budget (the paper's worst case) *)

val solve :
  Problem.t ->
  method_name:Solution.method_name ->
  ?k:int ->
  ?max_paths:int ->
  unit ->
  (Solution.t, error) result
(** Run one solver.  [k] is required by every method except
    [Unconstrained] (raises [Invalid_argument] when missing).
    [max_paths] bounds the [Ranking] enumeration (default 1_000_000).
    Elapsed wall-clock time is recorded in the solution. *)

val unconstrained : Problem.t -> Solution.t
(** Convenience: the sequence-graph optimum. *)

val hybrid_uses_merging : l:int -> k:int -> bool
(** The hybrid rule (Section 6.4's conclusion): with [l] changes in the
    unconstrained optimum, use merging when [k > l / 2] (few merge steps
    needed), the k-aware graph otherwise. *)
