(** Choosing the change budget k — the paper's first open question.

    "How should k be chosen?"  The paper offers the domain-knowledge
    heuristic (count the anticipated fluctuations; see
    [Cddpd_workload.Segmenter.suggest_k]) and leaves the general case
    open.  This module implements the natural cost-curve answer: solve the
    k-aware problem for every k from 0 to the unconstrained change count l
    (the curve is nonincreasing and flat beyond l) and pick the elbow —
    the smallest k that already captures a target share of the total
    benefit of going from a static design (k = 0) to the unconstrained
    optimum.

    Small budgets buy large steps of the curve when the workload has a few
    major trends; the remaining budget only chases minor fluctuations —
    exactly the overfitting the paper wants to avoid. *)

type point = {
  k : int;
  cost : float;  (** optimal sequence cost with at most k changes *)
  captured : float;
      (** share of the static-to-unconstrained benefit captured, in
          [\[0, 1\]]; 1.0 when the instance has no benefit to capture *)
}

type recommendation = {
  suggested_k : int;
  capture_target : float;
  unconstrained_changes : int;  (** l *)
  profile : point list;  (** k = 0 .. l, ascending *)
}

val profile : Problem.t -> point list
(** The full cost curve for k = 0 .. l. *)

val suggest : ?capture_target:float -> Problem.t -> recommendation
(** [suggest ?capture_target problem] picks the smallest k whose captured
    benefit reaches [capture_target] (default 0.9).  Raises
    [Invalid_argument] if the target is outside [\[0, 1\]]. *)
