(** Sequential design merging (Section 4.2 of the paper).

    Starting from any solution, repeatedly pick the adjacent pair of
    distinct-configuration runs whose replacement by a single configuration
    has the smallest penalty

    {v
    p = [TRANS(Cprev,C') + EXEC(Si u Si+1, C') + TRANS(C',Cnext)]
      - [TRANS(Cprev,Ci) + EXEC(Si,Ci) + TRANS(Ci,Ci+1)
         + EXEC(Si+1,Ci+1) + TRANS(Ci+1,Cnext)]
    v}

    until the schedule satisfies the change budget.  Each merge removes at
    least one change (two when C' coalesces with a neighbouring run).

    The paper states the step over consecutive statement pairs; this
    implementation merges adjacent maximal {e runs} of equal
    configurations, which is the same operation at the granularity the
    unconstrained optimum actually exhibits and is the only reading under
    which every step is guaranteed to reduce the change count (see
    DESIGN.md). *)

val refine : Problem.t -> k:int -> int array -> int array
(** [refine problem ~k path] merges runs of [path] until at most [k]
    changes remain, and returns the refined path.  If [k] is smaller than
    any reachable change count (only possible when the instance counts the
    initial change and [k = 0]), the initial configuration is used
    throughout.  Raises [Invalid_argument] on a wrong-length path or
    negative [k]. *)
