(** GREEDY-SEQ-style candidate reduction (Section 4.1).

    The exact solvers are exponential in the number of candidate indexes
    because they consider every configuration.  Following Agrawal et al.'s
    GREEDY-SEQ, this module first picks, for every step, the configuration
    with the cheapest EXEC for that step; the union of those per-step
    winners (plus the initial configuration) forms a reduced configuration
    set of size O(n), on which the k-aware graph is solved exactly.

    The result is optimal {e within the reduced space} but not globally. *)

val reduced_config_ids : Problem.t -> int list
(** The initial config plus each step's cheapest config, deduplicated. *)

val solve : Problem.t -> k:int -> (float * int array) option
(** Solve the k-aware problem on the reduced space and translate the path
    back to original config ids.  [None] only if the reduced instance is
    infeasible (cannot happen for [k >= 1], nor for [k = 0] unless the
    initial change is counted and excluded). *)
