examples/choose_k.ml: Array Cddpd_core Cddpd_experiments Cddpd_util Cddpd_workload List Printf String
