examples/advisor_compare.ml: Cddpd_core Cddpd_experiments Cddpd_util Cddpd_workload Float List Printf
