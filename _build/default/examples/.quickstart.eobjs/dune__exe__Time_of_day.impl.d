examples/time_of_day.ml: Cddpd_catalog Cddpd_core Cddpd_experiments Cddpd_util Cddpd_workload List Printf String
