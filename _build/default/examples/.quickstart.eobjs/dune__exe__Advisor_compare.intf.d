examples/advisor_compare.mli:
