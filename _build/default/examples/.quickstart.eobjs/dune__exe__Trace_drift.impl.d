examples/trace_drift.ml: Array Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_experiments Cddpd_util Cddpd_workload List Printf String
