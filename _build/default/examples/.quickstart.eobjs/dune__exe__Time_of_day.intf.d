examples/time_of_day.mli:
