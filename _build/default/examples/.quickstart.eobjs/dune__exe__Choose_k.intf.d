examples/choose_k.mli:
