examples/quickstart.mli:
