examples/trace_drift.mli:
