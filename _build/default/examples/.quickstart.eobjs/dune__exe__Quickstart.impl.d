examples/quickstart.ml: Cddpd_catalog Cddpd_core Cddpd_engine Cddpd_workload Format List
