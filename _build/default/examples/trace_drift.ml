(* Generalisation under workload drift — the heart of the paper's argument.

   A trace captured on Monday is only a *representative* of the workload:
   Tuesday will be similar but not identical.  This example recommends
   designs from the Monday trace at several change budgets and evaluates
   every design on five drifted days, by real replay.  Tightly-fitted
   designs (large k) win on Monday and lose on the drifted days; the
   constrained design is the robust one.

   Run with: dune exec examples/trace_drift.exe *)

module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Spec = Cddpd_workload.Spec
module Advisor = Cddpd_core.Advisor
module Solution = Cddpd_core.Solution
module Simulator = Cddpd_core.Simulator
module Setup = Cddpd_experiments.Setup
module Rng = Cddpd_util.Rng
module Text_table = Cddpd_util.Text_table

(* Monday: two phases with minor fluctuations, as in the paper's W1. *)
let monday = "AABBAABB" ^ "CCDDCCDD"

(* Drifted days: same two phases, different fluctuation patterns. *)
let drifted_days =
  [
    ("Tuesday", "ABABABAB" ^ "CDCDCDCD");
    ("Wednesday", "BBAABBAA" ^ "DDCCDDCC");
    ("Thursday", "AAABBBAA" ^ "CCCDDDCC");
    ("Friday", "BABababa" ^ "DCDCDCDC");
  ]

let value_range = 5_000

let steps_of letters seed =
  Spec.generate
    (Spec.of_letters ~queries_per_segment:150 (String.uppercase_ascii letters))
    ~table:Setup.table_name ~value_range ~seed

let () =
  let config = { Setup.default_config with Setup.rows = 25_000; value_range } in
  let db = Setup.make_database config in
  let monday_steps = steps_of monday 21 in

  (* Recommend designs from Monday at several budgets. *)
  let budgets = [ ("k=1", Some 1); ("k=3", Some 3); ("unconstrained", None) ] in
  let recommendations =
    List.map
      (fun (label, k) ->
        let method_name =
          match k with None -> Solution.Unconstrained | Some _ -> Solution.Kaware
        in
        ( label,
          Advisor.recommend_exn db
            { (Advisor.default_request ~steps:monday_steps ~table:Setup.table_name) with
              Advisor.k; method_name } ))
      budgets
  in

  (* Replay each day under each design schedule; report page accesses. *)
  let replay steps schedule =
    Database.migrate_to db Design.empty;
    (Simulator.run db ~steps ~schedule).Simulator.total_logical_io
  in
  let days = ("Monday (training)", monday) :: drifted_days in
  let table =
    Text_table.create
      (("day", Text_table.Left)
      :: List.map (fun (label, _) -> (label, Text_table.Right)) recommendations)
  in
  let totals = Array.make (List.length recommendations) 0 in
  List.iteri
    (fun day_index (day, letters) ->
      let steps = steps_of letters (100 + day_index) in
      let cells =
        List.mapi
          (fun i (_, r) ->
            let io = replay steps r.Advisor.schedule in
            totals.(i) <- totals.(i) + io;
            Printf.sprintf "%d" io)
          recommendations
      in
      Text_table.add_row table (day :: cells))
    days;
  Text_table.add_separator table;
  Text_table.add_row table
    ("total" :: Array.to_list (Array.map string_of_int totals));
  print_endline "Page accesses per day under each Monday-trained design:";
  Text_table.print table;
  print_newline ();
  List.iter
    (fun (label, r) ->
      Printf.printf "%-14s %d design changes on Monday\n" label
        r.Advisor.solution.Solution.changes)
    recommendations;
  print_newline ();
  print_endline
    "The unconstrained design is best on the training day but pays for its";
  print_endline
    "tight fit on every drifted day; the k-constrained designs generalise."
