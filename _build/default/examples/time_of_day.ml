(* Time-of-day tuning: the paper's motivating scenario for choosing k.

   "If we are aware of time-of-day phenomena that cause the workload to
   change at lunchtime and in the evening, we can choose a value of k equal
   to or a bit larger than the number of anticipated fluctuations."

   A 24-hour trace: interactive lookups in working hours (mix A), a
   reporting burst at lunch (mix C), interactive again in the afternoon,
   and batch analytics in the evening (mix D).  That is 3 anticipated
   fluctuations, so we ask for k = 3 and compare against under- and
   over-budgeted alternatives.

   Run with: dune exec examples/time_of_day.exe *)

module Design = Cddpd_catalog.Design
module Spec = Cddpd_workload.Spec
module Advisor = Cddpd_core.Advisor
module Solution = Cddpd_core.Solution
module Setup = Cddpd_experiments.Setup
module Text_table = Cddpd_util.Text_table

let () =
  let config = { Setup.default_config with Setup.rows = 30_000; value_range = 6_000 } in
  let db = Setup.make_database config in

  (* One segment per hour, 100 queries each:
     00-08 quiet batch (D), 08-12 interactive (A), 12-13 lunch reports (C),
     13-18 interactive (A), 18-24 evening batch (D). *)
  let hours = "DDDDDDDD" ^ "AAAA" ^ "C" ^ "AAAAA" ^ "DDDDDD" in
  let spec = Spec.of_letters ~queries_per_segment:100 hours in
  let steps = Spec.generate spec ~table:Setup.table_name ~value_range:6_000 ~seed:11 in
  Printf.printf "24-hour workload, one segment per hour: %s\n\n" hours;

  let recommend k =
    Advisor.recommend_exn db
      { (Advisor.default_request ~steps ~table:Setup.table_name) with
        Advisor.k = Some k; method_name = Solution.Kaware }
  in
  let table =
    Text_table.create
      [
        ("k", Text_table.Right);
        ("cost", Text_table.Right);
        ("changes", Text_table.Right);
        ("schedule (hour: design)", Text_table.Left);
      ]
  in
  List.iter
    (fun k ->
      let r = recommend k in
      let schedule =
        Solution.runs r.Advisor.problem r.Advisor.solution
        |> List.map (fun (start, len, design) ->
               Printf.sprintf "%02d-%02dh %s" start (start + len) (Design.name design))
        |> String.concat ", "
      in
      Text_table.add_row table
        [
          string_of_int k;
          Printf.sprintf "%.0f" r.Advisor.solution.Solution.cost;
          string_of_int r.Advisor.solution.Solution.changes;
          schedule;
        ])
    [ 0; 1; 3; 6; 24 ];
  Text_table.print table;
  print_newline ();
  print_endline
    "k=3 (the anticipated fluctuation count) captures the day's structure;";
  print_endline
    "k=24 overfits every hourly wobble, k=0 is a static design."
