(* Choosing the change budget k — the paper's first open question, answered
   two ways:

   1. Workload-side: detect the workload's major shifts in the raw trace
      (Cddpd_workload.Segmenter) and budget one change per shift — the
      paper's "anticipated fluctuations" heuristic, automated.
   2. Cost-side: sweep the optimal cost over k (Cddpd_core.K_advisor) and
      take the elbow of the curve.

   The workload has two *major* phase changes (a/b-heavy -> c/d-heavy ->
   back) and frequent *minor* wobbles (the a:b ratio breathing between
   55:25 and 45:35).  The wobbles neither move the best design nor
   register as profile shifts, so both roads arrive at k = 2.

   Run with: dune exec examples/choose_k.exe *)

module Mix = Cddpd_workload.Mix
module Spec = Cddpd_workload.Spec
module Segmenter = Cddpd_workload.Segmenter
module K_advisor = Cddpd_core.K_advisor
module Setup = Cddpd_experiments.Setup
module Text_table = Cddpd_util.Text_table

(* Phase mixes: P wobbles against P' (minor), Q against Q' (minor);
   P-land vs Q-land is the major shift. *)
let mix_p = Mix.make ~name:"P" [ ("a", 55.); ("b", 25.); ("c", 10.); ("d", 10.) ]
let mix_p' = Mix.make ~name:"P'" [ ("a", 45.); ("b", 35.); ("c", 10.); ("d", 10.) ]
let mix_q = Mix.make ~name:"Q" [ ("a", 10.); ("b", 10.); ("c", 55.); ("d", 25.) ]
let mix_q' = Mix.make ~name:"Q'" [ ("a", 10.); ("b", 10.); ("c", 45.); ("d", 35.) ]

let () =
  let value_range = 4_000 in
  let config = { Setup.default_config with Setup.rows = 20_000; value_range } in
  let db = Setup.make_database config in

  let segment mix = { Spec.mix; n_queries = 250 } in
  let phase m m' = [ segment m; segment m'; segment m; segment m'; segment m; segment m' ] in
  let spec = Spec.make (phase mix_p mix_p' @ phase mix_q mix_q' @ phase mix_p mix_p') in
  let flat = Spec.generate_flat spec ~table:Setup.table_name ~value_range ~seed:77 in
  Printf.printf "trace: %d statements, mixes %s\n\n" (Array.length flat)
    (Spec.mix_letters spec);

  (* Road 1: detect shifts in the trace itself. *)
  let cuts = Segmenter.boundaries flat in
  Printf.printf "segmenter: %d major shifts detected at statement indexes [%s]\n"
    (List.length cuts)
    (String.concat "; " (List.map string_of_int cuts));
  Printf.printf "segmenter suggests k = %d (minor wobbles fall below the threshold)\n\n"
    (Segmenter.suggest_k flat);

  (* Road 2: sweep the optimal cost over k. *)
  let steps = Spec.generate spec ~table:Setup.table_name ~value_range ~seed:77 in
  let problem = Setup.build_problem db ~steps in
  let r = K_advisor.suggest ~capture_target:0.9 problem in
  let table =
    Text_table.create
      [
        ("k", Text_table.Right);
        ("optimal cost", Text_table.Right);
        ("benefit captured", Text_table.Right);
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [
          string_of_int p.K_advisor.k;
          Printf.sprintf "%.0f" p.K_advisor.cost;
          Printf.sprintf "%.1f%%" (p.K_advisor.captured *. 100.);
        ])
    r.K_advisor.profile;
  Text_table.print table;
  Printf.printf
    "\ncost curve: the unconstrained optimum uses %d changes; k = %d already\n\
     captures %.0f%% of the benefit — the elbow the advisor recommends.\n"
    r.K_advisor.unconstrained_changes r.K_advisor.suggested_k
    (r.K_advisor.capture_target *. 100.)
