(* Quickstart: the smallest end-to-end use of the library.

   1. Create a database and load data.
   2. Describe a time-varying workload.
   3. Ask the advisor for an unconstrained and a change-constrained design.
   4. Replay the workload under the constrained design.

   Run with: dune exec examples/quickstart.exe *)

module Schema = Cddpd_catalog.Schema
module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Data_gen = Cddpd_workload.Data_gen
module Spec = Cddpd_workload.Spec
module Mix = Cddpd_workload.Mix
module Advisor = Cddpd_core.Advisor
module Solution = Cddpd_core.Solution
module Simulator = Cddpd_core.Simulator

let () =
  (* A table t(a, b, c, d) with 20k uniformly random rows. *)
  let schema =
    Schema.table "t"
      [
        ("a", Schema.Int_type);
        ("b", Schema.Int_type);
        ("c", Schema.Int_type);
        ("d", Schema.Int_type);
      ]
  in
  let db = Database.create ~pool_capacity:4096 [ schema ] in
  Database.load db ~table:"t"
    (Data_gen.uniform_rows ~columns:4 ~rows:20_000 ~value_range:4_000 ~seed:1);

  (* A workload that shifts: mostly-a queries, then mostly-c queries, then
     back — 6 segments of 200 point queries. *)
  let spec = Spec.of_letters ~queries_per_segment:200 "AACCAA" in
  let steps = Spec.generate spec ~table:"t" ~value_range:4_000 ~seed:2 in
  Format.printf "workload: %a@." Spec.pp spec;

  (* Unconstrained: the Agrawal et al. optimum, free to change per segment. *)
  let unconstrained =
    Advisor.recommend_exn db
      { (Advisor.default_request ~steps ~table:"t") with
        Advisor.method_name = Solution.Unconstrained }
  in
  (* Constrained to k = 2 changes: tracks the two major shifts only. *)
  let constrained =
    Advisor.recommend_exn db
      { (Advisor.default_request ~steps ~table:"t") with
        Advisor.k = Some 2; method_name = Solution.Kaware }
  in
  let print_runs label recommendation =
    Format.printf "%s (%a):@." label Solution.pp recommendation.Advisor.solution;
    List.iter
      (fun (start, len, design) ->
        Format.printf "  segments %d-%d: %s@." start (start + len - 1) (Design.name design))
      (Solution.runs recommendation.Advisor.problem recommendation.Advisor.solution)
  in
  print_runs "unconstrained design" unconstrained;
  print_runs "constrained design (k=2)" constrained;

  (* Replay the workload under the constrained schedule and measure I/O. *)
  let report = Simulator.run db ~steps ~schedule:constrained.Advisor.schedule in
  Format.printf
    "replay under k=2 design: %d page accesses (%d for index builds), %d rows@."
    report.Simulator.total_logical_io report.Simulator.trans_logical_io
    report.Simulator.rows_returned
