(** Lint configuration: enabled rules, rule scopes, audited whitelists.
    All paths are relative to the lint root, '/'-separated. *)

type t = {
  enabled : Lint_types.rule list;  (** rules that run *)
  scan_dirs : string list;  (** root-relative dirs whose [.ml] files are parsed *)
  poly_hash_whitelist : string list;
      (** R1 syntactic fallback only: exact files allowed to use
          default-hash hashtables (audited string/int keys) without a
          waiver.  The typed rule checks the key type and ignores this. *)
  poly_compare_dirs : string list;
      (** R2 syntactic fallback only: dirs where bare compare/(=) is hot.
          The typed rule runs repo-wide. *)
  domain_state_dirs : string list option;
      (** R3: dirs holding libraries reachable from [Parallel.run] worker
          domains; [None] means "derive from the dune library graph"
          (see {!Dune_scan.domain_state_dirs}) *)
  lib_hygiene_dirs : string list;  (** R4: dirs that must stay side-effect clean *)
  lib_hygiene_exempt : string list;
      (** R4: sub-dirs whose contract is stdout reporting (lib/experiments) *)
  obs_scope : string;  (** R6: dir whose Obs literals are collected *)
  obs_doc : string;  (** R6: the catalogue document *)
  typed : bool;
      (** load cmt artifacts and run the typed rules (R1/R2 exact, R7);
          files whose cmt is missing or stale fall back to the syntactic
          heuristics, reported distinctly *)
  build_dirs : string list;
      (** candidate roots holding dune's [_build] cmt layout, tried in
          order (each is joined with the lint root) *)
  parallel_entries : string list;
      (** R7: functions whose closure arguments run on worker domains,
          matched on the normalized last two path components *)
  determinism_dirs : string list;  (** R8: result-affecting scope *)
  determinism_exempt : string list;
      (** R8: dirs/files exempt from determinism checks (lib/obs is
          reporting-only; lib/util/rng.ml is the sanctioned RNG) *)
}

val default : t
(** The repo configuration described in [docs/LINTING.md]. *)

val enabled : t -> Lint_types.rule -> bool

val restrict : t -> Lint_types.rule list -> t
(** Keep only the given rules enabled ([--rules]). *)

val disable : t -> Lint_types.rule list -> t
(** Turn the given rules off ([--disable]). *)

val under_dir : dir:string -> string -> bool
(** [under_dir ~dir path]: is [path] strictly below [dir]? *)

val in_dirs : string list -> string -> bool
(** [under_dir] against any of the dirs. *)

val in_scope : string list -> string -> bool
(** Like {!in_dirs}, but entries may also name an exact file. *)

val whitelisted : t -> string -> bool
(** Is this exact file on the R1 fallback whitelist? *)
