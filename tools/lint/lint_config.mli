(** Lint configuration: enabled rules, rule scopes, audited whitelists.
    All paths are relative to the lint root, '/'-separated. *)

type t = {
  enabled : Lint_types.rule list;  (** rules that run *)
  scan_dirs : string list;  (** root-relative dirs whose [.ml] files are parsed *)
  poly_hash_whitelist : string list;
      (** R1: exact files allowed to use default-hash hashtables (audited
          string/int keys) without a waiver *)
  poly_compare_dirs : string list;  (** R2: dirs where bare compare/(=) is hot *)
  domain_state_dirs : string list option;
      (** R3: dirs holding libraries reachable from [Parallel.run] worker
          domains; [None] means "derive from the dune library graph"
          (see {!Dune_scan.domain_state_dirs}) *)
  lib_hygiene_dirs : string list;  (** R4: dirs that must stay side-effect clean *)
  lib_hygiene_exempt : string list;
      (** R4: sub-dirs whose contract is stdout reporting (lib/experiments) *)
  obs_scope : string;  (** R6: dir whose Obs literals are collected *)
  obs_doc : string;  (** R6: the catalogue document *)
}

val default : t
(** The repo configuration described in [docs/LINTING.md]. *)

val enabled : t -> Lint_types.rule -> bool

val restrict : t -> Lint_types.rule list -> t
(** Keep only the given rules enabled ([--rules]). *)

val disable : t -> Lint_types.rule list -> t
(** Turn the given rules off ([--disable]). *)

val under_dir : dir:string -> string -> bool
(** [under_dir ~dir path]: is [path] strictly below [dir]? *)

val in_dirs : string list -> string -> bool
(** [under_dir] against any of the dirs. *)

val whitelisted : t -> string -> bool
(** Is this exact file on the R1 whitelist? *)
