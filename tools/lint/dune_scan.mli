(** Dune build-graph scan: derives which directories rule R3
    (domain-unsafe-state) applies to.

    R3 must cover every library that code running inside
    [Parallel.run] worker domains can reach.  Rather than hardcode that
    list, this module reads the [(library ...)] stanzas of every dune
    file under the library root, finds the Parallel provider (the
    library whose directory contains [parallel.ml]) and its clients
    (libraries whose sources mention ["Parallel."] and that link the
    provider), and returns the directories of the clients plus the
    transitive closure of their library dependencies. *)

type sexp = Atom of string | List of sexp list

val parse_sexps : string -> sexp list
(** Parse the concatenated s-expressions of a dune file.  Handles
    atoms, quoted atoms and [;]-comments — enough for this repo's dune
    files, not a general reader. *)

type library = { name : string; dir : string; deps : string list }

val libraries : root:string -> dir:string -> library list
(** All library stanzas found in dune files below [root/dir]; [dir] and
    the returned [dir] fields are root-relative.  I/O errors are treated
    as "no libraries here". *)

val domain_state_dirs :
  ?provider_file:string -> root:string -> lib_dir:string -> unit -> string list
(** Root-relative directories R3 applies to, sorted.  Empty when the
    provider or the build graph cannot be found (the driver surfaces
    that as a configuration warning). *)
