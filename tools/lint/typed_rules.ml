(* The typed per-file pass: walks one module's typedtree (from its cmt)
   with [Tast_iterator] and produces

   - exact R1/R2 findings: polymorphic hash/compare *instantiated* at a
     type containing floats, functions, mutable cells or abstract types —
     no whitelist, no float-evidence heuristic, repo-wide;

   - the module's R7 extract: toplevel mutable roots, per-value reference
     edges (for interprocedural reach propagation in {!Race}), and every
     [Parallel] entry-point call site with the closure's references and
     mutable captures.

   Everything here is per-module; the cross-module fixpoint lives in
   [race.ml]. *)

module L = Lint_types
module TS = Type_safety

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* -- extract vocabulary ------------------------------------------------------ *)

type ref_target =
  | Local of string  (** unqualified ident, same module *)
  | Extern of string  (** normalized "Module.value" *)

type root = {
  r_name : string;  (** qualified "Module.value" *)
  r_kind : string;  (** what makes it mutable, e.g. "ref cell" *)
  r_line : int;
  r_guarded : bool;  (** a sibling mutex follows the naming convention *)
}

type capture = {
  c_name : string;
  c_type : string;  (** rendered *)
  c_kind : string;  (** mutable components *)
}

type site = {
  s_line : int;
  s_col : int;
  s_entry : string;  (** normalized entry point, e.g. "Parallel.map_chunks" *)
  s_refs : ref_target list;  (** values the closure body references *)
  s_captures : capture list;  (** mutable locals captured from outside *)
}

type extract = {
  x_module : string;  (** short module name *)
  x_path : string;
  x_values : (string * bool * ref_target list) list;
      (** qualified name, is-function (refs propagate on call), refs *)
  x_roots : root list;
  x_sites : site list;
}

(* -- helpers ----------------------------------------------------------------- *)

(* Arrow spine: parameter types (labels kept) and final result. *)
let rec arrow_spine ty =
  match Types.get_desc ty with
  | Tarrow (lbl, a, b, _) ->
      let params, result = arrow_spine b in
      ((lbl, a) :: params, result)
  | _ -> ([], ty)

let nolabel_params params =
  List.filter_map
    (fun (lbl, ty) ->
      match lbl with Asttypes.Nolabel -> Some ty | _ -> None)
    params

let is_arrow ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let hashtbl_key_of_result ty =
  match Types.get_desc ty with
  | Tconstr (p, [ k; _ ], _)
    when TS.normalize_path p = "Hashtbl.t" ->
      Some k
  | _ -> None

(* -- the per-file pass -------------------------------------------------------- *)

type state = {
  config : Lint_config.t;
  types : TS.t;
  path : string;
  modname : string;
  findings : L.finding list ref;
  sites : site list ref;
  values : (string * bool * ref_target list) list ref;
  roots : root list ref;
  (* names of module-level bindings seen so far (any nesting depth);
     used to split closure references into toplevel refs vs captures *)
  toplevel : (string, unit) Hashtbl.t;
  (* the ref sink the expression walker feeds, when inside a binding *)
  mutable sink : ref_target list ref option;
}

let add_finding st ~loc ~rule message =
  st.findings :=
    L.finding ~col:(col_of loc) ~origin:L.Typed ~file:st.path
      ~line:(line_of loc) ~rule message
    :: !(st.findings)

let record_ref st target =
  match st.sink with
  | None -> ()
  | Some sink -> if not (List.mem target !sink) then sink := target :: !sink

(* R1/R2 on one identifier occurrence, using its instantiated type. *)
let check_poly_ident st ~loc full_name (exp_type : Types.type_expr) =
  let r1 = Lint_config.enabled st.config L.Poly_hash in
  let r2 = Lint_config.enabled st.config L.Poly_compare in
  let describe ty = TS.render ty in
  match full_name with
  | "Stdlib.Hashtbl.hash" | "Stdlib.Hashtbl.seeded_hash"
  | "Stdlib.Hashtbl.hash_param"
    when r1 -> (
      let params, _ = arrow_spine exp_type in
      match List.rev (nolabel_params params) with
      | hashed :: _ -> (
          match TS.hash_key st.types ~self:st.modname hashed with
          | TS.Safe -> ()
          | TS.Unsafe reason ->
              add_finding st ~loc ~rule:L.Poly_hash
                (Printf.sprintf
                   "%s instantiated at %s, which contains %s; hash a \
                    Cost_key-style injective digest instead"
                   (TS.normalize_name full_name)
                   (describe hashed) reason))
      | [] -> ())
  | "Stdlib.Hashtbl.create" when r1 -> (
      let _, result = arrow_spine exp_type in
      match hashtbl_key_of_result result with
      | None -> ()
      | Some key -> (
          match TS.hash_key st.types ~self:st.modname key with
          | TS.Safe -> ()
          | TS.Unsafe reason ->
              add_finding st ~loc ~rule:L.Poly_hash
                (Printf.sprintf
                   "default-hash Hashtbl.create keyed on %s, which contains \
                    %s; key on strings/ints or use Hashtbl.Make with a sound \
                    hash"
                   (describe key) reason)))
  | ("Stdlib.compare" | "Stdlib.=" | "Stdlib.<>") when r2 -> (
      let params, _ = arrow_spine exp_type in
      match nolabel_params params with
      | arg :: _ -> (
          match TS.compare_arg st.types ~self:st.modname arg with
          | TS.Safe -> ()
          | TS.Unsafe reason ->
              let op =
                match full_name with
                | "Stdlib.compare" -> "compare"
                | "Stdlib.=" -> "(=)"
                | _ -> "(<>)"
              in
              add_finding st ~loc ~rule:L.Poly_compare
                (Printf.sprintf
                   "polymorphic %s instantiated at %s, which contains %s; \
                    use a dedicated comparator (Float.compare, Float.equal, \
                    M.equal) so the semantics are explicit"
                   op (describe arg) reason))
      | [] -> ())
  | _ -> ()

(* Collect, for a closure body: bound names, referenced names with their
   instantiated types, and external references. *)
let closure_contents (expr : Typedtree.expression) =
  let bound = Hashtbl.create 32 in
  let locals = Hashtbl.create 32 in
  let externs = ref [] in
  let pat_hook (type k) self (p : k Typedtree.general_pattern) =
    (match p.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) -> Hashtbl.replace bound (Ident.name id) ()
    | Typedtree.Tpat_alias (_, id, _) -> Hashtbl.replace bound (Ident.name id) ()
    | _ -> ());
    Tast_iterator.default_iterator.pat self p
  in
  let expr_hook self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        let name = Ident.name id in
        if not (Hashtbl.mem locals name) then
          Hashtbl.add locals name (e.exp_type, e.exp_loc)
    | Texp_ident (p, _, _) ->
        let n = TS.normalize_path p in
        if not (List.mem n !externs) then externs := n :: !externs
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let iter =
    { Tast_iterator.default_iterator with pat = pat_hook; expr = expr_hook }
  in
  iter.expr iter expr;
  (bound, locals, List.rev !externs)

let analyze_parallel_site st ~loc ~entry (closure : Typedtree.expression) =
  let bound, locals, externs = closure_contents closure in
  let refs = ref [] in
  let captures = ref [] in
  Hashtbl.iter
    (fun name (ty, _loc) ->
      if Hashtbl.mem st.toplevel name then refs := Local name :: !refs
      else if not (Hashtbl.mem bound name) then begin
        match TS.mutable_parts st.types ~self:st.modname ty with
        | [] -> ()
        | parts ->
            captures :=
              {
                c_name = name;
                c_type = TS.render ty;
                c_kind = String.concat ", " parts;
              }
              :: !captures
      end)
    locals;
  List.iter (fun n -> refs := Extern n :: !refs) externs;
  let by_name c1 c2 = String.compare c1.c_name c2.c_name in
  st.sites :=
    {
      s_line = line_of loc;
      s_col = col_of loc;
      s_entry = entry;
      s_refs = List.rev !refs;
      s_captures = List.sort by_name !captures;
    }
    :: !(st.sites)

(* The expression iterator: R1/R2 checks, reference recording, parallel
   site detection.  Runs over every module-level binding body. *)
let expression_iterator st =
  let expr_hook self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        check_poly_ident st ~loc:e.exp_loc (Path.name p) e.exp_type;
        match p with
        | Path.Pident id ->
            let name = Ident.name id in
            if Hashtbl.mem st.toplevel name then record_ref st (Local name)
        | _ -> record_ref st (Extern (TS.normalize_path p)))
    | Texp_apply (f, args) -> (
        match f.exp_desc with
        | Texp_ident (p, _, _)
          when List.mem (TS.normalize_path p) st.config.parallel_entries
               && Lint_config.enabled st.config L.Domain_race ->
            List.iter
              (fun (lbl, arg) ->
                match (lbl, arg) with
                | Asttypes.Nolabel, Some (a : Typedtree.expression)
                  when is_arrow a.exp_type ->
                    analyze_parallel_site st ~loc:e.exp_loc
                      ~entry:(TS.normalize_path p) a
                | _ -> ())
              args
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  { Tast_iterator.default_iterator with expr = expr_hook }

(* -- module-level walk -------------------------------------------------------- *)

let binding_name (vb : Typedtree.value_binding) =
  let rec go (p : Typedtree.pattern) =
    match p.pat_desc with
    | Tpat_var (id, _) -> Some (Ident.name id)
    | Tpat_alias (p, _, _) -> go p
    | _ -> None
  in
  go vb.vb_pat

let mutex_guard_names name = [ name ^ "_mutex"; name ^ "_lock"; "mutex"; "lock" ]

let run ~(config : Lint_config.t) ~types ~path ~modname
    (str : Typedtree.structure) : extract * L.finding list =
  let st =
    {
      config;
      types;
      path;
      modname;
      findings = ref [];
      sites = ref [];
      values = ref [];
      roots = ref [];
      toplevel = Hashtbl.create 64;
      sink = None;
    }
  in
  let iter = expression_iterator st in
  let walk_expr ?sink expr =
    let saved = st.sink in
    st.sink <- sink;
    iter.expr iter expr;
    st.sink <- saved
  in
  (* One module level (toplevel of the file, or a nested [struct .. end]):
     first register binding names and mutexes, then walk bodies. *)
  let rec walk_level ~prefix items =
    let mutexes = ref [] in
    let pending_roots = ref [] in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match binding_name vb with
                | None ->
                    (* [let () = ...] / destructuring: walk for findings
                       and sites; refs are init-time, not reachable. *)
                    walk_expr vb.vb_expr
                | Some name ->
                    Hashtbl.replace st.toplevel name ();
                    let qualified = prefix ^ "." ^ name in
                    let ty = vb.vb_expr.exp_type in
                    if TS.is_mutex_type ty then mutexes := name :: !mutexes;
                    (match TS.mutable_parts st.types ~self:st.modname ty with
                    | [] -> ()
                    | parts ->
                        pending_roots :=
                          ( name,
                            {
                              r_name = qualified;
                              r_kind = String.concat ", " parts;
                              r_line = line_of vb.vb_loc;
                              r_guarded = false;
                            } )
                          :: !pending_roots);
                    let sink = ref [] in
                    walk_expr ~sink vb.vb_expr;
                    st.values :=
                      (qualified, is_arrow ty, List.rev !sink) :: !(st.values))
              vbs
        | Tstr_eval (e, _) -> walk_expr e
        | Tstr_module mb -> walk_module mb
        | Tstr_recmodule mbs -> List.iter walk_module mbs
        | _ -> ())
      items;
    (* Resolve the mutex naming convention over the whole level. *)
    List.iter
      (fun (name, root) ->
        let guarded =
          List.exists (fun m -> List.mem m (mutex_guard_names name)) !mutexes
        in
        st.roots := { root with r_guarded = guarded } :: !(st.roots))
      (List.rev !pending_roots)
  and walk_module (mb : Typedtree.module_binding) =
    let name =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    let rec go (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> walk_level ~prefix:name s.str_items
      | Tmod_constraint (me, _, _, _) -> go me
      | Tmod_functor (_, me) -> go me
      | _ -> ()
    in
    go mb.mb_expr
  in
  walk_level ~prefix:modname str.str_items;
  ( {
      x_module = modname;
      x_path = path;
      x_values = List.rev !(st.values);
      x_roots = List.rev !(st.roots);
      x_sites = List.rev !(st.sites);
    },
    List.rev !(st.findings) )
