(** Per-line lint waivers.

    Syntax, inside any OCaml comment:

    {v (* cddpd-lint: allow <rule-id>[, <rule-id>...] — <reason> *) v}

    A waiver covers findings of the named rules on its own line and on
    the line directly below it.  [mli-coverage] waivers (a file-level
    property) are honoured anywhere in the file.  Matching is textual,
    so waivers keep working in files the parser cannot read. *)

type t

val scan : string -> t
(** Collect the waiver comments of one source file. *)

val covers : t -> line:int -> rule:Lint_types.rule -> bool
(** Is there a waiver for [rule] on [line] or on [line - 1]? *)

val anywhere : t -> rule:Lint_types.rule -> bool
(** Is there a waiver for [rule] anywhere in the file? *)

val apply : t -> Lint_types.finding list -> Lint_types.finding list
(** Mark each finding covered by a waiver as [waived]. *)
