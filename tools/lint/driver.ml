(* The lint driver: walks the tree, loads each file's cmt (typed mode),
   runs the typed per-file pass plus the syntactic AST pass, solves the
   interprocedural race analysis, runs the filesystem rule (R5) and the
   catalogue cross-check (R6), and renders reports.

   Typed mode per file: a fresh cmt gives exact R1/R2 and feeds the R7
   extract; files with a missing/stale cmt fall back to the syntactic
   R1/R2 heuristics *as advisory findings* — reported, never blocking —
   so a cmt-less checkout cannot fail on heuristic noise while a full
   build still gets the exact analysis.  The exit-code policy lives in
   the executable: a run is clean iff [blocking] is empty. *)

module L = Lint_types

type report = {
  root : string;
  config : Lint_config.t;
  findings : L.finding list;  (** every finding, waived ones included *)
  files_scanned : int;
  typed_files : int;  (** files analyzed from a fresh cmt *)
  fallbacks : (string * string) list;  (** path, reason cmt was unusable *)
  obs_dynamic : int;
  r3_dirs : string list;
  warnings : string list;
}

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

(* Root-relative .ml files below [dir], skipping dot- and underscore-
   directories (_build) and anything that is not a plain source file. *)
let ml_files ~root dir =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false ->
        if Filename.check_suffix rel ".ml" then acc := rel :: !acc
    | true ->
        if
          let base = Filename.basename rel in
          String.length base > 0 && (base.[0] = '.' || base.[0] = '_')
        then ()
        else
          Array.iter
            (fun entry -> walk (Filename.concat rel entry))
            (try Sys.readdir abs with Sys_error _ -> [||])
  in
  walk dir;
  List.sort String.compare !acc

let run ?(config = Lint_config.default) ~root () =
  let warnings = ref [] in
  let r3_dirs =
    match config.domain_state_dirs with
    | Some dirs -> dirs
    | None ->
        if Lint_config.enabled config L.Domain_unsafe_state then begin
          let dirs = Dune_scan.domain_state_dirs ~root ~lib_dir:"lib" () in
          if dirs = [] then
            warnings :=
              "domain-unsafe-state: no Parallel-linked libraries derived from \
               the dune graph; rule R3 checked nothing"
              :: !warnings;
          dirs
        end
        else []
  in
  let files =
    List.concat_map (fun dir -> ml_files ~root dir) config.scan_dirs
  in
  (* Pass 1: read each file, resolve its cmt, run the syntactic rules
     with the poly mode the cmt status dictates. *)
  let fallbacks = ref [] in
  let per_file =
    List.filter_map
      (fun rel ->
        match read_file (Filename.concat root rel) with
        | None ->
            warnings := Printf.sprintf "cannot read %s; skipped" rel :: !warnings;
            None
        | Some source ->
            let cmt =
              if config.typed then
                Cmt_loader.find ~root ~build_dirs:config.build_dirs ~path:rel
                  ~source
              else Cmt_loader.Missing
            in
            let loaded, poly =
              match cmt with
              | Cmt_loader.Loaded l -> (Some l, `Off)
              | status ->
                  if config.typed then
                    fallbacks :=
                      (rel, Cmt_loader.status_reason status) :: !fallbacks;
                  (None, if config.typed then `Fallback else `Blocking)
            in
            let ast = Rules.check_source ~config ~r3_dirs ~poly ~path:rel source in
            Some (rel, source, ast, loaded))
      files
  in
  let fallbacks = List.rev !fallbacks in
  (* Pass 2: repo-wide type declaration table, then the typed per-file
     pass (exact R1/R2 + the R7 extract for each cmt-backed module). *)
  let types = Type_safety.create () in
  List.iter
    (fun (_, _, _, loaded) ->
      match loaded with
      | Some (l : Cmt_loader.loaded) ->
          Type_safety.register_module types ~modname:l.modname l.structure
      | None -> ())
    per_file;
  let waivers_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (rel, source, _, _) -> Hashtbl.replace tbl rel (Waiver.scan source)) per_file;
    fun rel ->
      match Hashtbl.find_opt tbl rel with
      | Some w -> w
      | None -> Waiver.scan ""
  in
  let extracts, typed_findings =
    List.fold_left
      (fun (extracts, findings) (rel, _, _, loaded) ->
        match loaded with
        | None -> (extracts, findings)
        | Some (l : Cmt_loader.loaded) ->
            let extract, fs =
              Typed_rules.run ~config ~types ~path:rel ~modname:l.modname
                l.structure
            in
            (extract :: extracts, Waiver.apply (waivers_of rel) fs @ findings))
      ([], []) per_file
  in
  let typed_files = List.length extracts in
  (* Pass 3: interprocedural R7 solve over all extracts; findings land
     at call sites and honour the call site's waivers. *)
  let race_findings =
    if Lint_config.enabled config L.Domain_race && extracts <> [] then
      Race.solve ~config (List.rev extracts)
      |> List.map (fun (f : L.finding) ->
             match Waiver.apply (waivers_of f.file) [ f ] with
             | [ f ] -> f
             | _ -> f)
    else []
  in
  let ast_findings =
    List.concat_map (fun (_, _, (r : Rules.t), _) -> r.findings) per_file
  in
  (* R5: every lib/**/*.ml needs a sibling .mli (waivable anywhere in the
     file, since the finding is about the file as a whole). *)
  let mli_findings =
    if not (Lint_config.enabled config L.Mli_coverage) then []
    else
      List.filter_map
        (fun (rel, source, _, _) ->
          if not (Lint_config.under_dir ~dir:"lib" rel) then None
          else if Sys.file_exists (Filename.concat root (rel ^ "i")) then None
          else
            let f =
              L.finding ~file:rel ~line:1 ~rule:L.Mli_coverage
                (Printf.sprintf "%s has no interface %si; every lib module \
                                 must declare its surface" rel rel)
            in
            match Waiver.apply (Waiver.scan source) [ f ] with
            | [ f ] -> Some f
            | _ -> None)
        per_file
  in
  (* R6: catalogue cross-check; code-side findings honour the emitting
     file's waivers, doc-side findings are not waivable. *)
  let obs_findings =
    if not (Lint_config.enabled config L.Obs_catalogue_sync) then []
    else
      match read_file (Filename.concat root config.obs_doc) with
      | None ->
          [
            L.finding ~file:config.obs_doc ~line:1 ~rule:L.Obs_catalogue_sync
              (Printf.sprintf "catalogue %s is missing" config.obs_doc);
          ]
      | Some doc ->
          let literals =
            List.concat_map (fun (_, _, (r : Rules.t), _) -> r.obs) per_file
          in
          Obs_sync.check ~doc_path:config.obs_doc (Obs_sync.parse_doc doc) literals
          |> List.concat_map (fun (f : L.finding) ->
                 match
                   List.find_opt
                     (fun (rel, _, _, _) -> String.equal rel f.file)
                     per_file
                 with
                 | Some (_, source, _, _) -> Waiver.apply (Waiver.scan source) [ f ]
                 | None -> [ f ])
  in
  let findings =
    List.sort L.compare_findings
      (typed_findings @ race_findings @ ast_findings @ mli_findings
     @ obs_findings)
  in
  let obs_dynamic =
    List.fold_left
      (fun acc (_, _, (r : Rules.t), _) -> acc + r.obs_dynamic)
      0 per_file
  in
  {
    root;
    config;
    findings;
    files_scanned = List.length per_file;
    typed_files;
    fallbacks;
    obs_dynamic;
    r3_dirs;
    warnings = List.rev !warnings;
  }

let unwaived report =
  List.filter (fun (f : L.finding) -> not f.waived) report.findings

let waived report = List.filter (fun (f : L.finding) -> f.waived) report.findings

let blocking report = List.filter L.blocking report.findings

let advisory report =
  List.filter
    (fun (f : L.finding) -> (not f.waived) && L.advisory f)
    report.findings

let render_text ?(show_waived = false) report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "warning: %s\n" w))
    report.warnings;
  List.iter
    (fun (f : L.finding) ->
      if (not f.waived) || show_waived then begin
        Buffer.add_string buf (L.to_line f);
        Buffer.add_char buf '\n'
      end)
    report.findings;
  if report.config.typed && report.fallbacks <> [] then
    Buffer.add_string buf
      (Printf.sprintf
         "note: %d file(s) without a usable cmt analyzed syntactically \
          (advisory): %s\n"
         (List.length report.fallbacks)
         (String.concat ", " (List.map fst report.fallbacks)));
  Buffer.add_string buf
    (Printf.sprintf
       "cddpd-lint: %d file(s) scanned (%d typed, %d fallback), %d finding(s) \
        (%d waived, %d advisory, %d blocking)\n"
       report.files_scanned report.typed_files
       (List.length report.fallbacks)
       (List.length report.findings)
       (List.length (waived report))
       (List.length (advisory report))
       (List.length (blocking report)));
  Buffer.contents buf

let render_json report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"cddpd-lint/2\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"root\": \"%s\",\n" (L.json_escape report.root));
  Buffer.add_string buf
    (Printf.sprintf "  \"rules\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun r -> Printf.sprintf "\"%s\"" (L.rule_id r))
             report.config.enabled)));
  Buffer.add_string buf
    (Printf.sprintf "  \"r3_dirs\": [%s],\n"
       (String.concat ", "
          (List.map (fun d -> Printf.sprintf "\"%s\"" (L.json_escape d)) report.r3_dirs)));
  Buffer.add_string buf
    (Printf.sprintf "  \"files_scanned\": %d,\n" report.files_scanned);
  Buffer.add_string buf
    (Printf.sprintf "  \"typed_files\": %d,\n" report.typed_files);
  Buffer.add_string buf
    (Printf.sprintf "  \"fallbacks\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun (path, reason) ->
               Printf.sprintf "{\"file\": \"%s\", \"reason\": \"%s\"}"
                 (L.json_escape path) (L.json_escape reason))
             report.fallbacks)));
  Buffer.add_string buf
    (Printf.sprintf "  \"obs_dynamic_names\": %d,\n" report.obs_dynamic);
  Buffer.add_string buf
    (Printf.sprintf "  \"warnings\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun w -> Printf.sprintf "\"%s\"" (L.json_escape w))
             report.warnings)));
  Buffer.add_string buf "  \"findings\": [\n";
  List.iteri
    (fun i f ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (L.to_json f);
      if i < List.length report.findings - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    report.findings;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"total\": %d, \"waived\": %d, \"advisory\": %d, \
        \"blocking\": %d}\n"
       (List.length report.findings)
       (List.length (waived report))
       (List.length (advisory report))
       (List.length (blocking report)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
