(* The per-file AST pass: parses one implementation with compiler-libs
   and walks the parsetree with Ast_iterator, producing R1-R4 and R8
   findings plus the Obs name literals that R6 cross-checks against the
   catalogue.  Everything here is purely syntactic.

   R1/R2 have a typed counterpart in [Typed_rules]; the [poly] mode
   decides how the syntactic versions run: [`Blocking] when the typed
   engine is off (legacy heuristics, blocking), [`Fallback] when the
   file's cmt is missing or stale (same heuristics, advisory only), and
   [`Off] when the typed pass already covered the file exactly. *)

open Parsetree
module L = Lint_types

type poly_mode = [ `Blocking | `Fallback | `Off ]

type obs_kind = Metric | Span

type obs_literal = { kind : obs_kind; name : string; file : string; line : int }

type t = {
  findings : L.finding list;
  obs : obs_literal list;
  obs_dynamic : int;  (** Obs constructor calls with a non-literal name *)
}

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let finding ?origin ~path ~loc ~rule message =
  L.finding ~col:(col_of loc) ?origin ~file:path ~line:(line_of loc) ~rule
    message

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let last2 = function
  | [] -> None
  | [ x ] -> Some ("", x)
  | path ->
      let rec go = function
        | [ a; b ] -> (a, b)
        | _ :: rest -> go rest
        | [] -> assert false
      in
      Some (go path)

(* Strip type annotations so [let x : t = ref ...] still matches. *)
let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel e
  | _ -> e

(* -- R2 helpers ----------------------------------------------------------- *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_idents =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* Syntactic evidence that an expression is a float: a float literal, a
   float constant from Stdlib, float arithmetic, a [Float.*] call, or an
   explicit [: float] annotation.  No type inference — ints never match. *)
let floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match (try Longident.flatten txt with _ -> []) with
      | [ id ] | [ "Stdlib"; id ] -> List.mem id float_idents
      | _ -> false)
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some ([ op ] | [ "Stdlib"; op ]) when List.mem op float_ops -> true
      | Some path when List.mem "Float" path -> true
      | _ -> false)
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ })
    ->
      true
  | _ -> false

(* -- R3: module-toplevel mutable state ------------------------------------ *)

let mutable_ctor e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some ([ "ref" ] | [ "Stdlib"; "ref" ]) -> Some "ref"
      | Some path -> (
          match last2 path with
          | Some (("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Weak"), "create") ->
              Some (String.concat "." path)
          | Some ("Array", ("make" | "init" | "create_float" | "make_matrix"))
          | Some ("Bytes", ("create" | "make")) ->
              Some (String.concat "." path)
          | _ -> None)
      | None -> None)
  | _ -> None

let is_mutex_create e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some path -> ( match last2 path with Some ("Mutex", "create") -> true | _ -> false)
      | None -> false)
  | _ -> false

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go vb.pvb_pat

(* Walk the structure-item spine (including nested [module X = struct]),
   flagging toplevel bindings built with a mutable constructor unless a
   sibling mutex binding guards them by naming convention. *)
let rec check_toplevel_state ~path structure acc =
  let candidates = ref [] in
  let mutexes = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | None -> ()
              | Some name ->
                  if is_mutex_create vb.pvb_expr then mutexes := name :: !mutexes
                  else begin
                    match mutable_ctor vb.pvb_expr with
                    | Some ctor -> candidates := (name, ctor, vb.pvb_loc) :: !candidates
                    | None -> ()
                  end)
            vbs
      | Pstr_module { pmb_expr; _ } -> check_module_expr ~path pmb_expr acc
      | Pstr_recmodule mbs ->
          List.iter (fun mb -> check_module_expr ~path mb.pmb_expr acc) mbs
      | _ -> ())
    structure;
  let guarded name =
    List.exists
      (fun m ->
        m = name ^ "_mutex" || m = name ^ "_lock" || m = "mutex" || m = "lock")
      !mutexes
  in
  List.iter
    (fun (name, ctor, loc) ->
      if not (guarded name) then
        acc :=
          finding ~path ~loc ~rule:L.Domain_unsafe_state
            (Printf.sprintf
               "module-toplevel mutable state `%s' (%s) in a library linked by \
                Parallel clients; use Atomic, guard with a `%s_mutex' sibling, \
                or waive with the domain-safety argument"
               name ctor name)
          :: !acc)
    (List.rev !candidates)

and check_module_expr ~path me acc =
  match me.pmod_desc with
  | Pmod_structure s -> check_toplevel_state ~path s acc
  | Pmod_constraint (me, _) -> check_module_expr ~path me acc
  | Pmod_functor (_, me) -> check_module_expr ~path me acc
  | _ -> ()

(* -- the expression-level rules ------------------------------------------- *)

let print_names =
  [
    "print_endline"; "print_string"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes";
  ]

let check_expressions ~(config : Lint_config.t) ~(poly : poly_mode) ~path
    structure acc obs obs_dynamic =
  let poly_origin =
    match poly with `Fallback -> L.Fallback | _ -> L.Syntactic
  in
  let r1 = poly <> `Off && Lint_config.enabled config L.Poly_hash in
  let r2 =
    poly <> `Off
    && Lint_config.enabled config L.Poly_compare
    && Lint_config.in_dirs config.poly_compare_dirs path
  in
  let r8 =
    Lint_config.enabled config L.Determinism
    && Lint_config.in_scope config.determinism_dirs path
    && not (Lint_config.in_scope config.determinism_exempt path)
  in
  let r4 =
    Lint_config.enabled config L.Lib_hygiene
    && Lint_config.in_dirs config.lib_hygiene_dirs path
    && not (Lint_config.in_dirs config.lib_hygiene_exempt path)
  in
  let collect_obs = Lint_config.under_dir ~dir:config.obs_scope path in
  let add ?origin ~loc ~rule message =
    acc := finding ?origin ~path ~loc ~rule message :: !acc
  in
  let add_poly ~loc ~rule message = add ~origin:poly_origin ~loc ~rule message in
  let on_ident ~loc txt =
    let path_parts = try Longident.flatten txt with _ -> [] in
    (if r1 then
       match last2 path_parts with
       | Some ("Hashtbl", (("hash" | "seeded_hash" | "hash_param") as fn)) ->
           add_poly ~loc ~rule:L.Poly_hash
             (Printf.sprintf
                "Hashtbl.%s is polymorphic hashing (depth-bounded, collides on \
                 deep/float values); hash a Cost_key-style injective digest \
                 instead"
                fn)
       | Some ("Hashtbl", "create") when not (Lint_config.whitelisted config path) ->
           add_poly ~loc ~rule:L.Poly_hash
             "default-hash Hashtbl.create outside the audited whitelist; key on \
              strings/ints (then waive, stating the key type) or use \
              Hashtbl.Make with a sound hash"
       | _ -> ());
    (if r2 then
       match path_parts with
       | [ "compare" ] | [ "Stdlib"; "compare" ] ->
           add_poly ~loc ~rule:L.Poly_compare
             "bare polymorphic compare on a hot path; use Int.compare / \
              Float.compare / a dedicated comparator"
       | _ -> ());
    (if r8 then
       match last2 path_parts with
       | Some ("Hashtbl", (("fold" | "iter") as fn)) ->
           add ~loc ~rule:L.Determinism
             (Printf.sprintf
                "Hashtbl.%s visits bindings in hash-bucket order, which varies \
                 with insertion history; sort the keys first, or waive with an \
                 argument that the accumulation is order-insensitive"
                fn)
       | Some ("Random", fn) ->
           add ~loc ~rule:L.Determinism
             (Printf.sprintf
                "Random.%s uses ambient global state; thread the seeded \
                 Util.Rng.t through instead"
                fn)
       | Some ("Unix", (("gettimeofday" | "time") as fn)) ->
           add ~loc ~rule:L.Determinism
             (Printf.sprintf
                "Unix.%s reads the wall clock inside lib/; take timestamps as \
                 parameters or confine timing to lib/obs"
                fn)
       | Some ("Sys", "time") ->
           add ~loc ~rule:L.Determinism
             "Sys.time reads the process clock inside lib/; take timestamps as \
              parameters or confine timing to lib/obs"
       | _ -> ());
    if r4 then
      match path_parts with
      | [ "Obj"; "magic" ] ->
          add ~loc ~rule:L.Lib_hygiene "Obj.magic inside lib/ defeats the type system"
      | [ "exit" ] | [ "Stdlib"; "exit" ] ->
          add ~loc ~rule:L.Lib_hygiene
            "exit inside lib/; raise and let the binary decide the exit code"
      | [ "Printf"; "printf" ] | [ "Format"; "printf" ] ->
          add ~loc ~rule:L.Lib_hygiene
            "stdout printing inside lib/; return data or take a formatter"
      | [ id ] when List.mem id print_names ->
          add ~loc ~rule:L.Lib_hygiene
            (Printf.sprintf
               "%s pollutes stdout inside lib/; return data or take a formatter" id)
      | _ -> ()
  in
  let on_apply ~loc f args =
    (if r2 then
       match ident_path f with
       | Some ([ (("=" | "<>") as op) ] | [ "Stdlib"; (("=" | "<>") as op) ])
         when List.exists (fun (_, a) -> floaty a) args ->
           add_poly ~loc ~rule:L.Poly_compare
             (Printf.sprintf
                "polymorphic (%s) on a float operand; use Float.equal (or an \
                 epsilon comparison) so NaN/bit semantics are explicit"
                op)
       | _ -> ());
    if collect_obs then
      let record kind =
        match args with
        | (_, { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); _ }) :: _ ->
            obs := { kind; name; file = path; line = line_of loc } :: !obs
        | _ :: _ -> incr obs_dynamic
        | [] -> ()
      in
      match ident_path f with
      | Some p -> (
          match last2 p with
          | Some ("Registry", ("counter" | "histogram")) -> record Metric
          | Some (_, "with_span") -> record Span
          | _ -> ())
      | None -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> on_ident ~loc:e.pexp_loc txt
          | Pexp_apply (f, args) -> on_apply ~loc:e.pexp_loc f args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter structure

let parse_impl ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let check_source ~config ~r3_dirs ?(poly : poly_mode = `Blocking) ~path source =
  let acc = ref [] in
  let obs = ref [] in
  let obs_dynamic = ref 0 in
  (match parse_impl ~path source with
  | exception exn ->
      let line, msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            let loc =
              match report.Location.main.Location.loc with l -> l.Location.loc_start
            in
            ( loc.Lexing.pos_lnum,
              Format.asprintf "%t" report.Location.main.Location.txt )
        | _ -> (1, Printexc.to_string exn)
      in
      acc :=
        [ L.finding ~file:path ~line ~rule:L.Parse_error ("cannot parse: " ^ msg) ]
  | structure ->
      check_expressions ~config ~poly ~path structure acc obs obs_dynamic;
      if
        Lint_config.enabled config L.Domain_unsafe_state
        && Lint_config.in_dirs r3_dirs path
      then check_toplevel_state ~path structure acc);
  let findings = Waiver.apply (Waiver.scan source) (List.rev !acc) in
  { findings; obs = List.rev !obs; obs_dynamic = !obs_dynamic }
