(* Lint configuration: which rules run, where each rule looks, and the
   audited whitelists.  Paths are relative to the lint root and use '/'
   separators; a "dir" entry matches any file below it, scope lists may
   also name individual files. *)

type t = {
  enabled : Lint_types.rule list;
  scan_dirs : string list;
  poly_hash_whitelist : string list;
  poly_compare_dirs : string list;
  domain_state_dirs : string list option;
  lib_hygiene_dirs : string list;
  lib_hygiene_exempt : string list;
  obs_scope : string;
  obs_doc : string;
  typed : bool;
  build_dirs : string list;
  parallel_entries : string list;
  determinism_dirs : string list;
  determinism_exempt : string list;
}

(* The R1 whitelist only matters for the syntactic fallback (cmt missing
   or stale): the typed rule checks the instantiated key type itself and
   needs no whitelist.  These are the modules whose hashtables were
   audited to key on strings or ints only, where Hashtbl.hash is exact. *)
let default =
  {
    enabled = Lint_types.all_rules;
    scan_dirs = [ "lib"; "bin"; "bench"; "tools" ];
    poly_hash_whitelist = [ "lib/engine/cost_key.ml"; "lib/engine/cost_cache.ml" ];
    poly_compare_dirs = [ "lib/graph"; "lib/engine"; "lib/core"; "lib/util" ];
    domain_state_dirs = None;
    lib_hygiene_dirs = [ "lib" ];
    lib_hygiene_exempt = [ "lib/experiments" ];
    obs_scope = "lib";
    obs_doc = "docs/OBSERVABILITY.md";
    typed = true;
    (* Candidate roots holding dune's cmt artifacts, tried in order.  "."
       covers running inside _build/default (the @lint alias); the second
       covers running from the repository root after a build. *)
    build_dirs = [ "."; "_build/default" ];
    (* Entry points whose closure arguments run on worker domains.  Names
       are matched on the normalized last two path components, so both
       [Cddpd_util.Parallel.for_] and a local [Parallel.for_] match. *)
    parallel_entries =
      [ "Parallel.map_chunks"; "Parallel.for_"; "Domain.spawn" ];
    (* R8 scope: paths whose outputs are part of a result the repo claims
       is deterministic.  lib/obs is reporting-only and exempt;
       lib/util/rng.ml is the one sanctioned randomness source. *)
    determinism_dirs = [ "lib" ];
    determinism_exempt = [ "lib/obs"; "lib/util/rng.ml" ];
  }

let enabled t rule = List.mem rule t.enabled

let restrict t rules = { t with enabled = List.filter (fun r -> List.mem r rules) t.enabled }

let disable t rules = { t with enabled = List.filter (fun r -> not (List.mem r rules)) t.enabled }

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let under_dir ~dir path =
  let dir = normalize dir and path = normalize path in
  let dl = String.length dir in
  String.length path > dl
  && String.sub path 0 dl = dir
  && (path.[dl] = '/' || dir = "")

let in_dirs dirs path = List.exists (fun dir -> under_dir ~dir path) dirs

(* Scope lists that may mix directories and single files. *)
let in_scope entries path =
  List.exists
    (fun entry -> normalize entry = normalize path || under_dir ~dir:entry path)
    entries

let whitelisted t path = List.mem (normalize path) (List.map normalize t.poly_hash_whitelist)
