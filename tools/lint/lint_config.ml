(* Lint configuration: which rules run, where each rule looks, and the
   audited whitelists.  Paths are relative to the lint root and use '/'
   separators; a "dir" entry matches any file below it. *)

type t = {
  enabled : Lint_types.rule list;
  scan_dirs : string list;
  poly_hash_whitelist : string list;
  poly_compare_dirs : string list;
  domain_state_dirs : string list option;
  lib_hygiene_dirs : string list;
  lib_hygiene_exempt : string list;
  obs_scope : string;
  obs_doc : string;
}

(* The R1 whitelist is short on purpose: these are the modules whose
   hashtables were audited to key on strings or ints only (Cost_key
   digests, metric names), where Hashtbl.hash is exact.  Everything else
   carries a per-line waiver stating its key type. *)
let default =
  {
    enabled = Lint_types.all_rules;
    scan_dirs = [ "lib"; "bin"; "bench"; "tools" ];
    poly_hash_whitelist = [ "lib/engine/cost_key.ml"; "lib/engine/cost_cache.ml" ];
    poly_compare_dirs = [ "lib/graph"; "lib/engine"; "lib/core"; "lib/util" ];
    domain_state_dirs = None;
    lib_hygiene_dirs = [ "lib" ];
    lib_hygiene_exempt = [ "lib/experiments" ];
    obs_scope = "lib";
    obs_doc = "docs/OBSERVABILITY.md";
  }

let enabled t rule = List.mem rule t.enabled

let restrict t rules = { t with enabled = List.filter (fun r -> List.mem r rules) t.enabled }

let disable t rules = { t with enabled = List.filter (fun r -> not (List.mem r rules)) t.enabled }

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let under_dir ~dir path =
  let dir = normalize dir and path = normalize path in
  let dl = String.length dir in
  String.length path > dl
  && String.sub path 0 dl = dir
  && (path.[dl] = '/' || dir = "")

let in_dirs dirs path = List.exists (fun dir -> under_dir ~dir path) dirs

let whitelisted t path = List.mem (normalize path) (List.map normalize t.poly_hash_whitelist)
