(* The finding-count ratchet.  [lint-baseline.json] records every waived
   finding as a (file, rule, message) key with an occurrence count; CI
   compares the current run against the committed baseline:

   - a key that appears with a higher count than the baseline (or is
     absent from it) is *growth* — the run fails;
   - a key whose count dropped (or vanished) is *burn-down* — reported
     as a reminder to regenerate the baseline, never an error.

   Unwaived blocking findings never reach the baseline: they fail the
   run directly.  The parser below reads only the JSON this module
   renders (strings, ints, flat objects, one array) — deliberately not a
   general JSON reader. *)

module L = Lint_types

type entry = { file : string; rule : string; message : string; count : int }

let key e = (e.file, e.rule, e.message)

let compare_entries a b = compare (key a) (key b)

(* -- building from a report's waived findings -------------------------------- *)

let of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : L.finding) ->
      if f.waived then begin
        let k = (f.file, L.rule_id f.rule, f.message) in
        let n = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
        Hashtbl.replace tbl k (n + 1)
      end)
    findings;
  Hashtbl.fold
    (fun (file, rule, message) count acc ->
      { file; rule; message; count } :: acc)
    tbl []
  |> List.sort compare_entries

(* -- rendering --------------------------------------------------------------- *)

let schema = "cddpd-lint-baseline/1"

let render entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": \"%s\",\n  \"waived\": [" schema);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"file\": \"%s\", \"rule\": \"%s\", \"count\": %d, \
            \"message\": \"%s\"}"
           (L.json_escape e.file) (L.json_escape e.rule) e.count
           (L.json_escape e.message)))
    (List.sort compare_entries entries);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* -- parsing our own output --------------------------------------------------- *)

exception Bad of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> raise (Bad (Printf.sprintf "expected %c, got %c" c c'))
    | None -> raise (Bad (Printf.sprintf "expected %c, got end of input" c))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          if !pos >= n then raise (Bad "unterminated escape");
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'u' ->
              if !pos + 4 > n then raise (Bad "truncated \\u escape");
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n && (match text.[!pos] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then raise (Bad "expected integer");
    int_of_string (String.sub text start (!pos - start))
  in
  let parse_entry () =
    expect '{';
    let file = ref "" and rule = ref "" and message = ref "" and count = ref 1 in
    let rec fields () =
      skip_ws ();
      let name = parse_string () in
      expect ':';
      (match name with
      | "file" -> file := parse_string ()
      | "rule" -> rule := parse_string ()
      | "message" -> message := parse_string ()
      | "count" -> count := parse_int ()
      | other -> raise (Bad ("unknown baseline field " ^ other)));
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          fields ()
      | _ -> expect '}'
    in
    fields ();
    { file = !file; rule = !rule; message = !message; count = !count }
  in
  try
    expect '{';
    skip_ws ();
    let s = parse_string () in
    if s <> "schema" then raise (Bad "expected schema field first");
    expect ':';
    let v = parse_string () in
    if v <> schema then raise (Bad ("unsupported baseline schema " ^ v));
    expect ',';
    skip_ws ();
    let w = parse_string () in
    if w <> "waived" then raise (Bad "expected waived field");
    expect ':';
    expect '[';
    let entries = ref [] in
    skip_ws ();
    (match peek () with
    | Some ']' -> advance ()
    | _ ->
        let rec items () =
          entries := parse_entry () :: !entries;
          skip_ws ();
          match peek () with
          | Some ',' ->
              advance ();
              items ()
          | _ -> expect ']'
        in
        items ());
    expect '}';
    Ok (List.sort compare_entries (List.rev !entries))
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> parse text

(* -- diff --------------------------------------------------------------------- *)

type diff = {
  grown : entry list;  (** present now, absent or smaller in the baseline *)
  shrunk : entry list;  (** present in the baseline, absent or smaller now *)
}

let clean d = d.grown = [] && d.shrunk = []

let diff ~baseline ~current =
  let index entries =
    let tbl = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace tbl (key e) e.count) entries;
    tbl
  in
  let base = index baseline and cur = index current in
  let grown =
    List.filter_map
      (fun e ->
        let had = Option.value (Hashtbl.find_opt base (key e)) ~default:0 in
        if e.count > had then Some { e with count = e.count - had } else None)
      current
  in
  let shrunk =
    List.filter_map
      (fun e ->
        let have = Option.value (Hashtbl.find_opt cur (key e)) ~default:0 in
        if e.count > have then Some { e with count = e.count - have } else None)
      baseline
  in
  { grown = List.sort compare_entries grown;
    shrunk = List.sort compare_entries shrunk }

let render_diff d =
  let buf = Buffer.create 256 in
  let line e =
    Printf.sprintf "  %s [%s] x%d: %s\n" e.file e.rule e.count e.message
  in
  if d.grown <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "ratchet: %d new waived finding(s) not in the baseline:\n"
         (List.fold_left (fun n e -> n + e.count) 0 d.grown));
    List.iter (fun e -> Buffer.add_string buf (line e)) d.grown
  end;
  if d.shrunk <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf
         "ratchet: %d waived finding(s) burned down since the baseline \
          (regenerate with make lint-update-baseline):\n"
         (List.fold_left (fun n e -> n + e.count) 0 d.shrunk));
    List.iter (fun e -> Buffer.add_string buf (line e)) d.shrunk
  end;
  Buffer.contents buf
