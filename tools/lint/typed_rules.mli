(** The typed per-file pass over one module's typedtree: exact R1/R2
    findings (polymorphic hash/compare instantiated at unsafe types) and
    the module's R7 extract — toplevel mutable roots, per-value reference
    edges, and [Parallel] entry-point call sites with closure captures.
    The cross-module fixpoint over extracts lives in {!Race}. *)

type ref_target =
  | Local of string  (** unqualified ident bound in the same module *)
  | Extern of string  (** normalized ["Module.value"] *)

type root = {
  r_name : string;  (** qualified ["Module.value"] *)
  r_kind : string;  (** what makes it mutable, e.g. ["ref cell"] *)
  r_line : int;
  r_guarded : bool;  (** a sibling mutex follows the naming convention *)
}

type capture = {
  c_name : string;
  c_type : string;  (** rendered type *)
  c_kind : string;  (** mutable components *)
}

type site = {
  s_line : int;
  s_col : int;
  s_entry : string;  (** e.g. ["Parallel.map_chunks"] *)
  s_refs : ref_target list;
  s_captures : capture list;
}

type extract = {
  x_module : string;
  x_path : string;
  x_values : (string * bool * ref_target list) list;
      (** qualified name, is-function (refs propagate on call), refs *)
  x_roots : root list;
  x_sites : site list;
}

val run :
  config:Lint_config.t ->
  types:Type_safety.t ->
  path:string ->
  modname:string ->
  Typedtree.structure ->
  extract * Lint_types.finding list
