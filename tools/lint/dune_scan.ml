(* A minimal reader for the repo's dune files, used to derive R3's scope
   from the build graph instead of a hardcoded directory list: the rule
   applies to every library that code running under Parallel.run worker
   domains can reach, i.e. the Parallel clients themselves plus the
   transitive closure of their library dependencies. *)

type sexp = Atom of string | List of sexp list

let parse_sexps text =
  let n = String.length text in
  let rec skip_ws i =
    if i >= n then i
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | ';' ->
          let rec eol j = if j >= n || text.[j] = '\n' then j else eol (j + 1) in
          skip_ws (eol i)
      | _ -> i
  in
  let rec parse_one i =
    let i = skip_ws i in
    if i >= n then (None, i)
    else
      match text.[i] with
      | '(' ->
          let items, j = parse_list (i + 1) [] in
          (Some (List items), j)
      | ')' -> (None, i)
      | '"' ->
          let rec close j =
            if j >= n then j
            else if text.[j] = '"' && text.[j - 1] <> '\\' then j
            else close (j + 1)
          in
          let j = close (i + 1) in
          (Some (Atom (String.sub text (i + 1) (j - i - 1))), min n (j + 1))
      | _ ->
          let rec stop j =
            if j >= n then j
            else
              match text.[j] with
              | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> j
              | _ -> stop (j + 1)
          in
          let j = stop i in
          (Some (Atom (String.sub text i (j - i))), j)
  and parse_list i acc =
    let i = skip_ws i in
    if i >= n then (List.rev acc, i)
    else if text.[i] = ')' then (List.rev acc, i + 1)
    else
      match parse_one i with
      | Some s, j -> parse_list j (s :: acc)
      | None, j -> (List.rev acc, j)
  in
  let rec top i acc =
    match parse_one i with
    | Some s, j -> top j (s :: acc)
    | None, _ -> List.rev acc
  in
  top 0 []

type library = { name : string; dir : string; deps : string list }

let field name = function
  | List (Atom f :: rest) when f = name -> Some rest
  | _ -> None

let library_of_stanza ~dir = function
  | List (Atom "library" :: fields) ->
      let name =
        List.find_map
          (fun f ->
            match field "name" f with Some [ Atom n ] -> Some n | _ -> None)
          fields
      in
      let deps =
        match List.find_map (field "libraries") fields with
        | None -> []
        | Some atoms ->
            List.filter_map (function Atom a -> Some a | List _ -> None) atoms
      in
      Option.map (fun name -> { name; dir; deps }) name
  | _ -> None

(* Every dune file below [dir] (root-relative), one level of library
   stanzas each.  Reading errors are ignored: a missing build graph just
   shrinks R3's scope to nothing, and the driver reports that case. *)
let libraries ~root ~dir =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false -> ()
    | true ->
        Array.iter
          (fun entry ->
            let rel' = Filename.concat rel entry in
            let abs' = Filename.concat abs entry in
            if entry = "dune" && not (Sys.is_directory abs') then begin
              match In_channel.with_open_text abs' In_channel.input_all with
              | exception Sys_error _ -> ()
              | text ->
                  List.iter
                    (fun stanza ->
                      match library_of_stanza ~dir:rel stanza with
                      | Some lib -> acc := lib :: !acc
                      | None -> ())
                    (parse_sexps text)
            end
            else if
              (not (Sys.is_directory abs'))
              || String.length entry = 0
              || entry.[0] = '.' || entry.[0] = '_'
            then ()
            else walk rel')
          (try Sys.readdir abs with Sys_error _ -> [||])
  in
  walk dir;
  !acc

let dir_has_file ~root ~dir file =
  Sys.file_exists (Filename.concat (Filename.concat root dir) file)

let dir_mentions ~root ~dir token =
  let abs = Filename.concat root dir in
  match Sys.readdir abs with
  | exception Sys_error _ -> false
  | entries ->
      Array.exists
        (fun entry ->
          Filename.check_suffix entry ".ml"
          &&
          match
            In_channel.with_open_text (Filename.concat abs entry)
              In_channel.input_all
          with
          | exception Sys_error _ -> false
          | text ->
              let tl = String.length token and n = String.length text in
              let rec find i =
                if i + tl > n then false
                else if String.sub text i tl = token then true
                else find (i + 1)
              in
              find 0)
        entries

(* Directories of: every library whose sources call into Parallel, plus
   everything those libraries link.  [provider_file] identifies the
   library that owns the Parallel module (the file parallel.ml). *)
let domain_state_dirs ?(provider_file = "parallel.ml") ~root ~lib_dir () =
  let libs = libraries ~root ~dir:lib_dir in
  (* cddpd-lint: allow poly-hash — string library-name keys *)
  let by_name = Hashtbl.create 16 in
  List.iter (fun lib -> Hashtbl.replace by_name lib.name lib) libs;
  match List.find_opt (fun lib -> dir_has_file ~root ~dir:lib.dir provider_file) libs with
  | None -> []
  | Some provider ->
      let rec closure acc name =
        if List.mem name acc then acc
        else
          match Hashtbl.find_opt by_name name with
          | None -> acc (* external library *)
          | Some lib -> List.fold_left closure (name :: acc) lib.deps
      in
      let depends_on_provider lib = List.mem provider.name (closure [] lib.name) in
      let clients =
        List.filter
          (fun lib ->
            lib.name <> provider.name
            && depends_on_provider lib
            && dir_mentions ~root ~dir:lib.dir "Parallel.")
          libs
      in
      let names = List.fold_left (fun acc c -> closure acc c.name) [] clients in
      List.filter_map
        (fun name -> Option.map (fun l -> l.dir) (Hashtbl.find_opt by_name name))
        (List.sort_uniq String.compare names)
      |> List.sort_uniq String.compare
