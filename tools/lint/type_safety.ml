(* Structural safety classification of [Types.type_expr] values pulled
   out of cmt files.

   The linter never reconstructs a typing environment (cmts are loaded
   bare, without their cmi load path), so classification is structural:
   predefined constructors are matched by path, everything else is looked
   up in a repo-wide table of type declarations harvested from the same
   cmt set.  Types that resolve to nothing — stdlib abstracts, external
   libraries, functor-generated modules — are treated as *abstract* and
   reported as such: the analysis refuses to guess, and an audited waiver
   is the mechanism for vouching for them.

   Names are normalized to the last two path components with dune's
   [Lib__Module] mangling stripped, so [Cddpd_engine__Cost_cache.t],
   [Cddpd_engine.Cost_cache.t] and a same-unit [t] all resolve to the
   declaration registered for [Cost_cache.t].  Collisions between
   same-named modules in different libraries would merge declarations;
   the repo has none, and a collision at worst widens a verdict. *)

(* -- name normalization ---------------------------------------------------- *)

(* Strip everything up to the rightmost "__": dune mangles a library
   module [cost_cache] of [cddpd_engine] as [Cddpd_engine__Cost_cache],
   and executables as [Dune__exe__Main]. *)
let strip_mangling seg =
  let n = String.length seg in
  let rec rightmost i =
    if i < 0 then None
    else if seg.[i] = '_' && seg.[i + 1] = '_' then Some i
    else rightmost (i - 1)
  in
  match rightmost (n - 2) with
  | Some i when i + 2 < n -> String.sub seg (i + 2) (n - i - 2)
  | _ -> seg

(* "Cddpd_engine__Cost_cache.t" -> "Cost_cache.t"; "t" -> "t". *)
let normalize_name name =
  let segs = String.split_on_char '.' name |> List.map strip_mangling in
  match List.rev segs with
  | last :: parent :: _ -> parent ^ "." ^ last
  | [ last ] -> last
  | [] -> name

let normalize_path p = normalize_name (Path.name p)

(* -- declaration table ------------------------------------------------------ *)

type t = {
  (* normalized "Module.typename" -> declaration and its owning module
     (the context same-unit [Pident] references inside it resolve in). *)
  decls : (string, Types.type_declaration * string) Hashtbl.t;
}

let create () = { decls = Hashtbl.create 256 }

let register t ~key ~owner decl =
  (* First registration wins: within one module a name is unique, and
     across modules collisions keep the first (deterministic: the driver
     feeds modules in sorted file order). *)
  if not (Hashtbl.mem t.decls key) then Hashtbl.add t.decls key (decl, owner)

(* A constructor name as it appears at a use site: already qualified
   ("Cost_cache.t"), or a bare same-unit name ("entry") that resolves
   against the module being analyzed. *)
let resolve t ~self name =
  if String.contains name '.' then Hashtbl.find_opt t.decls name
  else
    match Hashtbl.find_opt t.decls (self ^ "." ^ name) with
    | Some _ as hit -> hit
    | None -> None

(* Walk a typedtree structure, registering every type declaration under
   "<Module>.<name>" for the innermost enclosing module name: the
   toplevel of foo.ml registers under "Foo.t", [module Sub = struct .. ]
   under "Sub.t" — matching how use sites normalize. *)
let register_module t ~modname (str : Typedtree.structure) =
  let rec walk_items current items =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : Typedtree.type_declaration) ->
                register t
                  ~key:(current ^ "." ^ Ident.name d.typ_id)
                  ~owner:current d.typ_type)
              decls
        | Tstr_module mb -> walk_module current mb.mb_id mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter (fun (mb : Typedtree.module_binding) ->
                walk_module current mb.mb_id mb.mb_expr)
              mbs
        | _ -> ())
      items
  and walk_module _current id (me : Typedtree.module_expr) =
    let name = match id with Some id -> Ident.name id | None -> "_" in
    let rec go (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> walk_items name s.str_items
      | Tmod_constraint (me, _, _, _) -> go me
      | Tmod_functor (_, me) -> go me
      | _ -> ()
    in
    go me
  in
  walk_items modname str.str_items

(* -- classification --------------------------------------------------------- *)

type verdict = Safe | Unsafe of string

(* Predefined paths grouped by verdict. *)
let predef_exact =
  [
    Predef.path_int; Predef.path_char; Predef.path_string; Predef.path_bool;
    Predef.path_unit; Predef.path_int32; Predef.path_int64;
    Predef.path_nativeint;
  ]

let predef_container = [ Predef.path_option; Predef.path_list ]

let is_any p l = List.exists (Path.same p) l

type query = Hash_key | Compare_arg

let is_mutable = function Asttypes.Mutable -> true | Asttypes.Immutable -> false

(* Containers that are immutable and structurally exact; recurse. *)
let exact_container_names = [ "Stdlib.result"; "Either.t"; "Result.t" ]

let mutable_container_names =
  [
    ("Hashtbl.t", "Hashtbl.t");
    ("Queue.t", "Queue.t");
    ("Stack.t", "Stack.t");
    ("Buffer.t", "Buffer.t");
    ("Weak.t", "Weak.t");
    ("Dynarray.t", "Dynarray.t");
  ]

let fuel_limit = 64

(* Stdlib module aliases for the predefined base types: at a use site
   these appear as [String.t], [Float.t], ... rather than the predef
   paths, and their declarations are not in any repo cmt. *)
let alias_safe =
  [
    "String.t"; "Int.t"; "Bool.t"; "Char.t"; "Unit.t"; "Int32.t"; "Int64.t";
    "Nativeint.t";
  ]

let alias_recurse = [ "Option.t"; "List.t" ]

(* Core recursion shared by the two point queries.  Recursion continues
   into type parameters/fields with a fuel bound and a visited set on
   resolved declaration keys (cuts recursive types: the cycle itself
   adds nothing the first unrolling didn't).  [self] is the module whose
   code is being analyzed — bare constructor names resolve against it. *)
let rec classify t ~query ~fuel ~visited ~subst ~self ty : verdict =
  if fuel <= 0 then Safe (* depth-capped: deep but concrete is exact *)
  else
    let fuel = fuel - 1 in
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ -> (
        match List.assq_opt ty subst with
        | Some ty' -> classify t ~query ~fuel ~visited ~subst:[] ~self ty'
        | None -> Unsafe "a type variable (uninstantiated polymorphism)")
    | Tarrow _ -> Unsafe "a function"
    | Ttuple tys -> first_unsafe t ~query ~fuel ~visited ~subst ~self tys
    | Tpoly (ty, _) -> classify t ~query ~fuel ~visited ~subst ~self ty
    | Tobject _ | Tfield _ | Tnil -> Unsafe "an object type"
    | Tpackage _ -> Unsafe "a first-class module"
    | Tvariant row ->
        (* polymorphic variants: recurse into present argument types *)
        let tys =
          Types.row_fields row
          |> List.concat_map (fun (_, f) ->
                 match Types.row_field_repr f with
                 | Types.Rpresent (Some ty) -> [ ty ]
                 | Types.Reither (_, tys, _) -> tys
                 | _ -> [])
        in
        first_unsafe t ~query ~fuel ~visited ~subst ~self tys
    | Tlink ty | Tsubst (ty, _) -> classify t ~query ~fuel ~visited ~subst ~self ty
    | Tconstr (p, args, _) -> constr t ~query ~fuel ~visited ~subst ~self p args

and first_unsafe t ~query ~fuel ~visited ~subst ~self tys =
  List.fold_left
    (fun acc ty ->
      match acc with
      | Unsafe _ -> acc
      | Safe -> classify t ~query ~fuel ~visited ~subst ~self ty)
    Safe tys

and constr t ~query ~fuel ~visited ~subst ~self p args =
  let name = normalize_path p in
  if Path.same p Predef.path_float || name = "Float.t" then Unsafe "float"
  else if is_any p predef_exact || List.mem name alias_safe then Safe
  else if Path.same p Predef.path_bytes || name = "Bytes.t" then
    match query with
    | Hash_key -> Unsafe "mutable bytes"
    | Compare_arg -> Safe
  else if
    is_any p predef_container
    || List.mem name exact_container_names
    || List.mem name alias_recurse
  then first_unsafe t ~query ~fuel ~visited ~subst ~self args
  else if
    Path.same p Predef.path_array
    || Path.same p Predef.path_floatarray
    || name = "Array.t"
  then
    match query with
    | Hash_key -> Unsafe "a mutable array"
    | Compare_arg -> first_unsafe t ~query ~fuel ~visited ~subst ~self args
  else if Path.same p Predef.path_lazy_t || name = "Lazy.t" then
    Unsafe "a lazy value"
  else if Path.same p Predef.path_exn then Unsafe "exn (open type)"
  else if name = "Seq.t" then Unsafe "a function-backed Seq.t"
  else if name = "Atomic.t" then Unsafe "Atomic.t (racy to hash/compare)"
  else if name = "Stdlib.ref" || name = "ref" then
    match query with
    | Hash_key -> Unsafe "a mutable ref"
    | Compare_arg -> first_unsafe t ~query ~fuel ~visited ~subst ~self args
  else if List.mem_assoc name mutable_container_names then
    Unsafe (List.assoc name mutable_container_names ^ " (mutable)")
  else
    let key = if String.contains name '.' then name else self ^ "." ^ name in
    if List.mem key visited then Safe (* recursive occurrence *)
    else
      let visited = key :: visited in
      match resolve t ~self name with
      | None -> Unsafe (Printf.sprintf "abstract type %s" name)
      | Some (decl, owner) ->
          declaration t ~query ~fuel ~visited ~self:owner ~name decl args

and declaration t ~query ~fuel ~visited ~self ~name
    (decl : Types.type_declaration) args =
  let subst =
    try List.combine decl.type_params args with Invalid_argument _ -> []
  in
  match decl.type_manifest with
  | Some manifest -> classify t ~query ~fuel ~visited ~subst ~self manifest
  | None -> (
      match decl.type_kind with
      | Type_abstract -> Unsafe (Printf.sprintf "abstract type %s" name)
      | Type_open -> Unsafe (Printf.sprintf "open type %s" name)
      | Type_record (lds, _) ->
          List.fold_left
            (fun acc (ld : Types.label_declaration) ->
              match acc with
              | Unsafe _ -> acc
              | Safe ->
                  if query = Hash_key && is_mutable ld.ld_mutable then
                    Unsafe
                      (Printf.sprintf "mutable field %s.%s" name
                         (Ident.name ld.ld_id))
                  else classify t ~query ~fuel ~visited ~subst ~self ld.ld_type)
            Safe lds
      | Type_variant (cds, _) ->
          List.fold_left
            (fun acc (cd : Types.constructor_declaration) ->
              match acc with
              | Unsafe _ -> acc
              | Safe -> (
                  match cd.cd_args with
                  | Cstr_tuple tys ->
                      first_unsafe t ~query ~fuel ~visited ~subst ~self tys
                  | Cstr_record lds ->
                      List.fold_left
                        (fun acc (ld : Types.label_declaration) ->
                          match acc with
                          | Unsafe _ -> acc
                          | Safe ->
                              if query = Hash_key && is_mutable ld.ld_mutable
                              then
                                Unsafe
                                  (Printf.sprintf "mutable field %s.%s" name
                                     (Ident.name ld.ld_id))
                              else
                                classify t ~query ~fuel ~visited ~subst ~self
                                  ld.ld_type)
                        Safe lds))
            Safe cds)

let hash_key t ?(self = "") ty =
  classify t ~query:Hash_key ~fuel:fuel_limit ~visited:[] ~subst:[] ~self ty

let compare_arg t ?(self = "") ty =
  classify t ~query:Compare_arg ~fuel:fuel_limit ~visited:[] ~subst:[] ~self ty

(* -- mutability (R7) -------------------------------------------------------- *)

(* Mutable components of a type, for the domain-race rule.  Deliberately
   narrower than hashing safety: arrays and bytes are excluded (disjoint
   per-index writes are the fundamental parallel idiom here), [Atomic.t]
   is synchronized by construction, and function types are opaque (a
   captured closure's own captures are out of reach — documented
   limitation).  Returns a deduplicated list of reasons, empty = clean. *)
let mutable_parts t ?(self = "") ty =
  let acc = ref [] in
  let add reason = if not (List.mem reason !acc) then acc := reason :: !acc in
  let rec go ~fuel ~visited ~subst ~self ty =
    if fuel <= 0 then ()
    else
      let fuel = fuel - 1 in
      match Types.get_desc ty with
      | Tvar _ | Tunivar _ -> (
          match List.assq_opt ty subst with
          | Some ty' -> go ~fuel ~visited ~subst:[] ~self ty'
          | None -> ())
      | Tarrow _ | Tobject _ | Tfield _ | Tnil | Tpackage _ -> ()
      | Ttuple tys -> List.iter (go ~fuel ~visited ~subst ~self) tys
      | Tpoly (ty, _) -> go ~fuel ~visited ~subst ~self ty
      | Tvariant row ->
          Types.row_fields row
          |> List.iter (fun (_, f) ->
                 match Types.row_field_repr f with
                 | Types.Rpresent (Some ty) -> go ~fuel ~visited ~subst ~self ty
                 | Types.Reither (_, tys, _) ->
                     List.iter (go ~fuel ~visited ~subst ~self) tys
                 | _ -> ())
      | Tlink ty | Tsubst (ty, _) -> go ~fuel ~visited ~subst ~self ty
      | Tconstr (p, args, _) -> (
          let name = normalize_path p in
          if
            Path.same p Predef.path_array
            || Path.same p Predef.path_floatarray
            || Path.same p Predef.path_bytes
            || name = "Array.t" || name = "Bytes.t"
            || name = "Atomic.t" || name = "Mutex.t" || name = "Semaphore.t"
          then ()
          else if name = "Stdlib.ref" || name = "ref" then begin
            add "ref cell";
            List.iter (go ~fuel ~visited ~subst ~self) args
          end
          else if List.mem_assoc name mutable_container_names then
            add (List.assoc name mutable_container_names)
          else
            let key =
              if String.contains name '.' then name else self ^ "." ^ name
            in
            if List.mem key visited then ()
            else
              let visited = key :: visited in
              match resolve t ~self name with
              | None -> () (* unknown abstract: assume synchronized/immutable *)
              | Some (decl, owner) -> (
                  let self = owner in
                  let subst =
                    try List.combine decl.type_params args
                    with Invalid_argument _ -> []
                  in
                  match decl.type_manifest with
                  | Some manifest -> go ~fuel ~visited ~subst ~self manifest
                  | None -> (
                      match decl.type_kind with
                      | Type_abstract | Type_open -> ()
                      | Type_record (lds, _) ->
                          List.iter
                            (fun (ld : Types.label_declaration) ->
                              if is_mutable ld.ld_mutable then
                                add
                                  (Printf.sprintf "mutable field %s.%s" name
                                     (Ident.name ld.ld_id));
                              go ~fuel ~visited ~subst ~self ld.ld_type)
                            lds
                      | Type_variant (cds, _) ->
                          List.iter
                            (fun (cd : Types.constructor_declaration) ->
                              match cd.cd_args with
                              | Cstr_tuple tys ->
                                  List.iter (go ~fuel ~visited ~subst ~self) tys
                              | Cstr_record lds ->
                                  List.iter
                                    (fun (ld : Types.label_declaration) ->
                                      if is_mutable ld.ld_mutable then
                                        add
                                          (Printf.sprintf
                                             "mutable field %s.%s" name
                                             (Ident.name ld.ld_id));
                                      go ~fuel ~visited ~subst ~self ld.ld_type)
                                    lds)
                            cds)))
  in
  go ~fuel:fuel_limit ~visited:[] ~subst:[] ~self ty;
  List.rev !acc

let is_mutex_type ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> normalize_path p = "Mutex.t"
  | _ -> false

(* -- rendering -------------------------------------------------------------- *)

(* A compact, env-free type renderer for messages (Printtyp wants a
   typing env we do not have for marshalled cmt types). *)
let rec render ?(depth = 0) ty =
  if depth > 4 then "_"
  else
    match Types.get_desc ty with
    | Tvar (Some v) | Tunivar (Some v) -> "'" ^ v
    | Tvar None | Tunivar None -> "'_"
    | Tarrow (_, a, b, _) ->
        render ~depth:(depth + 1) a ^ " -> " ^ render ~depth:(depth + 1) b
    | Ttuple tys ->
        String.concat " * " (List.map (render ~depth:(depth + 1)) tys)
    | Tconstr (p, [], _) -> normalize_path p
    | Tconstr (p, args, _) ->
        Printf.sprintf "(%s) %s"
          (String.concat ", " (List.map (render ~depth:(depth + 1)) args))
          (normalize_path p)
    | Tpoly (ty, _) -> render ~depth ty
    | Tlink ty | Tsubst (ty, _) -> render ~depth ty
    | Tvariant _ -> "[> ]"
    | Tobject _ | Tfield _ | Tnil -> "< .. >"
    | Tpackage _ -> "(module _)"
