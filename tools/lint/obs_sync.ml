(* R6: the obs catalogue cross-check.

   Code side: every string literal passed to Registry.counter /
   Registry.histogram / Span.with_span under lib/ (collected by Rules).
   Doc side: docs/OBSERVABILITY.md — metric names are the backticked
   first cells of table rows in the "Metric catalogue" section; span
   names are every backticked dotted name in the "Span naming
   convention" section.

   Checked both directions for metrics (tables are precise), and
   code->doc only for spans: the span list legitimately names dynamic
   families like `optimizer.<method>` (matched as a wildcard) and
   illustrative instances of them, which have no single literal in the
   code.  Dynamic names (string concatenation) cannot be checked and
   are only tallied. *)

type catalogue = {
  metrics : (string * int) list;  (** name, 1-based doc line *)
  spans : (string * int) list;
}

let is_dotted_name s =
  String.length s > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.contains s '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-' || c = '<' || c = '>')
       s

(* All `backticked` tokens of a line, left to right. *)
let backticked line =
  let out = ref [] in
  let n = String.length line in
  let rec go i =
    if i >= n then ()
    else if line.[i] = '`' then (
      match String.index_from_opt line (i + 1) '`' with
      | None -> ()
      | Some j ->
          out := String.sub line (i + 1) (j - i - 1) :: !out;
          go (j + 1))
    else go (i + 1)
  in
  go 0;
  List.rev !out

let first_table_cell line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] <> '|' then None
  else
    match String.index_from_opt line 1 '|' with
    | None -> None
    | Some j -> Some (String.sub line 1 (j - 1))

let parse_doc text =
  let metrics = ref [] and spans = ref [] in
  let section = ref `Other in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      let trimmed = String.trim line in
      if String.length trimmed >= 3 && String.sub trimmed 0 3 = "## " then
        section :=
          (let t = String.lowercase_ascii trimmed in
           let has needle =
             let nl = String.length needle and tl = String.length t in
             let rec find k =
               k + nl <= tl && (String.sub t k nl = needle || find (k + 1))
             in
             find 0
           in
           if has "metric catalogue" then `Metrics
           else if has "span naming" then `Spans
           else `Other)
      else
        match !section with
        | `Metrics -> (
            match first_table_cell line with
            | None -> ()
            | Some cell -> (
                match backticked cell with
                | [ name ] when is_dotted_name name ->
                    metrics := (name, lnum) :: !metrics
                | _ -> ()))
        | `Spans ->
            List.iter
              (fun tok ->
                if is_dotted_name tok then spans := (tok, lnum) :: !spans)
              (backticked line)
        | `Other -> ())
    (String.split_on_char '\n' text);
  { metrics = List.rev !metrics; spans = List.rev !spans }

(* Wildcard match: `<...>` segments in doc names match any non-empty
   run of name characters ([optimizer.<method>] matches
   [optimizer.k-aware]). *)
let glob_of_doc_name name =
  let buf = Buffer.create (String.length name) in
  let inside = ref false in
  String.iter
    (fun c ->
      match c with
      | '<' ->
          inside := true;
          Buffer.add_char buf '*'
      | '>' -> inside := false
      | _ when !inside -> ()
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

let rec glob_match pattern s pi si =
  if pi = String.length pattern then si = String.length s
  else
    match pattern.[pi] with
    | '*' ->
        let rec try_from k =
          k <= String.length s && (glob_match pattern s (pi + 1) k || try_from (k + 1))
        in
        try_from (si + 1) (* non-empty match *)
    | c -> si < String.length s && s.[si] = c && glob_match pattern s (pi + 1) (si + 1)

let doc_name_matches doc_name code_name =
  if String.contains doc_name '<' then
    glob_match (glob_of_doc_name doc_name) code_name 0 0
  else String.equal doc_name code_name

let check ~doc_path catalogue (code : Rules.obs_literal list) =
  let findings = ref [] in
  let add ~file ~line message =
    findings :=
      Lint_types.finding ~file ~line ~rule:Lint_types.Obs_catalogue_sync message
      :: !findings
  in
  let code_of kind =
    List.filter (fun (l : Rules.obs_literal) -> l.kind = kind) code
  in
  let code_metrics = code_of Rules.Metric in
  (* cddpd-lint: allow poly-hash — shallow (string, kind) keys *)
  let seen = Hashtbl.create 64 in
  (* code -> doc: every literal must be catalogued *)
  List.iter
    (fun (l : Rules.obs_literal) ->
      if not (Hashtbl.mem seen (l.name, l.kind)) then begin
        Hashtbl.add seen (l.name, l.kind) ();
        let catalogued =
          match l.kind with
          | Rules.Metric -> List.exists (fun (n, _) -> String.equal n l.name) catalogue.metrics
          | Rules.Span ->
              List.exists (fun (n, _) -> doc_name_matches n l.name) catalogue.spans
        in
        if not catalogued then
          add ~file:l.file ~line:l.line
            (Printf.sprintf "obs %s \"%s\" is not catalogued in %s"
               (match l.kind with Rules.Metric -> "metric" | Rules.Span -> "span")
               l.name doc_path)
      end)
    code;
  (* doc -> code, metrics only: every catalogued metric must have an emitter *)
  List.iter
    (fun (name, line) ->
      if
        not
          (List.exists
             (fun (l : Rules.obs_literal) -> String.equal l.name name)
             code_metrics)
      then
        add ~file:doc_path ~line
          (Printf.sprintf
             "catalogued metric \"%s\" has no emitter left in lib/ — stale entry?"
             name))
    catalogue.metrics;
  List.rev !findings
