(** Structural safety classification of [Types.type_expr] values from cmt
    files, backed by a repo-wide table of type declarations harvested from
    the same cmt set.  No typing environment is reconstructed: predefined
    constructors match by path, named types resolve through the table by
    normalized name, and anything unresolved is reported as abstract. *)

type t
(** The declaration table. *)

val create : unit -> t

val register_module : t -> modname:string -> Typedtree.structure -> unit
(** Harvest every type declaration of one module's typedtree, keyed by
    ["<Innermost_module>.<name>"] (e.g. ["Cost_cache.t"], ["Sub.t"]). *)

val strip_mangling : string -> string
(** Strip dune's module-name mangling: ["Cddpd_engine__Cost_cache"] and
    ["Dune__exe__Main"] become ["Cost_cache"] and ["Main"]. *)

val normalize_name : string -> string
(** Last two path components with dune's [Lib__Module] mangling stripped:
    ["Cddpd_engine__Cost_cache.t"] and ["Cddpd_engine.Cost_cache.t"] both
    normalize to ["Cost_cache.t"]. *)

val normalize_path : Path.t -> string

type verdict = Safe | Unsafe of string  (** reason, e.g. ["float"] *)

val hash_key : t -> ?self:string -> Types.type_expr -> verdict
(** May this type be a key of a default-hash [Hashtbl] / an argument of
    [Hashtbl.hash]?  Unsafe on floats, functions, mutable cells, abstract
    or polymorphic types; exact base types and their immutable composites
    are safe. *)

val compare_arg : t -> ?self:string -> Types.type_expr -> verdict
(** May this type flow into polymorphic [compare] / [(=)]?  Unsafe on
    floats (NaN/bit semantics), functions (raises), abstract and
    polymorphic types; mutable-but-concrete structures are safe.
    [self] in all three queries is the module under analysis: bare
    same-unit constructor names resolve as [self.name]. *)

val mutable_parts : t -> ?self:string -> Types.type_expr -> string list
(** Mutable components reachable through this type, for the domain-race
    rule: ref cells, [Hashtbl.t]/[Buffer.t]/[Queue.t]/[Stack.t], mutable
    record fields.  Arrays, [Bytes.t] and [Atomic.t] are deliberately
    excluded (disjoint-index writes and atomics are the sanctioned
    parallel idioms); function types are opaque.  Empty = clean. *)

val is_mutex_type : Types.type_expr -> bool

val render : ?depth:int -> Types.type_expr -> string
(** Compact env-free rendering for finding messages. *)
