(** Rule set, findings, and stable textual ids shared by every lint module. *)

type rule =
  | Poly_hash  (** R1: polymorphic hashing at unsound key types (typed) *)
  | Poly_compare  (** R2: polymorphic compare/(=) at unsound types (typed) *)
  | Domain_unsafe_state  (** R3: toplevel mutable state visible to domains *)
  | Lib_hygiene  (** R4: [Obj.magic] / [exit] / stdout printing inside [lib/] *)
  | Mli_coverage  (** R5: [lib/**/*.ml] without a sibling [.mli] *)
  | Obs_catalogue_sync  (** R6: obs names vs [docs/OBSERVABILITY.md] drift *)
  | Domain_race  (** R7: mutable state reachable from [Parallel] closures *)
  | Determinism  (** R8: Hashtbl iteration order / wall clock / ambient Random *)
  | Parse_error  (** internal: a source file failed to parse; never toggleable *)

val all_rules : rule list
(** The eight user-facing rules, in R1..R8 order ([Parse_error] excluded). *)

val rule_id : rule -> string
(** Stable kebab-case id, e.g. ["poly-hash"] — used in output lines, waiver
    comments and [--rules]/[--disable]. *)

val rule_code : rule -> string
(** Short code, e.g. ["R1"] — accepted as an alias wherever [rule_id] is. *)

val rule_of_string : string -> rule option
(** Parse either a [rule_id] or a [rule_code], case-insensitively. *)

val rule_doc : rule -> string
(** One-line description for [--list-rules]. *)

type origin =
  | Typed  (** exact, cmt-backed analysis — blocking *)
  | Syntactic  (** type-free rules (R3-R6, R8) — blocking *)
  | Fallback  (** syntactic R1/R2 heuristics on a file whose cmt is missing
                  or stale — reported distinctly, advisory (never blocks) *)

val origin_id : origin -> string

type finding = {
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
  waived : bool;  (** a matching waiver comment covers this finding *)
  origin : origin;
}

val finding :
  ?col:int ->
  ?origin:origin ->
  file:string ->
  line:int ->
  rule:rule ->
  string ->
  finding
(** Build an unwaived finding ([origin] defaults to [Syntactic]). *)

val advisory : finding -> bool
(** [Fallback]-origin findings never fail a run. *)

val blocking : finding -> bool
(** Unwaived and not advisory: the findings that drive the exit code. *)

val compare_findings : finding -> finding -> int
(** Order by file, line, column, rule, message — the report order. *)

val to_line : finding -> string
(** Render as [file:line: [rule-id] message]. *)

val to_json : finding -> string
(** Render as a single JSON object (no trailing newline). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal. *)
