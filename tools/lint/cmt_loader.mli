(** Locate and validate the cmt artifacts dune produces under
    [_build/default], so the typed rules analyze exactly the code on
    disk.  A cmt whose stored source digest does not match the current
    source is reported as stale, never used: its lines and types would
    silently describe old code. *)

type loaded = {
  structure : Typedtree.structure;
  modname : string;  (** short module name, dune mangling stripped *)
  cmt_path : string;
}

type status =
  | Loaded of loaded
  | Missing  (** no cmt artifact found in any build root *)
  | Stale of string  (** a cmt exists but its source digest mismatches *)
  | Unreadable of string  (** a cmt exists but could not be loaded *)

val status_reason : status -> string
(** Human-readable explanation for the fallback report. *)

val find :
  root:string -> build_dirs:string list -> path:string -> source:string -> status
(** [find ~root ~build_dirs ~path ~source] searches each
    [root/<build_dir>/<dirname path>/.​*.{objs,eobjs}/byte/] for a cmt
    whose mangled module name matches [path]'s module, and validates it
    against [Digest.string source]. *)

val typecheck : path:string -> string -> (Typedtree.structure, string) result
(** Typecheck a standalone source string in-process against the stdlib
    (test fixtures; requires a compiler installation at runtime). *)

val save_cmt :
  cmt_path:string -> modname:string -> sourcefile:string ->
  Typedtree.structure -> unit
(** Write a cmt for a typechecked structure (test fixtures; the source
    digest is taken from [sourcefile] on disk). *)
