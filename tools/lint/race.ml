(* The interprocedural half of R7.  Each module contributes an extract
   (see {!Typed_rules}): its mutable toplevel roots, the values each of
   its bindings references, and the [Parallel] entry-point call sites
   with their closures' references and captures.  Here we stitch the
   extracts together along value references and answer, per call site:
   which mutable toplevel state can the closure reach?

   Propagation rule: a reference to a *function* value pulls in that
   function's reach (calling it executes its body); a reference to a
   plain value only contributes the value's own root-ness (its
   initializer already ran, on the main domain).  References without a
   summary — stdlib, externals — contribute nothing; mutation of
   captured locals is handled by the capture side of the extract. *)

module L = Lint_types
module StrSet = Set.Make (String)

type root_info = { kind : string; file : string; line : int; guarded : bool }

let qualify ~modname = function
  | Typed_rules.Local name -> modname ^ "." ^ name
  | Typed_rules.Extern name -> name

let solve ~(config : Lint_config.t) (extracts : Typed_rules.extract list) :
    L.finding list =
  ignore config;
  (* Global tables. *)
  let roots : (string, root_info) Hashtbl.t = Hashtbl.create 64 in
  let refs_of : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let is_fn : (string, bool) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (x : Typed_rules.extract) ->
      List.iter
        (fun (r : Typed_rules.root) ->
          Hashtbl.replace roots r.r_name
            {
              kind = r.r_kind;
              file = x.x_path;
              line = r.r_line;
              guarded = r.r_guarded;
            })
        x.x_roots;
      List.iter
        (fun (name, fn, refs) ->
          Hashtbl.replace is_fn name fn;
          Hashtbl.replace refs_of name
            (List.map (qualify ~modname:x.x_module) refs))
        x.x_values)
    extracts;
  (* reach(v) = union over refs r of ({r} if r is a root)
                               ∪ (reach(r) if r is a function).
     Iterate to fixpoint; the value graph is small. *)
  let reach : (string, StrSet.t) Hashtbl.t = Hashtbl.create 256 in
  let get tbl k ~default = Option.value (Hashtbl.find_opt tbl k) ~default in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name refs ->
        let current = get reach name ~default:StrSet.empty in
        let next =
          List.fold_left
            (fun acc r ->
              let acc =
                if Hashtbl.mem roots r then StrSet.add r acc else acc
              in
              if get is_fn r ~default:false then
                StrSet.union acc (get reach r ~default:StrSet.empty)
              else acc)
            current refs
        in
        if not (StrSet.equal next current) then begin
          Hashtbl.replace reach name next;
          changed := true
        end)
      refs_of
  done;
  (* Per call site: resolve the closure's own references the same way. *)
  let findings = ref [] in
  List.iter
    (fun (x : Typed_rules.extract) ->
      List.iter
        (fun (s : Typed_rules.site) ->
          let reached =
            List.fold_left
              (fun acc r ->
                let r = qualify ~modname:x.x_module r in
                let acc =
                  if Hashtbl.mem roots r then StrSet.add r acc else acc
                in
                if get is_fn r ~default:false then
                  StrSet.union acc (get reach r ~default:StrSet.empty)
                else acc)
              StrSet.empty s.s_refs
          in
          StrSet.iter
            (fun root_name ->
              let info = Hashtbl.find roots root_name in
              if not info.guarded then
                findings :=
                  L.finding ~col:s.s_col ~origin:L.Typed ~file:x.x_path
                    ~line:s.s_line ~rule:L.Domain_race
                    (Printf.sprintf
                       "closure passed to %s reaches mutable state %s (%s, \
                        defined in %s) with no Atomic or mutex guard"
                       s.s_entry root_name info.kind info.file)
                  :: !findings)
            reached;
          List.iter
            (fun (c : Typed_rules.capture) ->
              findings :=
                L.finding ~col:s.s_col ~origin:L.Typed ~file:x.x_path
                  ~line:s.s_line ~rule:L.Domain_race
                  (Printf.sprintf
                     "closure passed to %s captures mutable local %s : %s \
                      (%s); confine it to one domain or guard it"
                     s.s_entry c.c_name c.c_type c.c_kind)
                :: !findings)
            s.s_captures)
        x.x_sites)
    extracts;
  List.sort L.compare_findings !findings
