(* Waiver comments.

   A finding is waived by putting

     (* cddpd-lint: allow <rule-id>[, <rule-id>...] — <reason> *)

   on the offending line, or on the line directly above it (for sites
   where the offending line has no room left).  Rule ids are the
   kebab-case names or the R1..R6 codes; the reason is free text after an
   em-dash / double-dash separator.  Waivers are matched textually, so
   they work even in files the parser rejects. *)

type t = { by_line : (int, Lint_types.rule list) Hashtbl.t }

let marker = "cddpd-lint:"

(* The rule list runs from "allow" to the end of the comment or to the
   first reason separator ("—", "--" or a lone "-"). *)
let parse_rules text =
  let stop =
    let candidates =
      List.filter_map
        (fun sep ->
          let rec find i =
            if i + String.length sep > String.length text then None
            else if String.sub text i (String.length sep) = sep then Some i
            else find (i + 1)
          in
          find 0)
        [ "\xe2\x80\x94" (* — *); "--"; "*)" ]
    in
    match candidates with [] -> String.length text | l -> List.fold_left min max_int l
  in
  String.sub text 0 stop
  |> String.split_on_char ','
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun tok ->
         match String.trim tok with "" -> None | tok -> Lint_types.rule_of_string tok)

let scan source =
  (* cddpd-lint: allow poly-hash — int line-number keys, poly-hash is exact on ints *)
  let by_line = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match
        let rec find j =
          if j + String.length marker > String.length line then None
          else if String.sub line j (String.length marker) = marker then Some j
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some j ->
          let rest =
            String.sub line
              (j + String.length marker)
              (String.length line - j - String.length marker)
          in
          let rest = String.trim rest in
          let allow = "allow" in
          if
            String.length rest >= String.length allow
            && String.sub rest 0 (String.length allow) = allow
          then
            let rules =
              parse_rules
                (String.sub rest (String.length allow)
                   (String.length rest - String.length allow))
            in
            if rules <> [] then Hashtbl.replace by_line (i + 1) rules)
    lines;
  { by_line }

let waives_line t ~line ~rule =
  match Hashtbl.find_opt t.by_line line with
  | None -> false
  | Some rules -> List.mem rule rules

let covers t ~line ~rule =
  waives_line t ~line ~rule || waives_line t ~line:(line - 1) ~rule

let anywhere t ~rule =
  Hashtbl.fold (fun _ rules acc -> acc || List.mem rule rules) t.by_line false

let apply t findings =
  List.map
    (fun (f : Lint_types.finding) ->
      let waived =
        match f.rule with
        | Lint_types.Mli_coverage -> anywhere t ~rule:f.rule
        | rule -> covers t ~line:f.line ~rule
      in
      if waived then { f with waived = true } else f)
    findings
