(* cddpd_lint — static analysis for the cddpd tree.

   Exit codes: 0 clean (no blocking findings, ratchet satisfied),
   1 findings or ratchet growth, 2 usage or internal error.  See
   docs/LINTING.md for the rule catalogue and the baseline workflow. *)

module L = Cddpd_lint_core.Lint_types
module Config = Cddpd_lint_core.Lint_config
module Driver = Cddpd_lint_core.Driver
module Baseline = Cddpd_lint_core.Baseline

let usage = "cddpd_lint [--root DIR] [--format text|json] [options]"

let parse_rule_list ~flag s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun tok ->
         match String.trim tok with
         | "" -> None
         | tok -> (
             match L.rule_of_string tok with
             | Some r -> Some r
             | None ->
                 Printf.eprintf "cddpd_lint: unknown rule %S in %s\n" tok flag;
                 exit 2))

let () =
  let root = ref "." in
  let format = ref `Text in
  let out = ref None in
  let only = ref None in
  let disabled = ref [] in
  let show_waived = ref false in
  let list_rules = ref false in
  let no_typed = ref false in
  let baseline_file = ref None in
  let write_baseline = ref None in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR lint the tree rooted at DIR (default .)");
      ( "--format",
        Arg.Symbol
          ([ "text"; "json" ],
           fun s -> format := if s = "json" then `Json else `Text),
        " output format (default text)" );
      ("-o", Arg.String (fun f -> out := Some f), "FILE write the report to FILE");
      ( "--rules",
        Arg.String (fun s -> only := Some (parse_rule_list ~flag:"--rules" s)),
        "LIST run only these rules (comma-separated ids or R-codes)" );
      ( "--disable",
        Arg.String
          (fun s -> disabled := !disabled @ parse_rule_list ~flag:"--disable" s),
        "LIST turn these rules off" );
      ( "--no-typed",
        Arg.Set no_typed,
        " skip cmt loading; syntactic R1/R2 become blocking again" );
      ( "--baseline",
        Arg.String (fun f -> baseline_file := Some f),
        "FILE enforce the waived-finding ratchet against FILE" );
      ( "--write-baseline",
        Arg.String (fun f -> write_baseline := Some f),
        "FILE regenerate FILE from the current waived findings" );
      ("--show-waived", Arg.Set show_waived, " include waived findings in text output");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  (try Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage
   with Arg.Bad msg ->
     prerr_endline msg;
     exit 2);
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-4s %-22s %s\n" (L.rule_code r) (L.rule_id r) (L.rule_doc r))
      L.all_rules;
    exit 0
  end;
  let config =
    let c = Config.default in
    let c = match !only with Some rules -> Config.restrict c rules | None -> c in
    let c = Config.disable c !disabled in
    if !no_typed then { c with Config.typed = false } else c
  in
  match Driver.run ~config ~root:!root () with
  | exception e ->
      Printf.eprintf "cddpd_lint: internal error: %s\n" (Printexc.to_string e);
      exit 2
  | report -> (
      let rendered =
        match !format with
        | `Json -> Driver.render_json report
        | `Text -> Driver.render_text ~show_waived:!show_waived report
      in
      (match !out with
      | None -> print_string rendered
      | Some file -> Out_channel.with_open_text file (fun oc -> output_string oc rendered));
      let current = Baseline.of_findings report.Driver.findings in
      (match !write_baseline with
      | None -> ()
      | Some file ->
          Out_channel.with_open_text file (fun oc ->
              output_string oc (Baseline.render current));
          Printf.eprintf "cddpd_lint: wrote %d waived entr%s to %s\n"
            (List.length current)
            (if List.length current = 1 then "y" else "ies")
            file);
      let ratchet_failed =
        match !baseline_file with
        | None -> false
        | Some file -> (
            match Baseline.load file with
            | Error msg ->
                Printf.eprintf
                  "cddpd_lint: cannot read baseline %s: %s\n\
                   (regenerate with --write-baseline %s)\n"
                  file msg file;
                true
            | Ok baseline ->
                let d = Baseline.diff ~baseline ~current in
                prerr_string (Baseline.render_diff d);
                d.Baseline.grown <> [])
      in
      match (Driver.blocking report, ratchet_failed) with
      | [], false -> exit 0
      | _ -> exit 1)
