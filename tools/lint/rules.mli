(** The per-file AST pass: rules R1 (poly-hash), R2 (poly-compare),
    R3 (domain-unsafe-state), R4 (lib-hygiene) and R8 (determinism),
    plus collection of the Obs name literals that R6 checks against the
    catalogue.

    Purely syntactic: sources are parsed with compiler-libs
    ([Parse.implementation]) and walked with [Ast_iterator]; nothing is
    typechecked here.  R1/R2 have an exact typed counterpart in
    {!Typed_rules}; the [poly] mode selects how their syntactic
    heuristics run on a given file.  Files that fail to parse yield a
    single [Parse_error] finding instead of crashing the run. *)

type poly_mode =
  [ `Blocking  (** typed engine off: legacy heuristics, blocking *)
  | `Fallback  (** cmt missing/stale: same heuristics, advisory only *)
  | `Off  (** typed pass covered this file exactly; skip heuristics *) ]

type obs_kind = Metric | Span

type obs_literal = { kind : obs_kind; name : string; file : string; line : int }

type t = {
  findings : Lint_types.finding list;
      (** waiver-annotated, in source order *)
  obs : obs_literal list;
      (** string literals passed to [Registry.counter]/[Registry.histogram]
          and [Span.with_span], for files under the R6 scope *)
  obs_dynamic : int;
      (** Obs constructor calls whose name argument is not a string
          literal — R6 cannot check these (e.g. ["optimizer." ^ method]) *)
}

val check_source :
  config:Lint_config.t ->
  r3_dirs:string list ->
  ?poly:poly_mode ->
  path:string ->
  string ->
  t
(** Lint one implementation file.  [path] is root-relative and decides
    which rules apply; [r3_dirs] is the resolved R3 scope (see
    {!Dune_scan.domain_state_dirs}).  Waivers in the source are applied
    before returning. *)
