(** Lint orchestration: walk the tree, run every enabled rule, render
    the report.  The run is clean iff {!unwaived} is empty — the
    executable turns that into the exit code. *)

type report = {
  root : string;
  config : Lint_config.t;
  findings : Lint_types.finding list;  (** sorted; waived ones included *)
  files_scanned : int;
  obs_dynamic : int;
      (** Obs constructor calls with non-literal names, uncheckable by R6 *)
  r3_dirs : string list;  (** resolved domain-unsafe-state scope *)
  warnings : string list;  (** configuration problems, e.g. unreadable files *)
}

val run : ?config:Lint_config.t -> root:string -> unit -> report
(** Lint the tree rooted at [root] (the repository checkout). *)

val unwaived : report -> Lint_types.finding list
(** The blocking findings. *)

val waived : report -> Lint_types.finding list

val render_text : ?show_waived:bool -> report -> string
(** One [file:line: [rule-id] message] line per blocking finding (all
    findings with [show_waived]), then a summary line. *)

val render_json : report -> string
(** The machine-readable report (schema ["cddpd-lint/1"]) CI archives. *)
