(** Lint orchestration: walk the tree, load each file's cmt, run the
    typed pass (exact R1/R2, the R7 extract) and the syntactic rules,
    solve the interprocedural race analysis, render the report.

    Files whose cmt is missing or stale are analyzed with the syntactic
    R1/R2 heuristics as *advisory* findings — reported but never
    blocking.  The run is clean iff {!blocking} is empty — the
    executable turns that into the exit code. *)

type report = {
  root : string;
  config : Lint_config.t;
  findings : Lint_types.finding list;  (** sorted; waived ones included *)
  files_scanned : int;
  typed_files : int;  (** files analyzed from a fresh cmt *)
  fallbacks : (string * string) list;
      (** (path, reason) for files whose cmt was missing/stale/unreadable *)
  obs_dynamic : int;
      (** Obs constructor calls with non-literal names, uncheckable by R6 *)
  r3_dirs : string list;  (** resolved domain-unsafe-state scope *)
  warnings : string list;  (** configuration problems, e.g. unreadable files *)
}

val run : ?config:Lint_config.t -> root:string -> unit -> report
(** Lint the tree rooted at [root] (the repository checkout). *)

val unwaived : report -> Lint_types.finding list
(** Findings without a waiver, advisory ones included. *)

val waived : report -> Lint_types.finding list

val blocking : report -> Lint_types.finding list
(** Unwaived, non-advisory findings — these fail the run. *)

val advisory : report -> Lint_types.finding list
(** Unwaived fallback findings — reported, never fail the run. *)

val render_text : ?show_waived:bool -> report -> string
(** One [file:line: [rule-id] message] line per unwaived finding (all
    findings with [show_waived]), then a summary line. *)

val render_json : report -> string
(** The machine-readable report (schema ["cddpd-lint/2"]) CI archives. *)
