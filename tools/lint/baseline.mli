(** The finding-count ratchet.  A committed [lint-baseline.json] records
    waived findings as (file, rule, message) keys with counts; a run
    whose waived set *grows* past the baseline fails, one that shrinks
    only reminds to regenerate.  Unwaived blocking findings never enter
    the baseline — they fail the run directly. *)

type entry = { file : string; rule : string; message : string; count : int }

val of_findings : Lint_types.finding list -> entry list
(** Waived findings only, aggregated by (file, rule, message), sorted. *)

val schema : string

val render : entry list -> string
(** Stable JSON, sorted by key; safe to commit. *)

val parse : string -> (entry list, string) result
(** Reads only the JSON {!render} produces. *)

val load : string -> (entry list, string) result

type diff = {
  grown : entry list;  (** present now, absent or smaller in the baseline *)
  shrunk : entry list;  (** in the baseline, absent or smaller now *)
}

val diff : baseline:entry list -> current:entry list -> diff

val clean : diff -> bool

val render_diff : diff -> string
