(** Interprocedural R7 solve: stitch per-module {!Typed_rules.extract}s
    along value references, propagate mutable-root reachability to each
    [Parallel] entry-point call site, and emit domain-race findings for
    unguarded reached roots and mutable captures. *)

val solve :
  config:Lint_config.t ->
  Typed_rules.extract list ->
  Lint_types.finding list
