(* Locating and validating the cmt artifacts dune leaves under
   [_build/default]: for a source [lib/engine/cost_cache.ml] compiled
   into library [cddpd_engine], the typed tree lives at

     _build/default/lib/engine/.cddpd_engine.objs/byte/
       cddpd_engine__Cost_cache.cmt

   (executables use [.<name>.eobjs/byte/dune__exe__<Module>.cmt]).  The
   loader scans the source file's directory for [.​*.objs]/[.​*.eobjs]
   trees in each candidate build root, matches the cmt whose mangled
   module name ends in the source's module name, and validates it
   against the source's digest — a stale cmt is worse than none, because
   line numbers and types would silently describe old code. *)

type loaded = {
  structure : Typedtree.structure;
  modname : string;  (** short module name, mangling stripped *)
  cmt_path : string;
}

type status =
  | Loaded of loaded
  | Missing  (** no cmt found in any build root *)
  | Stale of string  (** cmt found, but its source digest mismatches *)
  | Unreadable of string  (** cmt exists but could not be loaded *)

let status_reason = function
  | Loaded _ -> "loaded"
  | Missing -> "no cmt artifact (build first: dune build)"
  | Stale p -> Printf.sprintf "stale cmt %s (rebuild: dune build)" p
  | Unreadable m -> Printf.sprintf "unreadable cmt: %s" m

let short_modname = Type_safety.strip_mangling

(* The module a cmt file name describes: basename minus extension, with
   every [lib__] mangling prefix stripped, lowercased for comparison. *)
let cmt_module_of_filename file =
  let base = Filename.remove_extension (Filename.basename file) in
  String.lowercase_ascii (short_modname base)

let readdir_sorted dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let l = Array.to_list entries in
      List.sort String.compare l

(* All candidate cmt paths for [module_name] under [dir]'s dune object
   trees, in deterministic order. *)
let candidate_cmts ~dir ~module_name =
  readdir_sorted dir
  |> List.concat_map (fun entry ->
         if
           String.length entry > 1
           && entry.[0] = '.'
           && (Filename.check_suffix entry ".objs"
              || Filename.check_suffix entry ".eobjs")
         then
           let byte = Filename.concat (Filename.concat dir entry) "byte" in
           readdir_sorted byte
           |> List.filter_map (fun f ->
                  if
                    Filename.check_suffix f ".cmt"
                    && cmt_module_of_filename f
                       = String.lowercase_ascii module_name
                  then Some (Filename.concat byte f)
                  else None)
         else [])

let find ~root ~build_dirs ~path ~source =
  let dir_rel = Filename.dirname path in
  let module_name = Filename.remove_extension (Filename.basename path) in
  let candidates =
    List.concat_map
      (fun build_dir ->
        let dir =
          if build_dir = "." then Filename.concat root dir_rel
          else Filename.concat (Filename.concat root build_dir) dir_rel
        in
        candidate_cmts ~dir ~module_name)
      build_dirs
  in
  match candidates with
  | [] -> Missing
  | _ ->
      let source_digest = Digest.string source in
      let rec try_all last_status = function
        | [] -> last_status
        | cmt_path :: rest -> (
            match Cmt_format.read_cmt cmt_path with
            | exception e ->
                try_all (Unreadable (Printexc.to_string e)) rest
            | info -> (
                match info.Cmt_format.cmt_annots with
                | Cmt_format.Implementation structure ->
                    let fresh =
                      match info.Cmt_format.cmt_source_digest with
                      | Some d -> Digest.equal d source_digest
                      | None -> false
                    in
                    if fresh then
                      Loaded
                        {
                          structure;
                          modname = short_modname info.Cmt_format.cmt_modname;
                          cmt_path;
                        }
                    else try_all (Stale cmt_path) rest
                | _ -> try_all (Unreadable "not an implementation cmt") rest))
      in
      try_all Missing candidates

(* -- in-process typechecking (tests, fixtures) ------------------------------ *)

let typecheck_initialized = ref false

let typecheck ~path source =
  if not !typecheck_initialized then begin
    Compmisc.init_path ();
    (* Fixtures routinely bind unused names; keep the typechecker quiet. *)
    ignore (Warnings.parse_options false "-a");
    typecheck_initialized := true
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception e -> Error ("parse error: " ^ Printexc.to_string e)
  | parsed -> (
      match Typemod.type_structure env parsed with
      | exception e -> (
          match Location.error_of_exn e with
          | Some (`Ok report) ->
              Error
                (Format.asprintf "type error: %t"
                   report.Location.main.Location.txt)
          | _ -> Error ("type error: " ^ Printexc.to_string e))
      | str, _, _, _, _ -> Ok str)

let save_cmt ~cmt_path ~modname ~sourcefile structure =
  let dir = Filename.dirname cmt_path in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir;
  let saved = !Clflags.binary_annotations in
  Clflags.binary_annotations := true;
  Fun.protect
    ~finally:(fun () -> Clflags.binary_annotations := saved)
    (fun () ->
      Cmt_format.save_cmt cmt_path modname
        (Cmt_format.Implementation structure)
        (Some sourcefile) (Compmisc.initial_env ()) None None)
