(** R6 (obs-catalogue-sync): cross-check Obs name literals against the
    catalogue in [docs/OBSERVABILITY.md].

    Metrics are checked in both directions — every
    [Registry.counter]/[Registry.histogram] literal under [lib/] must
    appear as a table row in the "Metric catalogue" section, and every
    table row must still have an emitter.  Spans are checked
    code->doc only: the "Span naming convention" section may name
    dynamic families like [optimizer.<method>], whose [<...>] segments
    match as wildcards. *)

type catalogue = {
  metrics : (string * int) list;  (** catalogued metric name, 1-based doc line *)
  spans : (string * int) list;  (** catalogued span name (may contain [<...>]) *)
}

val parse_doc : string -> catalogue
(** Extract the catalogue from the markdown text of OBSERVABILITY.md. *)

val doc_name_matches : string -> string -> bool
(** [doc_name_matches doc code]: literal equality, with [<...>] in the
    doc name matching any non-empty run of name characters. *)

val check :
  doc_path:string -> catalogue -> Rules.obs_literal list -> Lint_types.finding list
(** Produce the drift findings.  Code-side findings carry the emitting
    file/line (waivable there); doc-side findings point at the stale
    catalogue row. *)
