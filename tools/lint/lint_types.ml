(* Core vocabulary of the linter: the rule set, findings, and the
   stable textual ids used in output, waiver comments and CLI flags. *)

type rule =
  | Poly_hash
  | Poly_compare
  | Domain_unsafe_state
  | Lib_hygiene
  | Mli_coverage
  | Obs_catalogue_sync
  | Parse_error

let all_rules =
  [
    Poly_hash;
    Poly_compare;
    Domain_unsafe_state;
    Lib_hygiene;
    Mli_coverage;
    Obs_catalogue_sync;
  ]

let rule_id = function
  | Poly_hash -> "poly-hash"
  | Poly_compare -> "poly-compare"
  | Domain_unsafe_state -> "domain-unsafe-state"
  | Lib_hygiene -> "lib-hygiene"
  | Mli_coverage -> "mli-coverage"
  | Obs_catalogue_sync -> "obs-catalogue-sync"
  | Parse_error -> "parse-error"

let rule_code = function
  | Poly_hash -> "R1"
  | Poly_compare -> "R2"
  | Domain_unsafe_state -> "R3"
  | Lib_hygiene -> "R4"
  | Mli_coverage -> "R5"
  | Obs_catalogue_sync -> "R6"
  | Parse_error -> "R0"

let rule_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun r -> rule_id r = s || String.lowercase_ascii (rule_code r) = s) all_rules

let rule_doc = function
  | Poly_hash ->
      "Hashtbl.hash / default-hash Hashtbl.create outside whitelisted modules"
  | Poly_compare ->
      "bare polymorphic compare/(=) on float-carrying hot-path code"
  | Domain_unsafe_state ->
      "unsynchronized module-toplevel mutable state in Parallel-linked libraries"
  | Lib_hygiene -> "Obj.magic / exit / stdout printing inside lib/"
  | Mli_coverage -> "every lib/**/*.ml must have a sibling .mli"
  | Obs_catalogue_sync ->
      "obs metric/span literals must match docs/OBSERVABILITY.md, both ways"
  | Parse_error -> "source file failed to parse (not toggleable)"

type finding = {
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
  waived : bool;
}

let finding ?(col = 0) ~file ~line ~rule message =
  { file; line; col; rule; message; waived = false }

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let to_line f =
  Printf.sprintf "%s:%d: [%s] %s%s" f.file f.line (rule_id f.rule) f.message
    (if f.waived then " (waived)" else "")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s","waived":%b}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (json_escape f.message)
    f.waived
