(* Core vocabulary of the linter: the rule set, findings, and the
   stable textual ids used in output, waiver comments and CLI flags. *)

type rule =
  | Poly_hash
  | Poly_compare
  | Domain_unsafe_state
  | Lib_hygiene
  | Mli_coverage
  | Obs_catalogue_sync
  | Domain_race
  | Determinism
  | Parse_error

let all_rules =
  [
    Poly_hash;
    Poly_compare;
    Domain_unsafe_state;
    Lib_hygiene;
    Mli_coverage;
    Obs_catalogue_sync;
    Domain_race;
    Determinism;
  ]

let rule_id = function
  | Poly_hash -> "poly-hash"
  | Poly_compare -> "poly-compare"
  | Domain_unsafe_state -> "domain-unsafe-state"
  | Lib_hygiene -> "lib-hygiene"
  | Mli_coverage -> "mli-coverage"
  | Obs_catalogue_sync -> "obs-catalogue-sync"
  | Domain_race -> "domain-race"
  | Determinism -> "determinism"
  | Parse_error -> "parse-error"

let rule_code = function
  | Poly_hash -> "R1"
  | Poly_compare -> "R2"
  | Domain_unsafe_state -> "R3"
  | Lib_hygiene -> "R4"
  | Mli_coverage -> "R5"
  | Obs_catalogue_sync -> "R6"
  | Domain_race -> "R7"
  | Determinism -> "R8"
  | Parse_error -> "R0"

let rule_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun r -> rule_id r = s || String.lowercase_ascii (rule_code r) = s) all_rules

let rule_doc = function
  | Poly_hash ->
      "Hashtbl.hash / default Hashtbl.create at key types containing floats, \
       functions or abstract types (typed); whitelist heuristic as fallback"
  | Poly_compare ->
      "polymorphic compare/(=) instantiated at float-, function- or \
       abstract-carrying types (typed); float-evidence heuristic as fallback"
  | Domain_unsafe_state ->
      "unsynchronized module-toplevel mutable state in Parallel-linked libraries"
  | Lib_hygiene -> "Obj.magic / exit / stdout printing inside lib/"
  | Mli_coverage -> "every lib/**/*.ml must have a sibling .mli"
  | Obs_catalogue_sync ->
      "obs metric/span literals must match docs/OBSERVABILITY.md, both ways"
  | Domain_race ->
      "closures passed into Parallel entry points reaching (or capturing) \
       unguarded mutable state (interprocedural, typed)"
  | Determinism ->
      "result-order dependence on Hashtbl iteration; wall-clock/Random use \
       outside lib/util/rng.ml in result-affecting paths"
  | Parse_error -> "source file failed to parse (not toggleable)"

(* Where a finding came from.  [Typed] findings are exact (cmt-backed) and
   blocking; [Syntactic] findings come from rules that never needed types
   (R3-R6, R8) and are blocking; [Fallback] findings are the syntactic
   R1/R2 heuristics running on a file whose cmt was missing or stale —
   reported distinctly and advisory (never fail the run), because the
   typed rules are the source of truth and re-audited waivers only cover
   the typed engine's findings. *)
type origin = Typed | Syntactic | Fallback

let origin_id = function
  | Typed -> "typed"
  | Syntactic -> "syntactic"
  | Fallback -> "fallback"

type finding = {
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
  waived : bool;
  origin : origin;
}

let finding ?(col = 0) ?(origin = Syntactic) ~file ~line ~rule message =
  { file; line; col; rule; message; waived = false; origin }

let advisory f = f.origin = Fallback

let blocking f = (not f.waived) && not (advisory f)

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let to_line f =
  Printf.sprintf "%s:%d: [%s]%s %s%s" f.file f.line (rule_id f.rule)
    (if advisory f then " (fallback, advisory)" else "")
    f.message
    (if f.waived then " (waived)" else "")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","origin":"%s","message":"%s","waived":%b,"advisory":%b}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (origin_id f.origin)
    (json_escape f.message) f.waived (advisory f)
