(* cddpd — constrained dynamic physical database design, command line tool.

   Subcommands:
     generate    write a workload trace (one SQL statement per line)
     recommend   recommend a (constrained) dynamic physical design for a trace
     simulate    replay a trace under the recommended design and report I/O
     experiment  reproduce a table/figure of the paper
     serve       online continuous advisor over a statement stream (docs/SERVE.md)

   Every subcommand also accepts --metrics (print a snapshot of all
   observability counters/histograms after the run) and --trace (print the
   hierarchical trace-span tree); see docs/OBSERVABILITY.md.  Subcommands
   that build cost matrices additionally accept --jobs (domains used by
   Problem.build) and --no-cost-cache (disable what-if memoization); see
   docs/PERFORMANCE.md. *)

module Setup = Cddpd_experiments.Setup
module Session = Cddpd_experiments.Session
module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Trace = Cddpd_workload.Trace
module Spec = Cddpd_workload.Spec
module Workloads = Cddpd_workload.Workloads
module Advisor = Cddpd_core.Advisor
module Server = Cddpd_serve.Server
module Guard = Cddpd_serve.Guard
module Solution = Cddpd_core.Solution
module Problem = Cddpd_core.Problem
module Simulator = Cddpd_core.Simulator
module Text_table = Cddpd_util.Text_table
module Obs = Cddpd_obs

open Cmdliner

(* -- observability --------------------------------------------------------- *)

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable instrumentation and print a metrics snapshot (counter \
                 and histogram table) after the run.")

let trace_spans_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Enable instrumentation and print the hierarchical trace-span \
                 tree (wall-time per phase) after the run.")

(* Run [f] with instrumentation on when requested, then print the selected
   reports.  Reports go to stdout after the command's own output. *)
let with_obs ~metrics ~trace f =
  if metrics || trace then Obs.Registry.enable ();
  let code = f () in
  if metrics then begin
    print_newline ();
    print_string (Obs.Sink.render Obs.Sink.Table (Obs.Snapshot.capture ()))
  end;
  if trace then begin
    print_newline ();
    print_string (Obs.Span.render ())
  end;
  code

(* -- performance knobs ----------------------------------------------------- *)

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains used to build cost matrices (default: \
                 \\$(b,CDDPD_JOBS) if set, else the CPU count).")

let no_cost_cache_arg =
  Arg.(value & flag
       & info [ "no-cost-cache" ]
           ~doc:"Disable memoization of what-if cost-model calls.")

let cell_jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "cell-jobs" ] ~docv:"N"
           ~doc:"Domains used to run independent experiment cells \
                 (distinct from $(b,--jobs), which parallelizes cost-matrix \
                 construction; default: \\$(b,CDDPD_JOBS) if set, else the \
                 CPU count).  Results are identical at any value.")

let apply_cell_jobs cell_jobs =
  match cell_jobs with
  | Some j when j >= 1 -> Cddpd_experiments.Runner.set_default_cell_jobs j
  | Some _ ->
      prerr_endline "cddpd: --cell-jobs must be at least 1";
      exit 2
  | None -> ()

(* The knobs are process-global defaults, so they reach every
   Problem.build — including the ones experiments run internally. *)
let apply_perf_knobs jobs no_cost_cache =
  (match jobs with
  | Some j when j >= 1 -> Cddpd_util.Parallel.set_default_jobs j
  | Some _ ->
      prerr_endline "cddpd: --jobs must be at least 1";
      exit 2
  | None -> ());
  if no_cost_cache then Cddpd_engine.Cost_cache.set_default_enabled false

(* -- shared arguments ---------------------------------------------------- *)

let rows_arg =
  Arg.(value & opt int Setup.default_config.Setup.rows
       & info [ "rows" ] ~docv:"N" ~doc:"Synthetic table cardinality.")

let value_range_arg =
  Arg.(value & opt int Setup.default_config.Setup.value_range
       & info [ "value-range" ] ~docv:"N" ~doc:"Column value domain $(docv).")

let seed_arg =
  Arg.(value & opt int Setup.default_config.Setup.seed
       & info [ "seed" ] ~docv:"N" ~doc:"Master random seed.")

let scale_arg =
  Arg.(value & opt float 1.0
       & info [ "scale" ] ~docv:"F" ~doc:"Workload segment-length multiplier.")

let readahead_arg =
  Arg.(value & opt int Setup.default_config.Setup.readahead
       & info [ "readahead" ] ~docv:"N"
           ~doc:"Buffer-pool sequential prefetch budget in pages (0 disables \
                 readahead; logical I/O is unaffected either way, see \
                 docs/PERFORMANCE.md).")

let config_of ?readahead rows value_range seed scale =
  let readahead =
    match readahead with
    | Some r -> r
    | None -> Setup.default_config.Setup.readahead
  in
  { Setup.default_config with Setup.rows; value_range; seed; scale; readahead }

let method_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "unconstrained" -> Ok Solution.Unconstrained
    | "kaware" | "k-aware" | "optimal" -> Ok Solution.Kaware
    | "greedy" | "greedy-seq" -> Ok Solution.Greedy_seq
    | "merging" -> Ok Solution.Merging
    | "ranking" -> Ok Solution.Ranking
    | "hybrid" -> Ok Solution.Hybrid
    | s -> Error (`Msg (Printf.sprintf "unknown method %s" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Solution.method_to_string m))

let method_arg =
  Arg.(value & opt method_conv Solution.Kaware
       & info [ "method" ] ~docv:"METHOD"
           ~doc:"Solver: unconstrained, kaware, greedy-seq, merging, ranking, hybrid.")

let k_arg =
  Arg.(value & opt (some int) None
       & info [ "k" ] ~docv:"K" ~doc:"Change budget (omit for unconstrained).")

let max_paths_arg =
  Arg.(value & opt (some int) None
       & info [ "max-paths" ] ~docv:"N"
           ~doc:"Ranking method: give up after examining $(docv) complete \
                 paths (default 1000000).")

let max_queue_arg =
  Arg.(value & opt (some int) None
       & info [ "max-queue" ] ~docv:"N"
           ~doc:"Ranking method: give up when the search frontier exceeds \
                 $(docv) partial paths (default unbounded).")

let segment_arg =
  Arg.(value & opt int 500
       & info [ "segment" ] ~docv:"N" ~doc:"Statements per optimizer step.")

let candidates_arg =
  Arg.(value & opt (some int) None
       & info [ "candidates" ] ~docv:"N"
           ~doc:"Cap auto-derived candidate structures at $(docv) and use \
                 the multi-column generator instead of the paper's pairs \
                 heuristic.")

let composite_width_arg =
  Arg.(value & opt (some int) None
       & info [ "composite-width" ] ~docv:"W"
           ~doc:"Widest composite index the multi-column candidate \
                 generator derives (implies the generator; its default \
                 width is 3).")

let prune_arg =
  Arg.(value & opt (some int) None
       & info [ "prune" ] ~docv:"N"
           ~doc:"What-if-score candidates against the compressed workload, \
                 drop benefit-dominated ones, keep at most $(docv), and \
                 build a pruned configuration space (default 512 configs; \
                 see docs/PERFORMANCE.md).")

let compress_workload_arg =
  Arg.(value & flag
       & info [ "compress-workload" ]
           ~doc:"Cluster statements by cost identity when building the \
                 EXEC matrix (bit-identical result, fewer what-if calls).")

(* -- generate -------------------------------------------------------------- *)

let generate workload scale seed value_range output metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let spec = Workloads.by_name workload ~scale () in
  let statements =
    Spec.generate_flat spec ~table:Setup.table_name ~value_range ~seed:(seed + 1)
  in
  Trace.save output statements;
  Printf.printf "wrote %d statements (%s, %d segments) to %s\n"
    (Array.length statements) workload (Spec.n_segments spec) output;
  0

let generate_cmd =
  let workload =
    Arg.(value & opt string "W1"
         & info [ "workload" ] ~docv:"NAME" ~doc:"W1, W2 or W3 (Table 2).")
  in
  let output =
    Arg.(value & opt string "trace.sql"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a workload trace from the paper's specifications.")
    Term.(const generate $ workload $ scale_arg $ seed_arg $ value_range_arg $ output
          $ metrics_arg $ trace_spans_arg)

(* -- recommend / simulate --------------------------------------------------- *)

let load_trace path =
  match Trace.load path with
  | Ok statements -> statements
  | Error message ->
      prerr_endline ("cddpd: cannot load trace: " ^ message);
      exit 1

let with_recommendation trace_path segment k method_name rows value_range seed
    readahead ~max_paths ~max_queue ~max_candidates ~composite_width ~prune
    ~compress_workload f =
  let statements = load_trace trace_path in
  let steps = Trace.segment statements ~size:segment in
  let config = config_of ~readahead rows value_range seed 1.0 in
  let db = Setup.make_database config in
  let request =
    { (Advisor.default_request ~steps ~table:Setup.table_name) with
      Advisor.k; method_name; max_paths; max_queue; max_candidates;
      composite_width; prune; compress_workload }
  in
  match Advisor.recommend db request with
  | Ok recommendation -> f db steps recommendation
  | Error Cddpd_core.Optimizer.Infeasible ->
      prerr_endline "cddpd: infeasible change budget";
      1
  | Error (Cddpd_core.Optimizer.Ranking_gave_up g) ->
      Printf.eprintf "cddpd: ranking gave up after %d paths (%s; frontier peak %d)\n"
        g.Cddpd_graph.Ranking.examined
        (Cddpd_graph.Ranking.reason_to_string g.Cddpd_graph.Ranking.reason)
        g.Cddpd_graph.Ranking.queue_peak;
      1

let print_schedule steps recommendation segment =
  let table =
    Text_table.create
      [
        ("statements", Text_table.Left);
        ("design", Text_table.Left);
      ]
  in
  let runs = Solution.runs recommendation.Advisor.problem recommendation.Advisor.solution in
  List.iter
    (fun (start, len, design) ->
      let first = (start * segment) + 1 in
      let last = min (Array.length steps * segment) ((start + len) * segment) in
      Text_table.add_row table [ Printf.sprintf "%d-%d" first last; Design.name design ])
    runs;
  Text_table.print table;
  Format.printf "%a@." Solution.pp recommendation.Advisor.solution

let recommend input segment k method_name rows value_range seed readahead jobs
    no_cost_cache max_paths max_queue max_candidates composite_width prune
    compress_workload metrics trace =
  apply_perf_knobs jobs no_cost_cache;
  with_obs ~metrics ~trace @@ fun () ->
  with_recommendation input segment k method_name rows value_range seed readahead
    ~max_paths ~max_queue ~max_candidates ~composite_width ~prune
    ~compress_workload (fun _db steps recommendation ->
      print_schedule steps recommendation segment;
      0)

(* Named --input (not --trace, which enables trace spans). *)
let input_arg =
  Arg.(required & opt (some file) None
       & info [ "i"; "input" ] ~docv:"FILE"
           ~doc:"Workload trace file (one SQL statement per line).")

let recommend_cmd =
  Cmd.v
    (Cmd.info "recommend"
       ~doc:"Recommend a change-constrained dynamic physical design for a trace.")
    Term.(const recommend $ input_arg $ segment_arg $ k_arg $ method_arg $ rows_arg
          $ value_range_arg $ seed_arg $ readahead_arg $ jobs_arg
          $ no_cost_cache_arg $ max_paths_arg $ max_queue_arg $ candidates_arg
          $ composite_width_arg $ prune_arg $ compress_workload_arg
          $ metrics_arg $ trace_spans_arg)

let simulate input segment k method_name rows value_range seed readahead jobs
    no_cost_cache max_paths max_queue max_candidates composite_width prune
    compress_workload metrics trace =
  apply_perf_knobs jobs no_cost_cache;
  with_obs ~metrics ~trace @@ fun () ->
  with_recommendation input segment k method_name rows value_range seed readahead
    ~max_paths ~max_queue ~max_candidates ~composite_width ~prune
    ~compress_workload (fun db steps recommendation ->
      print_schedule steps recommendation segment;
      let report = Simulator.run db ~steps ~schedule:recommendation.Advisor.schedule in
      Printf.printf
        "replay: %d page accesses (%d execution + %d transitions), %d rows returned\n"
        report.Simulator.total_logical_io report.Simulator.exec_logical_io
        report.Simulator.trans_logical_io report.Simulator.rows_returned;
      0)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Recommend a design for a trace, then replay the trace under it.")
    Term.(const simulate $ input_arg $ segment_arg $ k_arg $ method_arg $ rows_arg
          $ value_range_arg $ seed_arg $ readahead_arg $ jobs_arg
          $ no_cost_cache_arg $ max_paths_arg $ max_queue_arg $ candidates_arg
          $ composite_width_arg $ prune_arg $ compress_workload_arg
          $ metrics_arg $ trace_spans_arg)

(* -- experiment -------------------------------------------------------------- *)

let experiment name rows value_range seed scale readahead jobs cell_jobs
    no_cost_cache metrics trace =
  apply_perf_knobs jobs no_cost_cache;
  apply_cell_jobs cell_jobs;
  with_obs ~metrics ~trace @@ fun () ->
  let config = config_of ~readahead rows value_range seed scale in
  let session = lazy (Session.create config) in
  match String.lowercase_ascii name with
  | "table1" ->
      Cddpd_experiments.Table1.print (Cddpd_experiments.Table1.run ());
      0
  | "table2" ->
      Cddpd_experiments.Table2.print
        (Cddpd_experiments.Table2.run_cells (Lazy.force session));
      0
  | "figure3" ->
      Cddpd_experiments.Figure3.print
        (Cddpd_experiments.Figure3.run_cells (Lazy.force session));
      0
  | "figure4" ->
      Cddpd_experiments.Figure4.print
        (Cddpd_experiments.Figure4.run_cells (Lazy.force session));
      0
  | "ablation" ->
      Cddpd_experiments.Ablation.print
        (Cddpd_experiments.Ablation.run_cells (Lazy.force session));
      0
  | "updates" ->
      Cddpd_experiments.Updates.print
        (Cddpd_experiments.Updates.run_cells (Lazy.force session));
      0
  | "views" ->
      Cddpd_experiments.Views.print (Cddpd_experiments.Views.run (Lazy.force session));
      0
  | "space" ->
      Cddpd_experiments.Space_bound.print
        (Cddpd_experiments.Space_bound.run_cells (Lazy.force session));
      0
  | other ->
      Printf.eprintf "cddpd: unknown experiment %s (table1|table2|figure3|figure4|ablation|updates|views|space)\n"
        other;
      1

let experiment_cmd =
  let experiment_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"table1, table2, figure3, figure4, ablation, updates, views or space.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one table or figure of the paper.")
    Term.(
      const experiment $ experiment_name $ rows_arg $ value_range_arg $ seed_arg
      $ scale_arg $ readahead_arg $ jobs_arg $ cell_jobs_arg $ no_cost_cache_arg
      $ metrics_arg $ trace_spans_arg)

(* -- serve ------------------------------------------------------------------- *)

let serve_defaults = Server.default_config ~table:Setup.table_name

let regime_conv =
  let parse s =
    match Server.regime_of_string s with Ok r -> Ok r | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf r -> Format.pp_print_string ppf (Server.regime_to_string r))

let regime_arg =
  Arg.(value & opt regime_conv serve_defaults.Server.regime
       & info [ "regime" ] ~docv:"REGIME"
           ~doc:"Control regime: continuous (constrained re-optimization with \
                 guard and rollback), reactive (unguarded online-tuner \
                 baseline), or static (never change the design).")

let window_arg =
  Arg.(value & opt int serve_defaults.Server.window
       & info [ "window" ] ~docv:"N" ~doc:"Statements per observation window.")

let history_arg =
  Arg.(value & opt int serve_defaults.Server.history
       & info [ "history" ] ~docv:"N"
           ~doc:"Recent windows each re-optimization solves over.")

let horizon_arg =
  Arg.(value & opt int serve_defaults.Server.horizon
       & info [ "horizon" ] ~docv:"N"
           ~doc:"Windows the regret guard projects forward.")

let drift_threshold_arg =
  Arg.(value & opt float serve_defaults.Server.drift_threshold
       & info [ "drift-threshold" ] ~docv:"F"
           ~doc:"Cost-identity histogram L1 distance that counts as workload \
                 drift (range 0-2; non-positive re-optimizes every window).")

let regret_budget_arg =
  Arg.(value & opt float serve_defaults.Server.regret_budget
       & info [ "regret-budget" ] ~docv:"F"
           ~doc:"Accept a transition only if its projected regret against the \
                 incumbent design is at most $(docv) cost units.")

let rollback_factor_arg =
  Arg.(value & opt float serve_defaults.Server.rollback_factor
       & info [ "rollback-factor" ] ~docv:"F"
           ~doc:"Roll a deployment back when its first window's measured I/O \
                 exceeds $(docv) times the what-if cost of the previous \
                 design.")

let serve_k_arg =
  Arg.(value & opt int serve_defaults.Server.k
       & info [ "k" ] ~docv:"K" ~doc:"Change budget per re-optimization.")

let serve_input_arg =
  Arg.(value & opt (some file) None
       & info [ "i"; "input" ] ~docv:"FILE"
           ~doc:"Replay this trace file instead of streaming from stdin.")

let once_arg =
  Arg.(value & flag
       & info [ "once" ]
           ~doc:"Drain the input and exit (requires $(b,--input)); the smoke \
                 mode CI replays a canned trace through.")

let no_reopt_reuse_arg =
  Arg.(value & flag
       & info [ "no-reopt-reuse" ]
           ~doc:"Disable incremental re-optimization: every drift event \
                 rebuilds cost matrices from scratch instead of reusing the \
                 previous window-set's cluster costs and TRANS entries. \
                 Results are bit-identical either way; this is the escape \
                 hatch (and the from-scratch arm of bench --suite serve).")

let no_template_cache_arg =
  Arg.(value & flag
       & info [ "no-template-cache" ]
           ~doc:"Disable the statement-template cache: every arriving text \
                 is lexed and parsed from scratch instead of reusing the \
                 cached AST (repeated text) or statement skeleton (repeated \
                 shape). Results are bit-identical either way; this is the \
                 escape hatch (and the slow arm of bench --suite ingest).")

let no_plan_cache_arg =
  Arg.(value & flag
       & info [ "no-plan-cache" ]
           ~doc:"Disable the plan-choice memo and the probation what-if \
                 cache: every statement re-runs plan selection against the \
                 cost model. Results are bit-identical either way; this is \
                 the escape hatch (and the slow arm of bench --suite \
                 ingest).")

let status_json_arg =
  Arg.(value & flag
       & info [ "status" ]
           ~doc:"Emit the run summary as one JSON object (schema \
                 cddpd-serve/1) instead of per-window lines and a text \
                 summary.")

let action_to_string = function
  | Server.No_action -> "-"
  | Server.Held _ -> "held (recommendation = incumbent)"
  | Server.Deployed { design; projection = Some p; build_io } ->
      Printf.sprintf "deployed %s (regret %+.1f, build %d)" (Design.name design)
        p.Guard.regret build_io
  | Server.Deployed { design; projection = None; build_io } ->
      Printf.sprintf "deployed %s (unguarded, build %d)" (Design.name design)
        build_io
  | Server.Rejected { design; projection } ->
      Printf.sprintf "rejected %s (regret %+.1f over budget)"
        (Design.name design) projection.Guard.regret
  | Server.Rolled_back { restored; measured; expected; build_io } ->
      Printf.sprintf "rolled back to %s (measured %.0f vs %.0f expected, build %d)"
        (Design.name restored) measured expected build_io

let print_window_line r =
  Printf.printf "window %3d  %5d stmts  io %-8d drift %s%s  %s\n%!"
    r.Server.index r.Server.n_statements r.Server.exec_logical_io
    (match r.Server.drift with
    | None -> "     -"
    | Some d -> Printf.sprintf "%6.3f" d)
    (if r.Server.drifted then "!" else " ")
    (action_to_string r.Server.action)

let reopt_json (stats : Cddpd_core.Reopt.stats) =
  Printf.sprintf
    "{\"reoptimizations\":%d,\"warm_start_bounds\":%d,\
     \"builds_reused\":%d,\"exec_columns_reused\":%d,\
     \"clusters_recosted\":%d,\"trans_blocks_reused\":%d,\
     \"stats_invalidations\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\
     \"evictions\":%d,\"generations\":%d}}"
    stats.Cddpd_core.Reopt.reoptimizations stats.Cddpd_core.Reopt.warm_start_bounds
    stats.Cddpd_core.Reopt.reuse.Cddpd_core.Problem.Reuse.builds
    stats.Cddpd_core.Reopt.reuse.Cddpd_core.Problem.Reuse.exec_columns_reused
    stats.Cddpd_core.Reopt.reuse.Cddpd_core.Problem.Reuse.clusters_recosted
    stats.Cddpd_core.Reopt.reuse.Cddpd_core.Problem.Reuse.trans_blocks_reused
    stats.Cddpd_core.Reopt.reuse.Cddpd_core.Problem.Reuse.stats_invalidations
    stats.Cddpd_core.Reopt.cache.Cddpd_engine.Cost_cache.hits
    stats.Cddpd_core.Reopt.cache.Cddpd_engine.Cost_cache.misses
    stats.Cddpd_core.Reopt.cache.Cddpd_engine.Cost_cache.evictions
    stats.Cddpd_core.Reopt.cache.Cddpd_engine.Cost_cache.generations

let report_json (report : Server.report) =
  Printf.sprintf
    "{\"schema\":\"cddpd-serve/1\",\"regime\":\"%s\",\"windows\":%d,\
     \"statements\":%d,\"residual_statements\":%d,\"drift_events\":%d,\
     \"reoptimizations\":%d,\"deployments\":%d,\"rejections\":%d,\
     \"rollbacks\":%d,\"exec_logical_io\":%d,\"trans_logical_io\":%d,\
     \"final_design\":\"%s\",\"reopt\":%s}"
    (Server.regime_to_string report.Server.regime)
    (Array.length report.Server.windows)
    report.Server.statements report.Server.residual_statements
    report.Server.drift_events report.Server.reoptimizations
    report.Server.deployments report.Server.rejections report.Server.rollbacks
    report.Server.exec_logical_io report.Server.trans_logical_io
    (String.concat "," (List.map (fun s -> String.escaped (Cddpd_catalog.Structure.name s))
         (Design.structures report.Server.final_design)))
    (reopt_json report.Server.reopt)

let print_report (report : Server.report) =
  Printf.printf
    "serve: regime=%s windows=%d statements=%d (+%d residual)\n\
     serve: drift_events=%d reoptimizations=%d deployments=%d rejections=%d \
     rollbacks=%d\n\
     serve: exec_logical_io=%d trans_logical_io=%d final_design=%s\n"
    (Server.regime_to_string report.Server.regime)
    (Array.length report.Server.windows)
    report.Server.statements report.Server.residual_statements
    report.Server.drift_events report.Server.reoptimizations
    report.Server.deployments report.Server.rejections report.Server.rollbacks
    report.Server.exec_logical_io report.Server.trans_logical_io
    (Design.name report.Server.final_design)

(* Both feed loops replay raw statement text through Server.feed_sql, so
   the template cache sees the original strings — parsing up front would
   bypass the ingest fast path entirely. *)
let feed_stdin server =
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        if String.length line > 0 && not (String.length line >= 2 && String.sub line 0 2 = "--")
        then begin
          match Server.feed_sql server line with
          | Ok _ -> ()
          | Error message ->
              Printf.eprintf "cddpd serve: skipping statement: %s\n%!" message
        end;
        loop ()
  in
  loop ()

(* Trace-file replay: same line conventions as Trace.load ([#] comments,
   blank lines), same strictness (a parse error aborts naming the line). *)
let feed_file server path =
  let ic =
    try open_in path
    with Sys_error message ->
      prerr_endline ("cddpd: cannot load trace: " ^ message);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop i =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            let trimmed = String.trim line in
            if trimmed <> "" && trimmed.[0] <> '#' then begin
              match Server.feed_sql server trimmed with
              | Ok _ -> ()
              | Error message ->
                  Printf.eprintf "cddpd: cannot load trace: line %d: %s\n" i
                    message;
                  exit 1
            end;
            loop (i + 1)
      in
      loop 1)

let serve input once regime window history horizon drift_threshold regret_budget
    rollback_factor k method_name rows value_range seed readahead jobs
    no_cost_cache no_reopt_reuse no_template_cache no_plan_cache status_json
    metrics trace =
  apply_perf_knobs jobs no_cost_cache;
  with_obs ~metrics ~trace @@ fun () ->
  if once && input = None then begin
    prerr_endline "cddpd: --once requires --input";
    2
  end
  else begin
    let cfg =
      { serve_defaults with
        Server.regime; window; history; horizon; drift_threshold; regret_budget;
        rollback_factor; k; method_name; jobs;
        reopt_reuse = not no_reopt_reuse;
        template_cache = not no_template_cache;
        plan_cache = not no_plan_cache }
    in
    let db = Setup.make_database (config_of ~readahead rows value_range seed 1.0) in
    let on_window = if status_json then fun _ -> () else print_window_line in
    let server = Server.create ~on_window db cfg in
    (match input with
    | Some path -> feed_file server path
    | None -> feed_stdin server);
    let report = Server.finish server in
    if status_json then print_endline (report_json report) else print_report report;
    0
  end

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the online continuous advisor over a statement stream: \
             windowed ingest, drift detection, constrained re-optimization \
             seeded at the current design, regret-guarded deployment, and \
             rollback on regression (see docs/SERVE.md).")
    Term.(const serve $ serve_input_arg $ once_arg $ regime_arg $ window_arg
          $ history_arg $ horizon_arg $ drift_threshold_arg $ regret_budget_arg
          $ rollback_factor_arg $ serve_k_arg $ method_arg $ rows_arg
          $ value_range_arg $ seed_arg $ readahead_arg $ jobs_arg
          $ no_cost_cache_arg $ no_reopt_reuse_arg $ no_template_cache_arg
          $ no_plan_cache_arg $ status_json_arg $ metrics_arg $ trace_spans_arg)

(* -- main ---------------------------------------------------------------------- *)

let () =
  let doc = "constrained dynamic physical database design (ICDE'08 reproduction)" in
  let info = Cmd.info "cddpd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; recommend_cmd; simulate_cmd; experiment_cmd; serve_cmd ]))
