(* Benchmark harness: regenerates every table and figure of the paper
   (Voigt/Salem/Lehner, ICDE'08 workshops) and runs a Bechamel
   micro-benchmark per artifact.

   Usage:
     main.exe [table1] [table2] [figure3] [figure4] [ablation] [updates]
              [views] [space] [micro]
              [--rows N] [--value-range N] [--scale F] [--seed N]
              [--readahead N] [--quick]
              [--jobs N] [--no-cost-cache]
              [--no-metrics] [--obs-out FILE] [--micro-out FILE]
   With no experiment named, everything runs.  --quick shrinks the instance
   for a fast smoke run; --rows 2500000 --value-range 500000 approaches the
   paper's physical scale.  --jobs and --no-cost-cache set the
   Problem.build parallelism / memoization knobs (docs/PERFORMANCE.md).

   Observability: instrumentation (lib/obs) is enabled for the run unless
   --no-metrics is given, and a JSON-lines metrics + span dump is written
   to BENCH_obs.json (--obs-out overrides the path) so successive PRs can
   compare perf trajectories.  The Bechamel micro-benchmarks always run
   with instrumentation disabled so their timings stay comparable across
   runs regardless of flags; when "micro" runs, a machine-readable summary
   (per-micro ns/run plus the median Problem.build wall time) is written
   to BENCH_micro.json (--micro-out overrides the path). *)

module Setup = Cddpd_experiments.Setup
module Session = Cddpd_experiments.Session
module Table1 = Cddpd_experiments.Table1
module Table2 = Cddpd_experiments.Table2
module Figure3 = Cddpd_experiments.Figure3
module Figure4 = Cddpd_experiments.Figure4
module Ablation = Cddpd_experiments.Ablation
module Updates = Cddpd_experiments.Updates
module Views = Cddpd_experiments.Views
module Space_bound = Cddpd_experiments.Space_bound
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Simulator = Cddpd_core.Simulator
module Config_space = Cddpd_core.Config_space
module Problem = Cddpd_core.Problem
module Merging = Cddpd_core.Merging
module Staged_dag = Cddpd_graph.Staged_dag
module Kaware = Cddpd_graph.Kaware
module Ranking = Cddpd_graph.Ranking
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Index_def = Cddpd_catalog.Index_def
module Ast = Cddpd_sql.Ast
module Mix = Cddpd_workload.Mix
module Rng = Cddpd_util.Rng

module Obs = Cddpd_obs

type options = {
  experiments : string list;
  config : Setup.config;
  metrics : bool;
  obs_out : string;
  micro_out : string;
  solvers_out : string;
  experiments_out : string;
  configspace_out : string;
  serve_out : string;
  ingest_out : string;
  jobs : int option;
  cell_jobs : int option;
  cost_cache : bool;
}

let all_experiments =
  [ "table1"; "table2"; "figure3"; "figure4"; "ablation"; "updates"; "views";
    "space"; "micro"; "solvers"; "experiments"; "configspace"; "serve";
    "ingest" ]

let usage () =
  prerr_endline
    "usage: main.exe \
     [table1|table2|figure3|figure4|ablation|updates|views|space|micro|solvers|experiments|configspace|serve|ingest]... \
     [--suite NAME] \
     [--rows N] [--value-range N] [--scale F] [--seed N] [--readahead N] [--quick] \
     [--jobs N] [--cell-jobs N] [--no-cost-cache] \
     [--no-metrics] [--obs-out FILE] [--micro-out FILE] [--solvers-out FILE] \
     [--experiments-out FILE] [--configspace-out FILE] [--serve-out FILE] \
     [--ingest-out FILE]";
  exit 2

let parse_args () =
  let experiments = ref [] in
  let config = ref Setup.default_config in
  let metrics = ref true in
  let obs_out = ref "BENCH_obs.json" in
  let micro_out = ref "BENCH_micro.json" in
  let solvers_out = ref "BENCH_solvers.json" in
  let experiments_out = ref "BENCH_experiments.json" in
  let configspace_out = ref "BENCH_configspace.json" in
  let serve_out = ref "BENCH_serve.json" in
  let ingest_out = ref "BENCH_ingest.json" in
  let jobs = ref None in
  let cell_jobs = ref None in
  let cost_cache = ref true in
  let rec go args =
    match args with
    | [] -> ()
    | "--no-metrics" :: rest ->
        metrics := false;
        go rest
    | "--obs-out" :: v :: rest ->
        obs_out := v;
        go rest
    | "--micro-out" :: v :: rest ->
        micro_out := v;
        go rest
    | "--solvers-out" :: v :: rest ->
        solvers_out := v;
        go rest
    | "--experiments-out" :: v :: rest ->
        experiments_out := v;
        go rest
    | "--configspace-out" :: v :: rest ->
        configspace_out := v;
        go rest
    | "--serve-out" :: v :: rest ->
        serve_out := v;
        go rest
    | "--ingest-out" :: v :: rest ->
        ingest_out := v;
        go rest
    | "--cell-jobs" :: v :: rest ->
        let j = int_of_string v in
        if j < 1 then usage ();
        cell_jobs := Some j;
        go rest
    | "--suite" :: v :: rest ->
        if not (List.mem v all_experiments) then usage ();
        experiments := v :: !experiments;
        go rest
    | "--jobs" :: v :: rest ->
        let j = int_of_string v in
        if j < 1 then usage ();
        jobs := Some j;
        go rest
    | "--no-cost-cache" :: rest ->
        cost_cache := false;
        go rest
    | "--rows" :: v :: rest ->
        config := { !config with Setup.rows = int_of_string v };
        go rest
    | "--value-range" :: v :: rest ->
        config := { !config with Setup.value_range = int_of_string v };
        go rest
    | "--scale" :: v :: rest ->
        config := { !config with Setup.scale = float_of_string v };
        go rest
    | "--seed" :: v :: rest ->
        config := { !config with Setup.seed = int_of_string v };
        go rest
    | "--readahead" :: v :: rest ->
        let r = int_of_string v in
        if r < 0 then usage ();
        config := { !config with Setup.readahead = r };
        go rest
    | "--quick" :: rest ->
        config :=
          { !config with Setup.rows = 20_000; value_range = 4_000; scale = 0.2 };
        go rest
    | "all" :: rest ->
        experiments := List.rev_append all_experiments !experiments;
        go rest
    | name :: rest ->
        if List.mem name all_experiments then experiments := name :: !experiments
        else usage ();
        go rest
  in
  (try go (List.tl (Array.to_list Sys.argv)) with
  | Failure _ | Invalid_argument _ -> usage ());
  let experiments =
    match List.rev !experiments with [] -> all_experiments | list -> list
  in
  {
    experiments;
    config = !config;
    metrics = !metrics;
    obs_out = !obs_out;
    micro_out = !micro_out;
    solvers_out = !solvers_out;
    experiments_out = !experiments_out;
    configspace_out = !configspace_out;
    serve_out = !serve_out;
    ingest_out = !ingest_out;
    jobs = !jobs;
    cell_jobs = !cell_jobs;
    cost_cache = !cost_cache;
  }

let banner title =
  Printf.printf "\n==== %s ====\n\n%!" title

(* -- Bechamel micro-benchmarks: one Test.make per table/figure ----------- *)

let micro (session : Session.t) =
  (* Timings must be comparable run-to-run and with pre-observability
     baselines: measure the uninstrumented path. *)
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () -> if was_enabled then Obs.Registry.enable ())
  @@ fun () ->
  let open Bechamel in
  let problem = session.Session.problem_w1 in
  let solve method_name k () =
    match Optimizer.solve problem ~method_name ?k () with
    | Ok _ -> ()
    | Error _ -> failwith "micro: solver failed"
  in
  (* A one-segment replay instance for the Figure 3 micro-bench: replaying
     the full workload per sample would take minutes. *)
  let segment = session.Session.steps_w1.(0) in
  let schedule =
    match Optimizer.solve problem ~method_name:Solution.Kaware ~k:2 () with
    | Ok s -> Solution.schedule problem s
    | Error _ -> failwith "micro: kaware failed"
  in
  let replay_segment () =
    ignore
      (Simulator.run session.Session.db ~steps:[| segment |]
         ~schedule:[| schedule.(0) |])
  in
  let sample_mix =
    let rng = Rng.create 99 in
    fun () ->
      for _ = 1 to 100 do
        ignore (Mix.sample_query Mix.mix_a ~table:"t" ~value_range:1000 rng)
      done
  in
  (* SQL front-end micros: the lexer's scratch-buffer/int fast paths and
     the template cache, over a pool of texts shaped like serve traffic. *)
  let sql_pool =
    Array.init 64 (fun i ->
        Printf.sprintf
          "SELECT a, b FROM t WHERE a = %d AND c BETWEEN %d AND %d AND d = 'v%d'"
          (1 + (i * 1_031 mod 50_000))
          (1 + (i * 157 mod 50_000))
          (41 + (i * 157 mod 50_000))
          (i mod 7))
  in
  let tokenize_pool () =
    Array.iter (fun s -> ignore (Cddpd_sql.Lexer.tokenize s)) sql_pool
  in
  let parse_pool () =
    Array.iter
      (fun s ->
        match Cddpd_sql.Parser.parse s with
        | Ok _ -> ()
        | Error _ -> failwith "micro: parse failed")
      sql_pool
  in
  let parse_cached_pool =
    let cache = Cddpd_sql.Template.create () in
    fun () ->
      Array.iter
        (fun s ->
          match Cddpd_sql.Parser.parse_cached cache s with
          | Ok _ -> ()
          | Error _ -> failwith "micro: parse_cached failed")
        sql_pool
  in
  let tests =
    Test.make_grouped ~name:"cddpd"
      [
        Test.make ~name:"sql/tokenize-64" (Staged.stage tokenize_pool);
        Test.make ~name:"sql/parse-64" (Staged.stage parse_pool);
        Test.make ~name:"sql/parse-cached-64" (Staged.stage parse_cached_pool);
        Test.make ~name:"table1/mix-sample-100" (Staged.stage sample_mix);
        Test.make ~name:"table2/unconstrained"
          (Staged.stage (solve Solution.Unconstrained None));
        Test.make ~name:"table2/kaware-k2" (Staged.stage (solve Solution.Kaware (Some 2)));
        Test.make ~name:"figure3/replay-1-segment" (Staged.stage replay_segment);
        Test.make ~name:"figure4/kaware-k18" (Staged.stage (solve Solution.Kaware (Some 18)));
        Test.make ~name:"figure4/merging-k2" (Staged.stage (solve Solution.Merging (Some 2)));
        Test.make ~name:"ablation/greedy-seq-k2"
          (Staged.stage (solve Solution.Greedy_seq (Some 2)));
        Test.make ~name:"ablation/hybrid-k10" (Staged.stage (solve Solution.Hybrid (Some 10)));
        Test.make ~name:"updates/blend-1-segment"
          (Staged.stage (fun () ->
               ignore
                 (Cddpd_workload.Dml_gen.blend ~update_fraction:0.3
                    ~value_range:session.Session.config.Setup.value_range ~seed:5
                    session.Session.steps_w1.(0))));
        Test.make ~name:"views/maintain-100-inserts"
          (Staged.stage
             (let schema = Setup.schema in
              let pool =
                Cddpd_storage.Buffer_pool.create ~capacity:512
                  (Cddpd_storage.Disk.create ())
              in
              let heap = Cddpd_storage.Heap_file.create pool in
              let rng = Rng.create 3 in
              for _ = 1 to 2000 do
                ignore
                  (Cddpd_storage.Heap_file.insert heap
                     (Array.init 4 (fun _ -> Cddpd_storage.Tuple.Int (Rng.int rng 50))))
              done;
              let view =
                Cddpd_engine.Mat_view.build pool schema heap
                  (Cddpd_catalog.View_def.make ~table:"t" ~group_by:"a")
              in
              fun () ->
                for _ = 1 to 100 do
                  Cddpd_engine.Mat_view.apply_insert view
                    (Array.init 4 (fun _ -> Cddpd_storage.Tuple.Int (Rng.int rng 50)))
                done));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Cddpd_util.Text_table.create
      [ ("micro-benchmark", Cddpd_util.Text_table.Left); ("ns/run", Cddpd_util.Text_table.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      Cddpd_util.Text_table.add_row table [ name; Printf.sprintf "%.0f" ns ])
    rows;
  Cddpd_util.Text_table.print table;
  rows

(* -- machine-readable micro summary (BENCH_micro.json) -------------------- *)

(* Median wall-clock of several Problem.build runs under the session's
   workload and the current --jobs/--no-cost-cache knobs: the headline
   number of the perf trajectory. *)
let problem_build_runs = 3

let time_problem_build (session : Session.t) =
  let times =
    Array.init problem_build_runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Setup.build_problem session.Session.db ~steps:session.Session.steps_w1);
        Unix.gettimeofday () -. t0)
  in
  Array.sort Float.compare times;
  times.(problem_build_runs / 2)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

(* Solver timings sit in the sub-millisecond range at small n; keep enough
   digits for the ratios to stay meaningful. *)
let json_float6 f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let write_micro_json path ~(options : options) ~build_s rows =
  let oc = open_out path in
  let jobs =
    match options.jobs with Some j -> j | None -> Cddpd_util.Parallel.default_jobs ()
  in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-micro/1\",\"rows\":%d,\"value_range\":%d,\
     \"scale\":%.3f,\"seed\":%d,\"jobs\":%d,\"cores\":%d,\"cost_cache\":%b,\
     \"problem_build\":{\"runs\":%d,\"median_s\":%s},\"micro\":["
    options.config.Setup.rows options.config.Setup.value_range
    options.config.Setup.scale options.config.Setup.seed jobs
    (Cddpd_util.Parallel.ncpu ()) options.cost_cache
    problem_build_runs (json_float build_s);
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "%s{\"name\":\"%s\",\"ns_per_run\":%s}"
        (if i = 0 then "" else ",")
        (json_escape name) (json_float ns))
    rows;
  output_string oc "]}\n";
  close_out oc

(* -- solvers suite: constrained solvers over large design spaces ---------- *)

(* Synthetic instances spanning four design-space sizes, built through the
   real Config_space/Problem machinery: n = 7 is the paper's space (empty
   design + one singleton per candidate), n = 64/256/1024 are the full
   power sets of 6/8/10 candidate indexes.  Costs are a deterministic
   phased workload — each phase has one hot index that cuts execution
   cost, every carried structure adds maintenance overhead, and
   transitions pay per structure built — so the unconstrained optimum
   switches with the phases and the merging heuristic lands close enough
   to the constrained optimum to make a useful branch-and-bound seed.
   Nothing is random: reruns time the same instance. *)

let solvers_stages = 12
let solvers_phase_len = 4
let solvers_runs = 5
let solvers_ks = [ 1; 2; 3 ]
let solvers_ranking_max_n = 64
let solvers_ranking_max_queue = 262_144

let solvers_candidates m =
  List.init m (fun i ->
      Structure.index (Index_def.make ~table:"t" ~columns:[ Printf.sprintf "c%d" i ]))

let solvers_space ~candidates ~max_structures =
  Config_space.enumerate ~candidates ?max_structures ~size_of:(fun _ -> 1) ()

let solvers_problem ~candidates space =
  let n = Config_space.size space in
  let designs = Config_space.designs space in
  let m = List.length candidates in
  let hot = Array.of_list candidates in
  let exec =
    Array.init solvers_stages (fun s ->
        let hot = hot.((s / solvers_phase_len) mod m) in
        Array.init n (fun c ->
            let design = designs.(c) in
            let base = if Design.mem_structure hot design then 40.0 else 100.0 in
            let overhead = 4.0 *. float_of_int (Design.cardinality design) in
            (* Tie-breaking noise, injective over configs at every stage
               (odd multiplier mod 2^10 permutes config ids): exact cost
               ties would keep whole families of equivalent states alive
               under the bound pruner and hide its effect.  Dyadic values,
               so the arithmetic stays exact. *)
            let jitter =
              float_of_int (((c * 2654435761) + (s * 97)) land 1023) *. 0.0078125
            in
            base +. overhead +. jitter))
  in
  let trans =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else
              let added =
                Design.fold
                  (fun st acc ->
                    if Design.mem_structure st designs.(i) then acc else acc + 1)
                  designs.(j) 0
              in
              15.0 *. float_of_int added))
  in
  let steps =
    Array.make solvers_stages
      [| Ast.Select { Ast.projection = Ast.Star; table = "t"; where = [] } |]
  in
  Problem.of_matrices ~steps ~space
    ~initial:(Config_space.id_of_exn space Design.empty)
    ~exec ~trans ()

type solvers_ranking_outcome =
  | Rk_found of { rank : int; queue_peak : int }
  | Rk_gave_up of { reason : string; examined : int; queue_peak : int }

type solvers_entry = {
  sv_n : int;
  sv_k : int;
  sv_baseline_s : float;
  sv_pruned_s : float;
  sv_states_pruned : int;
  sv_states_alive : int;
  sv_ranking : (float * solvers_ranking_outcome) option;
}

let median_of times =
  let times = Array.copy times in
  Array.sort Float.compare times;
  times.(Array.length times / 2)

let time_runs f =
  median_of
    (Array.init solvers_runs (fun _ ->
         let t0 = Unix.gettimeofday () in
         ignore (Sys.opaque_identity (f ()));
         Unix.gettimeofday () -. t0))

(* One instrumented (untimed) run bracketed by snapshots; the timed runs
   stay uninstrumented so the accounting pass can't pollute them. *)
let with_counters f =
  Obs.Registry.enable ();
  let before = Obs.Snapshot.capture () in
  ignore (Sys.opaque_identity (f ()));
  let delta = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  Obs.Registry.disable ();
  delta

let snapshot_counter delta name =
  Option.value ~default:0 (Obs.Snapshot.counter_value delta name)

let solvers_suite () =
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () -> if was_enabled then Obs.Registry.enable ())
  @@ fun () ->
  let spaces =
    [
      (solvers_candidates 6, Some 1);  (* n = 7: the paper's space *)
      (solvers_candidates 6, None);  (* n = 64 *)
      (solvers_candidates 8, None);  (* n = 256 *)
      (solvers_candidates 10, None);  (* n = 1024 *)
    ]
  in
  let table =
    Cddpd_util.Text_table.create
      [
        ("n", Cddpd_util.Text_table.Right);
        ("k", Cddpd_util.Text_table.Right);
        ("baseline ms", Cddpd_util.Text_table.Right);
        ("pruned ms", Cddpd_util.Text_table.Right);
        ("speedup", Cddpd_util.Text_table.Right);
        ("states pruned", Cddpd_util.Text_table.Right);
        ("ranking ms", Cddpd_util.Text_table.Right);
        ("rank", Cddpd_util.Text_table.Right);
        ("queue peak", Cddpd_util.Text_table.Right);
      ]
  in
  let entries =
    List.concat_map
      (fun (candidates, max_structures) ->
        let space = solvers_space ~candidates ~max_structures in
        let problem = solvers_problem ~candidates space in
        let n = Config_space.size space in
        let graph = Problem.to_graph problem in
        let initial = Problem.initial_for_counting problem in
        let _, unconstrained_path = Staged_dag.shortest_path graph in
        List.map
          (fun k ->
            (* The bound is a byproduct of the Merging heuristic, which the
               advisor pipeline computes anyway, so the timed region covers
               exactly the [Kaware.solve] call the acceptance criterion
               names. *)
            let ub = Staged_dag.path_cost graph (Merging.refine problem ~k unconstrained_path) in
            let upper_bound () = ub in
            let baseline_s =
              time_runs (fun () -> Kaware.solve ~jobs:1 graph ~k ~initial)
            in
            let pruned_s =
              time_runs (fun () ->
                  Kaware.solve ~jobs:1 ~upper_bound:ub graph ~k ~initial)
            in
            (* Exactness cross-check at bench time: pruning must not move
               the optimum. *)
            (match
               ( Kaware.solve ~jobs:1 graph ~k ~initial,
                 Kaware.solve ~jobs:1 ~upper_bound:(upper_bound ()) graph ~k ~initial )
             with
            | Some (c0, p0), Some (c1, p1) ->
                if not (Int64.equal (Int64.bits_of_float c0) (Int64.bits_of_float c1) && p0 = p1)
                then failwith (Printf.sprintf "solvers: pruned result differs at n=%d k=%d" n k)
            | _ -> failwith "solvers: kaware returned no path");
            let delta =
              with_counters (fun () ->
                  Kaware.solve ~jobs:1 ~upper_bound:(upper_bound ()) graph ~k ~initial)
            in
            let states_pruned = snapshot_counter delta "advisor.kaware.states_pruned" in
            let states_alive = snapshot_counter delta "advisor.kaware.nodes_expanded" in
            let ranking =
              if n > solvers_ranking_max_n then None
              else begin
                let run () =
                  Ranking.solve_constrained graph ~k ~initial
                    ~upper_bound:(upper_bound ())
                    ~max_queue:solvers_ranking_max_queue ()
                in
                let ranking_s = time_runs run in
                (* Even a give-up is a datapoint: the budgets turn the
                   paper's worst case (rank explosion at small k) into a
                   bounded, reported failure instead of an OOM. *)
                let delta = with_counters run in
                let obs_peak =
                  (* The histogram gets exactly one observation per solve,
                     so the delta's sum is this run's peak (percentiles
                     don't diff across snapshots). *)
                  match Obs.Snapshot.find delta "advisor.ranking.queue_peak" with
                  | Some (Obs.Snapshot.Dist d) -> int_of_float d.Obs.Snapshot.sum
                  | Some (Obs.Snapshot.Count _) | None -> 0
                in
                let outcome =
                  match run () with
                  | `Found (_, _, rank) -> Rk_found { rank; queue_peak = obs_peak }
                  | `Gave_up g ->
                      Rk_gave_up
                        {
                          reason = Ranking.reason_to_string g.Ranking.reason;
                          examined = g.Ranking.examined;
                          queue_peak = g.Ranking.queue_peak;
                        }
                in
                Some (ranking_s, outcome)
              end
            in
            let row_opt f o = match o with Some v -> f v | None -> "-" in
            Cddpd_util.Text_table.add_row table
              [
                string_of_int n;
                string_of_int k;
                Printf.sprintf "%.2f" (baseline_s *. 1e3);
                Printf.sprintf "%.2f" (pruned_s *. 1e3);
                Printf.sprintf "%.1fx" (baseline_s /. pruned_s);
                string_of_int states_pruned;
                row_opt (fun (s, _) -> Printf.sprintf "%.2f" (s *. 1e3)) ranking;
                row_opt
                  (fun (_, o) ->
                    match o with
                    | Rk_found { rank; _ } -> string_of_int rank
                    | Rk_gave_up { reason; _ } -> reason)
                  ranking;
                row_opt
                  (fun (_, o) ->
                    match o with
                    | Rk_found { queue_peak; _ } | Rk_gave_up { queue_peak; _ } ->
                        string_of_int queue_peak)
                  ranking;
              ];
            {
              sv_n = n;
              sv_k = k;
              sv_baseline_s = baseline_s;
              sv_pruned_s = pruned_s;
              sv_states_pruned = states_pruned;
              sv_states_alive = states_alive;
              sv_ranking = ranking;
            })
          solvers_ks)
      spaces
  in
  Cddpd_util.Text_table.print table;
  entries

(* Timings in the JSON are medians of [solvers_runs]; speedups are the
   ratio of medians.  The file is tracked in git as the scaling baseline —
   refresh it with `make bench-smoke` (docs/PERFORMANCE.md). *)
let write_solvers_json path entries =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-solvers/1\",\"stages\":%d,\"phase_len\":%d,\
     \"runs\":%d,\"cores\":%d,\"entries\":["
    solvers_stages solvers_phase_len solvers_runs (Cddpd_util.Parallel.ncpu ());
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "%s{\"n\":%d,\"k\":%d,\"kaware_baseline_s\":%s,\"kaware_pruned_s\":%s,\
         \"speedup\":%s,\"states_pruned\":%d,\"states_alive\":%d,\"ranking\":%s}"
        (if i = 0 then "" else ",")
        e.sv_n e.sv_k
        (json_float6 e.sv_baseline_s)
        (json_float6 e.sv_pruned_s)
        (json_float (e.sv_baseline_s /. e.sv_pruned_s))
        e.sv_states_pruned e.sv_states_alive
        (match e.sv_ranking with
        | None -> "null"
        | Some (s, Rk_found { rank; queue_peak }) ->
            Printf.sprintf
              "{\"outcome\":\"found\",\"median_s\":%s,\"rank\":%d,\"queue_peak\":%d}"
              (json_float6 s) rank queue_peak
        | Some (s, Rk_gave_up { reason; examined; queue_peak }) ->
            Printf.sprintf
              "{\"outcome\":\"gave_up\",\"reason\":\"%s\",\"median_s\":%s,\
               \"examined\":%d,\"queue_peak\":%d}"
              (json_escape reason) (json_float6 s) examined queue_peak))
    entries;
  output_string oc "]}\n";
  close_out oc

(* -- experiments suite: parallel cell runner + scan-optimized storage ----- *)

(* A reduced figure3+figure4 sweep (the two paper artifacts dominated by,
   respectively, engine replay I/O and solver runtime), run through the
   parallel cell runner under every arm of {cell_jobs} x {readahead
   on/off}.  Each arm reports the median of [experiments_runs] wall
   times plus a digest of every deterministic output field; the digests
   must agree across all arms — that is the bit-identity claim of the
   cell runner and the logical-I/O-invariance claim of readahead, checked
   at bench time on every run. *)

let experiments_runs = 3
let experiments_cell_jobs = [ 1; 4 ]
let experiments_ks = [ 2; 6; 10 ]
let experiments_repeats = 2
let experiments_bulk_rows = 100_000

let experiments_reduced (config : Setup.config) =
  {
    config with
    Setup.rows = min config.Setup.rows 10_000;
    value_range = min config.Setup.value_range 2_000;
    scale = Float.min config.Setup.scale 0.1;
  }

(* %h prints the exact hex representation, so the digest is bit-precise. *)
let figure3_digest (r : Figure3.result) =
  String.concat ";"
    (Printf.sprintf "base=%d" r.Figure3.baseline_io
    :: List.map
         (fun m ->
           Printf.sprintf "%s:%d:%d:%h:%h" m.Figure3.workload
             m.Figure3.unconstrained_io m.Figure3.constrained_io
             m.Figure3.relative_unconstrained m.Figure3.relative_constrained)
         r.Figure3.measurements)

let figure4_cost_digest (r : Figure4.result) =
  String.concat ";"
    (Printf.sprintf "uc=%h" r.Figure4.unconstrained_cost
    :: List.map
         (fun p ->
           Printf.sprintf "k%d:%h:%h" p.Figure4.k p.Figure4.kaware_cost
             p.Figure4.merging_cost)
         r.Figure4.points)

type sweep_arm = {
  ex_readahead : int;
  ex_cell_jobs : int;
  ex_median_s : float;  (** [nan] when the arm was skipped *)
  ex_digest : string;  (** MD5 over the deterministic output fields *)
  ex_skipped : bool;
      (** true when [ex_cell_jobs] exceeds the machine's cores: a
          multi-domain arm on that box measures scheduler thrash, not
          parallel speedup, so it is recorded as skipped instead of run *)
}

let experiments_sweep (config : Setup.config) =
  let cores = Cddpd_util.Parallel.ncpu () in
  List.concat_map
    (fun readahead ->
      let config = { config with Setup.readahead } in
      let t0 = Unix.gettimeofday () in
      let session = Session.create config in
      Printf.printf "(session readahead=%d loaded in %.1fs)\n%!" readahead
        (Unix.gettimeofday () -. t0);
      List.map
        (fun cell_jobs ->
          if cell_jobs > 1 && cores < 2 then begin
            Printf.printf
              "(skipping cell_jobs=%d arm: %d core%s available)\n%!" cell_jobs
              cores
              (if cores = 1 then "" else "s");
            {
              ex_readahead = readahead;
              ex_cell_jobs = cell_jobs;
              ex_median_s = nan;
              ex_digest = "";
              ex_skipped = true;
            }
          end
          else begin
            let digest = ref "" in
            let times =
              Array.init experiments_runs (fun _ ->
                  let t0 = Unix.gettimeofday () in
                  let f3 = Figure3.run_cells ~cell_jobs session in
                  let f4 =
                    Figure4.run_cells ~ks:experiments_ks
                      ~repeats:experiments_repeats ~cell_jobs session
                  in
                  let elapsed = Unix.gettimeofday () -. t0 in
                  digest :=
                    Digest.to_hex
                      (Digest.string
                         (figure3_digest f3 ^ "|" ^ figure4_cost_digest f4));
                  elapsed)
            in
            {
              ex_readahead = readahead;
              ex_cell_jobs = cell_jobs;
              ex_median_s = median_of times;
              ex_digest = !digest;
              ex_skipped = false;
            }
          end)
        experiments_cell_jobs)
    [ Cddpd_storage.Buffer_pool.default_readahead; 0 ]

(* Bulk load vs row-at-a-time load of the same batch into a table with two
   prebuilt indexes; the loaded states must answer queries identically. *)
type bulk_result = {
  bk_bulk_s : float;
  bk_row_s : float;
  bk_output_equal : bool;
}

let experiments_bulk () =
  let rng = Rng.create 42 in
  let data =
    Array.init experiments_bulk_rows (fun _ ->
        Array.init 4 (fun _ -> Cddpd_storage.Tuple.Int (Rng.int rng 5_000)))
  in
  let index columns = Index_def.make ~table:"t" ~columns in
  let load bulk =
    let db = Cddpd_engine.Database.create ~pool_capacity:8192 [ Setup.schema ] in
    Cddpd_engine.Database.build_index db (index [ "a" ]);
    Cddpd_engine.Database.build_index db (index [ "a"; "b" ]);
    let t0 = Unix.gettimeofday () in
    Cddpd_engine.Database.load ~bulk db ~table:"t" data;
    (Unix.gettimeofday () -. t0, db)
  in
  let time_mode bulk =
    let last_db = ref None in
    let times =
      Array.init experiments_runs (fun _ ->
          let s, db = load bulk in
          last_db := Some db;
          s)
    in
    (median_of times, Option.get !last_db)
  in
  let bk_bulk_s, db_bulk = time_mode true in
  let bk_row_s, db_row = time_mode false in
  let probe db sql =
    let r = Cddpd_engine.Database.execute_sql db sql in
    List.sort compare r.Cddpd_engine.Database.rows
  in
  let bk_output_equal =
    List.for_all
      (fun sql -> probe db_bulk sql = probe db_row sql)
      [
        "SELECT a, b FROM t WHERE a = 7";
        "SELECT a FROM t WHERE a BETWEEN 100 AND 120";
        "SELECT a, COUNT(*) FROM t GROUP BY a";
      ]
    && Cddpd_engine.Database.row_count db_bulk "t"
       = Cddpd_engine.Database.row_count db_row "t"
  in
  { bk_bulk_s; bk_row_s; bk_output_equal }

let write_experiments_json path ~(config : Setup.config) arms bulk =
  let ran = List.filter (fun a -> not a.ex_skipped) arms in
  let digests_identical =
    match ran with
    | first :: rest ->
        List.for_all (fun a -> String.equal a.ex_digest first.ex_digest) rest
    | [] -> true
  in
  let speedup =
    let find jobs =
      List.find_opt
        (fun a ->
          a.ex_cell_jobs = jobs
          && a.ex_readahead = Cddpd_storage.Buffer_pool.default_readahead
          && not a.ex_skipped)
        arms
    in
    match (find 1, find 4) with
    | Some seq, Some par -> seq.ex_median_s /. par.ex_median_s
    | _ -> nan (* serialised as null: no honest multi-core measurement *)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-experiments/1\",\"rows\":%d,\"value_range\":%d,\
     \"scale\":%.3f,\"seed\":%d,\"runs\":%d,\"cores\":%d,\
     \"figure4_ks\":[%s],\"figure4_repeats\":%d,\"sweep\":["
    config.Setup.rows config.Setup.value_range config.Setup.scale
    config.Setup.seed experiments_runs
    (Cddpd_util.Parallel.ncpu ())
    (String.concat "," (List.map string_of_int experiments_ks))
    experiments_repeats;
  List.iteri
    (fun i a ->
      Printf.fprintf oc
        "%s{\"readahead\":%d,\"cell_jobs\":%d,\"median_s\":%s,\"digest\":\"%s\",\
         \"status\":\"%s\"}"
        (if i = 0 then "" else ",")
        a.ex_readahead a.ex_cell_jobs (json_float6 a.ex_median_s) a.ex_digest
        (if a.ex_skipped then "skipped_single_core" else "ok"))
    arms;
  Printf.fprintf oc
    "],\"digests_identical\":%b,\"parallel_speedup\":%s,\
     \"bulk_load\":{\"rows\":%d,\"indexes\":2,\"runs\":%d,\
     \"bulk_median_s\":%s,\"row_median_s\":%s,\"speedup\":%s,\
     \"output_equal\":%b}}\n"
    digests_identical (json_float speedup) experiments_bulk_rows
    experiments_runs (json_float6 bulk.bk_bulk_s) (json_float6 bulk.bk_row_s)
    (json_float (bulk.bk_row_s /. bulk.bk_bulk_s))
    bulk.bk_output_equal;
  close_out oc

let experiments_suite ~(options : options) () =
  (* Timed arms must not be skewed by main-domain metric recording. *)
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () -> if was_enabled then Obs.Registry.enable ())
  @@ fun () ->
  let config = experiments_reduced options.config in
  let arms = experiments_sweep config in
  let table =
    Cddpd_util.Text_table.create
      [
        ("readahead", Cddpd_util.Text_table.Right);
        ("cell jobs", Cddpd_util.Text_table.Right);
        ("sweep median s", Cddpd_util.Text_table.Right);
        ("digest", Cddpd_util.Text_table.Left);
      ]
  in
  List.iter
    (fun a ->
      Cddpd_util.Text_table.add_row table
        (if a.ex_skipped then
           [
             string_of_int a.ex_readahead;
             string_of_int a.ex_cell_jobs;
             "skipped";
             "(single core)";
           ]
         else
           [
             string_of_int a.ex_readahead;
             string_of_int a.ex_cell_jobs;
             Printf.sprintf "%.2f" a.ex_median_s;
             String.sub a.ex_digest 0 12;
           ]))
    arms;
  Cddpd_util.Text_table.print table;
  (match List.filter (fun a -> not a.ex_skipped) arms with
  | first :: rest as ran ->
      List.iter
        (fun a ->
          if not (String.equal a.ex_digest first.ex_digest) then
            failwith
              (Printf.sprintf
                 "experiments: outputs differ at readahead=%d cell_jobs=%d"
                 a.ex_readahead a.ex_cell_jobs))
        rest;
      Printf.printf "\nall %d measured arms produced identical outputs\n%!"
        (List.length ran)
  | [] -> ());
  let bulk = experiments_bulk () in
  Printf.printf
    "bulk load %d rows, 2 indexes: bulk %.2fs vs row-at-a-time %.2fs \
     (%.1fx), outputs %s\n%!"
    experiments_bulk_rows bulk.bk_bulk_s bulk.bk_row_s
    (bulk.bk_row_s /. bulk.bk_bulk_s)
    (if bulk.bk_output_equal then "equal" else "DIFFER");
  if not bulk.bk_output_equal then
    failwith "experiments: bulk load state differs from row-at-a-time load";
  write_experiments_json options.experiments_out ~config arms bulk

(* -- configspace suite: the design-space scaling pipeline ------------------ *)

(* End-to-end run of the scaled pipeline (Candidates.generate ->
   Pruner.score / dominance_prune / space -> Problem.build
   ~compress_workload:true -> solve) off the paper's 4-column table: a
   16-column table under a phased, template-based point-query workload,
   swept over candidate budget x sequence length.  Templates repeat, so
   workload compression has real clusters to find (the cost key depends
   on statement shape and selectivity, not literal values), and phases
   shift the hot columns so the solver has transitions worth paying for.

   Every timed run digests both matrices bit-exactly; the digests must
   agree across runs, and — wherever the exact arm stays affordable —
   with an uncompressed Problem.build over the same space.  The JSON
   records the what-if accounting: measured calls for the
   pruned+compressed arm vs the naive per-statement construction over
   the unpruned space of the same configuration width. *)

module Candidates = Cddpd_core.Candidates
module Pruner = Cddpd_core.Pruner
module Schema = Cddpd_catalog.Schema
module Parser = Cddpd_sql.Parser

let configspace_runs = 3
let configspace_caps = [ 20; 100; 500 ]
let configspace_lengths = [ 64; 1024 ]
let configspace_stmts_per_step = 4
let configspace_rows = 4_000
let configspace_value_range = 800
let configspace_columns = 16
let configspace_phases = 4
let configspace_templates_per_phase = 32
let configspace_max_width = 3
let configspace_max_structures = 2
let configspace_max_configs = 512
let configspace_k = 2

(* The exact (uncompressed) arm costs one cost-cache probe per
   (statement, config): cross-check only where that stays affordable. *)
let configspace_exact_budget = 2_500_000

(* Concrete statement instances per template: the workload draws whole
   statements from a fixed pool, the way prepared statements repeat in a
   real trace.  The cost key hashes the histogram selectivity of each
   literal, so only exact repeats cluster — pool reuse is what gives
   workload compression real clusters to find. *)
let configspace_instances_per_template = 2

let configspace_schema =
  Schema.table "w"
    (List.init configspace_columns (fun i ->
         (Printf.sprintf "c%d" i, Schema.Int_type)))

let configspace_db () =
  let db =
    Cddpd_engine.Database.create ~pool_capacity:4096 [ configspace_schema ]
  in
  Cddpd_engine.Database.load db ~table:"w"
    (Cddpd_workload.Data_gen.uniform_rows ~columns:configspace_columns
       ~rows:configspace_rows ~value_range:configspace_value_range ~seed:7);
  db

(* Per phase, a fixed pool of 2-3-predicate point-query templates over that
   phase's 8 hot columns; phases overlap by 4 columns so candidates and
   clusters are shared across phase boundaries. *)
let configspace_templates =
  let rng = Rng.create 11 in
  let phases =
    Array.make configspace_phases (Array.make 0 ([ 0 ], 0))
  in
  for phase = 0 to configspace_phases - 1 do
    let pool = Array.make configspace_templates_per_phase ([ 0 ], 0) in
    for t = 0 to configspace_templates_per_phase - 1 do
      let col () = ((4 * phase) + Rng.int rng 8) mod configspace_columns in
      let fresh taken =
        let c = ref (col ()) in
        while List.mem !c taken do
          c := col ()
        done;
        !c
      in
      let c1 = fresh [] in
      let c2 = fresh [ c1 ] in
      let preds =
        if Rng.int rng 2 = 0 then [ c1; c2 ] else [ c1; c2; fresh [ c1; c2 ] ]
      in
      pool.(t) <- (preds, col ())
    done;
    phases.(phase) <- pool
  done;
  phases

(* Per phase, the concrete (parsed) statement pools the workload draws
   from: [instances_per_template] point queries per template, plus a
   small pool of updates (DML keeps index-maintenance cost in the
   benefit vectors). *)
let configspace_statement_pool =
  let rng = Rng.create 17 in
  let value () = Rng.int rng configspace_value_range in
  let selects = Array.make configspace_phases [||] in
  let updates = Array.make configspace_phases [||] in
  for phase = 0 to configspace_phases - 1 do
    let templates = configspace_templates.(phase) in
    let pool =
      Array.make (Array.length templates * configspace_instances_per_template)
        (Ast.Select { Ast.projection = Ast.Star; table = "w"; where = [] })
    in
    Array.iteri
      (fun t (preds, proj) ->
        for i = 0 to configspace_instances_per_template - 1 do
          let conj =
            List.map (fun c -> Printf.sprintf "c%d = %d" c (value ())) preds
          in
          pool.((t * configspace_instances_per_template) + i) <-
            Parser.parse_exn
              (Printf.sprintf "SELECT c%d FROM w WHERE %s" proj
                 (String.concat " AND " conj))
        done)
      templates;
    selects.(phase) <- pool;
    updates.(phase) <-
      Array.map
        (fun (preds, set_col) ->
          Parser.parse_exn
            (Printf.sprintf "UPDATE w SET c%d = %d WHERE c%d = %d" set_col
               (value ()) (List.hd preds) (value ())))
        (Array.sub templates 0 8)
  done;
  (selects, updates)

let configspace_workload n_steps =
  let selects, updates = configspace_statement_pool in
  let rng = Rng.create (100 + n_steps) in
  let steps = Array.make n_steps [||] in
  for s = 0 to n_steps - 1 do
    let phase = s * configspace_phases / n_steps in
    let pick pool = pool.(Rng.int rng (Array.length pool)) in
    let stmts =
      Array.init configspace_stmts_per_step (fun q ->
          if q = configspace_stmts_per_step - 1 && s mod 4 = 0 then
            pick updates.(phase)
          else pick selects.(phase))
    in
    steps.(s) <- stmts
  done;
  steps

let configspace_matrix_digest (problem : Problem.t) =
  let buf = Buffer.create (1 lsl 16) in
  let add m =
    Array.iter
      (fun row ->
        Array.iter (fun x -> Buffer.add_int64_ne buf (Int64.bits_of_float x)) row)
      m
  in
  add problem.Problem.exec;
  add problem.Problem.trans;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let configspace_pipeline ~params ~stats_of ~steps ~flat cap =
  let candidates =
    Candidates.generate configspace_schema ~max_width:configspace_max_width
      ~max_candidates:cap flat
  in
  let scored = Pruner.score ~params ~stats_of ~steps candidates in
  let survivors, pruned = Pruner.dominance_prune scored in
  let space =
    Pruner.space ~max_structures:configspace_max_structures
      ~max_configs:configspace_max_configs survivors
  in
  let problem =
    Problem.build ~params ~stats_of ~steps ~space ~initial:Design.empty
      ~compress_workload:true ()
  in
  (candidates, survivors, pruned, problem)

type configspace_entry = {
  cg_cap : int;
  cg_n : int;
  cg_statements : int;
  cg_generated : int;
  cg_survivors : int;
  cg_pruned : int;
  cg_clusters : int;
  cg_configs : int;
  cg_exec_skipped : int;
  cg_trans_memoized : int;
  cg_pipeline_s : float;
  cg_solve_s : float;
  cg_cost : float;
  cg_changes : int;
  cg_measured_whatif : int;
  cg_naive_configs : int;
  cg_naive_whatif : int;
  cg_same_space_whatif : int;
  cg_digest : string;
  cg_exact_checked : bool;
}

let configspace_suite ~(options : options) () =
  ignore options;
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () -> if was_enabled then Obs.Registry.enable ())
  @@ fun () ->
  let db = configspace_db () in
  let params = Cddpd_engine.Database.params db in
  let stats_of table = Cddpd_engine.Database.table_stats db table in
  let table =
    Cddpd_util.Text_table.create
      [
        ("cap", Cddpd_util.Text_table.Right);
        ("n", Cddpd_util.Text_table.Right);
        ("stmts", Cddpd_util.Text_table.Right);
        ("cand", Cddpd_util.Text_table.Right);
        ("surv", Cddpd_util.Text_table.Right);
        ("clusters", Cddpd_util.Text_table.Right);
        ("configs", Cddpd_util.Text_table.Right);
        ("pipeline ms", Cddpd_util.Text_table.Right);
        ("solve ms", Cddpd_util.Text_table.Right);
        ("what-if", Cddpd_util.Text_table.Right);
        ("naive", Cddpd_util.Text_table.Right);
        ("ratio", Cddpd_util.Text_table.Right);
        ("exact", Cddpd_util.Text_table.Left);
      ]
  in
  let entries =
    List.concat_map
      (fun n_steps ->
        let steps = configspace_workload n_steps in
        let flat = Array.concat (Array.to_list steps) in
        let total_statements = Array.length flat in
        List.map
          (fun cap ->
            let result = ref None in
            let digests = ref [] in
            let times =
              Array.init configspace_runs (fun _ ->
                  let t0 = Unix.gettimeofday () in
                  let r = configspace_pipeline ~params ~stats_of ~steps ~flat cap in
                  let elapsed = Unix.gettimeofday () -. t0 in
                  let _, _, _, problem = r in
                  digests := configspace_matrix_digest problem :: !digests;
                  result := Some r;
                  elapsed)
            in
            let pipeline_s = median_of times in
            (match !digests with
            | first :: rest ->
                List.iter
                  (fun d ->
                    if not (String.equal d first) then
                      failwith
                        (Printf.sprintf
                           "configspace: matrices differ across runs at cap=%d n=%d"
                           cap n_steps))
                  rest
            | [] -> ());
            let candidates, survivors, pruned, problem = Option.get !result in
            let digest = List.hd !digests in
            let generated = List.length candidates in
            let n_survivors = List.length survivors in
            let clusters =
              match survivors with
              | s :: _ -> Array.length s.Pruner.benefit
              | [] -> 0
            in
            let n_configs = Config_space.size problem.Problem.space in
            (* Counters come from one instrumented (untimed) rerun. *)
            let delta =
              with_counters (fun () ->
                  configspace_pipeline ~params ~stats_of ~steps ~flat cap)
            in
            let exec_skipped =
              snapshot_counter delta "problem.exec_columns_skipped"
            in
            let trans_memoized =
              snapshot_counter delta "problem.trans_builds_memoized"
            in
            let t0 = Unix.gettimeofday () in
            let solution =
              match
                Optimizer.solve problem ~method_name:Solution.Merging
                  ~k:configspace_k ()
              with
              | Ok s -> s
              | Error _ -> failwith "configspace: merging solve failed"
            in
            let solve_s = Unix.gettimeofday () -. t0 in
            let exact_checked =
              total_statements * n_configs <= configspace_exact_budget
              &&
              (let exact =
                 Problem.build ~params ~stats_of ~steps
                   ~space:problem.Problem.space ~initial:Design.empty ()
               in
               if not (String.equal (configspace_matrix_digest exact) digest)
               then
                 failwith
                   (Printf.sprintf
                      "configspace: compressed matrices differ from exact at \
                       cap=%d n=%d"
                      cap n_steps);
               true)
            in
            (* What-if accounting.  Measured: scoring pays one call per
               (cluster, candidate) plus the per-cluster base, EXEC pays one
               per (filled config, cluster), TRANS builds each surviving
               structure once.  Naive: per-statement EXEC over the unpruned
               space of the same width, per-pair TRANS. *)
            let measured =
              (clusters * (1 + generated))
              + ((n_configs - exec_skipped) * clusters)
              + n_survivors
            in
            let naive_configs = 1 + generated + (generated * (generated - 1) / 2) in
            let naive =
              (total_statements * naive_configs) + (naive_configs * naive_configs)
            in
            let same_space =
              (total_statements * n_configs) + (n_configs * n_configs)
            in
            if cap = 500 && n_steps = 1024 then begin
              if n_configs < 500 then
                failwith
                  (Printf.sprintf "configspace: only %d configs at the headline cell"
                     n_configs);
              if n_survivors < 50 then
                failwith
                  (Printf.sprintf
                     "configspace: only %d surviving candidates at the headline cell"
                     n_survivors);
              if measured * 10 > naive then
                failwith
                  (Printf.sprintf
                     "configspace: measured what-if %d not 10x below naive %d"
                     measured naive)
            end;
            Cddpd_util.Text_table.add_row table
              [
                string_of_int cap;
                string_of_int n_steps;
                string_of_int total_statements;
                string_of_int generated;
                string_of_int n_survivors;
                string_of_int clusters;
                string_of_int n_configs;
                Printf.sprintf "%.1f" (pipeline_s *. 1e3);
                Printf.sprintf "%.1f" (solve_s *. 1e3);
                string_of_int measured;
                string_of_int naive;
                Printf.sprintf "%.0fx" (float_of_int naive /. float_of_int (max 1 measured));
                (if exact_checked then "ok" else "-");
              ];
            {
              cg_cap = cap;
              cg_n = n_steps;
              cg_statements = total_statements;
              cg_generated = generated;
              cg_survivors = n_survivors;
              cg_pruned = pruned;
              cg_clusters = clusters;
              cg_configs = n_configs;
              cg_exec_skipped = exec_skipped;
              cg_trans_memoized = trans_memoized;
              cg_pipeline_s = pipeline_s;
              cg_solve_s = solve_s;
              cg_cost = solution.Solution.cost;
              cg_changes = solution.Solution.changes;
              cg_measured_whatif = measured;
              cg_naive_configs = naive_configs;
              cg_naive_whatif = naive;
              cg_same_space_whatif = same_space;
              cg_digest = digest;
              cg_exact_checked = exact_checked;
            })
          configspace_caps)
      configspace_lengths
  in
  Cddpd_util.Text_table.print table;
  entries

let write_configspace_json path entries =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-configspace/1\",\"rows\":%d,\"value_range\":%d,\
     \"columns\":%d,\"statements_per_step\":%d,\"runs\":%d,\"cores\":%d,\
     \"max_width\":%d,\
     \"max_structures\":%d,\"max_configs\":%d,\"k\":%d,\"cells\":["
    configspace_rows configspace_value_range configspace_columns
    configspace_stmts_per_step configspace_runs (Cddpd_util.Parallel.ncpu ())
    configspace_max_width
    configspace_max_structures configspace_max_configs configspace_k;
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "%s{\"candidates_cap\":%d,\"n_steps\":%d,\"statements\":%d,\
         \"generated\":%d,\"survivors\":%d,\"pruned\":%d,\"prune_ratio\":%s,\
         \"clusters\":%d,\"compression_ratio\":%s,\"configs\":%d,\
         \"exec_columns_skipped\":%d,\"trans_builds_memoized\":%d,\
         \"pipeline_median_s\":%s,\"solve_s\":%s,\"solve_cost\":%s,\
         \"changes\":%d,\"whatif\":{\"measured\":%d,\
         \"naive_unpruned_configs\":%d,\"naive_unpruned\":%d,\
         \"ratio_vs_naive\":%s,\"same_space_per_statement\":%d,\
         \"ratio_vs_same_space\":%s},\"digest\":\"%s\",\
         \"exact_arm_checked\":%b}"
        (if i = 0 then "" else ",")
        e.cg_cap e.cg_n e.cg_statements e.cg_generated e.cg_survivors
        e.cg_pruned
        (json_float
           (float_of_int e.cg_pruned /. float_of_int (max 1 e.cg_generated)))
        e.cg_clusters
        (json_float
           (float_of_int e.cg_statements /. float_of_int (max 1 e.cg_clusters)))
        e.cg_configs e.cg_exec_skipped e.cg_trans_memoized
        (json_float6 e.cg_pipeline_s) (json_float6 e.cg_solve_s)
        (json_float e.cg_cost) e.cg_changes e.cg_measured_whatif
        e.cg_naive_configs e.cg_naive_whatif
        (json_float
           (float_of_int e.cg_naive_whatif
           /. float_of_int (max 1 e.cg_measured_whatif)))
        e.cg_same_space_whatif
        (json_float
           (float_of_int e.cg_same_space_whatif
           /. float_of_int (max 1 e.cg_measured_whatif)))
        e.cg_digest e.cg_exact_checked)
    entries;
  output_string oc "]}\n";
  close_out oc

(* -- serve suite: incremental re-optimization across windows --------------- *)

(* Two serve runs over the same phased trace on identically-seeded
   databases — one threading the persistent {!Reopt} session (the
   default), one with reuse disabled ([--no-reopt-reuse]'s from-scratch
   path) — with drift detection forced to re-optimize at every window
   close, so the stable-phase windows expose the incremental rebuild.
   Instrumentation stays ENABLED for both arms: the headline is what-if
   call counts, and [cost_model.calls] is silent otherwise.  Wall times
   therefore carry the same small accounting overhead on both sides.

   Checked on every run, not just recorded: each window's control
   decisions must be bit-identical between the arms (per-window digest),
   the stable-phase windows must make >= [serve_min_stable_ratio] fewer
   what-if calls incrementally than from scratch, and no stable-phase
   window may recost its whole cluster table. *)

module Server = Cddpd_serve.Server
module Reopt = Cddpd_core.Reopt
module Compress = Cddpd_workload.Compress
module Cost_key = Cddpd_engine.Cost_key

let serve_rows = 4_000
let serve_value_range = 800
let serve_window = 50
let serve_pool_size = 20
let serve_phases =
  [| "a"; "a"; "a"; "b"; "b"; "b"; "a"; "a"; "c"; "c"; "a"; "a" |]
let serve_min_stable_ratio = 5.0

(* Windows whose phase matches the previous window's: the cells where an
   online advisor should pay only the delta. *)
let serve_stable =
  Array.mapi
    (fun i p -> i > 0 && String.equal p serve_phases.(i - 1))
    serve_phases

let serve_schema =
  Schema.table "t"
    [ ("a", Schema.Int_type); ("b", Schema.Int_type); ("c", Schema.Int_type);
      ("d", Schema.Int_type) ]

let serve_db () =
  let db = Cddpd_engine.Database.create ~pool_capacity:2048 [ serve_schema ] in
  Cddpd_engine.Database.load db ~table:"t"
    (Cddpd_workload.Data_gen.uniform_rows ~columns:4 ~rows:serve_rows
       ~value_range:serve_value_range ~seed:3);
  Cddpd_engine.Database.analyze db;
  db

(* Per phase column, a fixed pool of concrete point queries; windows draw
   from the pool round-robin, the way prepared statements repeat in a
   real trace.  Two windows of the same phase therefore carry the same
   cost-identity key set even though the loop serves every arriving
   statement individually — the stable-workload case the reuse path is
   built for. *)
let serve_statement_pool =
  let pool column =
    Array.init serve_pool_size (fun i ->
        Parser.parse_exn
          (Printf.sprintf "SELECT * FROM t WHERE %s = %d" column
             (1 + ((i * 37) mod serve_value_range))))
  in
  [ ("a", pool "a"); ("b", pool "b"); ("c", pool "c") ]

let serve_phase_window phase =
  let pool = List.assoc phase serve_statement_pool in
  Array.init serve_window (fun i -> pool.(i mod serve_pool_size))

let serve_trace () =
  Array.concat (Array.to_list (Array.map serve_phase_window serve_phases))

let serve_server_config ~reuse =
  {
    (Server.default_config ~table:"t") with
    Server.window = serve_window;
    drift_threshold = -1.0;  (* re-optimize at every window close *)
    jobs = Some 1;
    reopt_reuse = reuse;
  }

(* What each window's re-optimization actually did, per arm. *)
type serve_cell = {
  se_digest : string;  (** the window's control decisions, bit-precise *)
  se_whatif : int;  (** cost_model.calls made by this re-optimization *)
  se_reopt_s : float;
  se_exec_reused : int;
  se_recosted : int;
  se_trans_reused : int;
}

type serve_arm = {
  se_cells : serve_cell array;
  se_wall_s : float;  (** whole-trace wall time, execution included *)
  se_stats : Reopt.stats;
}

let serve_action_fingerprint = function
  | Server.No_action -> "none"
  | Server.Held _ -> "held"
  | Server.Deployed { design; _ } -> "deploy:" ^ Design.name design
  | Server.Rejected { design; _ } -> "reject:" ^ Design.name design
  | Server.Rolled_back { restored; _ } -> "rollback:" ^ Design.name restored

(* %h keeps the drift distance bit-precise, as in the other suites. *)
let serve_window_digest (w : Server.window_report) =
  Printf.sprintf "%d:%d:%d:%s:%b:%s" w.Server.index w.Server.n_statements
    w.Server.exec_logical_io
    (match w.Server.drift with None -> "-" | Some d -> Printf.sprintf "%h" d)
    w.Server.drifted
    (serve_action_fingerprint w.Server.action)

let serve_run_arm ~reuse trace =
  let db = serve_db () in
  let server = Server.create db (serve_server_config ~reuse) in
  let cells = ref [] in
  let prev = ref (Server.reopt_stats server) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun stmt ->
      match Server.feed server stmt with
      | None -> ()
      | Some w ->
          let now = Server.reopt_stats server in
          let dr f = f now.Reopt.reuse - f !prev.Reopt.reuse in
          cells :=
            {
              se_digest = serve_window_digest w;
              se_whatif = w.Server.reopt_whatif_calls;
              se_reopt_s = w.Server.reopt_s;
              se_exec_reused =
                dr (fun t -> t.Problem.Reuse.exec_columns_reused);
              se_recosted = dr (fun t -> t.Problem.Reuse.clusters_recosted);
              se_trans_reused =
                dr (fun t -> t.Problem.Reuse.trans_blocks_reused);
            }
            :: !cells;
          prev := now)
    trace;
  let wall = Unix.gettimeofday () -. t0 in
  let report = Server.finish server in
  {
    se_cells = Array.of_list (List.rev !cells);
    se_wall_s = wall;
    se_stats = report.Server.reopt;
  }

(* The cluster-table size of each window's re-optimization problem,
   computed independently of the serve loop (same keys, same clustering,
   over the same [history] windows): the denominator for the "no stable
   window recosts everything" guard.  The trace has no DML, so the
   statistics — and with them the keys — are fixed for the whole run. *)
let serve_cluster_tables () =
  let stats = Cddpd_engine.Database.table_stats (serve_db ()) "t" in
  let history = (serve_server_config ~reuse:true).Server.history in
  Array.mapi
    (fun i _ ->
      let lo = max 0 (i - history + 1) in
      let stmts =
        Array.concat
          (List.init (i - lo + 1) (fun j ->
               serve_phase_window serve_phases.(lo + j)))
      in
      let keys = Array.map (fun s -> Cost_key.statement stats s) stmts in
      Array.length (Compress.cluster_keys keys).Compress.representatives)
    serve_phases

let serve_stable_sum f arm =
  let acc = ref 0 in
  Array.iteri (fun i c -> if serve_stable.(i) then acc := !acc + f c) arm.se_cells;
  !acc

let serve_stable_sum_s f arm =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> if serve_stable.(i) then acc := !acc +. f c) arm.se_cells;
  !acc

let serve_suite () =
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Obs.Registry.disable ())
  @@ fun () ->
  let trace = serve_trace () in
  Printf.printf
    "trace: %d windows x %d statements, phases %s; re-optimizing every window\n%!"
    (Array.length serve_phases) serve_window
    (String.concat "" (Array.to_list serve_phases));
  let scratch = serve_run_arm ~reuse:false trace in
  let incr = serve_run_arm ~reuse:true trace in
  let n = Array.length serve_phases in
  if Array.length scratch.se_cells <> n || Array.length incr.se_cells <> n then
    failwith "serve: expected one closed window per phase entry";
  Array.iteri
    (fun i (s : serve_cell) ->
      if not (String.equal s.se_digest incr.se_cells.(i).se_digest) then
        failwith
          (Printf.sprintf
             "serve: window %d differs between from-scratch and incremental \
              arms:\n  scratch     %s\n  incremental %s"
             i s.se_digest incr.se_cells.(i).se_digest))
    scratch.se_cells;
  let clusters = serve_cluster_tables () in
  let table =
    Cddpd_util.Text_table.create
      [
        ("window", Cddpd_util.Text_table.Right);
        ("phase", Cddpd_util.Text_table.Left);
        ("stable", Cddpd_util.Text_table.Left);
        ("clusters", Cddpd_util.Text_table.Right);
        ("scratch calls", Cddpd_util.Text_table.Right);
        ("incr calls", Cddpd_util.Text_table.Right);
        ("scratch ms", Cddpd_util.Text_table.Right);
        ("incr ms", Cddpd_util.Text_table.Right);
        ("cols reused", Cddpd_util.Text_table.Right);
        ("recosted", Cddpd_util.Text_table.Right);
        ("trans reused", Cddpd_util.Text_table.Right);
      ]
  in
  Array.iteri
    (fun i (s : serve_cell) ->
      let c = incr.se_cells.(i) in
      Cddpd_util.Text_table.add_row table
        [
          string_of_int i;
          serve_phases.(i);
          (if serve_stable.(i) then "yes" else "-");
          string_of_int clusters.(i);
          string_of_int s.se_whatif;
          string_of_int c.se_whatif;
          Printf.sprintf "%.1f" (s.se_reopt_s *. 1e3);
          Printf.sprintf "%.1f" (c.se_reopt_s *. 1e3);
          string_of_int c.se_exec_reused;
          string_of_int c.se_recosted;
          string_of_int c.se_trans_reused;
        ])
    scratch.se_cells;
  Cddpd_util.Text_table.print table;
  Array.iteri
    (fun i stable ->
      if stable then begin
        let c = incr.se_cells.(i) in
        if clusters.(i) <= 0 then
          failwith (Printf.sprintf "serve: window %d has no clusters" i);
        if c.se_recosted >= clusters.(i) then
          failwith
            (Printf.sprintf
               "serve: stable window %d recosted all %d clusters — the reuse \
                path found nothing to copy"
               i clusters.(i))
      end)
    serve_stable;
  let calls_scratch = serve_stable_sum (fun c -> c.se_whatif) scratch in
  let calls_incr = serve_stable_sum (fun c -> c.se_whatif) incr in
  let ratio = float_of_int calls_scratch /. float_of_int (max 1 calls_incr) in
  if ratio < serve_min_stable_ratio then
    failwith
      (Printf.sprintf
         "serve: stable-window what-if ratio %.1fx below the %.0fx floor \
          (%d from-scratch vs %d incremental)"
         ratio serve_min_stable_ratio calls_scratch calls_incr);
  let reopt_s_scratch = serve_stable_sum_s (fun c -> c.se_reopt_s) scratch in
  let reopt_s_incr = serve_stable_sum_s (fun c -> c.se_reopt_s) incr in
  Printf.printf
    "\nstable windows: %d what-if calls from scratch vs %d incremental \
     (%.1fx), %.1fms vs %.1fms re-optimizing\n%!"
    calls_scratch calls_incr ratio (reopt_s_scratch *. 1e3)
    (reopt_s_incr *. 1e3);
  Printf.printf
    "incremental session: %d builds, %d exec columns reused, %d clusters \
     recosted, %d trans blocks reused, cache %d/%d hit/miss\n%!"
    incr.se_stats.Reopt.reuse.Problem.Reuse.builds
    incr.se_stats.Reopt.reuse.Problem.Reuse.exec_columns_reused
    incr.se_stats.Reopt.reuse.Problem.Reuse.clusters_recosted
    incr.se_stats.Reopt.reuse.Problem.Reuse.trans_blocks_reused
    incr.se_stats.Reopt.cache.Cddpd_engine.Cost_cache.hits
    incr.se_stats.Reopt.cache.Cddpd_engine.Cost_cache.misses;
  (scratch, incr, clusters)

let write_serve_json path (scratch, incr, clusters) =
  let cfg = serve_server_config ~reuse:true in
  let calls_scratch = serve_stable_sum (fun c -> c.se_whatif) scratch in
  let calls_incr = serve_stable_sum (fun c -> c.se_whatif) incr in
  let reopt_s_scratch = serve_stable_sum_s (fun c -> c.se_reopt_s) scratch in
  let reopt_s_incr = serve_stable_sum_s (fun c -> c.se_reopt_s) incr in
  let stable_windows =
    Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 serve_stable
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-serve/1\",\"rows\":%d,\"value_range\":%d,\
     \"window\":%d,\"pool\":%d,\"history\":%d,\"k\":%d,\"method\":\"%s\",\
     \"jobs\":1,\"cores\":%d,\"phases\":\"%s\",\"cells\":["
    serve_rows serve_value_range serve_window serve_pool_size
    cfg.Server.history cfg.Server.k
    (json_escape (Solution.method_to_string cfg.Server.method_name))
    (Cddpd_util.Parallel.ncpu ())
    (String.concat "" (Array.to_list serve_phases));
  Array.iteri
    (fun i (s : serve_cell) ->
      let c = incr.se_cells.(i) in
      Printf.fprintf oc
        "%s{\"index\":%d,\"phase\":\"%s\",\"stable\":%b,\"clusters\":%d,\
         \"digest_equal\":%b,\"from_scratch\":{\"whatif_calls\":%d,\
         \"reopt_s\":%s},\"incremental\":{\"whatif_calls\":%d,\"reopt_s\":%s,\
         \"exec_columns_reused\":%d,\"clusters_recosted\":%d,\
         \"trans_blocks_reused\":%d}}"
        (if i = 0 then "" else ",")
        i serve_phases.(i) serve_stable.(i) clusters.(i)
        (String.equal s.se_digest c.se_digest)
        s.se_whatif (json_float6 s.se_reopt_s) c.se_whatif
        (json_float6 c.se_reopt_s) c.se_exec_reused c.se_recosted
        c.se_trans_reused)
    scratch.se_cells;
  Printf.fprintf oc
    "],\"stable\":{\"windows\":%d,\"whatif_calls_from_scratch\":%d,\
     \"whatif_calls_incremental\":%d,\"whatif_ratio\":%s,\
     \"reopt_s_from_scratch\":%s,\"reopt_s_incremental\":%s,\"speedup\":%s},"
    stable_windows calls_scratch calls_incr
    (json_float
       (float_of_int calls_scratch /. float_of_int (max 1 calls_incr)))
    (json_float6 reopt_s_scratch) (json_float6 reopt_s_incr)
    (json_float (reopt_s_scratch /. reopt_s_incr));
  let tallies = incr.se_stats.Reopt.reuse in
  let cache = incr.se_stats.Reopt.cache in
  Printf.fprintf oc
    "\"totals\":{\"wall_from_scratch_s\":%s,\"wall_incremental_s\":%s,\
     \"incremental\":{\"reoptimizations\":%d,\"warm_start_bounds\":%d,\
     \"builds\":%d,\"exec_columns_reused\":%d,\"clusters_recosted\":%d,\
     \"trans_blocks_reused\":%d,\"stats_invalidations\":%d,\
     \"cache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\
     \"generations\":%d}},\"from_scratch\":{\"reoptimizations\":%d,\
     \"warm_start_bounds\":%d}},\"digests_identical\":true}\n"
    (json_float6 scratch.se_wall_s) (json_float6 incr.se_wall_s)
    incr.se_stats.Reopt.reoptimizations incr.se_stats.Reopt.warm_start_bounds
    tallies.Problem.Reuse.builds tallies.Problem.Reuse.exec_columns_reused
    tallies.Problem.Reuse.clusters_recosted
    tallies.Problem.Reuse.trans_blocks_reused
    tallies.Problem.Reuse.stats_invalidations
    cache.Cddpd_engine.Cost_cache.hits cache.Cddpd_engine.Cost_cache.misses
    cache.Cddpd_engine.Cost_cache.evictions
    cache.Cddpd_engine.Cost_cache.generations
    scratch.se_stats.Reopt.reoptimizations
    scratch.se_stats.Reopt.warm_start_bounds;
  close_out oc

(* -- ingest suite: serve statement fast path -------------------------------- *)

(* The same phased raw-SQL trace replayed through two serve loops on
   identically-seeded databases: the fast path (statement-template cache,
   one-pass cost keys, plan-choice memo — the defaults) against
   [--no-template-cache --no-plan-cache].  The caches claim bit-identity,
   so every window's control decisions, drift distances, what-if call
   counts and measured I/O must agree between the arms — checked with
   failwith on every run, not just recorded.  The headline is ingest
   statement throughput: per-feed wall time is split into an ingest
   bucket (feeds that only execute and buffer) and a close bucket (the
   one feed per window that also runs drift detection, re-optimization
   and deployment — control work the caches do not claim to speed up and
   both arms pay identically), and the gate is the ratio of ingest
   statements/s, floor [ingest_min_ratio]. *)

module Plan_cache = Cddpd_engine.Plan_cache
module Template = Cddpd_sql.Template

let ingest_rows = 3_000
let ingest_value_range = 50_000
let ingest_window = 1_000
let ingest_pool_size = 48
let ingest_churn_every = 20  (* every 20th statement carries fresh literals *)
let ingest_min_ratio = 5.0

let ingest_phases =
  [| "a"; "a"; "a"; "a"; "a"; "b"; "b"; "b"; "b"; "b"; "a"; "a"; "a"; "a";
     "a"; "a" |]

(* A wide table and wide statements: seven predicates each, so the
   per-statement front-end work (lex, parse, validate, cost-key every
   predicate, plan choice) — the work the fast path caches — dominates
   execution.  Both queried columns are indexed up front, so execution is
   a cheap point seek (almost always empty at this value range) in every
   window of both arms. *)
let ingest_schema =
  Schema.table "t"
    [ ("a", Schema.Int_type); ("b", Schema.Int_type); ("c", Schema.Int_type);
      ("d", Schema.Int_type); ("e", Schema.Int_type); ("f", Schema.Int_type);
      ("g", Schema.Int_type); ("h", Schema.Int_type) ]

let ingest_db () =
  let db = Cddpd_engine.Database.create ~pool_capacity:2048 [ ingest_schema ] in
  Cddpd_engine.Database.build_index db (Index_def.make ~table:"t" ~columns:[ "a" ]);
  Cddpd_engine.Database.build_index db (Index_def.make ~table:"t" ~columns:[ "b" ]);
  Cddpd_engine.Database.load db ~table:"t"
    (Cddpd_workload.Data_gen.uniform_rows ~columns:8 ~rows:ingest_rows
       ~value_range:ingest_value_range ~seed:11);
  Cddpd_engine.Database.analyze db;
  db

let ingest_text column value lo =
  Printf.sprintf
    "SELECT a, b FROM t WHERE %s = %d AND c BETWEEN %d AND %d AND d = %d \
     AND e = %d AND f = %d AND g = %d AND h = %d"
    column value lo (lo + 40)
    (1 + (value mod 97))
    (1 + (lo mod 89))
    (1 + (value mod 83))
    (1 + (lo mod 79))
    (1 + (value mod 73))

(* Per phase column, a fixed pool of prepared-statement-like texts; the
   churn statements between them never repeat a literal, so the template
   layer must rebind, not just replay. *)
let ingest_pool column =
  Array.init ingest_pool_size (fun i ->
      ingest_text column
        (1 + (i * 1_031 mod ingest_value_range))
        (1 + (i * 157 mod ingest_value_range)))

let ingest_churn_text column j =
  ingest_text column
    (1 + (j * 7_919 mod ingest_value_range))
    (1 + (j * 3_571 mod ingest_value_range))

let ingest_trace () =
  let texts = ref [] in
  let j = ref 0 in
  Array.iter
    (fun phase ->
      let pool = ingest_pool phase in
      for i = 0 to ingest_window - 1 do
        incr j;
        texts :=
          (if i mod ingest_churn_every = 0 then ingest_churn_text phase !j
           else pool.(i mod ingest_pool_size))
          :: !texts
      done)
    ingest_phases;
  Array.of_list (List.rev !texts)

let ingest_config ~fast =
  {
    (Server.default_config ~table:"t") with
    Server.window = ingest_window;
    jobs = Some 1;
    template_cache = fast;
    plan_cache = fast;
  }

(* The serve digest plus the window's what-if call count: the caches must
   not change how much cost-model work re-optimization does either. *)
let ingest_window_digest (w : Server.window_report) =
  Printf.sprintf "%s:%d" (serve_window_digest w) w.Server.reopt_whatif_calls

type ingest_arm = {
  in_digests : string array;
  in_ingest_s : float;  (** wall seconds in plain (non-closing) feeds *)
  in_close_s : float;  (** wall seconds in window-closing feeds *)
  in_ingest_statements : int;
  in_statements : int;
  in_exec_io : int;
  in_trans_io : int;
  in_report_digest : string;  (** the final report's counters, bit-precise *)
  in_template : Template.stats option;
  in_plan : Plan_cache.stats;
}

let ingest_run_arm ~fast trace =
  let db = ingest_db () in
  let server = Server.create db (ingest_config ~fast) in
  let digests = ref [] in
  let ingest_s = ref 0.0 in
  let close_s = ref 0.0 in
  let ingest_n = ref 0 in
  Array.iter
    (fun text ->
      let t0 = Unix.gettimeofday () in
      match Server.feed_sql server text with
      | Ok None ->
          ingest_s := !ingest_s +. (Unix.gettimeofday () -. t0);
          incr ingest_n
      | Ok (Some w) ->
          close_s := !close_s +. (Unix.gettimeofday () -. t0);
          digests := ingest_window_digest w :: !digests
      | Error message -> failwith ("ingest: parse error: " ^ message))
    trace;
  let report = Server.finish server in
  let report_digest =
    Printf.sprintf "%d:%d:%d:%d:%d:%d:%d:%d:%d:%s" report.Server.statements
      report.Server.residual_statements report.Server.drift_events
      report.Server.reoptimizations report.Server.deployments
      report.Server.rejections report.Server.rollbacks
      report.Server.exec_logical_io report.Server.trans_logical_io
      (Design.name report.Server.final_design)
  in
  {
    in_digests = Array.of_list (List.rev !digests);
    in_ingest_s = !ingest_s;
    in_close_s = !close_s;
    in_ingest_statements = !ingest_n;
    in_statements = report.Server.statements;
    in_exec_io = report.Server.exec_logical_io;
    in_trans_io = report.Server.trans_logical_io;
    in_report_digest = report_digest;
    in_template = Server.template_stats server;
    in_plan = Cddpd_engine.Database.plan_cache_stats db;
  }

let ingest_rate arm =
  float_of_int arm.in_ingest_statements /. arm.in_ingest_s

let ingest_suite () =
  (* Instrumentation stays ENABLED for both arms: the digests include
     what-if call counts, which are silent otherwise.  Both arms carry
     the same small accounting overhead. *)
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Obs.Registry.disable ())
  @@ fun () ->
  let trace = ingest_trace () in
  Printf.printf
    "trace: %d windows x %d raw-SQL statements, %d pooled texts per phase, \
     1-in-%d literal churn, phases %s\n%!"
    (Array.length ingest_phases) ingest_window ingest_pool_size
    ingest_churn_every
    (String.concat "" (Array.to_list ingest_phases));
  let slow = ingest_run_arm ~fast:false trace in
  let fast = ingest_run_arm ~fast:true trace in
  let n = Array.length ingest_phases in
  if
    Array.length slow.in_digests <> n || Array.length fast.in_digests <> n
  then failwith "ingest: expected one closed window per phase entry";
  Array.iteri
    (fun i d ->
      if not (String.equal d fast.in_digests.(i)) then
        failwith
          (Printf.sprintf
             "ingest: window %d differs between slow and fast arms:\n\
             \  slow %s\n  fast %s"
             i d fast.in_digests.(i)))
    slow.in_digests;
  if not (String.equal slow.in_report_digest fast.in_report_digest) then
    failwith
      (Printf.sprintf
         "ingest: final reports differ:\n  slow %s\n  fast %s"
         slow.in_report_digest fast.in_report_digest);
  let ratio = ingest_rate fast /. ingest_rate slow in
  Printf.printf
    "slow arm (--no-template-cache --no-plan-cache): %d ingest statements \
     in %.3fs (%.0f/s), window closes %.3fs\n%!"
    slow.in_ingest_statements slow.in_ingest_s (ingest_rate slow)
    slow.in_close_s;
  Printf.printf
    "fast arm (defaults):                            %d ingest statements \
     in %.3fs (%.0f/s), window closes %.3fs\n%!"
    fast.in_ingest_statements fast.in_ingest_s (ingest_rate fast)
    fast.in_close_s;
  (match fast.in_template with
  | Some t ->
      Printf.printf
        "template cache: %d exact hits, %d template hits, %d misses, %d \
         skeletons\n%!"
        t.Template.exact_hits t.Template.template_hits t.Template.misses
        t.Template.templates
  | None -> ());
  Printf.printf
    "plan memo: %d hits, %d misses, %d invalidations\n%!"
    fast.in_plan.Plan_cache.hits fast.in_plan.Plan_cache.misses
    fast.in_plan.Plan_cache.invalidations;
  Printf.printf
    "\ningest throughput ratio: %.1fx (floor %.0fx), windows and report \
     bit-identical\n%!"
    ratio ingest_min_ratio;
  if ratio < ingest_min_ratio then
    failwith
      (Printf.sprintf
         "ingest: fast/slow throughput ratio %.2fx below the %.0fx floor \
          (%.0f/s vs %.0f/s)"
         ratio ingest_min_ratio (ingest_rate fast) (ingest_rate slow));
  (slow, fast, ratio)

let write_ingest_json path (slow, fast, ratio) =
  let arm_json a =
    Printf.sprintf
      "{\"statements\":%d,\"ingest_statements\":%d,\"ingest_wall_s\":%s,\
       \"ingest_statements_per_s\":%s,\"close_wall_s\":%s,\
       \"exec_logical_io\":%d,\"trans_logical_io\":%d,\
       \"template_cache\":%s,\"plan_cache\":{\"hits\":%d,\"misses\":%d,\
       \"invalidations\":%d,\"entries\":%d}}"
      a.in_statements a.in_ingest_statements (json_float6 a.in_ingest_s)
      (json_float (ingest_rate a))
      (json_float6 a.in_close_s) a.in_exec_io a.in_trans_io
      (match a.in_template with
      | None -> "null"
      | Some t ->
          Printf.sprintf
            "{\"exact_hits\":%d,\"template_hits\":%d,\"misses\":%d,\
             \"templates\":%d,\"entries\":%d}"
            t.Template.exact_hits t.Template.template_hits t.Template.misses
            t.Template.templates t.Template.entries)
      a.in_plan.Plan_cache.hits a.in_plan.Plan_cache.misses
      a.in_plan.Plan_cache.invalidations a.in_plan.Plan_cache.entries
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-ingest/1\",\"rows\":%d,\"value_range\":%d,\
     \"window\":%d,\"pool\":%d,\"churn_every\":%d,\"phases\":\"%s\",\
     \"jobs\":1,\"cores\":%d,\"fast\":%s,\"slow\":%s,\
     \"throughput_ratio\":%s,\"min_ratio\":%s,\"digests_identical\":true}\n"
    ingest_rows ingest_value_range ingest_window ingest_pool_size
    ingest_churn_every
    (String.concat "" (Array.to_list ingest_phases))
    (Cddpd_util.Parallel.ncpu ())
    (arm_json fast) (arm_json slow) (json_float ratio)
    (json_float ingest_min_ratio);
  close_out oc

let () =
  let ({ experiments; config; metrics; obs_out; micro_out; solvers_out;
         experiments_out = _; configspace_out = _; serve_out = _;
         ingest_out = _; jobs; cell_jobs; cost_cache } as options) =
    parse_args ()
  in
  (* Honesty clamp: more domains than cores measures scheduler thrash,
     not the code, so requested arms are capped at the machine. *)
  let clamp_jobs what j =
    let cores = Cddpd_util.Parallel.ncpu () in
    if j > cores then begin
      Printf.printf "(%s clamped from %d to %d: %d core%s available)\n%!" what
        j cores cores
        (if cores = 1 then "" else "s");
      cores
    end
    else j
  in
  let jobs = Option.map (clamp_jobs "--jobs") jobs in
  let cell_jobs = Option.map (clamp_jobs "--cell-jobs") cell_jobs in
  let options = { options with jobs; cell_jobs } in
  (match jobs with
  | Some j -> Cddpd_util.Parallel.set_default_jobs j
  | None -> ());
  (match cell_jobs with
  | Some j -> Cddpd_experiments.Runner.set_default_cell_jobs j
  | None -> ());
  if not cost_cache then Cddpd_engine.Cost_cache.set_default_enabled false;
  if metrics then Obs.Registry.enable ();
  Printf.printf
    "cddpd benchmark harness — rows=%d value_range=%d scale=%.2f seed=%d \
     jobs=%d cost-cache=%b\n%!"
    config.Setup.rows config.Setup.value_range config.Setup.scale config.Setup.seed
    (match jobs with Some j -> j | None -> Cddpd_util.Parallel.default_jobs ())
    cost_cache;
  let needs_session =
    List.exists
      (fun e ->
        List.mem e [ "table2"; "figure3"; "figure4"; "ablation"; "updates"; "views"; "space"; "micro" ])
      experiments
  in
  let session =
    if needs_session then begin
      let t0 = Unix.gettimeofday () in
      let s = Session.create config in
      Printf.printf "(session loaded in %.1fs)\n%!" (Unix.gettimeofday () -. t0);
      Some s
    end
    else None
  in
  let get_session () =
    match session with Some s -> s | None -> failwith "session required"
  in
  List.iter
    (fun experiment ->
      match experiment with
      | "table1" ->
          banner "Table 1: Workload Query Mixes";
          Table1.print (Table1.run ())
      | "table2" ->
          banner "Table 2: Dynamic Workloads and Physical Designs";
          Table2.print (Table2.run (get_session ()))
      | "figure3" ->
          banner "Figure 3: Relative Execution Times";
          Figure3.print (Figure3.run (get_session ()))
      | "figure4" ->
          banner "Figure 4: Optimizer Runtimes";
          Figure4.print (Figure4.run (get_session ()))
      | "ablation" ->
          banner "Ablation: solver comparison";
          Ablation.print (Ablation.run (get_session ()))
      | "updates" ->
          banner "Updates ablation: queries and updates";
          Updates.print (Updates.run (get_session ()))
      | "views" ->
          banner "Views: scheduling materialized views";
          Views.print (Views.run (get_session ()))
      | "space" ->
          banner "Space bound: SIZE(C) <= b sweep";
          Space_bound.print (Space_bound.run (get_session ()))
      | "micro" ->
          banner "Bechamel micro-benchmarks";
          let rows = micro (get_session ()) in
          let build_s = time_problem_build (get_session ()) in
          Printf.printf "\nProblem.build median wall time: %.3fs (%d runs)\n%!"
            build_s problem_build_runs;
          write_micro_json micro_out ~options ~build_s rows;
          Printf.printf "(wrote micro summary to %s)\n%!" micro_out
      | "solvers" ->
          banner "Solvers: constrained-solver scaling over large design spaces";
          let entries = solvers_suite () in
          write_solvers_json solvers_out entries;
          Printf.printf "\n(wrote solver scaling baseline to %s)\n%!" solvers_out
      | "experiments" ->
          banner "Experiments: parallel cell runner + bulk load";
          experiments_suite ~options ();
          Printf.printf "\n(wrote experiment engine baseline to %s)\n%!"
            options.experiments_out
      | "configspace" ->
          banner "Configspace: design-space scaling pipeline";
          let entries = configspace_suite ~options () in
          write_configspace_json options.configspace_out entries;
          Printf.printf "\n(wrote design-space scaling baseline to %s)\n%!"
            options.configspace_out
      | "serve" ->
          banner "Serve: incremental re-optimization across windows";
          let arms = serve_suite () in
          write_serve_json options.serve_out arms;
          Printf.printf "\n(wrote incremental re-optimization baseline to %s)\n%!"
            options.serve_out
      | "ingest" ->
          banner "Ingest: serve statement fast path";
          let arms = ingest_suite () in
          write_ingest_json options.ingest_out arms;
          Printf.printf "\n(wrote ingest fast-path baseline to %s)\n%!"
            options.ingest_out
      | _ -> usage ())
    experiments;
  if metrics then begin
    Obs.Sink.write_file obs_out Obs.Sink.Json_lines (Obs.Snapshot.capture ());
    Printf.printf "\n(wrote metrics snapshot + span tree to %s)\n%!" obs_out
  end
