(* Benchmark harness: regenerates every table and figure of the paper
   (Voigt/Salem/Lehner, ICDE'08 workshops) and runs a Bechamel
   micro-benchmark per artifact.

   Usage:
     main.exe [table1] [table2] [figure3] [figure4] [ablation] [updates]
              [views] [space] [micro]
              [--rows N] [--value-range N] [--scale F] [--seed N] [--quick]
              [--jobs N] [--no-cost-cache]
              [--no-metrics] [--obs-out FILE] [--micro-out FILE]
   With no experiment named, everything runs.  --quick shrinks the instance
   for a fast smoke run; --rows 2500000 --value-range 500000 approaches the
   paper's physical scale.  --jobs and --no-cost-cache set the
   Problem.build parallelism / memoization knobs (docs/PERFORMANCE.md).

   Observability: instrumentation (lib/obs) is enabled for the run unless
   --no-metrics is given, and a JSON-lines metrics + span dump is written
   to BENCH_obs.json (--obs-out overrides the path) so successive PRs can
   compare perf trajectories.  The Bechamel micro-benchmarks always run
   with instrumentation disabled so their timings stay comparable across
   runs regardless of flags; when "micro" runs, a machine-readable summary
   (per-micro ns/run plus the median Problem.build wall time) is written
   to BENCH_micro.json (--micro-out overrides the path). *)

module Setup = Cddpd_experiments.Setup
module Session = Cddpd_experiments.Session
module Table1 = Cddpd_experiments.Table1
module Table2 = Cddpd_experiments.Table2
module Figure3 = Cddpd_experiments.Figure3
module Figure4 = Cddpd_experiments.Figure4
module Ablation = Cddpd_experiments.Ablation
module Updates = Cddpd_experiments.Updates
module Views = Cddpd_experiments.Views
module Space_bound = Cddpd_experiments.Space_bound
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Simulator = Cddpd_core.Simulator
module Mix = Cddpd_workload.Mix
module Rng = Cddpd_util.Rng

module Obs = Cddpd_obs

type options = {
  experiments : string list;
  config : Setup.config;
  metrics : bool;
  obs_out : string;
  micro_out : string;
  jobs : int option;
  cost_cache : bool;
}

let usage () =
  prerr_endline
    "usage: main.exe \
     [table1|table2|figure3|figure4|ablation|updates|views|space|micro]... \
     [--rows N] [--value-range N] [--scale F] [--seed N] [--quick] \
     [--jobs N] [--no-cost-cache] \
     [--no-metrics] [--obs-out FILE] [--micro-out FILE]";
  exit 2

let parse_args () =
  let experiments = ref [] in
  let config = ref Setup.default_config in
  let metrics = ref true in
  let obs_out = ref "BENCH_obs.json" in
  let micro_out = ref "BENCH_micro.json" in
  let jobs = ref None in
  let cost_cache = ref true in
  let rec go args =
    match args with
    | [] -> ()
    | "--no-metrics" :: rest ->
        metrics := false;
        go rest
    | "--obs-out" :: v :: rest ->
        obs_out := v;
        go rest
    | "--micro-out" :: v :: rest ->
        micro_out := v;
        go rest
    | "--jobs" :: v :: rest ->
        let j = int_of_string v in
        if j < 1 then usage ();
        jobs := Some j;
        go rest
    | "--no-cost-cache" :: rest ->
        cost_cache := false;
        go rest
    | "--rows" :: v :: rest ->
        config := { !config with Setup.rows = int_of_string v };
        go rest
    | "--value-range" :: v :: rest ->
        config := { !config with Setup.value_range = int_of_string v };
        go rest
    | "--scale" :: v :: rest ->
        config := { !config with Setup.scale = float_of_string v };
        go rest
    | "--seed" :: v :: rest ->
        config := { !config with Setup.seed = int_of_string v };
        go rest
    | "--quick" :: rest ->
        config :=
          { !config with Setup.rows = 20_000; value_range = 4_000; scale = 0.2 };
        go rest
    | name :: rest ->
        (match name with
        | "table1" | "table2" | "figure3" | "figure4" | "ablation" | "updates" | "views" | "space" | "micro" ->
            experiments := name :: !experiments
        | _ -> usage ());
        go rest
  in
  (try go (List.tl (Array.to_list Sys.argv)) with
  | Failure _ | Invalid_argument _ -> usage ());
  let experiments =
    match List.rev !experiments with
    | [] -> [ "table1"; "table2"; "figure3"; "figure4"; "ablation"; "updates"; "views"; "space"; "micro" ]
    | list -> list
  in
  {
    experiments;
    config = !config;
    metrics = !metrics;
    obs_out = !obs_out;
    micro_out = !micro_out;
    jobs = !jobs;
    cost_cache = !cost_cache;
  }

let banner title =
  Printf.printf "\n==== %s ====\n\n%!" title

(* -- Bechamel micro-benchmarks: one Test.make per table/figure ----------- *)

let micro (session : Session.t) =
  (* Timings must be comparable run-to-run and with pre-observability
     baselines: measure the uninstrumented path. *)
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () -> if was_enabled then Obs.Registry.enable ())
  @@ fun () ->
  let open Bechamel in
  let problem = session.Session.problem_w1 in
  let solve method_name k () =
    match Optimizer.solve problem ~method_name ?k () with
    | Ok _ -> ()
    | Error _ -> failwith "micro: solver failed"
  in
  (* A one-segment replay instance for the Figure 3 micro-bench: replaying
     the full workload per sample would take minutes. *)
  let segment = session.Session.steps_w1.(0) in
  let schedule =
    match Optimizer.solve problem ~method_name:Solution.Kaware ~k:2 () with
    | Ok s -> Solution.schedule problem s
    | Error _ -> failwith "micro: kaware failed"
  in
  let replay_segment () =
    ignore
      (Simulator.run session.Session.db ~steps:[| segment |]
         ~schedule:[| schedule.(0) |])
  in
  let sample_mix =
    let rng = Rng.create 99 in
    fun () ->
      for _ = 1 to 100 do
        ignore (Mix.sample_query Mix.mix_a ~table:"t" ~value_range:1000 rng)
      done
  in
  let tests =
    Test.make_grouped ~name:"cddpd"
      [
        Test.make ~name:"table1/mix-sample-100" (Staged.stage sample_mix);
        Test.make ~name:"table2/unconstrained"
          (Staged.stage (solve Solution.Unconstrained None));
        Test.make ~name:"table2/kaware-k2" (Staged.stage (solve Solution.Kaware (Some 2)));
        Test.make ~name:"figure3/replay-1-segment" (Staged.stage replay_segment);
        Test.make ~name:"figure4/kaware-k18" (Staged.stage (solve Solution.Kaware (Some 18)));
        Test.make ~name:"figure4/merging-k2" (Staged.stage (solve Solution.Merging (Some 2)));
        Test.make ~name:"ablation/greedy-seq-k2"
          (Staged.stage (solve Solution.Greedy_seq (Some 2)));
        Test.make ~name:"ablation/hybrid-k10" (Staged.stage (solve Solution.Hybrid (Some 10)));
        Test.make ~name:"updates/blend-1-segment"
          (Staged.stage (fun () ->
               ignore
                 (Cddpd_workload.Dml_gen.blend ~update_fraction:0.3
                    ~value_range:session.Session.config.Setup.value_range ~seed:5
                    session.Session.steps_w1.(0))));
        Test.make ~name:"views/maintain-100-inserts"
          (Staged.stage
             (let schema = Setup.schema in
              let pool =
                Cddpd_storage.Buffer_pool.create ~capacity:512
                  (Cddpd_storage.Disk.create ())
              in
              let heap = Cddpd_storage.Heap_file.create pool in
              let rng = Rng.create 3 in
              for _ = 1 to 2000 do
                ignore
                  (Cddpd_storage.Heap_file.insert heap
                     (Array.init 4 (fun _ -> Cddpd_storage.Tuple.Int (Rng.int rng 50))))
              done;
              let view =
                Cddpd_engine.Mat_view.build pool schema heap
                  (Cddpd_catalog.View_def.make ~table:"t" ~group_by:"a")
              in
              fun () ->
                for _ = 1 to 100 do
                  Cddpd_engine.Mat_view.apply_insert view
                    (Array.init 4 (fun _ -> Cddpd_storage.Tuple.Int (Rng.int rng 50)))
                done));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Cddpd_util.Text_table.create
      [ ("micro-benchmark", Cddpd_util.Text_table.Left); ("ns/run", Cddpd_util.Text_table.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      Cddpd_util.Text_table.add_row table [ name; Printf.sprintf "%.0f" ns ])
    rows;
  Cddpd_util.Text_table.print table;
  rows

(* -- machine-readable micro summary (BENCH_micro.json) -------------------- *)

(* Median wall-clock of several Problem.build runs under the session's
   workload and the current --jobs/--no-cost-cache knobs: the headline
   number of the perf trajectory. *)
let problem_build_runs = 3

let time_problem_build (session : Session.t) =
  let times =
    Array.init problem_build_runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Setup.build_problem session.Session.db ~steps:session.Session.steps_w1);
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare times;
  times.(problem_build_runs / 2)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

let write_micro_json path ~(options : options) ~build_s rows =
  let oc = open_out path in
  let jobs =
    match options.jobs with Some j -> j | None -> Cddpd_util.Parallel.default_jobs ()
  in
  Printf.fprintf oc
    "{\"schema\":\"cddpd-bench-micro/1\",\"rows\":%d,\"value_range\":%d,\
     \"scale\":%.3f,\"seed\":%d,\"jobs\":%d,\"cost_cache\":%b,\
     \"problem_build\":{\"runs\":%d,\"median_s\":%s},\"micro\":["
    options.config.Setup.rows options.config.Setup.value_range
    options.config.Setup.scale options.config.Setup.seed jobs options.cost_cache
    problem_build_runs (json_float build_s);
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "%s{\"name\":\"%s\",\"ns_per_run\":%s}"
        (if i = 0 then "" else ",")
        (json_escape name) (json_float ns))
    rows;
  output_string oc "]}\n";
  close_out oc

let () =
  let ({ experiments; config; metrics; obs_out; micro_out; jobs; cost_cache } as
       options) =
    parse_args ()
  in
  (match jobs with
  | Some j -> Cddpd_util.Parallel.set_default_jobs j
  | None -> ());
  if not cost_cache then Cddpd_engine.Cost_cache.set_default_enabled false;
  if metrics then Obs.Registry.enable ();
  Printf.printf
    "cddpd benchmark harness — rows=%d value_range=%d scale=%.2f seed=%d \
     jobs=%d cost-cache=%b\n%!"
    config.Setup.rows config.Setup.value_range config.Setup.scale config.Setup.seed
    (match jobs with Some j -> j | None -> Cddpd_util.Parallel.default_jobs ())
    cost_cache;
  let needs_session =
    List.exists
      (fun e ->
        List.mem e [ "table2"; "figure3"; "figure4"; "ablation"; "updates"; "views"; "space"; "micro" ])
      experiments
  in
  let session =
    if needs_session then begin
      let t0 = Unix.gettimeofday () in
      let s = Session.create config in
      Printf.printf "(session loaded in %.1fs)\n%!" (Unix.gettimeofday () -. t0);
      Some s
    end
    else None
  in
  let get_session () =
    match session with Some s -> s | None -> failwith "session required"
  in
  List.iter
    (fun experiment ->
      match experiment with
      | "table1" ->
          banner "Table 1: Workload Query Mixes";
          Table1.print (Table1.run ())
      | "table2" ->
          banner "Table 2: Dynamic Workloads and Physical Designs";
          Table2.print (Table2.run (get_session ()))
      | "figure3" ->
          banner "Figure 3: Relative Execution Times";
          Figure3.print (Figure3.run (get_session ()))
      | "figure4" ->
          banner "Figure 4: Optimizer Runtimes";
          Figure4.print (Figure4.run (get_session ()))
      | "ablation" ->
          banner "Ablation: solver comparison";
          Ablation.print (Ablation.run (get_session ()))
      | "updates" ->
          banner "Updates ablation: queries and updates";
          Updates.print (Updates.run (get_session ()))
      | "views" ->
          banner "Views: scheduling materialized views";
          Views.print (Views.run (get_session ()))
      | "space" ->
          banner "Space bound: SIZE(C) <= b sweep";
          Space_bound.print (Space_bound.run (get_session ()))
      | "micro" ->
          banner "Bechamel micro-benchmarks";
          let rows = micro (get_session ()) in
          let build_s = time_problem_build (get_session ()) in
          Printf.printf "\nProblem.build median wall time: %.3fs (%d runs)\n%!"
            build_s problem_build_runs;
          write_micro_json micro_out ~options ~build_s rows;
          Printf.printf "(wrote micro summary to %s)\n%!" micro_out
      | _ -> usage ())
    experiments;
  if metrics then begin
    Obs.Sink.write_file obs_out Obs.Sink.Json_lines (Obs.Snapshot.capture ());
    Printf.printf "\n(wrote metrics snapshot + span tree to %s)\n%!" obs_out
  end
