# Convenience targets for the cddpd tree.  Everything here is a thin
# wrapper over dune; CI and humans should get identical behaviour.
#
#   make build        compile everything
#   make check        tier-1 gate: build + tests + lint
#   make lint         typed cddpd-lint over lib/ bin/ bench/ tools/,
#                     ratcheted against lint-baseline.json
#   make lint-update-baseline
#                     regenerate lint-baseline.json after burning down
#                     or adding audited waivers
#   make bench-smoke  quick perf sanity
#   make serve-smoke  replay a canned trace through `cddpd serve --once`
#                     and assert the cddpd-serve/1 JSON status

DUNE ?= dune
JOBS ?=

.PHONY: all build check test lint lint-update-baseline bench-smoke bench serve-smoke clean

all: build

build:
	$(DUNE) build

# Tier-1 gate: full build plus the whole test suite, plus lint.
check:
	$(DUNE) build
	$(DUNE) runtest
	$(DUNE) build @lint

test: check

# Static analysis (see docs/LINTING.md).  The @lint alias type-checks
# the tree first so every module has a fresh .cmt artifact, then runs
# the typed engine and enforces the waived-finding ratchet against
# lint-baseline.json.
lint:
	$(DUNE) build @lint

# After fixing findings (baseline shrinks) or adding audited waivers
# (baseline grows — justify it in the PR), refresh the committed
# baseline.  CI fails if the checked-in file lags behind reality in the
# growth direction.
lint-update-baseline:
	$(DUNE) build @check tools/lint/cddpd_lint.exe
	$(DUNE) exec tools/lint/cddpd_lint.exe -- --root . --write-baseline lint-baseline.json

# Quick perf sanity: micro-benchmarks + a timed Problem.build, writing
# BENCH_micro.json for machine consumption.  Pass JOBS=1 to force the
# sequential path.  The serve suite carries its own hard gates: per-window
# digests must match between the incremental and from-scratch arms, and
# stable-phase windows must hit the what-if-call reduction floor.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --quick $(if $(JOBS),--jobs $(JOBS)) micro solvers experiments configspace serve ingest

bench:
	$(DUNE) exec bench/main.exe -- $(if $(JOBS),--jobs $(JOBS)) all

# End-to-end smoke of the online advisor (docs/SERVE.md): generate a
# short drifting trace, serve it once, and assert the machine-readable
# status against the cddpd-serve/1 golden schema — every key, plus the
# invariant that the drifting trace actually triggered the loop.
serve-smoke:
	$(DUNE) build bin/cddpd.exe
	$(DUNE) exec bin/cddpd.exe -- generate --workload W1 --scale 0.2 --value-range 1000 -o _serve_smoke_trace.sql
	$(DUNE) exec bin/cddpd.exe -- serve --once --input _serve_smoke_trace.sql \
	  --rows 5000 --value-range 1000 --window 100 $(if $(JOBS),--jobs $(JOBS)) \
	  --status > _serve_smoke_status.json
	@grep -q '"schema":"cddpd-serve/1"' _serve_smoke_status.json
	@for key in regime windows statements residual_statements drift_events \
	  reoptimizations deployments rejections rollbacks exec_logical_io \
	  trans_logical_io final_design; do \
	    grep -q "\"$$key\":" _serve_smoke_status.json \
	      || { echo "serve-smoke: missing key $$key"; exit 1; }; \
	  done
	@grep -q '"drift_events":0' _serve_smoke_status.json \
	  && { echo "serve-smoke: expected drift on the canned trace"; exit 1; } || true
	@grep -q '"deployments":0' _serve_smoke_status.json \
	  && { echo "serve-smoke: expected at least one deployment"; exit 1; } || true
	@echo "serve-smoke: OK $$(cat _serve_smoke_status.json)"
	@rm -f _serve_smoke_trace.sql _serve_smoke_status.json

clean:
	$(DUNE) clean
	rm -f BENCH_micro.json BENCH_obs.json _serve_smoke_trace.sql _serve_smoke_status.json
