# Convenience targets for the cddpd tree.  Everything here is a thin
# wrapper over dune; CI and humans should get identical behaviour.
#
#   make build        compile everything
#   make check        tier-1 gate: build + tests + lint
#   make lint         run cddpd-lint over lib/ bin/ bench/ tools/
#   make bench-smoke  quick perf sanity

DUNE ?= dune
JOBS ?=

.PHONY: all build check test lint bench-smoke bench clean

all: build

build:
	$(DUNE) build

# Tier-1 gate: full build plus the whole test suite, plus lint.
check:
	$(DUNE) build
	$(DUNE) runtest
	$(DUNE) build @lint

test: check

# Static analysis (see docs/LINTING.md).  `dune build @lint` is the
# same thing with dune-level caching.
lint:
	$(DUNE) build @lint

# Quick perf sanity: micro-benchmarks + a timed Problem.build, writing
# BENCH_micro.json for machine consumption.  Pass JOBS=1 to force the
# sequential path.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --quick $(if $(JOBS),--jobs $(JOBS)) micro solvers experiments

bench:
	$(DUNE) exec bench/main.exe -- $(if $(JOBS),--jobs $(JOBS)) all

clean:
	$(DUNE) clean
	rm -f BENCH_micro.json BENCH_obs.json
