# Convenience targets for the cddpd tree.  Everything here is a thin
# wrapper over dune; CI and humans should get identical behaviour.

DUNE ?= dune
JOBS ?=

.PHONY: all build check test bench-smoke bench clean

all: build

build:
	$(DUNE) build

# Tier-1 gate: full build plus the whole test suite.
check:
	$(DUNE) build
	$(DUNE) runtest

test: check

# Quick perf sanity: micro-benchmarks + a timed Problem.build, writing
# BENCH_micro.json for machine consumption.  Pass JOBS=1 to force the
# sequential path.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --quick $(if $(JOBS),--jobs $(JOBS)) micro solvers

bench:
	$(DUNE) exec bench/main.exe -- $(if $(JOBS),--jobs $(JOBS)) all

clean:
	$(DUNE) clean
	rm -f BENCH_micro.json BENCH_obs.json
