(* Engine tests: histograms, semantic checking, planner decisions, executor
   correctness against a naive reference implementation, and physical
   design migration. *)

module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module Design = Cddpd_catalog.Design
module Ast = Cddpd_sql.Ast
module Histogram = Cddpd_engine.Histogram
module Table_stats = Cddpd_engine.Table_stats
module Check = Cddpd_engine.Check
module Plan = Cddpd_engine.Plan
module Database = Cddpd_engine.Database
module Rng = Cddpd_util.Rng

(* -- Histogram ----------------------------------------------------------------- *)

let test_histogram_empty () =
  let h = Histogram.build [||] in
  Alcotest.(check int) "no values" 0 (Histogram.n_values h);
  Alcotest.(check (float 0.0)) "eq selectivity" 0.0 (Histogram.selectivity_eq h 5);
  Alcotest.(check bool) "no min" true (Histogram.min_value h = None)

let test_histogram_uniform_eq () =
  (* 1000 values over [0,100): each value ~1% of rows. *)
  let values = Array.init 1000 (fun i -> i mod 100) in
  let h = Histogram.build values in
  let sel = Histogram.selectivity_eq h 42 in
  Alcotest.(check bool) "eq selectivity near 1%" true (sel > 0.005 && sel < 0.02);
  Alcotest.(check int) "distinct" 100 (Histogram.n_distinct h)

let test_histogram_eq_out_of_range () =
  let h = Histogram.build (Array.init 100 (fun i -> i)) in
  let sel = Histogram.selectivity_eq h 10_000 in
  Alcotest.(check bool) "tiny but nonzero" true (sel > 0.0 && sel < 0.01)

let test_histogram_range () =
  let values = Array.init 1000 (fun i -> i) in
  let h = Histogram.build values in
  let sel = Histogram.selectivity_range h ~lo:(Some 0) ~hi:(Some 499) in
  Alcotest.(check bool) "half the rows" true (sel > 0.45 && sel < 0.55);
  let all = Histogram.selectivity_range h ~lo:None ~hi:None in
  Alcotest.(check bool) "open range = all" true (all > 0.99)

let test_histogram_minmax () =
  let h = Histogram.build [| 5; 1; 9; 3 |] in
  Alcotest.(check (option int)) "min" (Some 1) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 9) (Histogram.max_value h)

let test_histogram_skew () =
  (* 90% of rows are value 7. *)
  let values = Array.init 1000 (fun i -> if i < 900 then 7 else i) in
  let h = Histogram.build values in
  let sel7 = Histogram.selectivity_eq h 7 in
  Alcotest.(check bool) "skewed value dominates" true (sel7 > 0.5)

let histogram_range_bounds_prop =
  QCheck.Test.make ~name:"range selectivity in [0,1] and monotone" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 200) (int_bound 1000)) (int_bound 1000))
    (fun (values, split) ->
      let h = Histogram.build (Array.of_list values) in
      let narrow = Histogram.selectivity_range h ~lo:(Some 0) ~hi:(Some split) in
      let wide = Histogram.selectivity_range h ~lo:(Some 0) ~hi:(Some (split + 100)) in
      narrow >= 0.0 && narrow <= 1.0 && wide >= narrow)

(* -- schema / check -------------------------------------------------------------- *)

let schema =
  Schema.table "t"
    [ ("a", Schema.Int_type); ("b", Schema.Int_type); ("name", Schema.Text_type) ]

let test_schema_lookups () =
  Alcotest.(check (option int)) "index of b" (Some 1) (Schema.column_index schema "b");
  Alcotest.(check (option int)) "unknown" None (Schema.column_index schema "zz");
  Alcotest.(check int) "arity" 3 (Schema.arity schema);
  Alcotest.(check bool) "mem" true (Schema.mem_column schema "name")

let test_schema_validate_tuple () =
  Alcotest.(check bool) "valid" true
    (Schema.validate_tuple schema [| Tuple.Int 1; Tuple.Int 2; Tuple.Text "x" |] = Ok ());
  Alcotest.(check bool) "wrong arity" true
    (Result.is_error (Schema.validate_tuple schema [| Tuple.Int 1 |]));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error
       (Schema.validate_tuple schema [| Tuple.Text "x"; Tuple.Int 2; Tuple.Text "y" |]))

let test_check_statement () =
  let ok sql = Check.statement [ schema ] (Cddpd_sql.Parser.parse_exn sql) in
  Alcotest.(check bool) "valid select" true (ok "SELECT a FROM t WHERE b = 1" = Ok ());
  Alcotest.(check bool) "unknown table" true (Result.is_error (ok "SELECT a FROM nope"));
  Alcotest.(check bool) "unknown column" true
    (Result.is_error (ok "SELECT zz FROM t"));
  Alcotest.(check bool) "unknown predicate column" true
    (Result.is_error (ok "SELECT a FROM t WHERE zz = 1"));
  Alcotest.(check bool) "type mismatch" true
    (Result.is_error (ok "SELECT a FROM t WHERE a = 'text'"));
  Alcotest.(check bool) "text ok" true (ok "SELECT a FROM t WHERE name = 'x'" = Ok ());
  Alcotest.(check bool) "insert ok" true (ok "INSERT INTO t VALUES (1, 2, 'x')" = Ok ());
  Alcotest.(check bool) "insert arity" true
    (Result.is_error (ok "INSERT INTO t VALUES (1, 2)"));
  Alcotest.(check bool) "insert type" true
    (Result.is_error (ok "INSERT INTO t VALUES (1, 'x', 'y')"))

(* -- database fixtures ------------------------------------------------------------ *)

let paper_schema =
  Schema.table "t"
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let make_db ?(rows = 3000) ?(value_range = 50) () =
  let db = Database.create ~pool_capacity:1024 [ paper_schema ] in
  let rng = Rng.create 7 in
  let data =
    Array.init rows (fun _ ->
        Array.init 4 (fun _ -> Tuple.Int (Rng.int rng value_range)))
  in
  Database.load db ~table:"t" data;
  (db, data)

let index columns = Index_def.make ~table:"t" ~columns

let rows_sorted result = List.sort compare result.Database.rows

(* Reference implementation: filter + project in plain OCaml. *)
let reference_select data (select : Ast.select) =
  let pos c = Schema.column_index_exn paper_schema c in
  let matches tuple =
    List.for_all
      (fun pred ->
        match pred with
        | Ast.Cmp { column; op; value } -> (
            let v = tuple.(pos column) in
            let c = Tuple.compare_value v value in
            match op with
            | Ast.Eq -> c = 0
            | Ast.Lt -> c < 0
            | Ast.Le -> c <= 0
            | Ast.Gt -> c > 0
            | Ast.Ge -> c >= 0)
        | Ast.Between { column; low; high } ->
            Tuple.compare_value tuple.(pos column) low >= 0
            && Tuple.compare_value tuple.(pos column) high <= 0)
      select.Ast.where
  in
  let project tuple =
    match select.Ast.projection with
    | Ast.Star -> tuple
    | Ast.Columns cs -> Array.of_list (List.map (fun c -> tuple.(pos c)) cs)
  in
  Array.to_list data |> List.filter matches |> List.map project |> List.sort compare

let check_query db data sql =
  let statement = Cddpd_sql.Parser.parse_exn sql in
  let select =
    match statement with
    | Ast.Select s -> s
    | Ast.Select_agg _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
        Alcotest.fail "not select"
  in
  let result = Database.execute db statement in
  let expected = reference_select data select in
  Alcotest.(check int)
    (Printf.sprintf "row count for %s" sql)
    (List.length expected) (List.length result.Database.rows);
  if rows_sorted result <> expected then Alcotest.failf "rows differ for %s" sql

(* -- planner decisions -------------------------------------------------------------- *)

let plan_of db sql =
  let result = Database.execute_sql db sql in
  match result.Database.plan with
  | Some plan -> plan.Plan.path
  | None -> Alcotest.fail "expected a plan"

let test_plan_no_index_scans () =
  let db, _ = make_db () in
  match plan_of db "SELECT a FROM t WHERE a = 5" with
  | Plan.Full_scan -> ()
  | Plan.Index_seek _ | Plan.Index_only_scan _ | Plan.View_probe _ ->
      Alcotest.fail "no index available"

let test_plan_seek_with_index () =
  let db, _ = make_db () in
  Database.build_index db (index [ "a" ]);
  match plan_of db "SELECT a FROM t WHERE a = 5" with
  | Plan.Index_seek { covering; _ } ->
      Alcotest.(check bool) "covering" true covering
  | Plan.Full_scan | Plan.Index_only_scan _ | Plan.View_probe _ ->
      Alcotest.fail "expected a covering seek"

let test_plan_noncovering_seek () =
  (* Needs selective data: with few matching rows the rid fetches are
     cheaper than a scan. *)
  let db, _ = make_db ~value_range:5000 () in
  Database.build_index db (index [ "a" ]);
  match plan_of db "SELECT b FROM t WHERE a = 5" with
  | Plan.Index_seek { covering; _ } ->
      Alcotest.(check bool) "not covering" false covering
  | Plan.Full_scan | Plan.Index_only_scan _ | Plan.View_probe _ ->
      Alcotest.fail "expected a seek"

let test_plan_index_only_scan () =
  (* I(a,b) answers b-queries via a leaf scan — the key mechanism behind the
     paper's design choices. *)
  let db, _ = make_db () in
  Database.build_index db (index [ "a"; "b" ]);
  match plan_of db "SELECT b FROM t WHERE b = 5" with
  | Plan.Index_only_scan { index } ->
      Alcotest.(check string) "uses I(a,b)" "I(a,b)" (Index_def.name index)
  | Plan.Full_scan | Plan.Index_seek _ | Plan.View_probe _ ->
      Alcotest.fail "expected an index-only scan"

let test_plan_star_never_covered () =
  let db, _ = make_db ~value_range:5000 () in
  Database.build_index db (index [ "a"; "b" ]);
  match plan_of db "SELECT * FROM t WHERE a = 5" with
  | Plan.Index_seek { covering; _ } -> Alcotest.(check bool) "not covering" false covering
  | Plan.Full_scan | Plan.Index_only_scan _ | Plan.View_probe _ ->
      Alcotest.fail "expected a seek"

let test_plan_composite_prefix_and_range () =
  let db, _ = make_db () in
  Database.build_index db (index [ "a"; "b" ]);
  match plan_of db "SELECT a, b FROM t WHERE a = 5 AND b BETWEEN 3 AND 9" with
  | Plan.Index_seek { eq_prefix = [ 5 ]; range = Some (Some _, Some _); covering = true; _ }
    -> ()
  | _ -> Alcotest.fail "expected covering seek with prefix and range"

let test_plan_prefers_seek_over_scan () =
  let db, _ = make_db () in
  Database.build_index db (index [ "b" ]);
  Database.build_index db (index [ "a"; "b" ]);
  (* b-queries: the dedicated I(b) seek should beat the I(a,b) leaf scan. *)
  match plan_of db "SELECT b FROM t WHERE b = 5" with
  | Plan.Index_seek { index; _ } ->
      Alcotest.(check string) "uses I(b)" "I(b)" (Index_def.name index)
  | Plan.Full_scan | Plan.Index_only_scan _ | Plan.View_probe _ ->
      Alcotest.fail "expected seek on I(b)"

(* -- executor correctness -------------------------------------------------------------- *)

let queries_to_check =
  [
    "SELECT a FROM t WHERE a = 5";
    "SELECT b FROM t WHERE b = 7";
    "SELECT a, b FROM t WHERE a = 3";
    "SELECT * FROM t WHERE c = 11";
    "SELECT d FROM t WHERE d > 45";
    "SELECT a FROM t WHERE a = 9 AND b = 9";
    "SELECT a, b FROM t WHERE a = 2 AND b BETWEEN 10 AND 30";
    "SELECT c FROM t WHERE c BETWEEN 0 AND 5";
    "SELECT a FROM t WHERE a = 12345";
    "SELECT a FROM t";
  ]

let run_queries_under_design design_columns () =
  let db, data = make_db () in
  List.iter (fun cols -> Database.build_index db (index cols)) design_columns;
  List.iter (check_query db data) queries_to_check

let test_exec_no_indexes () = run_queries_under_design [] ()

let test_exec_single_indexes () = run_queries_under_design [ [ "a" ]; [ "b" ] ] ()

let test_exec_composite_indexes () =
  run_queries_under_design [ [ "a"; "b" ]; [ "c"; "d" ] ] ()

let test_exec_all_indexes () =
  run_queries_under_design [ [ "a" ]; [ "b" ]; [ "c" ]; [ "d" ]; [ "a"; "b" ]; [ "c"; "d" ] ] ()

(* Property: every query answered identically under random designs. *)
let exec_design_independent_prop =
  QCheck.Test.make ~name:"results independent of physical design" ~count:30
    QCheck.(
      pair
        (QCheck.make
           QCheck.Gen.(
             map3
               (fun col v proj -> (col, v, proj))
               (oneofl [ "a"; "b"; "c"; "d" ])
               (int_bound 60)
               (oneofl [ `Same; `Other; `Star ])))
        (QCheck.make
           QCheck.Gen.(
             oneofl
               [ []; [ [ "a" ] ]; [ [ "a"; "b" ] ]; [ [ "c"; "d" ]; [ "b" ] ];
                 [ [ "a" ]; [ "b" ]; [ "c" ]; [ "d" ] ] ])))
    (fun ((col, v, proj), design) ->
      let db, data = make_db ~rows:800 () in
      let projection =
        match proj with
        | `Same -> col
        | `Other -> if col = "a" then "b" else "a"
        | `Star -> "*"
      in
      let sql = Printf.sprintf "SELECT %s FROM t WHERE %s = %d" projection col v in
      let before = Database.execute_sql db sql in
      List.iter (fun cols -> Database.build_index db (index cols)) design;
      let after = Database.execute_sql db sql in
      ignore data;
      rows_sorted before = rows_sorted after)

let test_exec_insert_updates_indexes () =
  let db, _ = make_db ~rows:500 () in
  Database.build_index db (index [ "a" ]);
  let before = Database.execute_sql db "SELECT a FROM t WHERE a = 49" in
  ignore (Database.execute_sql db "INSERT INTO t VALUES (49, 1, 2, 3)");
  let after = Database.execute_sql db "SELECT a FROM t WHERE a = 49" in
  Alcotest.(check int) "one more row"
    (List.length before.Database.rows + 1)
    (List.length after.Database.rows);
  (* Still answered by the index. *)
  (match after.Database.plan with
  | Some { Plan.path = Plan.Index_seek _; _ } -> ()
  | _ -> Alcotest.fail "expected index seek");
  Alcotest.(check int) "row_count bumped" 501 (Database.row_count db "t")

let test_exec_io_measured () =
  let db, _ = make_db () in
  let scan = Database.execute_sql db "SELECT a FROM t WHERE a = 5" in
  Database.build_index db (index [ "a" ]);
  let seek = Database.execute_sql db "SELECT a FROM t WHERE a = 5" in
  Alcotest.(check bool) "seek needs far less I/O" true
    (seek.Database.logical_io * 5 < scan.Database.logical_io);
  Alcotest.(check bool) "scan touches all pages" true (scan.Database.logical_io > 10)

let test_exec_semantic_error_raises () =
  let db, _ = make_db () in
  Alcotest.(check bool) "bad column rejected" true
    (match Database.execute_sql db "SELECT zz FROM t" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* -- DML: DELETE / UPDATE -------------------------------------------------------------- *)

let count_rows db sql = List.length (Database.execute_sql db sql).Database.rows

let test_delete_basic () =
  let db, data = make_db ~rows:1000 () in
  let target = 7 in
  let expected =
    Array.to_list data
    |> List.filter (fun r -> r.(0) = Tuple.Int target)
    |> List.length
  in
  let result = Database.execute_sql db (Printf.sprintf "DELETE FROM t WHERE a = %d" target) in
  Alcotest.(check int) "affected count" expected result.Database.affected;
  Alcotest.(check int) "rows gone" 0
    (count_rows db (Printf.sprintf "SELECT a FROM t WHERE a = %d" target));
  Alcotest.(check int) "row_count updated" (1000 - expected) (Database.row_count db "t")

let test_delete_uses_index_and_maintains_it () =
  let db, _ = make_db ~rows:2000 ~value_range:500 () in
  Database.build_index db (index [ "a" ]);
  Database.build_index db (index [ "a"; "b" ]);
  let before = count_rows db "SELECT a FROM t WHERE a = 42" in
  Alcotest.(check bool) "something to delete" true (before > 0);
  let result = Database.execute_sql db "DELETE FROM t WHERE a = 42" in
  (* The find phase goes through an index (selective predicate). *)
  (match result.Database.plan with
  | Some { Plan.path = Plan.Index_seek _; _ } -> ()
  | Some { Plan.path = _; _ } | None -> Alcotest.fail "expected an index-driven delete");
  (* All access paths agree the rows are gone (indexes were maintained). *)
  Alcotest.(check int) "seek finds none" 0 (count_rows db "SELECT a FROM t WHERE a = 42");
  Database.migrate_to db Cddpd_catalog.Design.empty;
  Alcotest.(check int) "scan finds none" 0 (count_rows db "SELECT a FROM t WHERE a = 42")

let test_delete_everything () =
  let db, _ = make_db ~rows:300 () in
  let result = Database.execute_sql db "DELETE FROM t" in
  Alcotest.(check int) "all rows" 300 result.Database.affected;
  Alcotest.(check int) "empty table" 0 (Database.row_count db "t")

let test_update_basic () =
  let db, data = make_db ~rows:1000 () in
  let expected =
    Array.to_list data |> List.filter (fun r -> r.(1) = Tuple.Int 9) |> List.length
  in
  let result = Database.execute_sql db "UPDATE t SET a = 777777 WHERE b = 9" in
  Alcotest.(check int) "affected" expected result.Database.affected;
  Alcotest.(check int) "rows rewritten" expected
    (count_rows db "SELECT a FROM t WHERE a = 777777");
  Alcotest.(check int) "row count preserved" 1000 (Database.row_count db "t")

let test_update_maintains_indexes () =
  let db, _ = make_db ~rows:2000 ~value_range:500 () in
  Database.build_index db (index [ "a" ]);
  let moved = count_rows db "SELECT a FROM t WHERE a = 13" in
  ignore (Database.execute_sql db "UPDATE t SET a = 499999 WHERE a = 13");
  (* The index must reflect both the removal and the new key. *)
  Alcotest.(check int) "old key gone" 0 (count_rows db "SELECT a FROM t WHERE a = 13");
  Alcotest.(check int) "new key findable" moved
    (count_rows db "SELECT a FROM t WHERE a = 499999");
  let result = Database.execute_sql db "SELECT a FROM t WHERE a = 499999" in
  match result.Database.plan with
  | Some { Plan.path = Plan.Index_seek _; _ } -> ()
  | Some { Plan.path = _; _ } | None -> Alcotest.fail "expected an index seek"

let test_update_then_reference_agrees () =
  (* Full workload equivalence after a batch of mixed DML. *)
  let db, _ = make_db ~rows:1500 () in
  Database.build_index db (index [ "c"; "d" ]);
  ignore (Database.execute_sql db "UPDATE t SET d = 1 WHERE c = 5");
  ignore (Database.execute_sql db "DELETE FROM t WHERE c = 6");
  ignore (Database.execute_sql db "INSERT INTO t VALUES (1, 2, 6, 4)");
  (* Compare indexed vs scan answers for the touched region. *)
  let with_index = count_rows db "SELECT c, d FROM t WHERE c BETWEEN 4 AND 7" in
  Database.migrate_to db Cddpd_catalog.Design.empty;
  let without_index = count_rows db "SELECT c, d FROM t WHERE c BETWEEN 4 AND 7" in
  Alcotest.(check int) "index and heap agree after DML" without_index with_index

(* -- materialized views ----------------------------------------------------------------- *)

module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure

let view group_by = View_def.make ~table:"t" ~group_by

(* Reference aggregation over the raw data. *)
let reference_groups data ~group_pos ~agg =
  let groups = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let g = Tuple.int_exn row.(group_pos) in
      let delta = match agg with `Count -> 1 | `Sum pos -> Tuple.int_exn row.(pos) in
      Hashtbl.replace groups g (delta + Option.value ~default:0 (Hashtbl.find_opt groups g)))
    data;
  Hashtbl.fold (fun g v acc -> (g, v) :: acc) groups [] |> List.sort compare

let rows_as_pairs result =
  List.map
    (fun row ->
      match row with
      | [| Tuple.Int g; Tuple.Int v |] -> (g, v)
      | _ -> Alcotest.fail "unexpected aggregate row shape")
    result.Database.rows
  |> List.sort compare

let test_view_count_matches_scan () =
  let db, data = make_db ~rows:2000 ~value_range:50 () in
  let sql = "SELECT a, COUNT(*) FROM t GROUP BY a" in
  let scan_result = Database.execute_sql db sql in
  (match scan_result.Database.plan with
  | Some { Plan.path = Plan.Full_scan; _ } -> ()
  | _ -> Alcotest.fail "expected scan aggregation without a view");
  Database.migrate_to db (Design.empty |> Design.add_view (view "a"));
  let view_result = Database.execute_sql db sql in
  (match view_result.Database.plan with
  | Some { Plan.path = Plan.View_probe { group_value = None; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected a view scan");
  Alcotest.(check bool) "same answers" true
    (rows_as_pairs scan_result = rows_as_pairs view_result);
  Alcotest.(check bool) "matches reference" true
    (rows_as_pairs view_result = reference_groups data ~group_pos:0 ~agg:`Count);
  Alcotest.(check bool) "view is cheaper" true
    (view_result.Database.logical_io < scan_result.Database.logical_io)

let test_view_sum_and_probe () =
  let db, data = make_db ~rows:2000 ~value_range:50 () in
  Database.migrate_to db (Design.empty |> Design.add_view (view "c"));
  let result = Database.execute_sql db "SELECT c, SUM(b) FROM t WHERE c = 7 GROUP BY c" in
  (match result.Database.plan with
  | Some { Plan.path = Plan.View_probe { group_value = Some 7; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected a view probe");
  let expected =
    reference_groups data ~group_pos:2 ~agg:(`Sum 1)
    |> List.filter (fun (g, _) -> g = 7)
  in
  Alcotest.(check bool) "probe matches reference" true (rows_as_pairs result = expected)

let test_view_not_used_for_filtered_aggregates () =
  (* A predicate on a non-group column disqualifies the view. *)
  let db, _ = make_db ~rows:1000 () in
  Database.migrate_to db (Design.empty |> Design.add_view (view "a"));
  let result = Database.execute_sql db "SELECT a, COUNT(*) FROM t WHERE b = 3 GROUP BY a" in
  match result.Database.plan with
  | Some { Plan.path = Plan.Full_scan; _ } -> ()
  | _ -> Alcotest.fail "expected scan aggregation"

let test_view_maintained_under_dml () =
  let db, _ = make_db ~rows:1500 ~value_range:40 () in
  Database.migrate_to db (Design.empty |> Design.add_view (view "a"));
  ignore (Database.execute_sql db "INSERT INTO t VALUES (7, 1, 1, 1)");
  ignore (Database.execute_sql db "INSERT INTO t VALUES (7, 1, 1, 1)");
  ignore (Database.execute_sql db "DELETE FROM t WHERE a = 8");
  ignore (Database.execute_sql db "UPDATE t SET a = 9 WHERE a = 10");
  let sql = "SELECT a, COUNT(*) FROM t GROUP BY a" in
  let via_view = Database.execute_sql db sql in
  (match via_view.Database.plan with
  | Some { Plan.path = Plan.View_probe _; _ } -> ()
  | _ -> Alcotest.fail "expected the view");
  Database.migrate_to db Design.empty;
  let via_scan = Database.execute_sql db sql in
  Alcotest.(check bool) "view stayed consistent through DML" true
    (rows_as_pairs via_view = rows_as_pairs via_scan)

let test_view_on_text_column_rejected () =
  let db =
    Database.create
      [ Schema.table "s" [ ("x", Schema.Int_type); ("n", Schema.Text_type) ] ]
  in
  Database.load db ~table:"s" [| [| Tuple.Int 1; Tuple.Text "a" |] |];
  Alcotest.(check bool) "text group rejected" true
    (match
       Database.migrate_to db
         (Design.empty |> Design.add_view (View_def.make ~table:"s" ~group_by:"n"))
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_view_in_design_name () =
  let d = Design.empty |> Design.add (index [ "a" ]) |> Design.add_view (view "c") in
  Alcotest.(check string) "design name" "{I(a), MV(c)}" (Design.name d);
  Alcotest.(check int) "cardinality" 2 (Design.cardinality d);
  Alcotest.(check int) "one index" 1 (List.length (Design.indexes d));
  Alcotest.(check int) "one view" 1 (List.length (Design.views d))

(* Model-based property: a view maintained through random DML always equals
   fresh aggregation of the surviving rows. *)
let view_maintenance_prop =
  QCheck.Test.make ~name:"view stays consistent under random insert/delete" ~count:40
    QCheck.(list (pair (int_bound 8) bool))
    (fun ops ->
      let db = Database.create ~pool_capacity:512 [ paper_schema ] in
      Database.load db ~table:"t"
        (Array.init 2048 (fun i ->
             [| Tuple.Int (i mod 8); Tuple.Int i; Tuple.Int 0; Tuple.Int 0 |]));
      Database.migrate_to db (Design.empty |> Design.add_view (view "a"));
      List.iter
        (fun (g, is_insert) ->
          if is_insert then
            ignore (Database.execute_sql db (Printf.sprintf "INSERT INTO t VALUES (%d, 1, 2, 3)" g))
          else
            ignore (Database.execute_sql db (Printf.sprintf "DELETE FROM t WHERE a = %d" g)))
        ops;
      let sql = "SELECT a, SUM(b) FROM t GROUP BY a" in
      let via_view = Database.execute_sql db sql in
      (match via_view.Database.plan with
      | Some { Plan.path = Plan.View_probe _; _ } -> ()
      | _ -> failwith "expected the view");
      Database.migrate_to db Design.empty;
      let via_scan = Database.execute_sql db sql in
      rows_as_pairs via_view = rows_as_pairs via_scan)

(* -- plan-choice memo --------------------------------------------------------------- *)

module Cost_key = Cddpd_engine.Cost_key
module Plan_cache = Cddpd_engine.Plan_cache

(* Drive the same statement through two identically-built databases — one
   passing [statement_key] (memo engaged), one never — and demand
   bit-identical plans, rows and I/O. *)
let memo_step memo fresh sql =
  let stmt = Cddpd_sql.Parser.parse_exn sql in
  let key = Cost_key.statement (Database.table_stats memo "t") stmt in
  (* keep the I/O comparison apples-to-apples: materialize any stale
     statistics outside the measured execution on both sides *)
  ignore (Database.table_stats fresh "t");
  let m = Database.execute ~statement_key:key memo stmt in
  let f = Database.execute fresh stmt in
  if m.Database.plan <> f.Database.plan then Alcotest.failf "plans differ for %s" sql;
  Alcotest.(check int)
    (Printf.sprintf "io for %s" sql)
    f.Database.logical_io m.Database.logical_io;
  if rows_sorted m <> rows_sorted f then Alcotest.failf "rows differ for %s" sql

let test_plan_memo_equiv () =
  let mk () =
    let db, _ = make_db ~rows:2000 ~value_range:5000 () in
    Database.build_index db (index [ "a" ]);
    Database.analyze db;
    db
  in
  let memo = mk () in
  let fresh = mk () in
  let queries values =
    List.iter
      (fun v -> memo_step memo fresh (Printf.sprintf "SELECT b FROM t WHERE a = %d" v))
      values;
    List.iter
      (fun v ->
        memo_step memo fresh
          (Printf.sprintf "SELECT a FROM t WHERE a BETWEEN %d AND %d" v (v + 50)))
      values
  in
  (* Repeats with fresh literals: memo hits must rebind, not replay. *)
  queries [ 5; 9; 13; 5; 9 ];
  let warm = Database.plan_cache_stats memo in
  Alcotest.(check bool) "memo hits happened" true (warm.Plan_cache.hits > 0);
  (* A design change fences the memo; choices must track the new design. *)
  Database.build_index memo (index [ "a"; "b" ]);
  Database.build_index fresh (index [ "a"; "b" ]);
  queries [ 5; 7; 5 ];
  let after_design = Database.plan_cache_stats memo in
  Alcotest.(check bool) "design change invalidated" true
    (after_design.Plan_cache.invalidations >= 1);
  (* DML bumps the statistics generation: keys computed under the new
     snapshot miss the memo and the fresh choices must still agree. *)
  ignore (Database.execute_sql memo "INSERT INTO t VALUES (1, 2, 3, 4)");
  ignore (Database.execute_sql fresh "INSERT INTO t VALUES (1, 2, 3, 4)");
  queries [ 5; 9; 5 ]

let test_plan_memo_view_probe () =
  let mk () =
    let db, _ = make_db ~rows:2000 ~value_range:50 () in
    Database.migrate_to db (Design.empty |> Design.add_view (view "a"));
    db
  in
  let memo = mk () in
  let fresh = mk () in
  List.iter
    (fun g ->
      let sql = Printf.sprintf "SELECT a, COUNT(*) FROM t WHERE a = %d GROUP BY a" g in
      memo_step memo fresh sql;
      (* The memoized probe must carry THIS statement's group value. *)
      match (Database.execute ~statement_key:"probe" memo (Cddpd_sql.Parser.parse_exn sql)).Database.plan with
      | Some { Plan.path = Plan.View_probe { group_value = Some v; _ }; _ } ->
          Alcotest.(check int) "rebound group value" g v
      | _ -> Alcotest.fail "expected a view probe")
    [ 3; 4; 3; 5 ]

let test_stats_generation_fence () =
  let db, _ = make_db ~rows:100 () in
  let g0 = Database.stats_generation db "t" in
  ignore (Database.table_stats db "t");
  Alcotest.(check int) "lazy materialization does not bump" g0
    (Database.stats_generation db "t");
  ignore (Database.execute_sql db "INSERT INTO t VALUES (1, 2, 3, 4)");
  Alcotest.(check bool) "DML bumps" true (Database.stats_generation db "t" > g0);
  let g1 = Database.stats_generation db "t" in
  Database.analyze db;
  Alcotest.(check bool) "analyze bumps" true (Database.stats_generation db "t" > g1)

(* Failure-injection-adjacent stress: a buffer pool far smaller than the
   working set forces eviction on every scan; answers must not change and
   physical reads must appear. *)
let test_tiny_pool_correctness () =
  let make capacity =
    let db = Database.create ~pool_capacity:capacity [ paper_schema ] in
    let rng = Rng.create 21 in
    Database.load db ~table:"t"
      (Array.init 3000 (fun _ -> Array.init 4 (fun _ -> Tuple.Int (Rng.int rng 300))));
    Database.build_index db (index [ "a"; "b" ]);
    db
  in
  let big = make 4096 in
  let tiny = make 8 in
  List.iter
    (fun sql ->
      let expected = rows_sorted (Database.execute_sql big sql) in
      let got = Database.execute_sql tiny sql in
      if rows_sorted got <> expected then Alcotest.failf "answers differ for %s" sql)
    [
      "SELECT a FROM t WHERE a = 5";
      "SELECT b FROM t WHERE b = 9";
      "SELECT * FROM t WHERE c = 100";
      "SELECT a, COUNT(*) FROM t GROUP BY a";
    ];
  let result = Database.execute_sql tiny "SELECT c FROM t WHERE c = 7" in
  Alcotest.(check bool) "thrashing pool reads from disk" true
    (result.Database.physical_io > 0)

(* -- migration ---------------------------------------------------------------------- *)

let test_migrate_to () =
  let db, _ = make_db ~rows:500 () in
  let d1 = Design.of_list [ index [ "a" ]; index [ "c"; "d" ] ] in
  Database.migrate_to db d1;
  Alcotest.(check bool) "design materialised" true (Design.equal d1 (Database.current_design db));
  let d2 = Design.of_list [ index [ "b" ] ] in
  Database.migrate_to db d2;
  Alcotest.(check bool) "design replaced" true (Design.equal d2 (Database.current_design db));
  Database.migrate_to db Design.empty;
  Alcotest.(check bool) "back to empty" true
    (Design.is_empty (Database.current_design db))

let test_build_index_idempotent () =
  let db, _ = make_db ~rows:200 () in
  Database.build_index db (index [ "a" ]);
  Database.build_index db (index [ "a" ]);
  Alcotest.(check int) "one index" 1 (Design.cardinality (Database.current_design db))

(* -- bulk load ---------------------------------------------------------------------- *)

(* Loading into a table with prebuilt indexes/views takes the bulk path
   (heap-first insert + bulk-built index rebuilds); ?bulk:false forces the
   old row-at-a-time maintenance.  The two must be observationally equal. *)
let bulk_test_data rows =
  let rng = Rng.create 11 in
  Array.init rows (fun _ -> Array.init 4 (fun _ -> Tuple.Int (Rng.int rng 60)))

let make_preindexed_db ~bulk data =
  let db = Database.create ~pool_capacity:1024 [ paper_schema ] in
  Database.migrate_to db
    (Design.empty
    |> Design.add (index [ "a" ])
    |> Design.add (index [ "a"; "b" ])
    |> Design.add_view (view "c"));
  Database.load ~bulk db ~table:"t" data;
  db

let test_bulk_load_matches_row_at_a_time () =
  let data = bulk_test_data 4000 in
  let bulk_db = make_preindexed_db ~bulk:true data in
  let row_db = make_preindexed_db ~bulk:false data in
  Alcotest.(check int) "row counts agree" (Database.row_count row_db "t")
    (Database.row_count bulk_db "t");
  Alcotest.(check bool) "designs agree" true
    (Design.equal (Database.current_design row_db) (Database.current_design bulk_db));
  List.iter
    (fun sql ->
      let a = Database.execute_sql bulk_db sql in
      let b = Database.execute_sql row_db sql in
      let path r =
        match r.Database.plan with Some p -> Some p.Plan.path | None -> None
      in
      if path a <> path b then Alcotest.failf "plans differ for %s" sql;
      if rows_sorted a <> rows_sorted b then Alcotest.failf "rows differ for %s" sql)
    [
      "SELECT a, b FROM t WHERE a = 7";
      "SELECT a FROM t WHERE a BETWEEN 5 AND 9";
      "SELECT * FROM t WHERE d = 3";
      "SELECT c, COUNT(*) FROM t GROUP BY c";
      "SELECT c, SUM(b) FROM t WHERE c = 4 GROUP BY c";
    ]

let test_bulk_load_indexes_maintained_after () =
  (* Bulk-built indexes must keep absorbing DML like incrementally built
     ones. *)
  let db = make_preindexed_db ~bulk:true (bulk_test_data 1000) in
  ignore (Database.execute_sql db "INSERT INTO t VALUES (7, 7, 7, 7)");
  ignore (Database.execute_sql db "DELETE FROM t WHERE a = 9");
  let via_index = Database.execute_sql db "SELECT a, b FROM t WHERE a = 7" in
  (match via_index.Database.plan with
  | Some { Plan.path = Plan.Index_seek _ | Plan.Index_only_scan _; _ } -> ()
  | _ -> Alcotest.fail "expected the index");
  Database.migrate_to db Design.empty;
  let via_scan = Database.execute_sql db "SELECT a, b FROM t WHERE a = 7" in
  Alcotest.(check bool) "index agrees with heap after DML" true
    (rows_sorted via_index = rows_sorted via_scan)

let test_bulk_load_huge_value_spread () =
  (* Key components spanning nearly the whole int range defeat the packed
     single-word sort; the comparator fallback must produce the same
     state. *)
  let data =
    Array.init 500 (fun i ->
        let v = if i mod 2 = 0 then max_int - i else min_int + i in
        [| Tuple.Int v; Tuple.Int (i - 250); Tuple.Int 0; Tuple.Int 0 |])
  in
  let bulk_db = make_preindexed_db ~bulk:true data in
  let row_db = make_preindexed_db ~bulk:false data in
  List.iter
    (fun sql ->
      let a = Database.execute_sql bulk_db sql in
      let b = Database.execute_sql row_db sql in
      if rows_sorted a <> rows_sorted b then Alcotest.failf "rows differ for %s" sql)
    [
      Printf.sprintf "SELECT a, b FROM t WHERE a = %d" (max_int - 2);
      "SELECT a FROM t WHERE b BETWEEN -10 AND 10";
    ]

let test_bulk_load_rejects_whole_batch () =
  (* The bulk path validates every row up front: one bad row rejects the
     whole batch, leaving the table unchanged. *)
  let db = Database.create ~pool_capacity:256 [ paper_schema ] in
  Database.build_index db (index [ "a" ]);
  let bad =
    [| [| Tuple.Int 1; Tuple.Int 2; Tuple.Int 3; Tuple.Int 4 |]; [| Tuple.Int 1 |] |]
  in
  Alcotest.(check bool) "bad row rejected" true
    (match Database.load db ~table:"t" bad with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "nothing loaded" 0 (Database.row_count db "t")

let test_index_on_text_rejected () =
  let db =
    Database.create
      [ Schema.table "s" [ ("x", Schema.Int_type); ("n", Schema.Text_type) ] ]
  in
  Database.load db ~table:"s" [| [| Tuple.Int 1; Tuple.Text "a" |] |];
  Alcotest.(check bool) "text key rejected" true
    (match Database.build_index db (Index_def.make ~table:"s" ~columns:[ "n" ]) with
    | () -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "engine"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "uniform equality" `Quick test_histogram_uniform_eq;
          Alcotest.test_case "out of range eq" `Quick test_histogram_eq_out_of_range;
          Alcotest.test_case "range" `Quick test_histogram_range;
          Alcotest.test_case "min/max" `Quick test_histogram_minmax;
          Alcotest.test_case "skew" `Quick test_histogram_skew;
          QCheck_alcotest.to_alcotest histogram_range_bounds_prop;
        ] );
      ( "schema+check",
        [
          Alcotest.test_case "lookups" `Quick test_schema_lookups;
          Alcotest.test_case "tuple validation" `Quick test_schema_validate_tuple;
          Alcotest.test_case "statement checking" `Quick test_check_statement;
        ] );
      ( "planner",
        [
          Alcotest.test_case "no index => scan" `Quick test_plan_no_index_scans;
          Alcotest.test_case "covering seek" `Quick test_plan_seek_with_index;
          Alcotest.test_case "non-covering seek" `Quick test_plan_noncovering_seek;
          Alcotest.test_case "index-only scan" `Quick test_plan_index_only_scan;
          Alcotest.test_case "star never covered" `Quick test_plan_star_never_covered;
          Alcotest.test_case "prefix + range" `Quick test_plan_composite_prefix_and_range;
          Alcotest.test_case "seek beats leaf scan" `Quick test_plan_prefers_seek_over_scan;
        ] );
      ( "executor",
        [
          Alcotest.test_case "no indexes" `Quick test_exec_no_indexes;
          Alcotest.test_case "single-column indexes" `Quick test_exec_single_indexes;
          Alcotest.test_case "composite indexes" `Quick test_exec_composite_indexes;
          Alcotest.test_case "full paper design space" `Quick test_exec_all_indexes;
          Alcotest.test_case "insert maintains indexes" `Quick test_exec_insert_updates_indexes;
          Alcotest.test_case "I/O measured" `Quick test_exec_io_measured;
          Alcotest.test_case "semantic errors raise" `Quick test_exec_semantic_error_raises;
          QCheck_alcotest.to_alcotest exec_design_independent_prop;
        ] );
      ( "dml",
        [
          Alcotest.test_case "delete basic" `Quick test_delete_basic;
          Alcotest.test_case "delete via index" `Quick test_delete_uses_index_and_maintains_it;
          Alcotest.test_case "bulk load = row-at-a-time load" `Quick
            test_bulk_load_matches_row_at_a_time;
          Alcotest.test_case "bulk-built indexes absorb DML" `Quick
            test_bulk_load_indexes_maintained_after;
          Alcotest.test_case "bulk load rejects whole batch" `Quick
            test_bulk_load_rejects_whole_batch;
          Alcotest.test_case "bulk load with huge value spread" `Quick
            test_bulk_load_huge_value_spread;
          Alcotest.test_case "delete everything" `Quick test_delete_everything;
          Alcotest.test_case "update basic" `Quick test_update_basic;
          Alcotest.test_case "update maintains indexes" `Quick test_update_maintains_indexes;
          Alcotest.test_case "mixed DML consistency" `Quick test_update_then_reference_agrees;
        ] );
      ( "views",
        [
          Alcotest.test_case "count matches scan" `Quick test_view_count_matches_scan;
          Alcotest.test_case "sum and probe" `Quick test_view_sum_and_probe;
          Alcotest.test_case "filtered aggregates bypass views" `Quick
            test_view_not_used_for_filtered_aggregates;
          Alcotest.test_case "maintained under DML" `Quick test_view_maintained_under_dml;
          Alcotest.test_case "text group rejected" `Quick test_view_on_text_column_rejected;
          Alcotest.test_case "design with views" `Quick test_view_in_design_name;
          QCheck_alcotest.to_alcotest view_maintenance_prop;
        ] );
      ( "plan memo",
        [
          Alcotest.test_case "memo = fresh across invalidations" `Quick
            test_plan_memo_equiv;
          Alcotest.test_case "view probe rebinds group value" `Quick
            test_plan_memo_view_probe;
          Alcotest.test_case "stats generation fence" `Quick
            test_stats_generation_fence;
        ] );
      ( "stress",
        [ Alcotest.test_case "tiny buffer pool" `Quick test_tiny_pool_correctness ] );
      ( "migration",
        [
          Alcotest.test_case "migrate_to" `Quick test_migrate_to;
          Alcotest.test_case "build idempotent" `Quick test_build_index_idempotent;
          Alcotest.test_case "text key rejected" `Quick test_index_on_text_rejected;
        ] );
    ]
