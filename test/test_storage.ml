(* Tests for Cddpd_storage: Page, Disk, Buffer_pool, Tuple, Heap_file. *)

module Page = Cddpd_storage.Page
module Disk = Cddpd_storage.Disk
module Buffer_pool = Cddpd_storage.Buffer_pool
module Tuple = Cddpd_storage.Tuple
module Heap_file = Cddpd_storage.Heap_file

(* -- Page ------------------------------------------------------------------ *)

let test_page_int_roundtrip () =
  let p = Page.create () in
  Page.set_i64 p 0 (-123456789);
  Page.set_i64 p 8 max_int;
  Page.set_i32 p 16 (-42);
  Page.set_u16 p 20 65535;
  Page.set_u8 p 22 255;
  Alcotest.(check int) "i64 negative" (-123456789) (Page.get_i64 p 0);
  Alcotest.(check int) "i64 max" max_int (Page.get_i64 p 8);
  Alcotest.(check int) "i32" (-42) (Page.get_i32 p 16);
  Alcotest.(check int) "u16" 65535 (Page.get_u16 p 20);
  Alcotest.(check int) "u8" 255 (Page.get_u8 p 22)

let test_page_bounds () =
  let p = Page.create () in
  Alcotest.(check bool) "out of bounds raises" true
    (match Page.get_i64 p (Page.size - 4) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_page_move_overlap () =
  let p = Page.create () in
  for i = 0 to 9 do
    Page.set_u8 p i i
  done;
  Page.move p ~src:0 ~dst:2 ~len:8;
  Alcotest.(check int) "overlapping move" 0 (Page.get_u8 p 2);
  Alcotest.(check int) "overlapping move end" 7 (Page.get_u8 p 9)

let test_page_copy_independent () =
  let p = Page.create () in
  Page.set_i64 p 0 7;
  let q = Page.copy p in
  Page.set_i64 p 0 9;
  Alcotest.(check int) "copy unaffected" 7 (Page.get_i64 q 0)

let test_page_zero () =
  let p = Page.create () in
  Page.set_i64 p 100 42;
  Page.zero p;
  Alcotest.(check int) "zeroed" 0 (Page.get_i64 p 100)

(* -- Disk ------------------------------------------------------------------ *)

let test_disk_alloc_rw () =
  let d = Disk.create () in
  let p0 = Disk.allocate d in
  let p1 = Disk.allocate d in
  Alcotest.(check int) "sequential ids" 0 p0;
  Alcotest.(check int) "sequential ids" 1 p1;
  let buf = Page.create () in
  Page.set_i64 buf 0 99;
  Disk.write_from d p1 buf;
  let out = Page.create () in
  Disk.read_into d p1 out;
  Alcotest.(check int) "roundtrip" 99 (Page.get_i64 out 0);
  let stats = Disk.stats d in
  Alcotest.(check int) "reads counted" 1 stats.Disk.reads;
  Alcotest.(check int) "writes counted" 1 stats.Disk.writes;
  Alcotest.(check int) "allocated" 2 stats.Disk.allocated

let test_disk_unallocated () =
  let d = Disk.create () in
  let buf = Page.create () in
  Alcotest.(check bool) "unallocated read raises" true
    (match Disk.read_into d 0 buf with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_disk_grows () =
  let d = Disk.create () in
  for _ = 1 to 1000 do
    ignore (Disk.allocate d)
  done;
  Alcotest.(check int) "grew to 1000 pages" 1000 (Disk.n_pages d)

(* -- Buffer_pool ------------------------------------------------------------ *)

let test_pool_hit_miss () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Buffer_pool.create ~capacity:4 d in
  let h1 = Buffer_pool.fetch pool pid in
  Buffer_pool.unpin pool h1;
  let h2 = Buffer_pool.fetch pool pid in
  Buffer_pool.unpin pool h2;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one miss" 1 s.Buffer_pool.misses;
  Alcotest.(check int) "one hit" 1 s.Buffer_pool.hits

let test_pool_writeback_on_eviction () =
  let d = Disk.create () in
  let pids = List.init 8 (fun _ -> Disk.allocate d) in
  let pool = Buffer_pool.create ~capacity:2 d in
  let target = List.hd pids in
  let h = Buffer_pool.fetch pool target in
  Page.set_i64 (Buffer_pool.page h) 0 4242;
  Buffer_pool.mark_dirty h;
  Buffer_pool.unpin pool h;
  (* Touch enough other pages to force eviction of [target]. *)
  List.iter
    (fun pid ->
      if pid <> target then begin
        let h = Buffer_pool.fetch pool pid in
        Buffer_pool.unpin pool h
      end)
    pids;
  let out = Page.create () in
  Disk.read_into d target out;
  Alcotest.(check int) "dirty page written back" 4242 (Page.get_i64 out 0)

let test_pool_pinned_never_evicted () =
  let d = Disk.create () in
  let pids = List.init 8 (fun _ -> Disk.allocate d) in
  let pool = Buffer_pool.create ~capacity:2 d in
  let pinned = Buffer_pool.fetch pool (List.hd pids) in
  Page.set_i64 (Buffer_pool.page pinned) 0 7;
  (* Stream the rest through the other frame. *)
  List.iter
    (fun pid ->
      if pid <> List.hd pids then begin
        let h = Buffer_pool.fetch pool pid in
        Buffer_pool.unpin pool h
      end)
    pids;
  Alcotest.(check int) "pinned page intact" 7 (Page.get_i64 (Buffer_pool.page pinned) 0);
  Alcotest.(check int) "pinned page id stable" (List.hd pids) (Buffer_pool.page_id pinned);
  Buffer_pool.unpin pool pinned

let test_pool_all_pinned_fails () =
  let d = Disk.create () in
  let p0 = Disk.allocate d and p1 = Disk.allocate d and p2 = Disk.allocate d in
  let pool = Buffer_pool.create ~capacity:2 d in
  let h0 = Buffer_pool.fetch pool p0 in
  let h1 = Buffer_pool.fetch pool p1 in
  Alcotest.(check bool) "exhausted pool fails" true
    (match Buffer_pool.fetch pool p2 with
    | _ -> false
    | exception Failure _ -> true);
  Buffer_pool.unpin pool h0;
  Buffer_pool.unpin pool h1

let test_pool_double_unpin () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Buffer_pool.create ~capacity:2 d in
  let h = Buffer_pool.fetch pool pid in
  Buffer_pool.unpin pool h;
  Alcotest.(check bool) "double unpin raises" true
    (match Buffer_pool.unpin pool h with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_pool_allocate_no_read () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let h = Buffer_pool.allocate pool in
  Buffer_pool.unpin pool h;
  Alcotest.(check int) "no disk read on allocate" 0 (Disk.stats d).Disk.reads

let test_pool_drop_cache () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Buffer_pool.create ~capacity:4 d in
  let h = Buffer_pool.fetch pool pid in
  Page.set_i64 (Buffer_pool.page h) 0 11;
  Buffer_pool.mark_dirty h;
  Buffer_pool.unpin pool h;
  Buffer_pool.drop_cache pool;
  let reads_before = (Disk.stats d).Disk.reads in
  let h = Buffer_pool.fetch pool pid in
  Alcotest.(check int) "data survived" 11 (Page.get_i64 (Buffer_pool.page h) 0);
  Buffer_pool.unpin pool h;
  Alcotest.(check int) "cold fetch hits disk" (reads_before + 1) (Disk.stats d).Disk.reads

(* -- Buffer_pool: sequential scans ------------------------------------------- *)

(* Allocate [n] pages, stamping page i with value i so reads are checkable. *)
let make_stamped_disk n =
  let d = Disk.create () in
  let buf = Page.create () in
  for i = 0 to n - 1 do
    let pid = Disk.allocate d in
    Page.set_i64 buf 0 i;
    Disk.write_from d pid buf
  done;
  d

let scan_run n = Array.init n (fun i -> i)

let test_pool_readahead_accounting () =
  (* 16-page scan, pool big enough, readahead 8: pos 0 misses and
     prefetches 1..8; pos 9 misses and prefetches 10..15 (clipped to the
     run); everything else hits.  hits + misses = 16 fetches, and every
     page was read from disk exactly once. *)
  let n = 16 in
  let d = make_stamped_disk n in
  let pool = Buffer_pool.create ~capacity:32 ~readahead:8 d in
  let run = scan_run n in
  for pos = 0 to n - 1 do
    let h = Buffer_pool.fetch_sequential pool ~run ~pos in
    Alcotest.(check int) "page content" pos (Page.get_i64 (Buffer_pool.page h) 0);
    Buffer_pool.unpin pool h
  done;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "misses" 2 s.Buffer_pool.misses;
  Alcotest.(check int) "hits" 14 s.Buffer_pool.hits;
  Alcotest.(check int) "scan_fetches" n s.Buffer_pool.scan_fetches;
  Alcotest.(check int) "readahead_pages" 14 s.Buffer_pool.readahead_pages;
  Alcotest.(check int) "disk reads" n (Disk.stats d).Disk.reads

let test_pool_readahead_disabled () =
  let n = 8 in
  let d = make_stamped_disk n in
  let pool = Buffer_pool.create ~capacity:16 ~readahead:0 d in
  let run = scan_run n in
  for pos = 0 to n - 1 do
    Buffer_pool.unpin pool (Buffer_pool.fetch_sequential pool ~run ~pos)
  done;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "all misses" n s.Buffer_pool.misses;
  Alcotest.(check int) "no readahead" 0 s.Buffer_pool.readahead_pages

let test_pool_scan_resistance () =
  (* A referenced two-page working set survives a 100-page scan through
     an 8-frame pool: sequential fetches recycle their own (unreferenced)
     trail instead of clearing the working set's reference bits. *)
  let total = 102 in
  let d = make_stamped_disk total in
  let pool = Buffer_pool.create ~capacity:8 ~readahead:4 d in
  let hot0 = 100 and hot1 = 101 in
  Buffer_pool.unpin pool (Buffer_pool.fetch pool hot0);
  Buffer_pool.unpin pool (Buffer_pool.fetch pool hot1);
  let run = scan_run 100 in
  for pos = 0 to 99 do
    let h = Buffer_pool.fetch_sequential pool ~run ~pos in
    Alcotest.(check int) "scan content" pos (Page.get_i64 (Buffer_pool.page h) 0);
    Buffer_pool.unpin pool h
  done;
  let before = Buffer_pool.stats pool in
  Buffer_pool.unpin pool (Buffer_pool.fetch pool hot0);
  Buffer_pool.unpin pool (Buffer_pool.fetch pool hot1);
  let after = Buffer_pool.stats pool in
  Alcotest.(check int) "working set still resident (no new misses)"
    before.Buffer_pool.misses after.Buffer_pool.misses;
  Alcotest.(check int) "working set hits" (before.Buffer_pool.hits + 2)
    after.Buffer_pool.hits

let test_pool_scan_logical_io_invariant () =
  (* Readahead changes the hit/miss split, never the total: a scan of n
     pages counts exactly n logical fetches either way. *)
  let n = 40 in
  let count readahead =
    let d = make_stamped_disk n in
    let pool = Buffer_pool.create ~capacity:64 ~readahead d in
    let run = scan_run n in
    for pos = 0 to n - 1 do
      Buffer_pool.unpin pool (Buffer_pool.fetch_sequential pool ~run ~pos)
    done;
    let s = Buffer_pool.stats pool in
    s.Buffer_pool.hits + s.Buffer_pool.misses
  in
  Alcotest.(check int) "readahead off" n (count 0);
  Alcotest.(check int) "readahead on" n (count 8)

let test_pool_memo_same_page () =
  (* Consecutive fetches of the same page go through the one-entry memo:
     still one hit each, correct pin accounting. *)
  let d = make_stamped_disk 4 in
  let pool = Buffer_pool.create ~capacity:4 ~readahead:0 d in
  let run = scan_run 4 in
  let h1 = Buffer_pool.fetch_sequential pool ~run ~pos:2 in
  let h2 = Buffer_pool.fetch_sequential pool ~run ~pos:2 in
  Alcotest.(check int) "same frame content" 2 (Page.get_i64 (Buffer_pool.page h2) 0);
  Buffer_pool.unpin pool h1;
  Buffer_pool.unpin pool h2;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one miss" 1 s.Buffer_pool.misses;
  Alcotest.(check int) "one memo hit" 1 s.Buffer_pool.hits

let test_pool_memo_survives_eviction () =
  (* Capacity-1 pool: the single frame is reassigned on every fetch of a
     new page, so the memo must never serve a stale frame. *)
  let d = make_stamped_disk 3 in
  let pool = Buffer_pool.create ~capacity:1 ~readahead:0 d in
  let run = scan_run 3 in
  let check pos =
    let h = Buffer_pool.fetch_sequential pool ~run ~pos in
    Alcotest.(check int)
      (Printf.sprintf "page %d content" pos)
      pos
      (Page.get_i64 (Buffer_pool.page h) 0);
    Buffer_pool.unpin pool h
  in
  check 0;
  check 1;
  (* Back to page 0: the memo points at a frame now holding page 1 and
     must be bypassed. *)
  check 0;
  check 2;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "every fetch missed" 4 s.Buffer_pool.misses;
  Alcotest.(check int) "no stale hits" 0 s.Buffer_pool.hits

let test_pool_heap_scan_uses_sequential_path () =
  (* Heap_file full scans go through fetch_sequential. *)
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:64 d in
  let heap = Heap_file.create pool in
  for i = 0 to 999 do
    ignore (Heap_file.insert heap [| Tuple.Int i |])
  done;
  Buffer_pool.reset_stats pool;
  let seen = ref 0 in
  Heap_file.iter heap (fun _ _ -> incr seen);
  Alcotest.(check int) "all rows" 1000 !seen;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "scan fetches = heap pages" (Heap_file.n_pages heap)
    s.Buffer_pool.scan_fetches

(* -- Tuple ------------------------------------------------------------------ *)

let tuple_testable = Alcotest.testable (fun ppf t -> Tuple.pp ppf t) Tuple.equal

let test_tuple_roundtrip () =
  let t = [| Tuple.Int 42; Tuple.Text "hello"; Tuple.Int (-1); Tuple.Text "" |] in
  Alcotest.check tuple_testable "roundtrip" t (Tuple.decode (Tuple.encode t))

let test_tuple_empty () =
  Alcotest.check tuple_testable "empty tuple" [||] (Tuple.decode (Tuple.encode [||]))

let test_tuple_get_field () =
  let t = [| Tuple.Int 1; Tuple.Text "xy"; Tuple.Int 3 |] in
  let buf = Tuple.encode t in
  Alcotest.(check bool) "field 0" true (Tuple.get_field buf 0 = Tuple.Int 1);
  Alcotest.(check bool) "field 1" true (Tuple.get_field buf 1 = Tuple.Text "xy");
  Alcotest.(check bool) "field 2" true (Tuple.get_field buf 2 = Tuple.Int 3);
  Alcotest.(check int) "field_count" 3 (Tuple.field_count buf)

let test_tuple_get_field_out_of_range () =
  let buf = Tuple.encode [| Tuple.Int 1 |] in
  Alcotest.(check bool) "raises" true
    (match Tuple.get_field buf 1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_tuple_decode_malformed () =
  Alcotest.(check bool) "garbage rejected" true
    (match Tuple.decode (Bytes.make 3 '\xff') with
    | _ -> false
    | exception Invalid_argument _ -> true)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Tuple.Int i) int;
        map (fun s -> Tuple.Text s) (string_size (int_bound 30));
      ])

let tuple_gen = QCheck.Gen.(map Array.of_list (list_size (int_bound 8) value_gen))

let tuple_arbitrary = QCheck.make ~print:Tuple.to_string tuple_gen

let tuple_roundtrip_prop =
  QCheck.Test.make ~name:"tuple encode/decode roundtrip" ~count:500 tuple_arbitrary
    (fun t -> Tuple.equal t (Tuple.decode (Tuple.encode t)))

let tuple_get_field_prop =
  QCheck.Test.make ~name:"get_field agrees with decode" ~count:500 tuple_arbitrary
    (fun t ->
      let buf = Tuple.encode t in
      let decoded = Tuple.decode buf in
      let ok = ref true in
      Array.iteri (fun i v -> if Tuple.get_field buf i <> v then ok := false) decoded;
      !ok)

let tuple_encoded_size_prop =
  QCheck.Test.make ~name:"encoded_size matches encode" ~count:500 tuple_arbitrary
    (fun t -> Tuple.encoded_size t = Bytes.length (Tuple.encode t))

(* -- Heap_file --------------------------------------------------------------- *)

let make_heap () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:64 d in
  Heap_file.create pool

let test_heap_insert_fetch () =
  let heap = make_heap () in
  let t1 = [| Tuple.Int 1; Tuple.Text "one" |] in
  let t2 = [| Tuple.Int 2; Tuple.Text "two" |] in
  let r1 = Heap_file.insert heap t1 in
  let r2 = Heap_file.insert heap t2 in
  Alcotest.(check (option tuple_testable)) "fetch r1" (Some t1) (Heap_file.fetch heap r1);
  Alcotest.(check (option tuple_testable)) "fetch r2" (Some t2) (Heap_file.fetch heap r2);
  Alcotest.(check int) "count" 2 (Heap_file.n_tuples heap)

let test_heap_delete () =
  let heap = make_heap () in
  let rid = Heap_file.insert heap [| Tuple.Int 1 |] in
  Alcotest.(check bool) "delete live" true (Heap_file.delete heap rid);
  Alcotest.(check bool) "delete again" false (Heap_file.delete heap rid);
  Alcotest.(check (option tuple_testable)) "fetch deleted" None (Heap_file.fetch heap rid);
  Alcotest.(check int) "count" 0 (Heap_file.n_tuples heap)

let test_heap_multi_page () =
  let heap = make_heap () in
  let n = 2000 in
  let rids =
    List.init n (fun i ->
        Heap_file.insert heap [| Tuple.Int i; Tuple.Text (string_of_int i) |])
  in
  Alcotest.(check bool) "spans several pages" true (Heap_file.n_pages heap > 1);
  List.iteri
    (fun i rid ->
      match Heap_file.fetch heap rid with
      | Some t when t.(0) = Tuple.Int i -> ()
      | Some _ | None -> Alcotest.failf "tuple %d corrupted" i)
    rids;
  let seen = ref 0 in
  Heap_file.iter heap (fun _ _ -> incr seen);
  Alcotest.(check int) "iter sees all" n !seen

let test_heap_iter_order_matches_insert () =
  let heap = make_heap () in
  let n = 500 in
  for i = 0 to n - 1 do
    ignore (Heap_file.insert heap [| Tuple.Int i |])
  done;
  let seen = ref [] in
  Heap_file.iter heap (fun _ t -> seen := Tuple.int_exn t.(0) :: !seen);
  Alcotest.(check (list int)) "storage order = insert order"
    (List.init n (fun i -> i))
    (List.rev !seen)

let test_heap_iter_slices_agrees () =
  let heap = make_heap () in
  for i = 0 to 99 do
    ignore (Heap_file.insert heap [| Tuple.Int i; Tuple.Int (i * 2) |])
  done;
  let total = ref 0 in
  Heap_file.iter_slices heap (fun buf base ->
      total := !total + Tuple.int_exn (Tuple.get_field_at buf ~base 1));
  Alcotest.(check int) "sum via slices" (2 * (99 * 100 / 2)) !total

let test_heap_oversize_tuple () =
  let heap = make_heap () in
  let big = [| Tuple.Text (String.make 5000 'x') |] in
  Alcotest.(check bool) "oversize rejected" true
    (match Heap_file.insert heap big with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Model-based property: a heap file behaves like a growing list with
   deletion flags. *)
let heap_model_prop =
  QCheck.Test.make ~name:"heap file vs reference model" ~count:60
    QCheck.(list (pair (int_bound 1000) bool))
    (fun ops ->
      let heap = make_heap () in
      let model = Hashtbl.create 16 in
      let rids = ref [] in
      List.iter
        (fun (v, delete_one) ->
          let tuple = [| Tuple.Int v |] in
          let rid = Heap_file.insert heap tuple in
          Hashtbl.replace model rid tuple;
          rids := rid :: !rids;
          if delete_one then
            match !rids with
            | victim :: _ when Hashtbl.mem model victim ->
                ignore (Heap_file.delete heap victim);
                Hashtbl.remove model victim
            | _ -> ())
        ops;
      Hashtbl.fold
        (fun rid expected acc ->
          acc
          &&
          match Heap_file.fetch heap rid with
          | Some t -> Tuple.equal t expected
          | None -> false)
        model true
      && Heap_file.n_tuples heap = Hashtbl.length model)

let () =
  Alcotest.run "storage"
    [
      ( "page",
        [
          Alcotest.test_case "int roundtrips" `Quick test_page_int_roundtrip;
          Alcotest.test_case "bounds checked" `Quick test_page_bounds;
          Alcotest.test_case "overlapping move" `Quick test_page_move_overlap;
          Alcotest.test_case "copy is independent" `Quick test_page_copy_independent;
          Alcotest.test_case "zero" `Quick test_page_zero;
        ] );
      ( "disk",
        [
          Alcotest.test_case "allocate/read/write" `Quick test_disk_alloc_rw;
          Alcotest.test_case "unallocated access" `Quick test_disk_unallocated;
          Alcotest.test_case "grows" `Quick test_disk_grows;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_pool_hit_miss;
          Alcotest.test_case "dirty write-back on eviction" `Quick
            test_pool_writeback_on_eviction;
          Alcotest.test_case "pinned never evicted" `Quick test_pool_pinned_never_evicted;
          Alcotest.test_case "all pinned fails" `Quick test_pool_all_pinned_fails;
          Alcotest.test_case "double unpin" `Quick test_pool_double_unpin;
          Alcotest.test_case "allocate reads nothing" `Quick test_pool_allocate_no_read;
          Alcotest.test_case "drop_cache forces cold reads" `Quick test_pool_drop_cache;
          Alcotest.test_case "readahead accounting" `Quick test_pool_readahead_accounting;
          Alcotest.test_case "readahead disabled" `Quick test_pool_readahead_disabled;
          Alcotest.test_case "scan resistance" `Quick test_pool_scan_resistance;
          Alcotest.test_case "scan logical I/O invariant" `Quick
            test_pool_scan_logical_io_invariant;
          Alcotest.test_case "memo same-page fetches" `Quick test_pool_memo_same_page;
          Alcotest.test_case "memo survives eviction" `Quick
            test_pool_memo_survives_eviction;
          Alcotest.test_case "heap scan uses sequential path" `Quick
            test_pool_heap_scan_uses_sequential_path;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "roundtrip" `Quick test_tuple_roundtrip;
          Alcotest.test_case "empty" `Quick test_tuple_empty;
          Alcotest.test_case "get_field" `Quick test_tuple_get_field;
          Alcotest.test_case "get_field out of range" `Quick
            test_tuple_get_field_out_of_range;
          Alcotest.test_case "malformed rejected" `Quick test_tuple_decode_malformed;
          QCheck_alcotest.to_alcotest tuple_roundtrip_prop;
          QCheck_alcotest.to_alcotest tuple_get_field_prop;
          QCheck_alcotest.to_alcotest tuple_encoded_size_prop;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "insert/fetch" `Quick test_heap_insert_fetch;
          Alcotest.test_case "delete" `Quick test_heap_delete;
          Alcotest.test_case "multi-page" `Quick test_heap_multi_page;
          Alcotest.test_case "iter order" `Quick test_heap_iter_order_matches_insert;
          Alcotest.test_case "iter_slices" `Quick test_heap_iter_slices_agrees;
          Alcotest.test_case "oversize tuple" `Quick test_heap_oversize_tuple;
          QCheck_alcotest.to_alcotest heap_model_prop;
        ] );
    ]
