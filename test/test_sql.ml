(* SQL front-end tests: lexer, parser, printer, and the parse/print
   round-trip property. *)

module Ast = Cddpd_sql.Ast
module Lexer = Cddpd_sql.Lexer
module Parser = Cddpd_sql.Parser
module Printer = Cddpd_sql.Printer
module Template = Cddpd_sql.Template
module Tuple = Cddpd_storage.Tuple

let statement_testable =
  Alcotest.testable (fun ppf s -> Printer.pp ppf s) Ast.equal_statement

let parse_ok sql =
  match Parser.parse sql with
  | Ok s -> s
  | Error message -> Alcotest.failf "parse %S failed: %s" sql message

(* -- lexer ------------------------------------------------------------------- *)

let test_lexer_basic () =
  let tokens = Lexer.tokenize "SELECT a FROM t WHERE a = 5" in
  Alcotest.(check int) "token count" 9 (List.length tokens);
  Alcotest.(check bool) "keywords recognised" true
    (List.mem Lexer.Kw_select tokens && List.mem Lexer.Kw_where tokens)

let test_lexer_case_insensitive () =
  Alcotest.(check bool) "lowercase keywords" true
    (Lexer.tokenize "select A from T" = Lexer.tokenize "SELECT a FROM t")

let test_lexer_operators () =
  let tokens = Lexer.tokenize "<= >= < > =" in
  Alcotest.(check bool) "all operators" true
    (tokens = [ Lexer.Op_le; Lexer.Op_ge; Lexer.Op_lt; Lexer.Op_gt; Lexer.Op_eq; Lexer.Eof ])

let test_lexer_string_escape () =
  let tokens = Lexer.tokenize "'it''s'" in
  Alcotest.(check bool) "escaped quote" true (tokens = [ Lexer.Str_lit "it's"; Lexer.Eof ])

let test_lexer_negative_int () =
  Alcotest.(check bool) "negative" true
    (Lexer.tokenize "-42" = [ Lexer.Int_lit (-42); Lexer.Eof ])

(* 18 digits ride the accumulate-in-place fast path; longer literals fall
   back to int_of_string, which must still reject overflow as before. *)
let test_lexer_int_fast_path_bounds () =
  Alcotest.(check bool) "18 digits" true
    (Lexer.tokenize "123456789012345678"
    = [ Lexer.Int_lit 123456789012345678; Lexer.Eof ]);
  Alcotest.(check bool) "overflow still raises" true
    (match Lexer.tokenize "99999999999999999999999" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true)

let test_lexer_unterminated_string () =
  Alcotest.(check bool) "unterminated raises" true
    (match Lexer.tokenize "'oops" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true)

let test_lexer_bad_char () =
  Alcotest.(check bool) "bad char raises" true
    (match Lexer.tokenize "a ! b" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true)

(* -- parser ------------------------------------------------------------------ *)

let test_parse_point_query () =
  (* The paper's workload template. *)
  let s = parse_ok "SELECT a FROM t WHERE a = 12345" in
  Alcotest.check statement_testable "point query"
    (Ast.Select
       {
         projection = Ast.Columns [ "a" ];
         table = "t";
         where = [ Ast.Cmp { column = "a"; op = Ast.Eq; value = Tuple.Int 12345 } ];
       })
    s

let test_parse_star () =
  let s = parse_ok "SELECT * FROM t" in
  Alcotest.check statement_testable "star"
    (Ast.Select { projection = Ast.Star; table = "t"; where = [] })
    s

let test_parse_multi_column_projection () =
  let s = parse_ok "SELECT a, b, c FROM t" in
  Alcotest.check statement_testable "columns"
    (Ast.Select { projection = Ast.Columns [ "a"; "b"; "c" ]; table = "t"; where = [] })
    s

let test_parse_conjunction () =
  let s = parse_ok "SELECT a FROM t WHERE a = 1 AND b > 2 AND c <= 3" in
  match s with
  | Ast.Select { where; _ } -> Alcotest.(check int) "three predicates" 3 (List.length where)
  | Ast.Select_agg _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
      Alcotest.fail "not a select"

let test_parse_between () =
  let s = parse_ok "SELECT a FROM t WHERE b BETWEEN 10 AND 20" in
  Alcotest.check statement_testable "between"
    (Ast.Select
       {
         projection = Ast.Columns [ "a" ];
         table = "t";
         where = [ Ast.Between { column = "b"; low = Tuple.Int 10; high = Tuple.Int 20 } ];
       })
    s

let test_parse_string_literal () =
  let s = parse_ok "SELECT a FROM t WHERE name = 'bob'" in
  Alcotest.check statement_testable "text literal"
    (Ast.Select
       {
         projection = Ast.Columns [ "a" ];
         table = "t";
         where = [ Ast.Cmp { column = "name"; op = Ast.Eq; value = Tuple.Text "bob" } ];
       })
    s

let test_parse_insert () =
  let s = parse_ok "INSERT INTO t VALUES (1, 'x', -3)" in
  Alcotest.check statement_testable "insert"
    (Ast.Insert { table = "t"; values = [ Tuple.Int 1; Tuple.Text "x"; Tuple.Int (-3) ] })
    s

let test_parse_delete () =
  let s = parse_ok "DELETE FROM t WHERE a = 5 AND b < 3" in
  (match s with
  | Ast.Delete { table = "t"; where } ->
      Alcotest.(check int) "two predicates" 2 (List.length where)
  | _ -> Alcotest.fail "not a delete");
  Alcotest.check statement_testable "unfiltered delete"
    (Ast.Delete { table = "t"; where = [] })
    (parse_ok "DELETE FROM t")

let test_parse_update () =
  let s = parse_ok "UPDATE t SET a = 1, b = 'x' WHERE c >= 7" in
  Alcotest.check statement_testable "update"
    (Ast.Update
       {
         table = "t";
         assignments = [ ("a", Tuple.Int 1); ("b", Tuple.Text "x") ];
         where = [ Ast.Cmp { column = "c"; op = Ast.Ge; value = Tuple.Int 7 } ];
       })
    s

let test_parse_aggregate () =
  Alcotest.check statement_testable "count"
    (Ast.Select_agg { table = "t"; group_by = "a"; aggregate = Ast.Count_star; where = [] })
    (parse_ok "SELECT a, COUNT(*) FROM t GROUP BY a");
  Alcotest.check statement_testable "sum with where"
    (Ast.Select_agg
       {
         table = "t";
         group_by = "a";
         aggregate = Ast.Sum "b";
         where = [ Ast.Cmp { column = "a"; op = Ast.Eq; value = Tuple.Int 5 } ];
       })
    (parse_ok "SELECT a, SUM(b) FROM t WHERE a = 5 GROUP BY a")

let test_parse_aggregate_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | Ok _ -> Alcotest.failf "expected %S to fail" sql
      | Error _ -> ())
    [
      "SELECT COUNT(*) FROM t";               (* aggregate without group column *)
      "SELECT a, COUNT(*) FROM t";            (* missing GROUP BY *)
      "SELECT a, COUNT(*) FROM t GROUP BY b"; (* mismatched group column *)
      "SELECT * FROM t GROUP BY a";           (* star with GROUP BY *)
      "SELECT a, SUM() FROM t GROUP BY a";
      "SELECT a, b, COUNT(*) FROM t GROUP BY a";
    ]

let test_parse_trailing_semicolon () =
  Alcotest.check statement_testable "semicolon tolerated"
    (parse_ok "SELECT * FROM t") (parse_ok "SELECT * FROM t;")

let test_parse_errors () =
  let cases =
    [
      "SELECT";
      "SELECT FROM t";
      "SELECT a t";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t WHERE a";
      "SELECT a FROM t WHERE a = ";
      "SELECT a FROM t WHERE a BETWEEN 1";
      "INSERT t VALUES (1)";
      "INSERT INTO t VALUES ()";
      "INSERT INTO t VALUES (1";
      "DELETE t";
      "DELETE FROM t WHERE";
      "UPDATE t";
      "UPDATE t SET";
      "UPDATE t SET a";
      "UPDATE t SET a = ";
      "SELECT a FROM t extra";
    ]
  in
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | Ok _ -> Alcotest.failf "expected %S to fail" sql
      | Error _ -> ())
    cases

let test_parse_exn_raises () =
  Alcotest.(check bool) "parse_exn raises" true
    (match Parser.parse_exn "garbage" with
    | _ -> false
    | exception Parser.Parse_error _ -> true)

(* -- printer ------------------------------------------------------------------ *)

let test_print_select () =
  Alcotest.(check string) "canonical form"
    "SELECT a FROM t WHERE a = 5 AND b BETWEEN 1 AND 2"
    (Printer.to_string
       (Ast.Select
          {
            projection = Ast.Columns [ "a" ];
            table = "t";
            where =
              [
                Ast.Cmp { column = "a"; op = Ast.Eq; value = Tuple.Int 5 };
                Ast.Between { column = "b"; low = Tuple.Int 1; high = Tuple.Int 2 };
              ];
          }))

let test_print_escapes_quotes () =
  Alcotest.(check string) "quotes doubled" "INSERT INTO t VALUES ('it''s')"
    (Printer.to_string (Ast.Insert { table = "t"; values = [ Tuple.Text "it's" ] }))

(* -- round-trip property ------------------------------------------------------- *)

let sql_keywords =
  [
    "select"; "from"; "where"; "and"; "between"; "insert"; "into"; "values";
    "delete"; "update"; "set"; "group"; "by"; "count"; "sum";
  ]

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) ->
        let ident = String.make 1 c ^ rest in
        (* Keywords are not identifiers; rename the collisions. *)
        if List.mem ident sql_keywords then ident ^ "x" else ident)
      (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (int_bound 6))))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Tuple.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun s -> Tuple.Text s) (string_size ~gen:(char_range 'a' 'z') (int_bound 10));
      ])

let cmp_gen = QCheck.Gen.oneofl [ Ast.Eq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let predicate_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun column op value -> Ast.Cmp { column; op; value })
          ident_gen cmp_gen value_gen;
        map3
          (fun column low high -> Ast.Between { column; low; high })
          ident_gen value_gen value_gen;
      ])

let statement_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun projection table where -> Ast.Select { projection; table; where })
          (oneof
             [
               return Ast.Star;
               map (fun cs -> Ast.Columns cs) (list_size (int_range 1 4) ident_gen);
             ])
          ident_gen
          (list_size (int_bound 4) predicate_gen);
        map2
          (fun table values -> Ast.Insert { table; values })
          ident_gen
          (list_size (int_range 1 5) value_gen);
        map2
          (fun table where -> Ast.Delete { table; where })
          ident_gen
          (list_size (int_bound 3) predicate_gen);
        map3
          (fun table assignments where -> Ast.Update { table; assignments; where })
          ident_gen
          (list_size (int_range 1 3) (pair ident_gen value_gen))
          (list_size (int_bound 3) predicate_gen);
        map3
          (fun (table, group_by) aggregate where ->
            Ast.Select_agg { table; group_by; aggregate; where })
          (pair ident_gen ident_gen)
          (oneof [ return Ast.Count_star; map (fun c -> Ast.Sum c) ident_gen ])
          (list_size (int_bound 3) predicate_gen);
      ])

let statement_arbitrary = QCheck.make ~print:Printer.to_string statement_gen

let roundtrip_prop =
  QCheck.Test.make ~name:"parse (print s) = s" ~count:1000 statement_arbitrary (fun s ->
      match Parser.parse (Printer.to_string s) with
      | Ok parsed -> Ast.equal_statement s parsed
      | Error _ -> false)

(* Fuzz: the parser must reject or accept but never crash with anything
   other than Parse_error. *)
let parser_total_prop =
  QCheck.Test.make ~name:"parser is total on arbitrary strings" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_bound 60))
    (fun input ->
      match Parser.parse input with
      | Ok _ | Error _ -> true)

(* Fuzz on near-SQL: shuffled valid tokens are much better at reaching deep
   parser states than raw random bytes. *)
let token_soup_prop =
  QCheck.Test.make ~name:"parser is total on token soup" ~count:2000
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 12)
        (oneofa
           [|
             "SELECT"; "FROM"; "WHERE"; "AND"; "BETWEEN"; "GROUP"; "BY"; "COUNT(*)";
             "SUM(a)"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE"; "SET"; "t";
             "a"; "b"; "*"; ","; "("; ")"; "="; "<"; ">="; "5"; "-3"; "'x'"; ";";
           |]))
    (fun tokens ->
      match Parser.parse (String.concat " " tokens) with
      | Ok _ | Error _ -> true)

(* -- template cache / parse_cached -------------------------------------------- *)

let parse_cached_ok cache sql =
  match Parser.parse_cached cache sql with
  | Ok entry -> entry
  | Error message -> Alcotest.failf "parse_cached %S failed: %s" sql message

let test_parse_cached_exact_hit () =
  let cache = Template.create () in
  let sql = "SELECT a FROM t WHERE a = 5" in
  let e1 = parse_cached_ok cache sql in
  let e2 = parse_cached_ok cache sql in
  Alcotest.(check bool) "same physical entry" true (e1 == e2);
  Alcotest.check statement_testable "matches fresh parse" (parse_ok sql)
    e1.Template.statement;
  let stats = Template.stats cache in
  Alcotest.(check int) "one exact hit" 1 stats.Template.exact_hits;
  Alcotest.(check int) "one miss" 1 stats.Template.misses;
  Alcotest.(check int) "one entry" 1 stats.Template.entries

let test_parse_cached_rebind () =
  let cache = Template.create () in
  let first = "SELECT a FROM t WHERE a = 5 AND b BETWEEN 1 AND 2" in
  let second = "SELECT a FROM t WHERE a = 7 AND b BETWEEN 30 AND 90" in
  ignore (parse_cached_ok cache first);
  let entry = parse_cached_ok cache second in
  Alcotest.check statement_testable "rebound skeleton = fresh parse"
    (parse_ok second) entry.Template.statement;
  let stats = Template.stats cache in
  Alcotest.(check int) "one template hit" 1 stats.Template.template_hits;
  Alcotest.(check int) "one shared skeleton" 1 stats.Template.templates;
  (* Same shape with a text literal in an int slot still rebinds: the
     grammar accepts either literal kind in a value position. *)
  let text_twist = "SELECT a FROM t WHERE a = 'x' AND b BETWEEN 8 AND 9" in
  Alcotest.check statement_testable "text literal rebound"
    (parse_ok text_twist)
    (parse_cached_ok cache text_twist).Template.statement

let test_parse_cached_errors_match_parse () =
  let cache = Template.create () in
  List.iter
    (fun sql ->
      match (Parser.parse sql, Parser.parse_cached cache sql) with
      | Error fresh, Error cached ->
          Alcotest.(check string) (Printf.sprintf "error for %S" sql) fresh cached
      | Ok _, Ok _ -> Alcotest.failf "expected %S to fail" sql
      | _ -> Alcotest.failf "parse and parse_cached disagree on %S" sql)
    [ "SELECT a FROM t WHERE"; "SELECT a FROM t WHERE a = "; "a ! b"; "'oops" ]

(* The tentpole property: over printer-roundtripped random statements fed
   through ONE long-lived cache (so exact hits, template rebinds and
   misses all occur), parse_cached must agree with a fresh parse — and a
   second lookup of the same text must return the same physical entry. *)
let parse_cached_equiv_prop =
  let cache = Template.create () in
  QCheck.Test.make ~name:"parse_cached = parse over printed statements"
    ~count:1000 statement_arbitrary (fun s ->
      let sql = Printer.to_string s in
      match (Parser.parse sql, Parser.parse_cached cache sql) with
      | Ok fresh, Ok entry -> (
          Ast.equal_statement fresh entry.Template.statement
          &&
          match Parser.parse_cached cache sql with
          | Ok again -> again == entry
          | Error _ -> false)
      | Error fresh, Error cached -> String.equal fresh cached
      | Ok _, Error _ | Error _, Ok _ -> false)

(* -- Ast helpers ---------------------------------------------------------------- *)

let test_eq_columns () =
  let select =
    {
      Ast.projection = Ast.Columns [ "x" ];
      table = "t";
      where =
        [
          Ast.Cmp { column = "a"; op = Ast.Eq; value = Tuple.Int 1 };
          Ast.Cmp { column = "b"; op = Ast.Lt; value = Tuple.Int 2 };
          Ast.Between { column = "c"; low = Tuple.Int 0; high = Tuple.Int 9 };
          Ast.Cmp { column = "d"; op = Ast.Eq; value = Tuple.Int 4 };
        ];
    }
  in
  Alcotest.(check (list (pair string bool))) "eq columns"
    [ ("a", true); ("d", true) ]
    (List.map (fun (c, _) -> (c, true)) (Ast.eq_columns select));
  Alcotest.(check (list string)) "range columns" [ "b"; "c" ] (Ast.range_columns select)

let test_referenced_columns () =
  let s = parse_ok "SELECT a, b FROM t WHERE c = 1 AND a > 0" in
  Alcotest.(check (list string)) "deduplicated, in order" [ "a"; "b"; "c" ]
    (Ast.referenced_columns s)

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "case insensitive" `Quick test_lexer_case_insensitive;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escape;
          Alcotest.test_case "negative int" `Quick test_lexer_negative_int;
          Alcotest.test_case "int fast-path bounds" `Quick
            test_lexer_int_fast_path_bounds;
          Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated_string;
          Alcotest.test_case "bad character" `Quick test_lexer_bad_char;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper point query" `Quick test_parse_point_query;
          Alcotest.test_case "star" `Quick test_parse_star;
          Alcotest.test_case "projection list" `Quick test_parse_multi_column_projection;
          Alcotest.test_case "conjunction" `Quick test_parse_conjunction;
          Alcotest.test_case "between" `Quick test_parse_between;
          Alcotest.test_case "string literal" `Quick test_parse_string_literal;
          Alcotest.test_case "insert" `Quick test_parse_insert;
          Alcotest.test_case "delete" `Quick test_parse_delete;
          Alcotest.test_case "update" `Quick test_parse_update;
          Alcotest.test_case "aggregate" `Quick test_parse_aggregate;
          Alcotest.test_case "aggregate errors" `Quick test_parse_aggregate_errors;
          Alcotest.test_case "trailing semicolon" `Quick test_parse_trailing_semicolon;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
          Alcotest.test_case "parse_exn" `Quick test_parse_exn_raises;
        ] );
      ( "printer",
        [
          Alcotest.test_case "select" `Quick test_print_select;
          Alcotest.test_case "quote escaping" `Quick test_print_escapes_quotes;
        ] );
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest parser_total_prop;
          QCheck_alcotest.to_alcotest token_soup_prop;
        ] );
      ( "template",
        [
          Alcotest.test_case "exact hit shares the entry" `Quick
            test_parse_cached_exact_hit;
          Alcotest.test_case "template rebinding" `Quick test_parse_cached_rebind;
          Alcotest.test_case "errors match parse" `Quick
            test_parse_cached_errors_match_parse;
          QCheck_alcotest.to_alcotest parse_cached_equiv_prop;
        ] );
      ( "ast",
        [
          Alcotest.test_case "eq/range columns" `Quick test_eq_columns;
          Alcotest.test_case "referenced columns" `Quick test_referenced_columns;
        ] );
    ]
