(* Tests for Cddpd_obs: counter/histogram registration and gating, snapshot
   capture and diffing, span nesting, and an end-to-end smoke test checking
   that buffer-pool observability counters agree with the pool's own
   statistics on a small workload. *)

module Registry = Cddpd_obs.Registry
module Counter = Cddpd_obs.Counter
module Histogram = Cddpd_obs.Histogram
module Snapshot = Cddpd_obs.Snapshot
module Span = Cddpd_obs.Span
module Sink = Cddpd_obs.Sink
module Disk = Cddpd_storage.Disk
module Buffer_pool = Cddpd_storage.Buffer_pool

let check_float = Alcotest.(check (float 1e-9))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* Metrics and spans are global; give every test a clean, disabled slate. *)
let fresh f () =
  Registry.reset_values ();
  Span.reset ();
  Registry.disable ();
  Fun.protect
    ~finally:(fun () ->
      Registry.disable ();
      Registry.reset_values ();
      Span.reset ())
    f

(* -- registry & counters -------------------------------------------------- *)

let test_counter_registration () =
  let a = Registry.counter "test_obs.counter_a" in
  let a' = Registry.counter "test_obs.counter_a" in
  Alcotest.(check bool) "get-or-create returns the same counter" true (a == a');
  Alcotest.check_raises "name clash with histogram rejected"
    (Invalid_argument "Registry.counter: test_obs.hist_clash is a histogram")
    (fun () ->
      ignore (Registry.histogram "test_obs.hist_clash");
      ignore (Registry.counter "test_obs.hist_clash"))

let test_counter_gating () =
  let c = Registry.counter "test_obs.gated" in
  Counter.incr c;
  Counter.add c 10;
  Alcotest.(check int) "disabled increments are dropped" 0 (Counter.value c);
  Registry.enable ();
  Counter.incr c;
  Counter.add c 10;
  Alcotest.(check int) "enabled increments land" 11 (Counter.value c);
  Registry.disable ();
  Counter.incr c;
  Alcotest.(check int) "disabled again" 11 (Counter.value c);
  Registry.reset_values ();
  Alcotest.(check int) "reset_values zeroes" 0 (Counter.value c)

let test_histogram () =
  let h = Registry.histogram "test_obs.latency" in
  Registry.enable ();
  List.iter (Histogram.observe h) [ 4.0; 1.0; 3.0; 2.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  check_float "mean" 3.0 (Histogram.mean h);
  check_float "p50" 3.0 (Histogram.percentile h 50.0);
  check_float "max" 5.0 (Histogram.max_value h);
  Registry.disable ();
  Histogram.observe h 100.0;
  Alcotest.(check int) "disabled observe dropped" 5 (Histogram.count h)

(* -- snapshots ------------------------------------------------------------- *)

let test_snapshot_diff () =
  let c = Registry.counter "test_obs.diffed" in
  let h = Registry.histogram "test_obs.diffed_hist" in
  Registry.enable ();
  Counter.add c 5;
  Histogram.observe h 1.0;
  let before = Snapshot.capture () in
  Counter.add c 37;
  Histogram.observe h 2.0;
  Histogram.observe h 4.0;
  let delta = Snapshot.diff ~before ~after:(Snapshot.capture ()) in
  Alcotest.(check (option int)) "counter delta" (Some 37)
    (Snapshot.counter_value delta "test_obs.diffed");
  (match Snapshot.find delta "test_obs.diffed_hist" with
  | Some (Snapshot.Dist d) ->
      Alcotest.(check int) "histogram count delta" 2 d.Snapshot.count;
      check_float "histogram sum delta" 6.0 d.Snapshot.sum;
      check_float "histogram mean of delta" 3.0 d.Snapshot.mean
  | Some (Snapshot.Count _) | None -> Alcotest.fail "missing histogram entry");
  Alcotest.(check bool) "delta is not empty" false (Snapshot.is_empty delta)

let test_snapshot_sinks () =
  let c = Registry.counter "test_obs.rendered" in
  Registry.enable ();
  Counter.add c 7;
  let snapshot = Snapshot.capture () in
  let table = Sink.render Sink.Table snapshot in
  let json = Sink.render Sink.Json_lines snapshot in
  Alcotest.(check bool) "table mentions the metric" true
    (contains ~affix:"test_obs.rendered" table);
  Alcotest.(check bool) "json line carries the value" true
    (contains
       ~affix:"{\"metric\":\"test_obs.rendered\",\"type\":\"counter\",\"value\":7}"
       json)

(* -- spans ------------------------------------------------------------------ *)

let test_span_nesting () =
  Registry.enable ();
  let result =
    Span.with_span "outer" (fun () ->
        Span.with_span "inner" (fun () -> ());
        Span.with_span "inner" (fun () -> ());
        Span.with_span "other" (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_span returns f's result" 17 result;
  match Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" (Span.name outer);
      Alcotest.(check int) "root calls" 1 (Span.calls outer);
      let children = Span.children outer in
      Alcotest.(check (list string)) "children in first-opened order"
        [ "inner"; "other" ]
        (List.map Span.name children);
      Alcotest.(check (list int)) "same-name spans aggregate" [ 2; 1 ]
        (List.map Span.calls children);
      List.iter
        (fun child ->
          Alcotest.(check bool) "child time <= parent time" true
            (Span.total_s child <= Span.total_s outer))
        children
  | roots ->
      Alcotest.fail (Printf.sprintf "expected 1 root span, got %d" (List.length roots))

let test_span_disabled_and_exceptional () =
  Span.with_span "invisible" (fun () -> ());
  Alcotest.(check int) "disabled spans record nothing" 0 (List.length (Span.roots ()));
  Registry.enable ();
  (try Span.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  match Span.roots () with
  | [ node ] ->
      Alcotest.(check string) "span closed despite raise" "raises" (Span.name node);
      Alcotest.(check int) "call recorded" 1 (Span.calls node)
  | _ -> Alcotest.fail "expected exactly the raising span"

(* -- storage smoke test ------------------------------------------------------ *)

let test_buffer_pool_accounting () =
  Registry.enable ();
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:8 disk in
  let pids =
    List.init 32 (fun _ ->
        let handle = Buffer_pool.allocate pool in
        let pid = Buffer_pool.page_id handle in
        Buffer_pool.unpin pool handle;
        pid)
  in
  (* Align the two accounting systems: the snapshot diff covers only what
     follows, so zero the pool's cumulative stats at the same instant
     (allocation above already evicted through the 8-frame pool). *)
  Buffer_pool.reset_stats pool;
  let before = Snapshot.capture () in
  let fetches = ref 0 in
  (* Sweep the 32 pages twice through an 8-frame pool: plenty of misses and
     evictions; then re-touch a resident page for guaranteed hits. *)
  for _ = 1 to 2 do
    List.iter
      (fun pid ->
        let handle = Buffer_pool.fetch pool pid in
        incr fetches;
        Buffer_pool.unpin pool handle)
      pids
  done;
  let last = List.nth pids 31 in
  for _ = 1 to 5 do
    let handle = Buffer_pool.fetch pool last in
    incr fetches;
    Buffer_pool.unpin pool handle
  done;
  let delta = Snapshot.diff ~before ~after:(Snapshot.capture ()) in
  let counter name =
    match Snapshot.counter_value delta name with
    | Some n -> n
    | None -> Alcotest.fail (name ^ " missing from snapshot")
  in
  let hits = counter "buffer_pool.hits" and misses = counter "buffer_pool.misses" in
  Alcotest.(check int) "hits + misses = total fetches" !fetches (hits + misses);
  Alcotest.(check bool) "some hits and some misses" true (hits > 0 && misses > 0);
  let stats = Buffer_pool.stats pool in
  Alcotest.(check int) "obs hits match pool stats" stats.Buffer_pool.hits hits;
  Alcotest.(check int) "obs misses match pool stats" stats.Buffer_pool.misses misses;
  Alcotest.(check int) "obs evictions match pool stats" stats.Buffer_pool.evictions
    (counter "buffer_pool.evictions");
  Alcotest.(check int) "every miss is a disk page read" misses
    (counter "disk.page_reads")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter registration" `Quick (fresh test_counter_registration);
          Alcotest.test_case "counter gating" `Quick (fresh test_counter_gating);
          Alcotest.test_case "histogram" `Quick (fresh test_histogram);
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "diff" `Quick (fresh test_snapshot_diff);
          Alcotest.test_case "sinks" `Quick (fresh test_snapshot_sinks);
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick (fresh test_span_nesting);
          Alcotest.test_case "disabled & exceptional" `Quick
            (fresh test_span_disabled_and_exceptional);
        ] );
      ( "storage",
        [
          Alcotest.test_case "buffer pool accounting" `Quick
            (fresh test_buffer_pool_accounting);
        ] );
    ]
