(* Core advisor tests: configuration spaces, candidates, problem instances,
   every solver's invariants (cross-validated on random instances), the
   merging and greedy heuristics, the advisor façade, the simulator, and
   the online tuner. *)

module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module Design = Cddpd_catalog.Design
module Ast = Cddpd_sql.Ast
module Parser = Cddpd_sql.Parser
module Database = Cddpd_engine.Database
module Cost_model = Cddpd_engine.Cost_model
module Config_space = Cddpd_core.Config_space
module Candidates = Cddpd_core.Candidates
module Problem = Cddpd_core.Problem
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Merging = Cddpd_core.Merging
module Greedy_seq = Cddpd_core.Greedy_seq
module Advisor = Cddpd_core.Advisor
module Simulator = Cddpd_core.Simulator
module Online_tuner = Cddpd_core.Online_tuner
module Rng = Cddpd_util.Rng

let index columns = Index_def.make ~table:"t" ~columns

(* -- Config_space -------------------------------------------------------------- *)

let test_space_single_index () =
  let space = Config_space.single_index [ index [ "a" ]; index [ "b" ] ] in
  Alcotest.(check int) "empty + 2 singletons" 3 (Config_space.size space);
  Alcotest.(check bool) "empty present" true
    (Config_space.id_of space Design.empty <> None)

module Structure = Cddpd_catalog.Structure

let test_space_enumerate_counts () =
  let candidates =
    List.map Structure.index [ index [ "a" ]; index [ "b" ]; index [ "c" ] ]
  in
  let size_of _ = 1 in
  let all = Config_space.enumerate ~candidates ~size_of () in
  Alcotest.(check int) "2^3 subsets" 8 (Config_space.size all);
  let capped = Config_space.enumerate ~candidates ~max_structures:1 ~size_of () in
  Alcotest.(check int) "empty + 3" 4 (Config_space.size capped);
  let pairs = Config_space.enumerate ~candidates ~max_structures:2 ~size_of () in
  Alcotest.(check int) "1 + 3 + 3" 7 (Config_space.size pairs)

let test_space_enumerate_space_bound () =
  let candidates = List.map Structure.index [ index [ "a" ]; index [ "b" ] ] in
  let size_of _ = 10 in
  let bounded =
    Config_space.enumerate ~candidates ~space_bound_bytes:10 ~size_of ()
  in
  (* {} (0), {a} (10), {b} (10) fit; {a,b} (20) does not. *)
  Alcotest.(check int) "bound excludes pairs" 3 (Config_space.size bounded);
  let tight = Config_space.enumerate ~candidates ~space_bound_bytes:0 ~size_of () in
  Alcotest.(check int) "only empty fits" 1 (Config_space.size tight)

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_space_enumerate_uncapped_boundary () =
  let many n =
    List.init n (fun i -> Structure.index (index [ Printf.sprintf "c%02d" i ]))
  in
  let size_of _ = 1 in
  (* 21 uncapped candidates would mean 2^21 subsets: refuse with a message
     that points at the two escape hatches. *)
  (match Config_space.enumerate ~candidates:(many 21) ~size_of () with
  | _ -> Alcotest.fail "expected Invalid_argument for 21 uncapped candidates"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names max_structures" true
        (string_contains msg "max_structures");
      Alcotest.(check bool) "message names the pruned pipeline" true
        (string_contains msg "--prune"));
  (* The same candidates are fine once the configuration width is capped. *)
  Alcotest.(check int) "21 capped singletons" 22
    (Config_space.size
       (Config_space.enumerate ~candidates:(many 21) ~max_structures:1 ~size_of ()));
  Alcotest.(check int) "pairs at the boundary: 1 + 20 + C(20,2)" 211
    (Config_space.size
       (Config_space.enumerate ~candidates:(many 20) ~max_structures:2 ~size_of ()))

let test_space_dedup_and_lookup () =
  let d = Design.singleton (index [ "a" ]) in
  let space = Config_space.of_designs [ Design.empty; d; d; Design.empty ] in
  Alcotest.(check int) "deduplicated" 2 (Config_space.size space);
  Alcotest.(check int) "id stable" (Config_space.id_of_exn space d)
    (Config_space.id_of_exn space (Design.singleton (index [ "a" ])));
  Alcotest.(check bool) "design roundtrip" true
    (Design.equal d (Config_space.design space (Config_space.id_of_exn space d)))

let test_space_restrict () =
  let space =
    Config_space.single_index [ index [ "a" ]; index [ "b" ]; index [ "c" ] ]
  in
  let sub, mapping = Config_space.restrict space [ 2; 0 ] in
  Alcotest.(check int) "two configs" 2 (Config_space.size sub);
  Alcotest.(check (array int)) "mapping" [| 2; 0 |] mapping;
  Alcotest.(check bool) "designs preserved" true
    (Design.equal (Config_space.design sub 0) (Config_space.design space 2))

(* -- Candidates ----------------------------------------------------------------- *)

let paper_schema =
  Schema.table "t"
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let w1_statements () =
  Cddpd_workload.Spec.generate_flat
    (Cddpd_workload.Workloads.w1 ~scale:0.1 ())
    ~table:"t" ~value_range:100 ~seed:2

let test_candidates_recover_paper_space () =
  (* On the W1 workload, frequency-paired composites are exactly I(a,b)
     and I(c,d). *)
  let candidates =
    Candidates.from_statements paper_schema ~composite_pairs:2 (w1_statements ())
  in
  let names = List.map Index_def.name candidates in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing candidate %s" expected)
    [ "I(a)"; "I(b)"; "I(c)"; "I(d)"; "I(a,b)"; "I(c,d)" ];
  Alcotest.(check int) "exactly the paper's six" 6 (List.length candidates)

let test_candidates_frequencies_ordered () =
  let freqs = Candidates.column_frequencies paper_schema (w1_statements ()) in
  let rec nonincreasing xs =
    match xs with
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && nonincreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by frequency" true (nonincreasing freqs);
  Alcotest.(check int) "all four columns" 4 (List.length freqs)

let test_candidates_ignore_other_tables () =
  let statements = [| Parser.parse_exn "SELECT x FROM other WHERE x = 1" |] in
  Alcotest.(check int) "nothing for t" 0
    (List.length (Candidates.from_statements paper_schema statements))

let test_view_candidates () =
  let statements =
    Array.append (w1_statements ())
      (Cddpd_workload.Report_gen.segment ~table:"t" ~group_by:"c"
         ~sum_columns:[ "a" ] ~n:50 ~value_range:100 ~seed:3 ())
  in
  let views = Candidates.view_candidates paper_schema statements in
  Alcotest.(check (list string)) "one view on c" [ "MV(c)" ]
    (List.map Cddpd_catalog.View_def.name views);
  let all = Candidates.structures_from_statements paper_schema ~composite_pairs:2 statements in
  Alcotest.(check int) "6 indexes + 1 view" 7 (List.length all)

let test_view_candidates_none_without_aggregates () =
  Alcotest.(check int) "no views from point queries" 0
    (List.length (Candidates.view_candidates paper_schema (w1_statements ())))

let index_columns structure =
  match Structure.as_index structure with
  | Some ix -> Some (Index_def.columns ix)
  | None -> None

let test_candidates_generate_multi_column () =
  let statements = w1_statements () in
  let generated = Candidates.generate paper_schema statements in
  Alcotest.(check bool) "non-empty" true (generated <> []);
  (* Deterministic: same statements, same candidates in the same order. *)
  Alcotest.(check (list string)) "deterministic"
    (List.map Structure.name generated)
    (List.map Structure.name (Candidates.generate paper_schema statements));
  (* Closed under prefixes: every proper prefix of a composite is present. *)
  let column_lists = List.filter_map index_columns generated in
  List.iter
    (fun columns ->
      let rec prefixes acc rest =
        match rest with
        | [] | [ _ ] -> ()
        | c :: tail ->
            let prefix = List.rev (c :: acc) in
            if not (List.mem prefix column_lists) then
              Alcotest.failf "missing prefix I(%s)" (String.concat "," prefix);
            prefixes (c :: acc) tail
      in
      prefixes [] columns)
    column_lists;
  (* max_width truncates composites; max_candidates caps the list. *)
  List.iter
    (fun columns ->
      Alcotest.(check bool) "width <= 2" true (List.length columns <= 2))
    (List.filter_map index_columns (Candidates.generate paper_schema ~max_width:2 statements));
  Alcotest.(check int) "capped at 3" 3
    (List.length (Candidates.generate paper_schema ~max_candidates:3 statements));
  Alcotest.(check bool) "max_width 0 rejected" true
    (match Candidates.generate paper_schema ~max_width:0 statements with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_candidates_generate_includes_views () =
  let statements =
    Array.append (w1_statements ())
      (Cddpd_workload.Report_gen.segment ~table:"t" ~group_by:"c"
         ~sum_columns:[ "a" ] ~n:50 ~value_range:100 ~seed:3 ())
  in
  let generated = Candidates.generate paper_schema statements in
  Alcotest.(check bool) "MV(c) generated" true
    (List.exists (fun s -> Structure.name s = "MV(c)") generated)

(* -- Problem (synthetic matrices) -------------------------------------------------- *)

(* A tiny synthetic space: ids 0..n-1 with designs only used for display. *)
let synthetic_space n =
  Config_space.of_designs
    (Design.empty
    :: List.init (n - 1) (fun i -> Design.singleton (index [ String.make 1 (Char.chr (97 + i)) ])))

let dummy_steps n = Array.make n [||]

let synthetic_problem ?(count_initial_change = false) ~exec ~trans () =
  let n_configs = Array.length trans in
  Problem.of_matrices
    ~steps:(dummy_steps (Array.length exec))
    ~space:(synthetic_space n_configs) ~initial:0 ~exec ~trans ~count_initial_change ()

let test_problem_of_matrices_validation () =
  let reject f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "negative exec" true
    (reject (fun () ->
         synthetic_problem ~exec:[| [| -1.0; 0.0 |] |] ~trans:[| [| 0.; 0. |]; [| 0.; 0. |] |] ()));
  Alcotest.(check bool) "nonzero self trans" true
    (reject (fun () ->
         synthetic_problem ~exec:[| [| 0.0; 0.0 |] |] ~trans:[| [| 1.; 0. |]; [| 0.; 0. |] |] ()));
  Alcotest.(check bool) "ragged exec" true
    (reject (fun () ->
         synthetic_problem ~exec:[| [| 0.0 |] |] ~trans:[| [| 0.; 0. |]; [| 0.; 0. |] |] ()))

let test_problem_path_cost () =
  let exec = [| [| 1.; 10. |]; [| 10.; 1. |] |] in
  let trans = [| [| 0.; 5. |]; [| 5.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  (* Path [0;1]: trans 0->0 (source, free) + 1 + trans 0->1 (5) + 1 = 7. *)
  Alcotest.(check (float 1e-9)) "cost" 7.0 (Problem.path_cost problem [| 0; 1 |]);
  Alcotest.(check int) "changes" 1 (Problem.path_changes problem [| 0; 1 |])

let test_problem_count_initial_change () =
  let exec = [| [| 1.; 1. |] |] in
  let trans = [| [| 0.; 0. |]; [| 0.; 0. |] |] in
  let free = synthetic_problem ~exec ~trans () in
  let counted = synthetic_problem ~count_initial_change:true ~exec ~trans () in
  Alcotest.(check int) "free initial" 0 (Problem.path_changes free [| 1 |]);
  Alcotest.(check int) "counted initial" 1 (Problem.path_changes counted [| 1 |])

(* Random instance generator for solver cross-validation. *)
let random_problem_gen =
  QCheck.Gen.(
    let cost = map (fun i -> float_of_int i) (int_bound 40) in
    int_range 1 6 >>= fun n_steps ->
    int_range 2 4 >>= fun n_configs ->
    array_size (return n_steps) (array_size (return n_configs) cost) >>= fun exec ->
    array_size (return n_configs) (array_size (return n_configs) cost) >>= fun trans ->
    bool >>= fun count_initial_change ->
    (* Zero the diagonal to satisfy the invariant. *)
    Array.iteri (fun i row -> row.(i) <- 0.0) trans;
    return (synthetic_problem ~count_initial_change ~exec ~trans ()))

let random_problem =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "steps=%d configs=%d" (Problem.n_steps p) (Problem.n_configs p))
    random_problem_gen

let all_assignments problem =
  let n = Problem.n_steps problem and m = Problem.n_configs problem in
  let rec go step acc =
    if step = n then [ Array.of_list (List.rev acc) ]
    else List.concat_map (fun c -> go (step + 1) (c :: acc)) (List.init m (fun c -> c))
  in
  go 0 []

let brute_force_optimum problem ~k =
  List.fold_left
    (fun acc path ->
      if Problem.path_changes problem path <= k then
        Float.min acc (Problem.path_cost problem path)
      else acc)
    infinity (all_assignments problem)

let solve_cost problem method_name k =
  match Optimizer.solve problem ~method_name ?k () with
  | Ok s -> Some s.Solution.cost
  | Error _ -> None

let kaware_optimal_prop =
  QCheck.Test.make ~name:"kaware solver = brute force on problem instances" ~count:150
    (QCheck.pair random_problem (QCheck.int_bound 3))
    (fun (problem, k) ->
      let expected = brute_force_optimum problem ~k in
      match solve_cost problem Solution.Kaware (Some k) with
      | Some cost -> Float.abs (cost -. expected) < 1e-6
      | None -> expected = infinity)

let heuristics_feasible_and_bounded_prop =
  QCheck.Test.make ~name:"heuristics feasible; cost >= kaware optimum" ~count:150
    (QCheck.pair random_problem (QCheck.int_bound 3))
    (fun (problem, k) ->
      let optimal = brute_force_optimum problem ~k in
      List.for_all
        (fun method_name ->
          match Optimizer.solve problem ~method_name ~k () with
          | Ok s ->
              s.Solution.changes <= k && s.Solution.cost >= optimal -. 1e-6
          | Error Optimizer.Infeasible -> optimal = infinity
          | Error (Optimizer.Ranking_gave_up _) -> true)
        [ Solution.Merging; Solution.Greedy_seq; Solution.Hybrid ])

let ranking_optimal_prop =
  QCheck.Test.make ~name:"ranking solver matches kaware optimum" ~count:100
    (QCheck.pair random_problem (QCheck.int_bound 3))
    (fun (problem, k) ->
      match
        ( solve_cost problem Solution.Ranking (Some k),
          solve_cost problem Solution.Kaware (Some k) )
      with
      | Some r, Some kw -> Float.abs (r -. kw) < 1e-6
      | None, _ | _, None -> true (* gave up or infeasible; covered elsewhere *))

let unconstrained_lower_bound_prop =
  QCheck.Test.make ~name:"unconstrained cost lower-bounds every constrained cost"
    ~count:100
    (QCheck.pair random_problem (QCheck.int_bound 4))
    (fun (problem, k) ->
      let unconstrained = Optimizer.unconstrained problem in
      match solve_cost problem Solution.Kaware (Some k) with
      | Some cost -> cost +. 1e-9 >= unconstrained.Solution.cost
      | None -> true)

let kaware_k_at_least_l_equals_unconstrained_prop =
  QCheck.Test.make ~name:"kaware with k >= l equals unconstrained" ~count:100
    random_problem (fun problem ->
      let unconstrained = Optimizer.unconstrained problem in
      let l = unconstrained.Solution.changes in
      match solve_cost problem Solution.Kaware (Some l) with
      | Some cost -> Float.abs (cost -. unconstrained.Solution.cost) < 1e-6
      | None -> false)

let merging_reduces_changes_prop =
  QCheck.Test.make ~name:"merging refines to <= k changes" ~count:150
    (QCheck.pair random_problem (QCheck.int_bound 3))
    (fun (problem, k) ->
      let unconstrained = Optimizer.unconstrained problem in
      let refined = Merging.refine problem ~k unconstrained.Solution.path in
      Problem.path_changes problem refined <= k)

let greedy_subset_prop =
  QCheck.Test.make ~name:"greedy-seq reduced ids include initial and per-step bests"
    ~count:100 random_problem (fun problem ->
      let ids = Greedy_seq.reduced_config_ids problem in
      List.mem problem.Problem.initial ids
      && List.length ids <= Problem.n_configs problem
      && List.for_all (fun id -> id >= 0 && id < Problem.n_configs problem) ids)

let test_optimizer_requires_k () =
  let problem =
    synthetic_problem ~exec:[| [| 1.; 2. |] |] ~trans:[| [| 0.; 1. |]; [| 1.; 0. |] |] ()
  in
  Alcotest.(check bool) "missing k raises" true
    (match Optimizer.solve problem ~method_name:Solution.Kaware () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_solution_runs () =
  let exec = [| [| 0.; 1. |]; [| 0.; 1. |]; [| 1.; 0. |] |] in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  let solution =
    { Solution.path = [| 0; 0; 1 |]; cost = 0.0; changes = 1;
      method_name = Solution.Unconstrained; elapsed = 0.0 }
  in
  match Solution.runs problem solution with
  | [ (0, 2, d0); (2, 1, d1) ] ->
      Alcotest.(check bool) "first design" true (Design.is_empty d0);
      Alcotest.(check bool) "second design" false (Design.is_empty d1)
  | runs -> Alcotest.failf "unexpected runs (%d)" (List.length runs)

(* -- merging specifics --------------------------------------------------------------- *)

let test_merging_paper_example () =
  (* The paper's example: n=3, configs {0=empty, 1={IX}}, unconstrained
     optimum [0;1;0] with l=2 changes, k=1.  Merging must produce a
     schedule with at most one change. *)
  let exec = [| [| 1.; 5. |]; [| 50.; 1. |]; [| 1.; 5. |] |] in
  let trans = [| [| 0.; 10. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  let unconstrained = Optimizer.unconstrained problem in
  Alcotest.(check (array int)) "unconstrained flips" [| 0; 1; 0 |]
    unconstrained.Solution.path;
  let refined = Merging.refine problem ~k:1 unconstrained.Solution.path in
  Alcotest.(check bool) "at most 1 change" true (Problem.path_changes problem refined <= 1)

let test_merging_k0_initial_counted () =
  let exec = [| [| 9.; 1. |]; [| 9.; 1. |] |] in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~count_initial_change:true ~exec ~trans () in
  let refined = Merging.refine problem ~k:0 [| 1; 1 |] in
  Alcotest.(check (array int)) "forced back to initial" [| 0; 0 |] refined

(* -- K_advisor ------------------------------------------------------------------------ *)

module K_advisor = Cddpd_core.K_advisor

let test_k_advisor_profile_monotone () =
  (* Three phases, expensive transitions: benefits concentrate in the
     first two changes. *)
  let exec =
    [| [| 1.; 50.; 50. |]; [| 1.; 50.; 50. |]; [| 50.; 1.; 50. |];
       [| 50.; 1.; 50. |]; [| 50.; 50.; 1. |]; [| 50.; 50.; 1. |] |]
  in
  let trans =
    [| [| 0.; 5.; 5. |]; [| 5.; 0.; 5. |]; [| 5.; 5.; 0. |] |]
  in
  let problem = synthetic_problem ~exec ~trans () in
  let points = K_advisor.profile problem in
  (* Cost nonincreasing in k, capture nondecreasing, endpoints exact. *)
  let rec check_monotone points =
    match points with
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "cost nonincreasing" true (a.K_advisor.cost +. 1e-9 >= b.K_advisor.cost);
        Alcotest.(check bool) "capture nondecreasing" true
          (a.K_advisor.captured <= b.K_advisor.captured +. 1e-9);
        check_monotone rest
    | [ last ] -> Alcotest.(check (float 1e-9)) "full capture at l" 1.0 last.K_advisor.captured
    | [] -> Alcotest.fail "empty profile"
  in
  check_monotone points;
  (match points with
  | first :: _ -> Alcotest.(check (float 1e-9)) "zero capture at k=0" 0.0 first.K_advisor.captured
  | [] -> ())

let test_k_advisor_suggests_elbow () =
  (* Two big shifts and tiny wobbles: k=2 captures nearly everything. *)
  let big = 100.0 and small = 2.0 in
  let exec =
    [| [| 1.; big |]; [| 1. +. small; big |]; [| 1.; big |];
       [| big; 1. |]; [| big; 1. +. small |]; [| big; 1. |] |]
  in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  let r = K_advisor.suggest ~capture_target:0.9 problem in
  Alcotest.(check bool) "small k suffices" true (r.K_advisor.suggested_k <= 2);
  Alcotest.(check bool) "k below l" true
    (r.K_advisor.suggested_k <= r.K_advisor.unconstrained_changes)

let test_k_advisor_flat_instance () =
  (* No benefit at all: suggest k=0. *)
  let exec = [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  let r = K_advisor.suggest problem in
  Alcotest.(check int) "k = 0" 0 r.K_advisor.suggested_k

let test_k_advisor_invalid_target () =
  let exec = [| [| 1.; 1. |] |] in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  Alcotest.(check bool) "target > 1 rejected" true
    (match K_advisor.suggest ~capture_target:1.5 problem with
    | _ -> false
    | exception Invalid_argument _ -> true)

let k_advisor_capture_prop =
  QCheck.Test.make ~name:"suggested k meets the capture target" ~count:100 random_problem
    (fun problem ->
      let r = K_advisor.suggest ~capture_target:0.75 problem in
      match List.find_opt (fun p -> p.K_advisor.k = r.K_advisor.suggested_k) r.K_advisor.profile with
      | Some p ->
          p.K_advisor.captured >= 0.75 -. 1e-9
          || r.K_advisor.suggested_k = r.K_advisor.unconstrained_changes
      | None -> false)

(* -- advisor / simulator / online tuner on a real database ---------------------------- *)

let make_db ?(rows = 4_000) () =
  let db = Database.create ~pool_capacity:2048 [ paper_schema ] in
  let data =
    Cddpd_workload.Data_gen.uniform_rows ~columns:4 ~rows ~value_range:(rows / 5) ~seed:3
  in
  Database.load db ~table:"t" data;
  db

let small_steps () =
  Cddpd_workload.Spec.generate
    (Cddpd_workload.Workloads.w1 ~scale:0.04 ())
    ~table:"t" ~value_range:800 ~seed:5

let test_advisor_end_to_end () =
  let db = make_db () in
  let steps = small_steps () in
  let request =
    { (Advisor.default_request ~steps ~table:"t") with
      Advisor.k = Some 2; method_name = Solution.Kaware }
  in
  let recommendation = Advisor.recommend_exn db request in
  Alcotest.(check int) "one design per step" (Array.length steps)
    (Array.length recommendation.Advisor.schedule);
  Alcotest.(check bool) "at most 2 changes" true
    (recommendation.Advisor.solution.Solution.changes <= 2);
  (* The recommended designs must come from a single-index space. *)
  Array.iter
    (fun d -> Alcotest.(check bool) "at most one index" true (Design.cardinality d <= 1))
    recommendation.Advisor.schedule

let test_advisor_auto_candidates_match_paper () =
  let db = make_db () in
  let steps = small_steps () in
  let request = Advisor.default_request ~steps ~table:"t" in
  let recommendation = Advisor.recommend_exn db request in
  Alcotest.(check int) "paper's 7 configurations" 7
    (Problem.n_configs recommendation.Advisor.problem)

let test_advisor_unknown_table () =
  let db = make_db () in
  let request = Advisor.default_request ~steps:(small_steps ()) ~table:"nope" in
  Alcotest.(check bool) "unknown table raises" true
    (match Advisor.recommend db request with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_advisor_space_bound_shrinks_space () =
  let db = make_db () in
  let steps = small_steps () in
  let request =
    { (Advisor.default_request ~steps ~table:"t") with Advisor.space_bound_bytes = Some 1 }
  in
  let recommendation = Advisor.recommend_exn db request in
  (* Only the empty design fits one byte. *)
  Alcotest.(check int) "only empty config" 1
    (Problem.n_configs recommendation.Advisor.problem)

(* -- design-space scaling: compression and dominance pruning ----------------------- *)

module Pruner = Cddpd_core.Pruner

(* One shared database for the scaling properties: the workloads vary per
   iteration, the statistics do not. *)
let scaling_db = lazy (make_db ())

let random_workload =
  let gen =
    QCheck.Gen.(
      oneofl [ "W1"; "W2"; "W3" ] >>= fun name ->
      int_range 1 10_000 >>= fun seed ->
      int_range 200 2_000 >>= fun value_range ->
      return (name, seed, value_range))
  in
  QCheck.make
    ~print:(fun (name, seed, value_range) ->
      Printf.sprintf "%s seed=%d value_range=%d" name seed value_range)
    gen

let workload_steps (name, seed, value_range) =
  Cddpd_workload.Spec.generate
    (Cddpd_workload.Workloads.by_name name ~scale:0.04 ())
    ~table:"t" ~value_range ~seed

let float_bits_equal x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let matrix_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun r1 r2 ->
         Array.length r1 = Array.length r2 && Array.for_all2 float_bits_equal r1 r2)
       a b

(* An exact solver signature: hex-printed cost plus the path, so two
   problems agree iff the solver behaved bit-identically on both.  Ranking
   runs under tight (deterministic) budgets: at small k its rank explosion
   would otherwise dominate the whole suite. *)
let solver_signature problem method_name k =
  match
    Optimizer.solve problem ~method_name ?k ~max_paths:20_000 ~max_queue:65_536 ()
  with
  | Ok s ->
      Printf.sprintf "ok %h %d [%s]" s.Solution.cost s.Solution.changes
        (String.concat ";" (Array.to_list (Array.map string_of_int s.Solution.path)))
  | Error Optimizer.Infeasible -> "infeasible"
  | Error (Optimizer.Ranking_gave_up _) -> "gave up"
  | exception Invalid_argument _ -> "k required"

let all_methods =
  [ Solution.Unconstrained; Solution.Kaware; Solution.Ranking; Solution.Merging;
    Solution.Greedy_seq; Solution.Hybrid ]

let compression_bit_identity_prop =
  QCheck.Test.make ~name:"workload compression is bit-identical (matrices and solvers)"
    ~count:9 random_workload (fun spec ->
      let db = Lazy.force scaling_db in
      let params = Database.params db in
      let stats_of table = Database.table_stats db table in
      let steps = workload_steps spec in
      let flat = Array.concat (Array.to_list steps) in
      let candidates =
        Candidates.structures_from_statements paper_schema ~composite_pairs:2 flat
      in
      let size_of s =
        Cost_model.structure_size_bytes params ~stats:(stats_of (Structure.table s)) s
      in
      let space = Config_space.enumerate ~candidates ~max_structures:1 ~size_of () in
      let build compress_workload =
        Problem.build ~params ~stats_of ~steps ~space ~initial:Design.empty
          ~compress_workload ()
      in
      let plain = build false and compressed = build true in
      matrix_bits_equal plain.Problem.exec compressed.Problem.exec
      && matrix_bits_equal plain.Problem.trans compressed.Problem.trans
      && List.for_all
           (fun method_name ->
             List.for_all
               (fun k ->
                 String.equal
                   (solver_signature plain method_name k)
                   (solver_signature compressed method_name k))
               [ None; Some 1; Some 2; Some 3 ])
           all_methods)

let pruning_preserves_atomic_optimum_prop =
  QCheck.Test.make
    ~name:"dominance pruning preserves the optimum on atomic spaces" ~count:9
    (QCheck.pair random_workload (QCheck.int_range 1 3))
    (fun (spec, k) ->
      let db = Lazy.force scaling_db in
      let params = Database.params db in
      let stats_of table = Database.table_stats db table in
      let steps = workload_steps spec in
      let flat = Array.concat (Array.to_list steps) in
      let candidates = Candidates.generate paper_schema flat in
      let size_of s =
        Cost_model.structure_size_bytes params ~stats:(stats_of (Structure.table s)) s
      in
      let full_space =
        Config_space.enumerate ~candidates ~max_structures:1 ~size_of ()
      in
      let scored = Pruner.score ~params ~stats_of ~steps candidates in
      let survivors, pruned_count = Pruner.dominance_prune scored in
      let pruned_space = Pruner.space ~max_structures:1 survivors in
      Alcotest.(check int) "survivors + pruned = candidates"
        (List.length candidates)
        (List.length survivors + pruned_count);
      let build space =
        Problem.build ~params ~stats_of ~steps ~space ~initial:Design.empty ()
      in
      let full = build full_space and pruned = build pruned_space in
      (* The pruned space is a subset, so the heuristics need not agree;
         exactness is claimed for the optimal solver. *)
      match
        ( Optimizer.solve full ~method_name:Solution.Kaware ~k (),
          Optimizer.solve pruned ~method_name:Solution.Kaware ~k () )
      with
      | Ok a, Ok b -> float_bits_equal a.Solution.cost b.Solution.cost
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let test_simulator_replay () =
  let db = make_db () in
  let steps = small_steps () in
  let n = Array.length steps in
  let schedule = Array.make n (Design.singleton (index [ "a"; "b" ])) in
  let report = Simulator.run db ~steps ~schedule in
  Alcotest.(check int) "per-step reports" n (Array.length report.Simulator.steps);
  Alcotest.(check bool) "transition I/O happened once" true
    (report.Simulator.steps.(0).Simulator.trans_logical_io > 0
    && report.Simulator.steps.(1).Simulator.trans_logical_io = 0);
  Alcotest.(check bool) "execution I/O counted" true (report.Simulator.exec_logical_io > 0);
  Alcotest.(check int) "totals add up"
    report.Simulator.total_logical_io
    (report.Simulator.exec_logical_io + report.Simulator.trans_logical_io)

let test_simulator_static_empty_slower () =
  (* A good schedule should replay with less I/O than no indexes at all. *)
  let steps = small_steps () in
  let db1 = make_db () in
  let n = Array.length steps in
  let empty_report = Simulator.run db1 ~steps ~schedule:(Array.make n Design.empty) in
  let db2 = make_db () in
  let problem =
    Problem.build ~params:(Database.params db2)
      ~stats_of:(fun table -> Database.table_stats db2 table)
      ~steps
      ~space:(Config_space.single_index
                [ index [ "a" ]; index [ "b" ]; index [ "c" ]; index [ "d" ];
                  index [ "a"; "b" ]; index [ "c"; "d" ] ])
      ~initial:Design.empty ()
  in
  let solution =
    match Optimizer.solve problem ~method_name:Solution.Kaware ~k:2 () with
    | Ok s -> s
    | Error _ -> Alcotest.fail "solver failed"
  in
  let tuned_report =
    Simulator.run db2 ~steps ~schedule:(Solution.schedule problem solution)
  in
  Alcotest.(check bool) "tuned replay cheaper" true
    (tuned_report.Simulator.total_logical_io < empty_report.Simulator.total_logical_io)

let test_simulator_length_mismatch () =
  let db = make_db ~rows:100 () in
  Alcotest.(check bool) "length mismatch raises" true
    (match Simulator.run db ~steps:[| [||]; [||] |] ~schedule:[| Design.empty |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_online_tuner_properties () =
  let exec =
    [| [| 10.; 0. |]; [| 10.; 0. |]; [| 10.; 0. |]; [| 0.; 10. |]; [| 0.; 10. |] |]
  in
  let trans = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let problem = synthetic_problem ~exec ~trans () in
  let path = Online_tuner.run problem in
  Alcotest.(check int) "starts on the initial config" 0 path.(0);
  Alcotest.(check bool) "eventually switches to the cheap config" true
    (Array.exists (fun c -> c = 1) path);
  (* Online decisions are causal: rerunning yields the same path. *)
  Alcotest.(check (array int)) "deterministic" path (Online_tuner.run problem)

let online_tuner_valid_path_prop =
  QCheck.Test.make ~name:"online tuner emits a valid assignment" ~count:100 random_problem
    (fun problem ->
      let path = Online_tuner.run problem in
      Array.length path = Problem.n_steps problem
      && Array.for_all (fun c -> c >= 0 && c < Problem.n_configs problem) path
      && path.(0) = problem.Problem.initial)

let () =
  Alcotest.run "core"
    [
      ( "config_space",
        [
          Alcotest.test_case "single index space" `Quick test_space_single_index;
          Alcotest.test_case "enumerate counts" `Quick test_space_enumerate_counts;
          Alcotest.test_case "space bound" `Quick test_space_enumerate_space_bound;
          Alcotest.test_case "uncapped boundary" `Quick
            test_space_enumerate_uncapped_boundary;
          Alcotest.test_case "dedup and lookup" `Quick test_space_dedup_and_lookup;
          Alcotest.test_case "restrict" `Quick test_space_restrict;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "recover paper space" `Quick test_candidates_recover_paper_space;
          Alcotest.test_case "frequency order" `Quick test_candidates_frequencies_ordered;
          Alcotest.test_case "other tables ignored" `Quick test_candidates_ignore_other_tables;
          Alcotest.test_case "view candidates" `Quick test_view_candidates;
          Alcotest.test_case "no spurious view candidates" `Quick
            test_view_candidates_none_without_aggregates;
          Alcotest.test_case "multi-column generator" `Quick
            test_candidates_generate_multi_column;
          Alcotest.test_case "generator keeps views" `Quick
            test_candidates_generate_includes_views;
        ] );
      ( "problem",
        [
          Alcotest.test_case "matrix validation" `Quick test_problem_of_matrices_validation;
          Alcotest.test_case "path cost" `Quick test_problem_path_cost;
          Alcotest.test_case "initial change convention" `Quick
            test_problem_count_initial_change;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "k required" `Quick test_optimizer_requires_k;
          Alcotest.test_case "solution runs" `Quick test_solution_runs;
          QCheck_alcotest.to_alcotest kaware_optimal_prop;
          QCheck_alcotest.to_alcotest heuristics_feasible_and_bounded_prop;
          QCheck_alcotest.to_alcotest ranking_optimal_prop;
          QCheck_alcotest.to_alcotest unconstrained_lower_bound_prop;
          QCheck_alcotest.to_alcotest kaware_k_at_least_l_equals_unconstrained_prop;
          QCheck_alcotest.to_alcotest merging_reduces_changes_prop;
          QCheck_alcotest.to_alcotest greedy_subset_prop;
        ] );
      ( "merging",
        [
          Alcotest.test_case "paper example" `Quick test_merging_paper_example;
          Alcotest.test_case "k=0 with counted initial" `Quick
            test_merging_k0_initial_counted;
        ] );
      ( "k_advisor",
        [
          Alcotest.test_case "profile monotone" `Quick test_k_advisor_profile_monotone;
          Alcotest.test_case "suggests the elbow" `Quick test_k_advisor_suggests_elbow;
          Alcotest.test_case "flat instance" `Quick test_k_advisor_flat_instance;
          Alcotest.test_case "invalid target" `Quick test_k_advisor_invalid_target;
          QCheck_alcotest.to_alcotest k_advisor_capture_prop;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "end to end" `Quick test_advisor_end_to_end;
          Alcotest.test_case "auto candidates" `Quick test_advisor_auto_candidates_match_paper;
          Alcotest.test_case "unknown table" `Quick test_advisor_unknown_table;
          Alcotest.test_case "space bound" `Quick test_advisor_space_bound_shrinks_space;
        ] );
      ( "scaling",
        [
          QCheck_alcotest.to_alcotest compression_bit_identity_prop;
          QCheck_alcotest.to_alcotest pruning_preserves_atomic_optimum_prop;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "replay" `Quick test_simulator_replay;
          Alcotest.test_case "tuned beats empty" `Quick test_simulator_static_empty_slower;
          Alcotest.test_case "length mismatch" `Quick test_simulator_length_mismatch;
        ] );
      ( "online_tuner",
        [
          Alcotest.test_case "switching behaviour" `Quick test_online_tuner_properties;
          QCheck_alcotest.to_alcotest online_tuner_valid_path_prop;
        ] );
    ]
