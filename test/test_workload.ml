(* Workload library tests: mixes (Table 1), specs, the W1/W2/W3 workloads
   (Table 2), traces, and data generation. *)

module Mix = Cddpd_workload.Mix
module Spec = Cddpd_workload.Spec
module Workloads = Cddpd_workload.Workloads
module Trace = Cddpd_workload.Trace
module Data_gen = Cddpd_workload.Data_gen
module Ast = Cddpd_sql.Ast
module Printer = Cddpd_sql.Printer
module Tuple = Cddpd_storage.Tuple
module Rng = Cddpd_util.Rng

(* -- Mix ---------------------------------------------------------------------- *)

let test_mix_table1_weights () =
  (* The exact Table 1 numbers. *)
  let expect mix col w =
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "%s.%s" (Mix.name mix) col)
      w (Mix.weight mix col)
  in
  expect Mix.mix_a "a" 0.55;
  expect Mix.mix_a "b" 0.25;
  expect Mix.mix_a "c" 0.10;
  expect Mix.mix_a "d" 0.10;
  expect Mix.mix_b "b" 0.55;
  expect Mix.mix_c "c" 0.55;
  expect Mix.mix_c "d" 0.25;
  expect Mix.mix_d "d" 0.55;
  expect Mix.mix_d "c" 0.25

let test_mix_normalisation () =
  let m = Mix.make ~name:"m" [ ("x", 2.0); ("y", 6.0) ] in
  Alcotest.(check (float 1e-9)) "x" 0.25 (Mix.weight m "x");
  Alcotest.(check (float 1e-9)) "y" 0.75 (Mix.weight m "y");
  Alcotest.(check (float 1e-9)) "absent" 0.0 (Mix.weight m "z")

let test_mix_invalid () =
  Alcotest.(check bool) "empty rejected" true
    (match Mix.make ~name:"m" [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "nonpositive rejected" true
    (match Mix.make ~name:"m" [ ("x", 0.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (match Mix.make ~name:"m" [ ("x", 1.0); ("x", 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mix_of_letter () =
  Alcotest.(check string) "A" "A" (Mix.name (Mix.of_letter 'A'));
  Alcotest.(check string) "lowercase d" "D" (Mix.name (Mix.of_letter 'd'));
  Alcotest.(check bool) "bad letter" true
    (match Mix.of_letter 'z' with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mix_sample_query_shape () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    match Mix.sample_query Mix.mix_a ~table:"t" ~value_range:100 rng with
    | Ast.Select { projection = Ast.Columns [ col ]; table = "t"; where = [ pred ] } -> (
        match pred with
        | Ast.Cmp { column; op = Ast.Eq; value = Tuple.Int v } ->
            (* The paper's template: the projected column is the predicate
               column, and the constant is in range. *)
            Alcotest.(check string) "same column" col column;
            if v < 0 || v >= 100 then Alcotest.failf "value %d out of range" v
        | _ -> Alcotest.fail "not a point predicate")
    | _ -> Alcotest.fail "not a point query"
  done

let test_mix_sample_distribution () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Mix.sample_column Mix.mix_a rng = "a" then incr count
  done;
  let frac = float_of_int !count /. float_of_int n in
  Alcotest.(check bool) "55% on column a" true (frac > 0.53 && frac < 0.57)

(* -- Spec ---------------------------------------------------------------------- *)

let test_spec_of_letters () =
  let spec = Spec.of_letters ~queries_per_segment:100 "AABD" in
  Alcotest.(check int) "segments" 4 (Spec.n_segments spec);
  Alcotest.(check int) "total" 400 (Spec.total_queries spec);
  Alcotest.(check string) "letters" "AABD" (Spec.mix_letters spec)

let test_spec_generate_deterministic () =
  let spec = Spec.of_letters ~queries_per_segment:50 "AB" in
  let s1 = Spec.generate spec ~table:"t" ~value_range:100 ~seed:3 in
  let s2 = Spec.generate spec ~table:"t" ~value_range:100 ~seed:3 in
  let s3 = Spec.generate spec ~table:"t" ~value_range:100 ~seed:4 in
  Alcotest.(check bool) "same seed, same queries" true (s1 = s2);
  Alcotest.(check bool) "different seed, different queries" true (s1 <> s3)

let test_spec_generate_shape () =
  let spec = Spec.of_letters ~queries_per_segment:30 "ABC" in
  let segments = Spec.generate spec ~table:"t" ~value_range:100 ~seed:1 in
  Alcotest.(check int) "3 segments" 3 (Array.length segments);
  Array.iter (fun s -> Alcotest.(check int) "segment size" 30 (Array.length s)) segments

let test_spec_generate_flat () =
  let spec = Spec.of_letters ~queries_per_segment:30 "AB" in
  let flat = Spec.generate_flat spec ~table:"t" ~value_range:100 ~seed:1 in
  let segments = Spec.generate spec ~table:"t" ~value_range:100 ~seed:1 in
  Alcotest.(check bool) "flat = concat segments" true
    (flat = Array.concat (Array.to_list segments))

let test_spec_invalid () =
  Alcotest.(check bool) "empty spec" true
    (match Spec.make [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "zero-size segment" true
    (match Spec.make [ { Spec.mix = Mix.mix_a; n_queries = 0 } ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* -- Workloads (Table 2) --------------------------------------------------------- *)

let test_workload_letters_match_paper () =
  (* Spot-check the Table 2 mix columns. *)
  Alcotest.(check int) "30 segments" 30 (String.length Workloads.letters_w1);
  Alcotest.(check string) "W1" "AABBAABBAACCDDCCDDCCAABBAABBAA" Workloads.letters_w1;
  Alcotest.(check string) "W2" "ABABABABABCDCDCDCDCDABABABABAB" Workloads.letters_w2;
  Alcotest.(check string) "W3" "BBAABBAABBDDCCDDCCDDBBAABBAABB" Workloads.letters_w3

let test_workload_specs () =
  let w1 = Workloads.w1 () in
  Alcotest.(check int) "full scale" 15_000 (Spec.total_queries w1);
  Alcotest.(check string) "letters" Workloads.letters_w1 (Spec.mix_letters w1);
  let small = Workloads.w2 ~scale:0.1 () in
  Alcotest.(check int) "scaled" 1_500 (Spec.total_queries small)

let test_workload_by_name () =
  Alcotest.(check string) "w3 by name" Workloads.letters_w3
    (Spec.mix_letters (Workloads.by_name "w3" ()));
  Alcotest.(check bool) "unknown" true
    (match Workloads.by_name "w9" () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_workload_phases_structure () =
  (* Major shifts at segments 10 and 20: phase 1/3 use A/B, phase 2 C/D. *)
  let letters = Workloads.letters_w1 in
  for i = 0 to 29 do
    let expected_phase2 = i >= 10 && i < 20 in
    let is_cd = letters.[i] = 'C' || letters.[i] = 'D' in
    if is_cd <> expected_phase2 then Alcotest.failf "segment %d in wrong phase" i
  done

(* -- Trace ------------------------------------------------------------------------ *)

let sample_statements () =
  Spec.generate_flat (Spec.of_letters ~queries_per_segment:20 "AB") ~table:"t"
    ~value_range:50 ~seed:9

let test_trace_roundtrip () =
  let statements = sample_statements () in
  match Trace.of_lines (Trace.to_lines statements) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = statements)
  | Error message -> Alcotest.failf "trace parse failed: %s" message

let test_trace_comments_and_blanks () =
  match Trace.of_lines [ "# a comment"; ""; "SELECT a FROM t WHERE a = 1"; "   " ] with
  | Ok parsed -> Alcotest.(check int) "one statement" 1 (Array.length parsed)
  | Error message -> Alcotest.failf "unexpected error: %s" message

let test_trace_error_line_number () =
  match Trace.of_lines [ "SELECT a FROM t"; "garbage here" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error message ->
      Alcotest.(check bool) "names line 2" true
        (String.length message >= 6 && String.sub message 0 6 = "line 2")

let test_trace_file_roundtrip () =
  let statements = sample_statements () in
  let path = Filename.temp_file "cddpd_trace" ".sql" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path statements;
      match Trace.load path with
      | Ok parsed -> Alcotest.(check bool) "file roundtrip" true (parsed = statements)
      | Error message -> Alcotest.failf "load failed: %s" message)

let test_trace_load_missing_file () =
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Trace.load "/nonexistent/path/trace.sql"))

let test_trace_segment () =
  let statements = sample_statements () in
  let segments = Trace.segment statements ~size:7 in
  Alcotest.(check int) "segment count" 6 (Array.length segments);
  Alcotest.(check int) "last short" 5 (Array.length segments.(5));
  Alcotest.(check bool) "contents preserved" true
    (Array.concat (Array.to_list segments) = statements)

(* -- Segmenter --------------------------------------------------------------------- *)

module Segmenter = Cddpd_workload.Segmenter

let shifted_trace () =
  (* 1000 A-queries, then 1000 C-queries, then 1000 A-queries. *)
  Spec.generate_flat
    (Spec.of_letters ~queries_per_segment:1000 "ACA")
    ~table:"t" ~value_range:100 ~seed:12

let test_segmenter_profile () =
  let statements = shifted_trace () in
  let profile = Segmenter.column_profile (Array.sub statements 0 1000) in
  (match profile with
  | ("a", f) :: _ -> Alcotest.(check bool) "a dominates" true (f > 0.5)
  | _ -> Alcotest.fail "expected a to dominate");
  Alcotest.(check (float 1e-9)) "profile sums to 1" 1.0
    (List.fold_left (fun acc (_, f) -> acc +. f) 0.0 profile)

let test_segmenter_distance () =
  let p1 = [ ("a", 0.6); ("b", 0.4) ] in
  let p2 = [ ("a", 0.1); ("b", 0.4); ("c", 0.5) ] in
  Alcotest.(check (float 1e-9)) "L1 distance" 1.0 (Segmenter.profile_distance p1 p2);
  Alcotest.(check (float 1e-9)) "identical profiles" 0.0 (Segmenter.profile_distance p1 p1)

let test_segmenter_finds_major_shifts () =
  let statements = shifted_trace () in
  let cuts = Segmenter.boundaries statements in
  Alcotest.(check int) "two major shifts" 2 (List.length cuts);
  List.iter2
    (fun cut expected ->
      if abs (cut - expected) > 250 then
        Alcotest.failf "boundary %d far from expected %d" cut expected)
    cuts [ 1000; 2000 ];
  Alcotest.(check int) "suggest_k = shifts" 2 (Segmenter.suggest_k statements)

let test_segmenter_stable_trace () =
  let statements =
    Spec.generate_flat (Spec.of_letters ~queries_per_segment:3000 "A") ~table:"t"
      ~value_range:100 ~seed:13
  in
  Alcotest.(check (list int)) "no boundaries" [] (Segmenter.boundaries statements);
  let segments = Segmenter.segment statements in
  Alcotest.(check int) "single segment" 1 (Array.length segments)

let test_segmenter_segments_partition () =
  let statements = shifted_trace () in
  let segments = Segmenter.segment statements in
  Alcotest.(check bool) "concatenation preserved" true
    (Array.concat (Array.to_list segments) = statements);
  Alcotest.(check int) "three segments" 3 (Array.length segments)

let test_segmenter_short_trace () =
  let statements = Array.sub (shifted_trace ()) 0 100 in
  Alcotest.(check (list int)) "too short to split" [] (Segmenter.boundaries statements)

(* -- Dml_gen ----------------------------------------------------------------------- *)

let test_dml_blend_share () =
  (* A large sample: the share of a small batch has wide variance. *)
  let statements =
    Spec.generate_flat (Spec.of_letters ~queries_per_segment:2000 "A") ~table:"t"
      ~value_range:50 ~seed:9
  in
  let blended = Cddpd_workload.Dml_gen.blend ~update_fraction:0.5 ~value_range:50 ~seed:4 statements in
  let share = Cddpd_workload.Dml_gen.update_share blended in
  Alcotest.(check int) "same length" (Array.length statements) (Array.length blended);
  Alcotest.(check bool) "share near 50%" true (share > 0.45 && share < 0.55);
  Alcotest.(check (float 0.0)) "zero fraction is identity" 0.0
    (Cddpd_workload.Dml_gen.update_share
       (Cddpd_workload.Dml_gen.blend ~update_fraction:0.0 ~value_range:50 ~seed:4 statements))

let test_dml_blend_preserves_columns () =
  let statements = sample_statements () in
  let blended = Cddpd_workload.Dml_gen.blend ~update_fraction:1.0 ~value_range:50 ~seed:4 statements in
  Array.iteri
    (fun i statement ->
      match (statements.(i), statement) with
      | ( Ast.Select { where = [ Ast.Cmp { column = c1; _ } ]; _ },
          Ast.Update { assignments = [ (set_col, _) ]; where = [ Ast.Cmp { column = c2; _ } ]; _ } )
        ->
          if c1 <> c2 || set_col <> c1 then Alcotest.failf "column changed at %d" i
      | _, Ast.Select _ -> Alcotest.failf "statement %d not converted" i
      | _ -> Alcotest.failf "unexpected shape at %d" i)
    blended

let test_dml_blend_deterministic () =
  let statements = sample_statements () in
  let b1 = Cddpd_workload.Dml_gen.blend ~update_fraction:0.4 ~value_range:50 ~seed:9 statements in
  let b2 = Cddpd_workload.Dml_gen.blend ~update_fraction:0.4 ~value_range:50 ~seed:9 statements in
  Alcotest.(check bool) "deterministic" true (b1 = b2)

let test_dml_blend_invalid () =
  Alcotest.(check bool) "fraction > 1 rejected" true
    (match
       Cddpd_workload.Dml_gen.blend ~update_fraction:1.5 ~value_range:50 ~seed:1 [||]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* -- Report_gen --------------------------------------------------------------------- *)

module Report_gen = Cddpd_workload.Report_gen

let test_report_gen_shape () =
  let statements =
    Report_gen.segment ~table:"t" ~group_by:"c" ~sum_columns:[ "a"; "b" ]
      ~probe_fraction:0.5 ~n:200 ~value_range:100 ~seed:3 ()
  in
  Alcotest.(check int) "length" 200 (Array.length statements);
  let probes = ref 0 and scans = ref 0 and sums = ref 0 in
  Array.iter
    (fun statement ->
      match statement with
      | Ast.Select_agg { table = "t"; group_by = "c"; aggregate; where } ->
          (match where with
          | [] -> incr scans
          | [ Ast.Cmp { column = "c"; op = Ast.Eq; _ } ] -> incr probes
          | _ -> Alcotest.fail "unexpected where");
          (match aggregate with Ast.Sum _ -> incr sums | Ast.Count_star -> ())
      | _ -> Alcotest.fail "not an aggregate query")
    statements;
  Alcotest.(check bool) "both probes and scans" true (!probes > 30 && !scans > 30);
  Alcotest.(check bool) "both count and sum" true (!sums > 30 && !sums < 170)

let test_report_gen_deterministic () =
  let make () =
    Report_gen.segment ~table:"t" ~group_by:"a" ~sum_columns:[] ~n:50 ~value_range:10
      ~seed:8 ()
  in
  Alcotest.(check bool) "deterministic" true (make () = make ())

(* -- Data_gen --------------------------------------------------------------------- *)

let test_data_gen_shape () =
  let rows = Data_gen.uniform_rows ~columns:4 ~rows:100 ~value_range:10 ~seed:1 in
  Alcotest.(check int) "rows" 100 (Array.length rows);
  Array.iter
    (fun row ->
      Alcotest.(check int) "columns" 4 (Array.length row);
      Array.iter
        (fun v ->
          match v with
          | Tuple.Int i -> if i < 0 || i >= 10 then Alcotest.failf "value %d out of range" i
          | Tuple.Text _ -> Alcotest.fail "unexpected text")
        row)
    rows

let test_data_gen_deterministic () =
  let a = Data_gen.uniform_rows ~columns:2 ~rows:50 ~value_range:100 ~seed:5 in
  let b = Data_gen.uniform_rows ~columns:2 ~rows:50 ~value_range:100 ~seed:5 in
  let c = Data_gen.uniform_rows ~columns:2 ~rows:50 ~value_range:100 ~seed:6 in
  Alcotest.(check bool) "same seed" true (a = b);
  Alcotest.(check bool) "different seed" true (a <> c)

(* Property: generated workload mixes approximate their specification. *)
let generated_mix_fraction_prop =
  QCheck.Test.make ~name:"generated segments follow the mix" ~count:10
    (QCheck.make QCheck.Gen.(oneofl [ 'A'; 'B'; 'C'; 'D' ]))
    (fun letter ->
      let mix = Mix.of_letter letter in
      let spec = Spec.make [ { Spec.mix; n_queries = 4_000 } ] in
      let segment = (Spec.generate spec ~table:"t" ~value_range:100 ~seed:3).(0) in
      let dominant =
        List.fold_left
          (fun acc (col, w) -> match acc with
            | Some (_, best) when best >= w -> acc
            | _ -> Some (col, w))
          None (Mix.weights mix)
      in
      let dominant_col = match dominant with Some (c, _) -> c | None -> assert false in
      let count = ref 0 in
      Array.iter
        (fun statement ->
          match statement with
          | Ast.Select { where = [ Ast.Cmp { column; _ } ]; _ } when column = dominant_col ->
              incr count
          | _ -> ())
        segment;
      let frac = float_of_int !count /. 4_000.0 in
      frac > 0.50 && frac < 0.60)

(* -- Compress ------------------------------------------------------------------ *)

module Compress = Cddpd_workload.Compress

let test_compress_clusters_by_key () =
  let items = [| "x"; "y"; "x"; "z"; "y"; "x" |] in
  let c = Compress.cluster ~key:(fun s -> s) items in
  Alcotest.(check int) "three clusters" 3 (Compress.n_clusters c);
  (* Clusters are numbered by first occurrence; representatives are the
     first member of each. *)
  Alcotest.(check (array int)) "cluster ids" [| 0; 1; 0; 2; 1; 0 |] c.Compress.cluster_of;
  Alcotest.(check (array int)) "representatives" [| 0; 1; 3 |] c.Compress.representatives;
  Alcotest.(check (array int)) "populations" [| 3; 2; 1 |] c.Compress.counts

let test_compress_all_distinct_and_empty () =
  let distinct = Compress.cluster ~key:(fun s -> s) [| "a"; "b"; "c" |] in
  Alcotest.(check int) "no sharing" 3 (Compress.n_clusters distinct);
  let empty = Compress.cluster ~key:(fun s -> s) [||] in
  Alcotest.(check int) "empty input" 0 (Compress.n_clusters empty)

let compress_partition_prop =
  QCheck.Test.make ~name:"compression is a partition refining key equality" ~count:200
    QCheck.(array_of_size Gen.(int_bound 40) (string_gen_of_size Gen.(int_bound 3) Gen.printable))
    (fun items ->
      let c = Compress.cluster ~key:(fun s -> s) items in
      let n = Compress.n_clusters c in
      Array.length c.Compress.cluster_of = Array.length items
      && Array.for_all (fun id -> id >= 0 && id < n) c.Compress.cluster_of
      (* same key <-> same cluster *)
      && (let ok = ref true in
          Array.iteri
            (fun i x ->
              Array.iteri
                (fun j y ->
                  if (x = y) <> (c.Compress.cluster_of.(i) = c.Compress.cluster_of.(j))
                  then ok := false)
                items;
              ignore x; ignore i)
            items;
          !ok)
      (* representative of each item's cluster shares its key *)
      && Array.for_all2
           (fun id x -> items.(c.Compress.representatives.(id)) = x)
           c.Compress.cluster_of items
      (* counts sum to n items *)
      && Array.fold_left ( + ) 0 c.Compress.counts = Array.length items)

let () =
  Alcotest.run "workload"
    [
      ( "mix",
        [
          Alcotest.test_case "Table 1 weights" `Quick test_mix_table1_weights;
          Alcotest.test_case "normalisation" `Quick test_mix_normalisation;
          Alcotest.test_case "invalid mixes" `Quick test_mix_invalid;
          Alcotest.test_case "of_letter" `Quick test_mix_of_letter;
          Alcotest.test_case "sample query shape" `Quick test_mix_sample_query_shape;
          Alcotest.test_case "sample distribution" `Slow test_mix_sample_distribution;
        ] );
      ( "spec",
        [
          Alcotest.test_case "of_letters" `Quick test_spec_of_letters;
          Alcotest.test_case "deterministic generation" `Quick
            test_spec_generate_deterministic;
          Alcotest.test_case "generation shape" `Quick test_spec_generate_shape;
          Alcotest.test_case "flat generation" `Quick test_spec_generate_flat;
          Alcotest.test_case "invalid specs" `Quick test_spec_invalid;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "Table 2 letters" `Quick test_workload_letters_match_paper;
          Alcotest.test_case "spec sizes" `Quick test_workload_specs;
          Alcotest.test_case "by_name" `Quick test_workload_by_name;
          Alcotest.test_case "phase structure" `Quick test_workload_phases_structure;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_trace_comments_and_blanks;
          Alcotest.test_case "error line numbers" `Quick test_trace_error_line_number;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_trace_load_missing_file;
          Alcotest.test_case "segmentation" `Quick test_trace_segment;
        ] );
      ( "segmenter",
        [
          Alcotest.test_case "column profile" `Quick test_segmenter_profile;
          Alcotest.test_case "profile distance" `Quick test_segmenter_distance;
          Alcotest.test_case "finds major shifts" `Quick test_segmenter_finds_major_shifts;
          Alcotest.test_case "stable trace" `Quick test_segmenter_stable_trace;
          Alcotest.test_case "segments partition" `Quick test_segmenter_segments_partition;
          Alcotest.test_case "short trace" `Quick test_segmenter_short_trace;
        ] );
      ( "dml_gen",
        [
          Alcotest.test_case "blend share" `Quick test_dml_blend_share;
          Alcotest.test_case "columns preserved" `Quick test_dml_blend_preserves_columns;
          Alcotest.test_case "deterministic" `Quick test_dml_blend_deterministic;
          Alcotest.test_case "invalid fraction" `Quick test_dml_blend_invalid;
        ] );
      ( "report_gen",
        [
          Alcotest.test_case "shape" `Quick test_report_gen_shape;
          Alcotest.test_case "deterministic" `Quick test_report_gen_deterministic;
        ] );
      ( "data_gen",
        [
          Alcotest.test_case "shape" `Quick test_data_gen_shape;
          Alcotest.test_case "determinism" `Quick test_data_gen_deterministic;
          QCheck_alcotest.to_alcotest generated_mix_fraction_prop;
        ] );
      ( "compress",
        [
          Alcotest.test_case "clusters by key" `Quick test_compress_clusters_by_key;
          Alcotest.test_case "distinct and empty" `Quick
            test_compress_all_distinct_and_empty;
          QCheck_alcotest.to_alcotest compress_partition_prop;
        ] );
    ]
