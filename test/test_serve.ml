(* Serve-loop tests: drift detection fixtures, the regret guard, windowed
   ingest determinism across worker counts, guard rejection end to end,
   and rollback on a post-deploy regression. *)

module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Ast = Cddpd_sql.Ast
module Parser = Cddpd_sql.Parser
module Database = Cddpd_engine.Database
module Config_space = Cddpd_core.Config_space
module Problem = Cddpd_core.Problem
module Drift = Cddpd_serve.Drift
module Guard = Cddpd_serve.Guard
module Server = Cddpd_serve.Server

let paper_schema =
  Schema.table "t"
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let rows = 4_000
let value_range = rows / 5

let make_db () =
  let db = Database.create ~pool_capacity:2048 [ paper_schema ] in
  let data =
    Cddpd_workload.Data_gen.uniform_rows ~columns:4 ~rows ~value_range ~seed:3
  in
  Database.load db ~table:"t" data;
  Database.analyze db;
  db

(* [n] point queries on [column], values cycling through the domain. *)
let phase column n =
  Array.init n (fun i ->
      Parser.parse_exn
        (Printf.sprintf "SELECT * FROM t WHERE %s = %d" column
           (1 + ((i * 37) mod value_range))))

(* -- Drift ----------------------------------------------------------------- *)

let test_drift_identical_windows () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let w = phase "a" 50 in
  let p = Drift.profile ~stats w in
  Alcotest.(check (float 1e-9)) "distance to self" 0.0 (Drift.distance p p);
  Alcotest.(check bool) "no drift" false (Drift.drifted p p)

let test_drift_disjoint_windows () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let pa = Drift.profile ~stats (phase "a" 50) in
  let pc = Drift.profile ~stats (phase "c" 50) in
  let d = Drift.distance pa pc in
  Alcotest.(check bool) "disjoint phases are far apart" true (d > 1.5);
  Alcotest.(check bool) "drifted" true (Drift.drifted pa pc);
  Alcotest.(check (float 1e-9)) "symmetric" d (Drift.distance pc pa)

let test_drift_mixture_is_between () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let pa = Drift.profile ~stats (phase "a" 50) in
  let mixed =
    Drift.profile ~stats (Array.append (phase "a" 25) (phase "c" 25))
  in
  let d = Drift.distance pa mixed in
  Alcotest.(check bool) "mixture is closer than disjoint" true (d < 1.5);
  Alcotest.(check bool) "but not identical" true (d > 0.0)

let test_drift_empty_profile () =
  let db = make_db () in
  let stats = Database.table_stats db "t" in
  let p = Drift.profile ~stats (phase "a" 10) in
  Alcotest.(check (list (pair string (float 1e-9)))) "empty window" []
    (Drift.profile ~stats [||]);
  Alcotest.(check (float 1e-9)) "mass of a full profile" 1.0
    (List.fold_left (fun acc (_, f) -> acc +. f) 0.0 p);
  Alcotest.(check (float 1e-9)) "distance to empty is total mass" 1.0
    (Drift.distance p [])

(* -- Guard ----------------------------------------------------------------- *)

(* Two configs over one step: staying costs 100/step, the alternative costs
   10/step after a 200-unit build. *)
let guard_problem () =
  let space =
    Config_space.of_designs
      [ Design.empty; Design.singleton (Index_def.make ~table:"t" ~columns:[ "a" ]) ]
  in
  Problem.of_matrices
    ~steps:[| [| Parser.parse_exn "SELECT * FROM t WHERE a = 1" |] |]
    ~space ~initial:0
    ~exec:[| [| 100.0; 10.0 |] |]
    ~trans:[| [| 0.0; 200.0 |]; [| 150.0; 0.0 |] |]
    ()

let test_guard_no_change () =
  let problem = guard_problem () in
  match Guard.assess problem ~target:0 ~horizon:4 ~budget:0.0 with
  | Guard.No_change -> ()
  | _ -> Alcotest.fail "expected No_change for the incumbent"

let test_guard_accept () =
  let problem = guard_problem () in
  (* horizon 4: baseline 400, projected 200 + 40 = 240, regret -160. *)
  match Guard.assess problem ~target:1 ~horizon:4 ~budget:0.0 with
  | Guard.Accept p ->
      Alcotest.(check (float 1e-9)) "baseline" 400.0 p.Guard.baseline;
      Alcotest.(check (float 1e-9)) "projected" 240.0 p.Guard.projected;
      Alcotest.(check (float 1e-9)) "regret" (-160.0) p.Guard.regret
  | _ -> Alcotest.fail "expected Accept at horizon 4"

let test_guard_reject_short_horizon () =
  let problem = guard_problem () in
  (* horizon 1: baseline 100, projected 210, regret +110 — the build cannot
     be amortized before the horizon ends. *)
  (match Guard.assess problem ~target:1 ~horizon:1 ~budget:0.0 with
  | Guard.Reject p ->
      Alcotest.(check (float 1e-9)) "regret" 110.0 p.Guard.regret
  | _ -> Alcotest.fail "expected Reject at horizon 1");
  (* ... unless the budget absorbs the projected loss. *)
  match Guard.assess problem ~target:1 ~horizon:1 ~budget:110.0 with
  | Guard.Accept _ -> ()
  | _ -> Alcotest.fail "expected Accept with an absorbing budget"

let test_guard_validates () =
  let problem = guard_problem () in
  Alcotest.check_raises "horizon" (Invalid_argument "Guard.assess: horizon must be >= 1")
    (fun () -> ignore (Guard.assess problem ~target:1 ~horizon:0 ~budget:0.0));
  Alcotest.check_raises "target" (Invalid_argument "Guard.assess: target out of range")
    (fun () -> ignore (Guard.assess problem ~target:2 ~horizon:1 ~budget:0.0))

(* -- Server ---------------------------------------------------------------- *)

let serve_config ?(regime = Server.Continuous) ?(window = 50) ?jobs () =
  { (Server.default_config ~table:"t") with Server.regime; window; jobs }

(* A drifting trace: three windows on [a], then one on [c], then [a] again. *)
let drifting_trace ~window =
  Array.concat
    [ phase "a" (3 * window); phase "c" window; phase "a" (2 * window) ]

let action_fingerprint = function
  | Server.No_action -> "none"
  | Server.Held _ -> "held"
  | Server.Deployed { design; _ } -> "deploy:" ^ Design.name design
  | Server.Rejected { design; _ } -> "reject:" ^ Design.name design
  | Server.Rolled_back { restored; _ } -> "rollback:" ^ Design.name restored

let window_fingerprint (w : Server.window_report) =
  Printf.sprintf "%d:%d:%d:%s:%b:%s" w.Server.index w.Server.n_statements
    w.Server.exec_logical_io
    (match w.Server.drift with None -> "-" | Some d -> Printf.sprintf "%.12f" d)
    w.Server.drifted
    (action_fingerprint w.Server.action)

let report_fingerprint (r : Server.report) =
  String.concat "\n"
    (Printf.sprintf "%s:%d:%d:%d:%d:%d:%d:%d:%d:%s"
       (Server.regime_to_string r.Server.regime)
       r.Server.statements r.Server.residual_statements r.Server.drift_events
       r.Server.reoptimizations r.Server.deployments r.Server.rejections
       r.Server.rollbacks r.Server.exec_logical_io
       (Design.name r.Server.final_design)
    :: Array.to_list (Array.map window_fingerprint r.Server.windows))

let test_serve_deterministic_across_jobs () =
  let window = 50 in
  let trace = drifting_trace ~window in
  let run jobs =
    report_fingerprint
      (Server.run (make_db ()) (serve_config ~window ?jobs ()) trace)
  in
  let reference = run (Some 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d matches jobs=1"
           (Option.value ~default:0 jobs))
        reference (run jobs))
    [ Some 2; Some 4; None ]

let test_serve_windowing () =
  let window = 50 in
  let cfg = serve_config ~window () in
  let report =
    Server.run (make_db ()) cfg (phase "a" ((2 * window) + 7))
  in
  Alcotest.(check int) "two closed windows" 2 (Array.length report.Server.windows);
  Alcotest.(check int) "residual" 7 report.Server.residual_statements;
  Alcotest.(check int) "all statements executed" ((2 * window) + 7)
    report.Server.statements;
  Array.iteri
    (fun i w ->
      Alcotest.(check int) "window index" i w.Server.index;
      Alcotest.(check int) "window size" window w.Server.n_statements)
    report.Server.windows

let test_serve_continuous_deploys_on_drift () =
  let window = 50 in
  let report =
    Server.run (make_db ()) (serve_config ~window ()) (drifting_trace ~window)
  in
  Alcotest.(check bool) "saw drift" true (report.Server.drift_events >= 1);
  Alcotest.(check bool) "re-optimized" true (report.Server.reoptimizations >= 1);
  Alcotest.(check bool) "deployed" true (report.Server.deployments >= 1);
  (* The steady [a] phases dominate; the serve loop must end on I(a). *)
  Alcotest.(check string) "settled on the a-phase index" "{I(a)}"
    (Design.name report.Server.final_design)

let test_serve_static_never_changes () =
  let window = 50 in
  let report =
    Server.run (make_db ())
      (serve_config ~regime:Server.Static ~window ())
      (drifting_trace ~window)
  in
  Alcotest.(check int) "no re-optimizations" 0 report.Server.reoptimizations;
  Alcotest.(check int) "no deployments" 0 report.Server.deployments;
  Alcotest.(check bool) "design untouched" true
    (Design.is_empty report.Server.final_design);
  Alcotest.(check int) "no migration I/O" 0 report.Server.trans_logical_io

let test_serve_regret_guard_rejects () =
  let window = 50 in
  let cfg =
    { (serve_config ~window ()) with Server.regret_budget = -1e9 }
  in
  let report = Server.run (make_db ()) cfg (drifting_trace ~window) in
  Alcotest.(check int) "nothing deployed" 0 report.Server.deployments;
  Alcotest.(check bool) "recommendations were rejected" true
    (report.Server.rejections >= 1);
  Alcotest.(check bool) "design untouched" true
    (Design.is_empty report.Server.final_design);
  Array.iter
    (fun w ->
      match w.Server.action with
      | Server.Rejected { projection; _ } ->
          Alcotest.(check bool) "rejected regret exceeds budget" true
            (projection.Guard.regret > cfg.Server.regret_budget)
      | _ -> ())
    report.Server.windows

let test_serve_rollback_on_regression () =
  let window = 50 in
  (* a, a, a, c, a, a: the lone [c] window deploys I(c); the next [a]
     window regresses against the what-if cost of the rolled-over design
     and must trigger the rollback path. *)
  let report =
    Server.run (make_db ()) (serve_config ~window ()) (drifting_trace ~window)
  in
  Alcotest.(check bool) "rollback fired" true (report.Server.rollbacks >= 1);
  let saw_rollback = ref false in
  Array.iter
    (fun w ->
      match w.Server.action with
      | Server.Rolled_back { restored; measured; expected; _ } ->
          saw_rollback := true;
          Alcotest.(check bool) "regression was real" true
            (measured > expected);
          Alcotest.(check string) "restored the pre-deploy design" "{I(a)}"
            (Design.name restored)
      | _ -> ())
    report.Server.windows;
  Alcotest.(check bool) "rollback visible in a window report" true !saw_rollback

let test_serve_reactive_unguarded () =
  let window = 50 in
  let report =
    Server.run (make_db ())
      (serve_config ~regime:Server.Reactive ~window ())
      (drifting_trace ~window)
  in
  Alcotest.(check int) "reactive re-optimizes every window" 6
    report.Server.reoptimizations;
  Alcotest.(check int) "no guard, no rejections" 0 report.Server.rejections;
  Alcotest.(check int) "no probation, no rollbacks" 0 report.Server.rollbacks;
  Array.iter
    (fun w ->
      match w.Server.action with
      | Server.Deployed { projection; _ } ->
          Alcotest.(check bool) "reactive deployments carry no projection" true
            (projection = None)
      | _ -> ())
    report.Server.windows

let test_serve_reopt_every_window_when_threshold_nonpositive () =
  let window = 50 in
  let cfg = { (serve_config ~window ()) with Server.drift_threshold = -1.0 } in
  let report = Server.run (make_db ()) cfg (phase "a" (3 * window)) in
  Alcotest.(check int) "every window re-optimizes" 3
    report.Server.reoptimizations

let test_serve_validates_config () =
  let db = make_db () in
  Alcotest.check_raises "window"
    (Invalid_argument "Server.create: window must be positive") (fun () ->
      ignore (Server.create db { (serve_config ()) with Server.window = 0 }));
  Alcotest.check_raises "table"
    (Invalid_argument "Server.create: unknown table missing") (fun () ->
      ignore (Server.create db { (serve_config ()) with Server.table = "missing" }))

(* The ingest fast path (template cache + plan memo + feed-time cost keys)
   must be a pure speedup: the same raw texts fed through [feed_sql] with
   both caches off — the [--no-template-cache --no-plan-cache] arm — must
   produce a bit-identical report. *)
let test_serve_cache_flags_bit_identical () =
  let window = 50 in
  let texts =
    let phase_texts column n =
      Array.init n (fun i ->
          if i mod 17 = 9 then
            (* some DML so the non-read-only path is exercised too *)
            Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d, %d)"
              (1 + (i mod value_range))
              (i mod value_range) (i mod 7) (i mod 11)
          else
            Printf.sprintf "SELECT * FROM t WHERE %s = %d" column
              (1 + ((i * 37) mod value_range)))
    in
    Array.concat
      [
        phase_texts "a" (3 * window);
        phase_texts "c" window;
        phase_texts "a" (2 * window);
      ]
  in
  let run ~fast =
    let cfg =
      {
        (serve_config ~window ()) with
        Server.template_cache = fast;
        plan_cache = fast;
      }
    in
    let server = Server.create (make_db ()) cfg in
    Array.iter
      (fun sql ->
        match Server.feed_sql server sql with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "parse error on %S: %s" sql e)
      texts;
    (Server.finish server, Server.template_stats server)
  in
  let fast_report, fast_stats = run ~fast:true in
  let slow_report, slow_stats = run ~fast:false in
  Alcotest.(check string) "reports bit-identical"
    (report_fingerprint slow_report)
    (report_fingerprint fast_report);
  Alcotest.(check bool) "slow arm has no template cache" true (slow_stats = None);
  match fast_stats with
  | None -> Alcotest.fail "fast arm should expose template stats"
  | Some s ->
      Alcotest.(check bool) "exact hits" true (s.Cddpd_sql.Template.exact_hits > 0);
      Alcotest.(check bool) "template hits" true
        (s.Cddpd_sql.Template.template_hits > 0)

(* -- Reopt: incremental re-optimization ------------------------------------ *)

module Advisor = Cddpd_core.Advisor
module Optimizer = Cddpd_core.Optimizer
module Solution = Cddpd_core.Solution
module Reopt = Cddpd_core.Reopt
module Cost_key = Cddpd_engine.Cost_key
module Compress = Cddpd_workload.Compress

(* Fixed per-column statement pools (the prepared-statement shape): two
   windows of the same phase carry the same cost-identity key set, so the
   reuse path has real matches to find — while any two different phases
   share nothing. *)
let pool_size = 10

let pooled_phase =
  let pool column =
    Array.init pool_size (fun i ->
        Parser.parse_exn
          (Printf.sprintf "SELECT * FROM t WHERE %s = %d" column
             (1 + ((i * 41) mod value_range))))
  in
  let pools = List.map (fun c -> (c, pool c)) [ "a"; "b"; "c"; "d" ] in
  fun column n ->
    let pool = List.assoc column pools in
    Array.init n (fun i -> pool.(i mod pool_size))

(* The serve loop's request shape: compressed build, sequential (the
   reuse path is bit-identical at any jobs count; test_serve's server
   section already sweeps jobs). *)
let reopt_request steps =
  {
    (Advisor.default_request ~steps ~table:"t") with
    Advisor.compress_workload = true;
    jobs = Some 1;
  }

let float_bits_equal x y =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let matrix_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun r1 r2 ->
         Array.length r1 = Array.length r2
         && Array.for_all2 float_bits_equal r1 r2)
       a b

let all_methods =
  [ Solution.Unconstrained; Solution.Kaware; Solution.Greedy_seq;
    Solution.Merging; Solution.Ranking; Solution.Hybrid ]

let all_ks = [ None; Some 1; Some 2; Some 3 ]

(* Hex-printed cost plus the path: equal signatures iff the solver
   behaved bit-identically (same budgets on both arms, so Ranking
   give-ups are deterministic too). *)
let signature_of = function
  | Ok s ->
      Printf.sprintf "ok %h %d [%s]" s.Solution.cost s.Solution.changes
        (String.concat ";"
           (Array.to_list (Array.map string_of_int s.Solution.path)))
  | Error Optimizer.Infeasible -> "infeasible"
  | Error (Optimizer.Ranking_gave_up _) -> "gave up"

let cold_signature problem method_name k =
  match
    Optimizer.solve problem ~method_name ?k ~max_paths:20_000 ~max_queue:65_536
      ()
  with
  | r -> signature_of r
  | exception Invalid_argument _ -> "k required"

let warm_signature session problem method_name k =
  match
    Reopt.solve session problem ~method_name ?k ~max_paths:20_000
      ~max_queue:65_536
  with
  | r -> signature_of r
  | exception Invalid_argument _ -> "k required"

(* One shared database for the property: traces vary per iteration, the
   statistics do not (the stale-stats test below uses its own). *)
let reopt_db = lazy (make_db ())

let random_phase_trace =
  let gen =
    QCheck.Gen.(
      int_range 3 6 >>= fun n ->
      list_repeat n (oneofl [ "a"; "b"; "c"; "d" ]))
  in
  QCheck.make ~print:(String.concat "") gen

(* The tentpole's contract, end to end: stream a random drift trace
   through one Reopt session the way the serve loop does (problem over
   the last <= 3 windows at every step, statement keys precomputed on
   alternate steps), and at every step the incremental problem must be
   bit-identical to a from-scratch build and every solver must return a
   bit-identical solution, warm-started or not. *)
let reopt_bit_identity_prop =
  QCheck.Test.make
    ~name:"incremental reopt = from-scratch over drift traces (all solvers)"
    ~count:6 random_phase_trace (fun phases ->
      let db = Lazy.force reopt_db in
      let stats = Database.table_stats db "t" in
      let session = Reopt.create db in
      let history = ref [] in
      List.for_all
        (fun (step, column) ->
          history := pooled_phase column 30 :: !history;
          let recent = List.filteri (fun i _ -> i < 3) !history in
          let steps = Array.of_list (List.rev recent) in
          let request = reopt_request steps in
          let statement_keys =
            if step mod 2 = 0 then
              Some
                (Array.map
                   (fun s -> Cost_key.statement stats s)
                   (Array.concat (Array.to_list steps)))
            else None
          in
          let incr = Reopt.build_problem ?statement_keys session request in
          let fresh = Advisor.build_problem db request in
          matrix_bits_equal incr.Problem.exec fresh.Problem.exec
          && matrix_bits_equal incr.Problem.trans fresh.Problem.trans
          && List.for_all
               (fun method_name ->
                 List.for_all
                   (fun k ->
                     String.equal
                       (warm_signature session incr method_name k)
                       (cold_signature fresh method_name k))
                   all_ks)
               all_methods)
        (List.mapi (fun i c -> (i, c)) phases))

let reuse_tallies session = (Reopt.stats session).Reopt.reuse

type reuse_delta = {
  d_exec_reused : int;
  d_recosted : int;
  d_trans_reused : int;
  d_invalidations : int;
}

(* Build through [session], cross-check bit-identity against a
   from-scratch build, and hand the caller the reuse-tally deltas. *)
let checked_build name session db request =
  let before = reuse_tallies session in
  let incr = Reopt.build_problem session request in
  let fresh = Advisor.build_problem db request in
  Alcotest.(check bool)
    (name ^ ": exec bit-identical") true
    (matrix_bits_equal incr.Problem.exec fresh.Problem.exec);
  Alcotest.(check bool)
    (name ^ ": trans bit-identical") true
    (matrix_bits_equal incr.Problem.trans fresh.Problem.trans);
  let after = reuse_tallies session in
  {
    d_exec_reused =
      after.Problem.Reuse.exec_columns_reused
      - before.Problem.Reuse.exec_columns_reused;
    d_recosted =
      after.Problem.Reuse.clusters_recosted
      - before.Problem.Reuse.clusters_recosted;
    d_trans_reused =
      after.Problem.Reuse.trans_blocks_reused
      - before.Problem.Reuse.trans_blocks_reused;
    d_invalidations =
      after.Problem.Reuse.stats_invalidations
      - before.Problem.Reuse.stats_invalidations;
  }

let cluster_count db stmts =
  let stats = Database.table_stats db "t" in
  let keys = Array.map (fun s -> Cost_key.statement stats s) stmts in
  Array.length (Compress.cluster_keys keys).Compress.representatives

(* Candidate/cluster-set diffing across consecutive builds: stable
   workload copies everything, added phases recost exactly the new
   clusters, dropped phases recost nothing (every surviving cluster was
   already priced). *)
let test_reopt_diff_stable_add_drop () =
  let db = make_db () in
  let session = Reopt.create db in
  let wa = pooled_phase "a" 40 and wb = pooled_phase "b" 40 in
  let ca = cluster_count db wa in
  let cab = cluster_count db (Array.append wa wb) in
  let d = checked_build "first build" session db (reopt_request [| wa |]) in
  Alcotest.(check int) "first build recosts every cluster" ca d.d_recosted;
  Alcotest.(check int) "nothing to reuse yet" 0 d.d_exec_reused;
  let d = checked_build "stable rebuild" session db (reopt_request [| wa |]) in
  Alcotest.(check int) "stable rebuild recosts nothing" 0 d.d_recosted;
  Alcotest.(check bool) "exec columns copied" true (d.d_exec_reused > 0);
  Alcotest.(check bool) "trans entries copied" true (d.d_trans_reused > 0);
  let d =
    checked_build "added phase" session db (reopt_request [| wa; wb |])
  in
  Alcotest.(check int) "only the new clusters recosted" (cab - ca) d.d_recosted;
  Alcotest.(check int)
    "no whole column survives a cluster-set change" 0 d.d_exec_reused;
  let d = checked_build "dropped phase" session db (reopt_request [| wb |]) in
  Alcotest.(check int) "dropped phase recosts nothing" 0 d.d_recosted;
  Alcotest.(check bool)
    "surviving columns copied" true (d.d_exec_reused > 0)

(* A statistics change must fence off every piece of carried state: the
   summary is dropped (one invalidation), nothing is copied, and the
   rebuild matches a from-scratch build over the new statistics. *)
let test_reopt_stale_stats_invalidation () =
  let db = make_db () in
  let session = Reopt.create db in
  let wa = pooled_phase "a" 40 in
  let request = reopt_request [| wa |] in
  ignore (Reopt.build_problem session request);
  ignore (Database.execute_sql db "UPDATE t SET a = 1 WHERE a = 2");
  Database.analyze db;
  let d = checked_build "post-analyze build" session db request in
  Alcotest.(check int) "summary invalidated once" 1 d.d_invalidations;
  Alcotest.(check int)
    "no exec column crosses a stats change" 0 d.d_exec_reused;
  Alcotest.(check bool) "full recost" true (d.d_recosted > 0)

(* End to end through the server: a whole serve run with the persistent
   session must be indistinguishable from one that rebuilds from scratch
   at every re-optimization — while actually reusing state. *)
let test_serve_reuse_bit_identical () =
  let window = 50 in
  let trace = drifting_trace ~window in
  let run reuse =
    Server.run (make_db ())
      { (serve_config ~window ()) with Server.reopt_reuse = reuse }
      trace
  in
  let with_reuse = run true and from_scratch = run false in
  Alcotest.(check string)
    "reuse on = reuse off" (report_fingerprint from_scratch)
    (report_fingerprint with_reuse);
  Alcotest.(check bool) "the session actually reused state" true
    (with_reuse.Server.reopt.Reopt.reuse.Problem.Reuse.trans_blocks_reused > 0);
  Alcotest.(check int) "from-scratch arm carries no reuse state" 0
    from_scratch.Server.reopt.Reopt.reuse.Problem.Reuse.builds

let () =
  Alcotest.run "serve"
    [
      ( "drift",
        [
          Alcotest.test_case "identical windows" `Quick test_drift_identical_windows;
          Alcotest.test_case "disjoint windows" `Quick test_drift_disjoint_windows;
          Alcotest.test_case "mixture" `Quick test_drift_mixture_is_between;
          Alcotest.test_case "empty profile" `Quick test_drift_empty_profile;
        ] );
      ( "guard",
        [
          Alcotest.test_case "no change" `Quick test_guard_no_change;
          Alcotest.test_case "accept" `Quick test_guard_accept;
          Alcotest.test_case "reject short horizon" `Quick test_guard_reject_short_horizon;
          Alcotest.test_case "validation" `Quick test_guard_validates;
        ] );
      ( "server",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_serve_deterministic_across_jobs;
          Alcotest.test_case "windowing" `Quick test_serve_windowing;
          Alcotest.test_case "continuous deploys on drift" `Quick
            test_serve_continuous_deploys_on_drift;
          Alcotest.test_case "static never changes" `Quick
            test_serve_static_never_changes;
          Alcotest.test_case "regret guard rejects" `Quick
            test_serve_regret_guard_rejects;
          Alcotest.test_case "rollback on regression" `Quick
            test_serve_rollback_on_regression;
          Alcotest.test_case "reactive is unguarded" `Quick
            test_serve_reactive_unguarded;
          Alcotest.test_case "non-positive threshold" `Quick
            test_serve_reopt_every_window_when_threshold_nonpositive;
          Alcotest.test_case "config validation" `Quick test_serve_validates_config;
          Alcotest.test_case "cache flags bit-identical" `Quick
            test_serve_cache_flags_bit_identical;
        ] );
      ( "reopt",
        [
          QCheck_alcotest.to_alcotest reopt_bit_identity_prop;
          Alcotest.test_case "diffing: stable, add, drop" `Quick
            test_reopt_diff_stable_add_drop;
          Alcotest.test_case "stale-stats invalidation" `Quick
            test_reopt_stale_stats_invalidation;
          Alcotest.test_case "serve run bit-identical under reuse" `Quick
            test_serve_reuse_bit_identical;
        ] );
    ]
