(* Experiment harness tests: run every reproduction at a tiny scale and
   check the qualitative claims of the paper (the shapes of Table 2,
   Figure 3 and Figure 4), not the absolute numbers. *)

module Setup = Cddpd_experiments.Setup
module Session = Cddpd_experiments.Session
module Table1 = Cddpd_experiments.Table1
module Table2 = Cddpd_experiments.Table2
module Figure3 = Cddpd_experiments.Figure3
module Figure4 = Cddpd_experiments.Figure4
module Ablation = Cddpd_experiments.Ablation
module Design = Cddpd_catalog.Design
module Solution = Cddpd_core.Solution
module Config_space = Cddpd_core.Config_space

(* One shared tiny session: building it is the expensive part. *)
let session =
  lazy
    (Session.create
       { Setup.test_config with Setup.rows = 8_000; value_range = 1_600; scale = 0.08 })

let test_setup_paper_space () =
  Alcotest.(check int) "7 configurations" 7 (Config_space.size Setup.paper_space);
  Alcotest.(check int) "6 candidates" 6 (List.length Setup.paper_candidates)

let test_setup_database () =
  let s = Lazy.force session in
  Alcotest.(check int) "rows loaded" 8_000
    (Cddpd_engine.Database.row_count s.Session.db "t");
  Alcotest.(check int) "30 segments" 30 (Array.length s.Session.steps_w1);
  Alcotest.(check int) "segment size" 40 (Array.length s.Session.steps_w1.(0))

let test_table1 () =
  let result = Table1.run ~sample_size:20_000 () in
  Alcotest.(check bool) "observed frequencies track Table 1" true
    (result.Table1.max_deviation < 0.02);
  Alcotest.(check int) "four mixes" 4 (List.length result.Table1.mixes)

let test_table2_shapes () =
  let s = Lazy.force session in
  let result = Table2.run s in
  Alcotest.(check int) "30 rows" 30 (List.length result.Table2.rows);
  (* The constrained design changes exactly at the major shifts. *)
  Alcotest.(check int) "k=2 changes" 2 result.Table2.constrained.Solution.changes;
  let k2 = result.Table2.schedule_k2 in
  Alcotest.(check bool) "phase-constant design" true
    (Design.equal k2.(0) k2.(9)
    && Design.equal k2.(10) k2.(19)
    && Design.equal k2.(20) k2.(29)
    && (not (Design.equal k2.(9) k2.(10)))
    && not (Design.equal k2.(19) k2.(20)));
  (* Phase 1 and phase 3 see the same workload, hence the same design. *)
  Alcotest.(check bool) "phases 1 and 3 agree" true (Design.equal k2.(0) k2.(20));
  (* The unconstrained design tracks minor shifts: more changes than k=2. *)
  Alcotest.(check bool) "unconstrained tracks minor shifts" true
    (result.Table2.unconstrained.Solution.changes > 2);
  (* And it is at least as cheap (it is the optimum). *)
  Alcotest.(check bool) "unconstrained is cheaper" true
    (result.Table2.unconstrained.Solution.cost
    <= result.Table2.constrained.Solution.cost)

let test_figure3_shapes () =
  let s = Lazy.force session in
  let result = Figure3.run s in
  let find name =
    List.find (fun m -> m.Figure3.workload = name) result.Figure3.measurements
  in
  let w1 = find "W1" and w2 = find "W2" and w3 = find "W3" in
  (* W1 under its own unconstrained design is the 100% baseline. *)
  Alcotest.(check (float 1e-9)) "baseline" 1.0 w1.Figure3.relative_unconstrained;
  (* The constrained design is suboptimal for W1 itself... *)
  Alcotest.(check bool) "W1 slower constrained" true
    (w1.Figure3.relative_constrained > 1.0);
  (* ...but beats the unconstrained design on the perturbed workloads. *)
  Alcotest.(check bool) "W2 better under constrained" true
    (w2.Figure3.relative_constrained < w2.Figure3.relative_unconstrained);
  Alcotest.(check bool) "W3 better under constrained" true
    (w3.Figure3.relative_constrained < w3.Figure3.relative_unconstrained);
  (* W3 (out of phase) suffers the most under the overfitted design. *)
  Alcotest.(check bool) "W3 worst case for unconstrained" true
    (w3.Figure3.relative_unconstrained > w2.Figure3.relative_unconstrained)

let test_figure4_shapes () =
  let s = Lazy.force session in
  let result = Figure4.run ~ks:[ 2; 10; 18 ] ~repeats:8 s in
  let point k = List.find (fun p -> p.Figure4.k = k) result.Figure4.points in
  (* k-aware grows with k; merging does not grow with k. *)
  Alcotest.(check bool) "k-aware grows" true
    ((point 18).Figure4.kaware_seconds > (point 2).Figure4.kaware_seconds);
  Alcotest.(check bool) "k-aware costs more than unconstrained" true
    ((point 2).Figure4.kaware_relative > 1.0);
  Alcotest.(check bool) "merging does not blow up with k" true
    ((point 18).Figure4.merging_seconds < 2.0 *. (point 2).Figure4.merging_seconds)

let test_updates () =
  let s = Lazy.force session in
  let result = Cddpd_experiments.Updates.run ~fractions:[ 0.0; 0.5 ] s in
  match result.Cddpd_experiments.Updates.points with
  | [ p0; p50 ] ->
      Alcotest.(check bool) "costs rise with update share" true
        (p50.Cddpd_experiments.Updates.constrained_cost
        > p0.Cddpd_experiments.Updates.constrained_cost);
      Alcotest.(check bool) "constrained within budget" true
        (p50.Cddpd_experiments.Updates.constrained_changes <= 2)
  | _ -> Alcotest.fail "expected two points"

let test_views () =
  let s = Lazy.force session in
  let result = Cddpd_experiments.Views.run s in
  (* The reporting phase must be served by a materialized view... *)
  Alcotest.(check bool) "view scheduled" true
    (result.Cddpd_experiments.Views.view_steps > 0);
  (* ...and the dynamic schedule must beat the best static index design. *)
  Alcotest.(check bool) "beats static indexes" true
    (result.Cddpd_experiments.Views.replay_io_constrained
    < result.Cddpd_experiments.Views.replay_io_static_index)

let test_space_bound () =
  let s = Lazy.force session in
  let result = Cddpd_experiments.Space_bound.run s in
  let costs =
    List.map (fun p -> p.Cddpd_experiments.Space_bound.cost) result.Cddpd_experiments.Space_bound.points
  in
  (* Cost is nonincreasing as the budget grows. *)
  let rec nonincreasing xs =
    match xs with
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && nonincreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "cost nonincreasing in b" true (nonincreasing costs);
  (match result.Cddpd_experiments.Space_bound.points with
  | first :: _ ->
      Alcotest.(check int) "tightest bound leaves only the empty config" 1
        first.Cddpd_experiments.Space_bound.n_configs
  | [] -> Alcotest.fail "no points");
  (* The unbounded space with <=2 structures per config is strictly larger
     than the paper's 7. *)
  match List.rev result.Cddpd_experiments.Space_bound.points with
  | last :: _ ->
      Alcotest.(check bool) "unbounded space has pair configs" true
        (last.Cddpd_experiments.Space_bound.n_configs > 7)
  | [] -> Alcotest.fail "no points"

let test_ablation () =
  let s = Lazy.force session in
  let result = Ablation.run ~ks:[ 0; 2 ] s in
  Alcotest.(check bool) "unconstrained entry present" true
    (List.exists (fun e -> e.Ablation.method_label = "unconstrained") result.Ablation.entries);
  (* Exact methods report zero gap at every k. *)
  List.iter
    (fun e ->
      if e.Ablation.method_label = "k-aware" then
        Alcotest.(check (float 1e-6)) "k-aware gap" 0.0 e.Ablation.optimality_gap)
    result.Ablation.entries;
  (* The online baseline is never better than the offline optimum. *)
  let online =
    List.find
      (fun e -> e.Ablation.method_label = "online tuner (reactive)")
      result.Ablation.entries
  in
  Alcotest.(check bool) "online >= offline optimum" true
    (online.Ablation.cost >= result.Ablation.unconstrained_cost)

(* -- parallel cell runner equivalence ---------------------------------------
   Every run_cells entry point must reproduce its sequential run exactly
   (modulo wall-clock fields, which are masked out below) at every
   cell-jobs width: cells join in declaration order and each cell's
   randomness comes from a (seed, index)-determined stream. *)

let jobs_list = [ 1; 2; 4 ]

let check_for_jobs name f =
  List.iter
    (fun jobs ->
      if not (f jobs) then Alcotest.failf "%s differs at cell_jobs=%d" name jobs)
    jobs_list

let test_figure3_cells_bit_identical () =
  let s = Lazy.force session in
  let seq = Figure3.run s in
  check_for_jobs "figure3" (fun jobs -> Figure3.run_cells ~cell_jobs:jobs s = seq)

let test_table2_cells_equal () =
  let s = Lazy.force session in
  let seq = Table2.run s in
  let mask (r : Table2.result) =
    ( r.Table2.rows,
      r.Table2.unconstrained.Solution.cost,
      r.Table2.unconstrained.Solution.changes,
      r.Table2.constrained.Solution.cost,
      r.Table2.constrained.Solution.changes )
  in
  let schedules_equal a b =
    Array.length a = Array.length b && Array.for_all2 Design.equal a b
  in
  check_for_jobs "table2" (fun jobs ->
      let par = Table2.run_cells ~cell_jobs:jobs s in
      mask par = mask seq
      && schedules_equal par.Table2.schedule_k2 seq.Table2.schedule_k2
      && schedules_equal par.Table2.schedule_unconstrained
           seq.Table2.schedule_unconstrained)

let test_figure4_cells_costs_equal () =
  let s = Lazy.force session in
  let ks = [ 2; 6 ] in
  let mask (r : Figure4.result) =
    ( r.Figure4.unconstrained_cost,
      List.map
        (fun p -> (p.Figure4.k, p.Figure4.kaware_cost, p.Figure4.merging_cost))
        r.Figure4.points )
  in
  let seq = mask (Figure4.run ~ks ~repeats:2 s) in
  check_for_jobs "figure4" (fun jobs ->
      mask (Figure4.run_cells ~ks ~repeats:2 ~cell_jobs:jobs s) = seq)

let test_ablation_cells_equal () =
  let s = Lazy.force session in
  let ks = [ 0; 2 ] in
  let mask (r : Ablation.result) =
    ( r.Ablation.unconstrained_cost,
      List.map
        (fun e ->
          ( e.Ablation.method_label,
            e.Ablation.k,
            e.Ablation.cost,
            e.Ablation.changes,
            e.Ablation.optimality_gap ))
        r.Ablation.entries )
  in
  let seq = mask (Ablation.run ~ks s) in
  check_for_jobs "ablation" (fun jobs ->
      mask (Ablation.run_cells ~ks ~cell_jobs:jobs s) = seq)

let test_updates_cells_equal () =
  let s = Lazy.force session in
  let fractions = [ 0.0; 0.3 ] in
  let seq = Cddpd_experiments.Updates.run ~fractions s in
  check_for_jobs "updates" (fun jobs ->
      Cddpd_experiments.Updates.run_cells ~fractions ~cell_jobs:jobs s = seq)

let test_space_bound_cells_equal () =
  let s = Lazy.force session in
  let seq = Cddpd_experiments.Space_bound.run s in
  check_for_jobs "space" (fun jobs ->
      Cddpd_experiments.Space_bound.run_cells ~cell_jobs:jobs s = seq)

let () =
  Alcotest.run "experiments"
    [
      ( "setup",
        [
          Alcotest.test_case "paper space" `Quick test_setup_paper_space;
          Alcotest.test_case "database" `Quick test_setup_database;
        ] );
      ("table1", [ Alcotest.test_case "mix frequencies" `Quick test_table1 ]);
      ("table2", [ Alcotest.test_case "design shapes" `Quick test_table2_shapes ]);
      ("figure3", [ Alcotest.test_case "relative times" `Slow test_figure3_shapes ]);
      ("figure4", [ Alcotest.test_case "runtime curves" `Slow test_figure4_shapes ]);
      ("ablation", [ Alcotest.test_case "solver comparison" `Quick test_ablation ]);
      ("updates", [ Alcotest.test_case "update-share ablation" `Quick test_updates ]);
      ("views", [ Alcotest.test_case "view scheduling" `Slow test_views ]);
      ("space", [ Alcotest.test_case "SIZE bound sweep" `Quick test_space_bound ]);
      ( "cells",
        [
          Alcotest.test_case "figure3 parallel = sequential (bit-identical)" `Slow
            test_figure3_cells_bit_identical;
          Alcotest.test_case "table2 parallel = sequential" `Quick
            test_table2_cells_equal;
          Alcotest.test_case "figure4 parallel costs = sequential" `Quick
            test_figure4_cells_costs_equal;
          Alcotest.test_case "ablation parallel = sequential" `Quick
            test_ablation_cells_equal;
          Alcotest.test_case "updates parallel = sequential" `Quick
            test_updates_cells_equal;
          Alcotest.test_case "space-bound parallel = sequential" `Quick
            test_space_bound_cells_equal;
        ] );
    ]
