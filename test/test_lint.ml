(* Tests for cddpd_lint (tools/lint): each rule gets a positive hit, a
   clean pass and a waiver case on inline fixture snippets; R5/R6 run
   through the driver on temporary fixture trees (including the
   deliberate catalogue desync the acceptance criteria ask for); and a
   final smoke test lints the real repository, asserting zero unwaived
   findings at HEAD. *)

module L = Cddpd_lint_core.Lint_types
module Config = Cddpd_lint_core.Lint_config
module Rules = Cddpd_lint_core.Rules
module Waiver = Cddpd_lint_core.Waiver
module Obs_sync = Cddpd_lint_core.Obs_sync
module Driver = Cddpd_lint_core.Driver
module Dune_scan = Cddpd_lint_core.Dune_scan
module Cmt_loader = Cddpd_lint_core.Cmt_loader
module Typed_rules = Cddpd_lint_core.Typed_rules
module Type_safety = Cddpd_lint_core.Type_safety
module Race = Cddpd_lint_core.Race
module Baseline = Cddpd_lint_core.Baseline

let default_r3_dirs = [ "lib" ]

let check_source ?(config = Config.default) ?(r3_dirs = default_r3_dirs)
    ~path source =
  Rules.check_source ~config ~r3_dirs ~path source

let hits rule (t : Rules.t) =
  List.filter
    (fun (f : L.finding) -> f.rule = rule && not f.waived)
    t.findings

let waived_hits rule (t : Rules.t) =
  List.filter (fun (f : L.finding) -> f.rule = rule && f.waived) t.findings

let count = List.length

(* -- fixture trees for the driver-level rules ----------------------------- *)

let write_file path content =
  let rec mkdirs dir =
    if not (Sys.file_exists dir) then begin
      mkdirs (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  mkdirs (Filename.dirname path);
  Out_channel.with_open_text path (fun oc -> output_string oc content)

let with_tree files f =
  let root = Filename.temp_dir "cddpd_lint_test" "" in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> rm root)
    (fun () ->
      List.iter (fun (rel, content) -> write_file (Filename.concat root rel) content) files;
      f root)

(* -- R1 poly-hash --------------------------------------------------------- *)

let test_poly_hash () =
  let bad = check_source ~path:"lib/x/a.ml" "let f x = Hashtbl.hash x\n" in
  Alcotest.(check int) "Hashtbl.hash flagged" 1 (count (hits L.Poly_hash bad));
  let create = check_source ~path:"lib/x/a.ml" "let t = ()\nlet u = Hashtbl.create 4\n" in
  Alcotest.(check int) "default-hash create flagged" 1 (count (hits L.Poly_hash create));
  let make =
    check_source ~path:"lib/x/a.ml"
      "module H = Hashtbl.Make (String)\nlet u = H.create 4\n"
  in
  Alcotest.(check int) "Hashtbl.Make table clean" 0 (count (hits L.Poly_hash make));
  let whitelisted = check_source ~path:"lib/engine/cost_cache.ml" "let u = Hashtbl.create 4\n" in
  Alcotest.(check int) "whitelisted module clean" 0 (count (hits L.Poly_hash whitelisted));
  let waived =
    check_source ~path:"lib/x/a.ml"
      "(* cddpd-lint: allow poly-hash -- string keys *)\nlet u = Hashtbl.create 4\n"
  in
  Alcotest.(check int) "waiver absorbs the hit" 0 (count (hits L.Poly_hash waived));
  Alcotest.(check int) "waived finding still reported" 1
    (count (waived_hits L.Poly_hash waived))

(* -- R2 poly-compare ------------------------------------------------------ *)

let test_poly_compare () =
  let bare = check_source ~path:"lib/engine/a.ml" "let f xs = List.sort compare xs\n" in
  Alcotest.(check int) "bare compare flagged" 1 (count (hits L.Poly_compare bare));
  let float_eq = check_source ~path:"lib/core/a.ml" "let f x = x = 0.0\n" in
  Alcotest.(check int) "float (=) flagged" 1 (count (hits L.Poly_compare float_eq));
  let float_arith = check_source ~path:"lib/graph/a.ml" "let f a b c = a +. b <> c\n" in
  Alcotest.(check int) "float arithmetic operand flagged" 1
    (count (hits L.Poly_compare float_arith));
  let int_eq = check_source ~path:"lib/core/a.ml" "let f x = x = 3\n" in
  Alcotest.(check int) "int (=) not flagged" 0 (count (hits L.Poly_compare int_eq));
  let typed = check_source ~path:"lib/engine/a.ml" "let f xs = List.sort Int.compare xs\n" in
  Alcotest.(check int) "Int.compare clean" 0 (count (hits L.Poly_compare typed));
  let cold = check_source ~path:"lib/workload/a.ml" "let f xs = List.sort compare xs\n" in
  Alcotest.(check int) "outside hot dirs not flagged" 0 (count (hits L.Poly_compare cold));
  let waived =
    check_source ~path:"lib/engine/a.ml"
      "let f x = x = 0.0 (* cddpd-lint: allow poly-compare -- exact sentinel *)\n"
  in
  Alcotest.(check int) "same-line waiver absorbs" 0 (count (hits L.Poly_compare waived))

(* -- R3 domain-unsafe-state ----------------------------------------------- *)

let test_domain_unsafe_state () =
  let bad = check_source ~path:"lib/x/a.ml" "let cache = ref []\n" in
  Alcotest.(check int) "toplevel ref flagged" 1 (count (hits L.Domain_unsafe_state bad));
  let tbl = check_source ~path:"lib/x/a.ml" "let t : (int, int) Hashtbl.t = Hashtbl.create 4\n" in
  Alcotest.(check int) "toplevel Hashtbl flagged" 1
    (count (hits L.Domain_unsafe_state tbl));
  let local = check_source ~path:"lib/x/a.ml" "let f () =\n  let c = ref 0 in\n  incr c; !c\n" in
  Alcotest.(check int) "function-local ref clean" 0
    (count (hits L.Domain_unsafe_state local));
  let atomic = check_source ~path:"lib/x/a.ml" "let n = Atomic.make 0\n" in
  Alcotest.(check int) "Atomic.make clean" 0 (count (hits L.Domain_unsafe_state atomic));
  let guarded =
    check_source ~path:"lib/x/a.ml"
      "let cache = ref []\nlet cache_mutex = Mutex.create ()\n"
  in
  Alcotest.(check int) "mutex-adjacent state exempt" 0
    (count (hits L.Domain_unsafe_state guarded));
  let outside = check_source ~r3_dirs:[ "lib/core" ] ~path:"lib/sql/a.ml" "let c = ref 0\n" in
  Alcotest.(check int) "outside Parallel-linked dirs clean" 0
    (count (hits L.Domain_unsafe_state outside));
  let nested =
    check_source ~path:"lib/x/a.ml" "module M = struct\n  let s = ref 0\nend\n"
  in
  Alcotest.(check int) "nested module toplevel flagged" 1
    (count (hits L.Domain_unsafe_state nested));
  let waived =
    check_source ~path:"lib/x/a.ml"
      "(* cddpd-lint: allow domain-unsafe-state -- main-domain only *)\nlet c = ref 0\n"
  in
  Alcotest.(check int) "waiver absorbs" 0 (count (hits L.Domain_unsafe_state waived))

(* -- R4 lib-hygiene -------------------------------------------------------- *)

let test_lib_hygiene () =
  let bad =
    check_source ~path:"lib/x/a.ml"
      "let f x = Printf.printf \"%d\" x\nlet g () = exit 1\nlet h x = Obj.magic x\nlet i () = print_endline \"hi\"\n"
  in
  Alcotest.(check int) "printf/exit/magic/print_endline all flagged" 4
    (count (hits L.Lib_hygiene bad));
  let fmt =
    check_source ~path:"lib/x/a.ml" "let pp ppf x = Format.fprintf ppf \"%d\" x\n"
  in
  Alcotest.(check int) "formatter output clean" 0 (count (hits L.Lib_hygiene fmt));
  let experiments =
    check_source ~path:"lib/experiments/a.ml" "let f () = print_endline \"table\"\n"
  in
  Alcotest.(check int) "lib/experiments exempt (stdout is its contract)" 0
    (count (hits L.Lib_hygiene experiments));
  let binside = check_source ~path:"bin/a.ml" "let () = exit 0\n" in
  Alcotest.(check int) "bin/ exempt" 0 (count (hits L.Lib_hygiene binside));
  let waived =
    check_source ~path:"lib/x/a.ml"
      "(* cddpd-lint: allow lib-hygiene -- explicit stdout API *)\nlet f () = print_endline \"x\"\n"
  in
  Alcotest.(check int) "waiver absorbs" 0 (count (hits L.Lib_hygiene waived))

(* -- waiver syntax ---------------------------------------------------------- *)

let test_waiver_syntax () =
  let w = Waiver.scan "let a = 1\n(* cddpd-lint: allow poly-hash, R2 -- reason *)\nlet b = 2\n" in
  Alcotest.(check bool) "named rule on its own line" true
    (Waiver.covers w ~line:2 ~rule:L.Poly_hash);
  Alcotest.(check bool) "R-code alias accepted" true
    (Waiver.covers w ~line:2 ~rule:L.Poly_compare);
  Alcotest.(check bool) "covers the following line too" true
    (Waiver.covers w ~line:3 ~rule:L.Poly_hash);
  Alcotest.(check bool) "does not leak further down" false
    (Waiver.covers w ~line:4 ~rule:L.Poly_hash);
  Alcotest.(check bool) "other rules unaffected" false
    (Waiver.covers w ~line:2 ~rule:L.Lib_hygiene);
  let em_dash = Waiver.scan "(* cddpd-lint: allow lib-hygiene \xe2\x80\x94 reason text *)\n" in
  Alcotest.(check bool) "em-dash reason separator parsed" true
    (Waiver.covers em_dash ~line:1 ~rule:L.Lib_hygiene);
  let none = Waiver.scan "(* a normal comment mentioning allow poly-hash rules *)\n" in
  Alcotest.(check bool) "no marker, no waiver" false
    (Waiver.covers none ~line:1 ~rule:L.Poly_hash)

let test_parse_error () =
  let t = check_source ~path:"lib/x/a.ml" "let let let\n" in
  match t.findings with
  | [ f ] ->
      Alcotest.(check bool) "parse error reported as finding" true
        (f.rule = L.Parse_error)
  | fs -> Alcotest.failf "expected exactly one parse-error finding, got %d" (List.length fs)

(* -- R5 mli-coverage through the driver ------------------------------------ *)

let test_mli_coverage () =
  with_tree
    [
      ("lib/x/covered.ml", "let x = 1\n");
      ("lib/x/covered.mli", "val x : int\n");
      ("lib/x/naked.ml", "let y = 2\n");
      ( "lib/x/excused.ml",
        "(* cddpd-lint: allow mli-coverage -- generated interface tested elsewhere *)\nlet z = 3\n"
      );
      ("bin/main.ml", "let () = ()\n");
      ("docs/OBSERVABILITY.md", "# nothing\n");
    ]
    (fun root ->
      let config = { Config.default with domain_state_dirs = Some [] } in
      let report = Driver.run ~config ~root () in
      let mli =
        List.filter
          (fun (f : L.finding) -> f.rule = L.Mli_coverage && not f.waived)
          report.findings
      in
      match mli with
      | [ f ] ->
          Alcotest.(check string) "the uncovered module is flagged" "lib/x/naked.ml" f.file
      | fs -> Alcotest.failf "expected exactly 1 mli finding, got %d" (List.length fs))

(* -- R6 obs-catalogue-sync -------------------------------------------------- *)

let doc_synced =
  {|# Observability

## Metric catalogue

| metric | kind | emitted by | meaning |
|---|---|---|---|
| `demo.hits` | counter | `a.ml` | hits |
| `demo.lat_s` | histogram | `a.ml` | latency |

## Span naming convention

- `demo.solve` — one per solve;
- `optimizer.<method>` — one per method, with child `demo.solve.inner` spans.
|}

let emitter =
  {|module Registry = Cddpd_obs.Registry
let m = Registry.counter "demo.hits"
let h = Registry.histogram "demo.lat_s"
let f g = Cddpd_obs.Span.with_span "demo.solve" g
let dyn name g = Cddpd_obs.Span.with_span ("optimizer." ^ name) g
|}

let run_obs ~doc ~source =
  with_tree
    [ ("lib/x/a.ml", source); ("lib/x/a.mli", "(* empty *)\n"); ("docs/OBSERVABILITY.md", doc) ]
    (fun root ->
      let config = { Config.default with domain_state_dirs = Some [] } in
      let report = Driver.run ~config ~root () in
      ( List.filter
          (fun (f : L.finding) -> f.rule = L.Obs_catalogue_sync && not f.waived)
          report.findings,
        report ))

let test_obs_sync_clean () =
  let findings, report = run_obs ~doc:doc_synced ~source:emitter in
  Alcotest.(check int) "synced catalogue is clean" 0 (count findings);
  Alcotest.(check int) "dynamic span name tallied, not flagged" 1 report.obs_dynamic

let test_obs_sync_desync () =
  (* Deliberately desync the catalogue: drop the histogram row and add a
     stale one; both directions must fire. *)
  let doc_missing =
    {|# Observability

## Metric catalogue

| metric | kind | emitted by | meaning |
|---|---|---|---|
| `demo.hits` | counter | `a.ml` | hits |
| `demo.ghost` | counter | `gone.ml` | removed in a refactor |

## Span naming convention

- `demo.solve` — one per solve.
|}
  in
  let findings, _ = run_obs ~doc:doc_missing ~source:emitter in
  let msgs = List.map (fun (f : L.finding) -> f.message) findings in
  Alcotest.(check int) "one undocumented + one stale finding" 2 (count findings);
  Alcotest.(check bool) "undocumented metric reported" true
    (List.exists (fun m -> List.mem "demo.lat_s" [ m ] || String.length m > 0) msgs
    && List.exists
         (fun (f : L.finding) -> f.file = "lib/x/a.ml" && f.line = 3)
         findings);
  Alcotest.(check bool) "stale catalogue row reported at the doc line" true
    (List.exists
       (fun (f : L.finding) -> f.file = "docs/OBSERVABILITY.md" && f.line = 8)
       findings)

let test_obs_sync_span () =
  let doc_no_span =
    {|# Observability

## Metric catalogue

| metric | kind | emitted by | meaning |
|---|---|---|---|
| `demo.hits` | counter | `a.ml` | hits |
| `demo.lat_s` | histogram | `a.ml` | latency |

## Span naming convention

- `optimizer.<method>` — dynamic family only.
|}
  in
  let findings, _ = run_obs ~doc:doc_no_span ~source:emitter in
  Alcotest.(check int) "undocumented span literal flagged" 1 (count findings);
  Alcotest.(check bool) "wildcard matching works" true
    (Obs_sync.doc_name_matches "optimizer.<method>" "optimizer.k-aware");
  Alcotest.(check bool) "wildcard needs non-empty segment" false
    (Obs_sync.doc_name_matches "optimizer.<method>" "optimizer.")

(* -- injected violations exercise every rule end-to-end -------------------- *)

let test_each_rule_fires_through_driver () =
  with_tree
    [
      ( "lib/x/a.ml",
        "let t = Hashtbl.create 4\nlet f x = Hashtbl.hash x\nlet () = print_endline \"boo\"\n"
      );
      ("lib/core/hot.ml", "let f xs = List.sort compare xs\n");
      ("lib/core/hot.mli", "val f : int list -> int list\n");
      ("docs/OBSERVABILITY.md", "## Metric catalogue\n\n| `ghost.metric` | counter |\n");
    ]
    (fun root ->
      let config = { Config.default with domain_state_dirs = Some [ "lib" ] } in
      let report = Driver.run ~config ~root () in
      let rules_hit =
        List.sort_uniq compare
          (List.filter_map
             (fun (f : L.finding) -> if f.waived then None else Some f.rule)
             report.findings)
      in
      List.iter
        (fun rule ->
          Alcotest.(check bool)
            (Printf.sprintf "rule %s fires on the injected violation" (L.rule_id rule))
            true (List.mem rule rules_hit))
        [
          L.Poly_hash; L.Poly_compare; L.Domain_unsafe_state; L.Lib_hygiene;
          L.Mli_coverage; L.Obs_catalogue_sync;
        ])

let test_rule_toggles () =
  with_tree
    [ ("lib/x/a.ml", "let f x = Hashtbl.hash x\nlet g = ref 0\n");
      ("lib/x/a.mli", "val f : 'a -> int\nval g : int ref\n");
      ("docs/OBSERVABILITY.md", "# empty\n") ]
    (fun root ->
      let config =
        Config.restrict { Config.default with domain_state_dirs = Some [] } [ L.Poly_hash ]
      in
      let report = Driver.run ~config ~root () in
      Alcotest.(check int) "only the enabled rule reports" 1
        (count (Driver.unwaived report));
      let config =
        Config.disable { Config.default with domain_state_dirs = Some [ "lib" ] }
          [ L.Poly_hash ]
      in
      let report = Driver.run ~config ~root () in
      Alcotest.(check bool) "disabled rule is silent" true
        (List.for_all
           (fun (f : L.finding) -> f.rule <> L.Poly_hash)
           (Driver.unwaived report)))

(* -- dune graph scan -------------------------------------------------------- *)

let test_dune_scan () =
  with_tree
    [
      ("lib/util/dune", "(library\n (name x_util)\n (libraries fmt))\n");
      ("lib/util/parallel.ml", "let run f = f ()\n");
      ("lib/deep/dune", "(library\n (name x_deep)\n (libraries fmt))\n");
      ("lib/deep/d.ml", "let d = 1\n");
      ("lib/client/dune", "(library\n (name x_client)\n (libraries x_util x_deep))\n");
      ("lib/client/c.ml", "let c () = Parallel.run (fun () -> ())\n");
      ("lib/bystander/dune", "(library\n (name x_by)\n (libraries x_util))\n");
      ("lib/bystander/b.ml", "let b = 2\n");
    ]
    (fun root ->
      let dirs = Dune_scan.domain_state_dirs ~root ~lib_dir:"lib" () in
      Alcotest.(check (list string))
        "clients plus transitive deps, bystanders excluded"
        [ "lib/client"; "lib/deep"; "lib/util" ]
        dirs)

(* -- cmt loader: locate, validate, fall back -------------------------------- *)

let typecheck_exn ~path source =
  match Cmt_loader.typecheck ~path source with
  | Ok str -> str
  | Error msg -> Alcotest.failf "fixture does not typecheck: %s" msg

(* Typecheck [source], save its cmt where dune would put it for a
   library [x] in lib/x/, and return the tree root. *)
let plant_cmt root ~source =
  let src_path = Filename.concat root "lib/x/a.ml" in
  write_file src_path source;
  let str = typecheck_exn ~path:"lib/x/a.ml" source in
  let cmt_path =
    Filename.concat root "_build/default/lib/x/.x.objs/byte/x__A.cmt"
  in
  Cmt_loader.save_cmt ~cmt_path ~modname:"A" ~sourcefile:src_path str

let test_cmt_loader () =
  with_tree [] (fun root ->
      let source = "let answer = 42\n" in
      (* no cmt anywhere: Missing *)
      (match
         Cmt_loader.find ~root ~build_dirs:[ "_build/default" ]
           ~path:"lib/x/a.ml" ~source
       with
      | Cmt_loader.Missing -> ()
      | s -> Alcotest.failf "expected Missing, got %s" (Cmt_loader.status_reason s));
      (* fresh cmt: Loaded, with the mangling stripped off the modname *)
      plant_cmt root ~source;
      (match
         Cmt_loader.find ~root ~build_dirs:[ "_build/default" ]
           ~path:"lib/x/a.ml" ~source
       with
      | Cmt_loader.Loaded l -> Alcotest.(check string) "modname" "A" l.modname
      | s -> Alcotest.failf "expected Loaded, got %s" (Cmt_loader.status_reason s));
      (* source edited after the build: Stale, never silently used *)
      match
        Cmt_loader.find ~root ~build_dirs:[ "_build/default" ]
          ~path:"lib/x/a.ml" ~source:(source ^ "let more = 1\n")
      with
      | Cmt_loader.Stale _ -> ()
      | s -> Alcotest.failf "expected Stale, got %s" (Cmt_loader.status_reason s))

let test_strip_mangling () =
  Alcotest.(check string) "library mangling" "Cost_cache"
    (Type_safety.strip_mangling "Cddpd_engine__Cost_cache");
  Alcotest.(check string) "executable mangling" "Main"
    (Type_safety.strip_mangling "Dune__exe__Main");
  Alcotest.(check string) "single underscores survive" "Cost_cache"
    (Type_safety.strip_mangling "Cost_cache");
  Alcotest.(check string) "normalize keeps two components" "Cost_cache.t"
    (Type_safety.normalize_name "Cddpd_engine__Cost_cache.t")

(* -- typed R1/R2: the instantiated type decides ----------------------------- *)

let typed_findings ?(modname = "A") ~path source =
  let str = typecheck_exn ~path source in
  let types = Type_safety.create () in
  Type_safety.register_module types ~modname str;
  Typed_rules.run ~config:Config.default ~types ~path ~modname str

let test_typed_poly () =
  let _, findings =
    typed_findings ~path:"lib/x/a.ml"
      "let bad : (float, int) Hashtbl.t = Hashtbl.create 16\n\
       let ok : (string, int) Hashtbl.t = Hashtbl.create 16\n\
       let feq (a : float) (b : float) = a = b\n\
       let ieq (a : int) (b : int) = a = b\n\
       let h x = Hashtbl.hash (x : float)\n"
  in
  let by rule = List.filter (fun (f : L.finding) -> f.rule = rule) findings in
  Alcotest.(check int) "float-keyed create + float hash flagged" 2
    (count (by L.Poly_hash));
  Alcotest.(check int) "float (=) flagged, int (=) clean" 1
    (count (by L.Poly_compare));
  List.iter
    (fun (f : L.finding) ->
      Alcotest.(check bool) "typed findings carry the Typed origin" true
        (f.origin = L.Typed))
    findings;
  (* records resolved through the same-unit declaration table *)
  let _, record_findings =
    typed_findings ~path:"lib/x/a.ml"
      "type k = { id : int; name : string }\n\
       let tbl : (k, int) Hashtbl.t = Hashtbl.create 16\n\
       type fk = { w : float }\n\
       let bad : (fk, int) Hashtbl.t = Hashtbl.create 16\n"
  in
  Alcotest.(check int) "concrete record key safe, float field unsafe" 1
    (count record_findings)

(* -- R7: extraction and the cross-module fixpoint --------------------------- *)

let test_typed_extract_site () =
  let extract, _ =
    typed_findings ~path:"lib/x/a.ml"
      "module Parallel = struct let map_chunks f = f () end\n\
       let counter = ref 0\n\
       let bump () = incr counter\n\
       let run () = Parallel.map_chunks (fun () -> bump ())\n"
  in
  Alcotest.(check int) "one mutable root extracted" 1
    (count extract.Typed_rules.x_roots);
  let root = List.hd extract.Typed_rules.x_roots in
  Alcotest.(check string) "root qualified" "A.counter" root.Typed_rules.r_name;
  Alcotest.(check bool) "no mutex sibling: unguarded" false
    root.Typed_rules.r_guarded;
  Alcotest.(check int) "one Parallel site" 1 (count extract.Typed_rules.x_sites);
  let findings = Race.solve ~config:Config.default [ extract ] in
  Alcotest.(check int) "closure reaches the root through bump" 1 (count findings);
  (* the mutex naming convention guards the root *)
  let guarded, _ =
    typed_findings ~path:"lib/x/a.ml"
      "module Parallel = struct let map_chunks f = f () end\n\
       let counter = ref 0\n\
       let counter_mutex = Mutex.create ()\n\
       let bump () = incr counter\n\
       let run () = Parallel.map_chunks (fun () -> bump ())\n"
  in
  Alcotest.(check int) "mutex-guarded root produces no finding" 0
    (count (Race.solve ~config:Config.default [ guarded ]))

let test_race_cross_module () =
  (* module A holds the state and a mutator; module B passes the mutator
     to a Parallel entry point.  The fixpoint must carry reachability
     across the module boundary. *)
  let a =
    {
      Typed_rules.x_module = "A";
      x_path = "lib/x/a.ml";
      x_values =
        [
          ("A.bump", true, [ Typed_rules.Local "state" ]);
          ("A.state", false, []);
          ("A.limit", false, [ Typed_rules.Local "state" ]);
        ];
      x_roots =
        [
          {
            Typed_rules.r_name = "A.state";
            r_kind = "ref cell";
            r_line = 1;
            r_guarded = false;
          };
        ];
      x_sites = [];
    }
  in
  let site refs =
    {
      Typed_rules.s_line = 5;
      s_col = 2;
      s_entry = "Parallel.map_chunks";
      s_refs = refs;
      s_captures = [];
    }
  in
  let b refs =
    {
      Typed_rules.x_module = "B";
      x_path = "lib/x/b.ml";
      x_values = [];
      x_roots = [];
      x_sites = [ site refs ];
    }
  in
  let reached = Race.solve ~config:Config.default [ a; b [ Typed_rules.Extern "A.bump" ] ] in
  Alcotest.(check int) "function ref propagates across modules" 1 (count reached);
  (match reached with
  | [ f ] ->
      Alcotest.(check string) "finding lands at the call site" "lib/x/b.ml" f.file;
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the reached root" true
        (contains "A.state" f.message)
  | _ -> ());
  (* a non-function value referencing the root does not propagate *)
  let via_value = Race.solve ~config:Config.default [ a; b [ Typed_rules.Extern "A.limit" ] ] in
  Alcotest.(check int) "plain-value ref does not propagate reach" 0
    (count via_value)

(* -- R8 determinism --------------------------------------------------------- *)

let test_determinism () =
  let fold =
    check_source ~path:"lib/core/a.ml"
      "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  Alcotest.(check int) "Hashtbl.fold flagged" 1 (count (hits L.Determinism fold));
  let rand = check_source ~path:"lib/core/a.ml" "let f () = Random.int 10\n" in
  Alcotest.(check int) "ambient Random flagged" 1 (count (hits L.Determinism rand));
  let clock =
    check_source ~path:"lib/core/a.ml" "let f () = Unix.gettimeofday ()\n"
  in
  Alcotest.(check int) "wall clock flagged" 1 (count (hits L.Determinism clock));
  let rng = check_source ~path:"lib/util/rng.ml" "let f () = Random.int 10\n" in
  Alcotest.(check int) "lib/util/rng.ml is the sanctioned source" 0
    (count (hits L.Determinism rng));
  let obs = check_source ~path:"lib/obs/t.ml" "let f () = Unix.gettimeofday ()\n" in
  Alcotest.(check int) "lib/obs is reporting-only, exempt" 0
    (count (hits L.Determinism obs));
  let outside = check_source ~path:"bin/a.ml" "let f () = Random.int 10\n" in
  Alcotest.(check int) "outside lib/ not in scope" 0
    (count (hits L.Determinism outside));
  let waived =
    check_source ~path:"lib/core/a.ml"
      "(* cddpd-lint: allow determinism -- fold-then-sort *)\n\
       let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  Alcotest.(check int) "waiver absorbs" 0 (count (hits L.Determinism waived))

(* -- baseline ratchet -------------------------------------------------------- *)

let waived_finding ~file ~rule ~line message =
  { (L.finding ~file ~line ~rule message) with L.waived = true }

let test_baseline_roundtrip () =
  let findings =
    [
      waived_finding ~file:"lib/a.ml" ~rule:L.Determinism ~line:3 "msg one";
      waived_finding ~file:"lib/a.ml" ~rule:L.Determinism ~line:9 "msg one";
      waived_finding ~file:"lib/b.ml" ~rule:L.Domain_race ~line:1 "msg \"two\"";
      L.finding ~file:"lib/c.ml" ~line:2 ~rule:L.Poly_hash "unwaived: excluded";
    ]
  in
  let entries = Baseline.of_findings findings in
  Alcotest.(check int) "aggregated by (file, rule, message)" 2 (count entries);
  Alcotest.(check int) "counts accumulate" 2
    (List.find (fun (e : Baseline.entry) -> e.file = "lib/a.ml") entries).Baseline.count;
  (match Baseline.parse (Baseline.render entries) with
  | Ok parsed ->
      Alcotest.(check bool) "render/parse roundtrip (quotes escaped)" true
        (parsed = entries)
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg);
  (match Baseline.parse "{ not a baseline }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  match Baseline.load "/nonexistent/lint-baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must not load"

let test_baseline_diff () =
  let e ~file ~count =
    { Baseline.file; rule = "determinism"; message = "m"; count }
  in
  let baseline = [ e ~file:"lib/a.ml" ~count:2; e ~file:"lib/b.ml" ~count:1 ] in
  let unchanged = Baseline.diff ~baseline ~current:baseline in
  Alcotest.(check bool) "identical sets are clean" true (Baseline.clean unchanged);
  let grown =
    Baseline.diff ~baseline
      ~current:[ e ~file:"lib/a.ml" ~count:3; e ~file:"lib/b.ml" ~count:1 ]
  in
  Alcotest.(check bool) "count growth is growth" false (Baseline.clean grown);
  Alcotest.(check int) "one grown entry" 1 (count grown.Baseline.grown);
  let shrunk =
    Baseline.diff ~baseline ~current:[ e ~file:"lib/a.ml" ~count:2 ]
  in
  Alcotest.(check bool) "burn-down alone stays clean" true
    (shrunk.Baseline.grown = []);
  Alcotest.(check int) "one shrunk entry to regenerate away" 1
    (count shrunk.Baseline.shrunk)

(* -- fallback findings are advisory through the driver ----------------------- *)

let test_fallback_advisory () =
  with_tree
    [
      ("lib/x/a.ml", "let t = Hashtbl.create 4\n");
      ("lib/x/a.mli", "val t : (int, int) Hashtbl.t\n");
      ("docs/OBSERVABILITY.md", "# empty\n");
    ]
    (fun root ->
      (* typed engine on, but the fixture tree has no _build: every file
         falls back and R1 degrades to advisory *)
      let config = { Config.default with domain_state_dirs = Some [] } in
      let report = Driver.run ~config ~root () in
      Alcotest.(check int) "nothing typed without cmts" 0 report.typed_files;
      Alcotest.(check bool) "fallback recorded with a reason" true
        (List.exists (fun (f, _) -> f = "lib/x/a.ml") report.fallbacks);
      Alcotest.(check int) "R1 fallback finding is advisory" 1
        (count (Driver.advisory report));
      Alcotest.(check int) "advisory findings never block" 0
        (count (Driver.blocking report));
      (* --no-typed restores the strict syntactic behaviour *)
      let report =
        Driver.run ~config:{ config with Config.typed = false } ~root ()
      in
      Alcotest.(check int) "syntactic mode blocks again" 1
        (count (Driver.blocking report)))

(* -- the real repository lints clean at HEAD -------------------------------- *)

let repo_root () =
  let rec up dir n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "docs/OBSERVABILITY.md")
      && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 8

let test_repo_smoke () =
  match repo_root () with
  | None -> () (* source tree not visible from the test sandbox; skip *)
  | Some root ->
      let report = Driver.run ~root () in
      let blocking = Driver.blocking report in
      List.iter (fun f -> Printf.eprintf "unexpected: %s\n" (L.to_line f)) blocking;
      Alcotest.(check int) "repository lints clean (fix or waive new findings)" 0
        (count blocking);
      Alcotest.(check bool) "a healthy scan covers the whole tree" true
        (report.files_scanned > 60);
      Alcotest.(check bool) "R3 scope derived from the dune graph" true
        (List.mem "lib/graph" report.r3_dirs && List.mem "lib/obs" report.r3_dirs);
      (* the committed ratchet matches reality in the growth direction *)
      match Baseline.load (Filename.concat root "lint-baseline.json") with
      | Error msg -> Alcotest.failf "lint-baseline.json unreadable: %s" msg
      | Ok baseline ->
          let current = Baseline.of_findings report.findings in
          let d = Baseline.diff ~baseline ~current in
          List.iter
            (fun (e : Baseline.entry) ->
              Printf.eprintf "ratchet: %s [%s] x%d\n" e.file e.rule e.count)
            d.Baseline.grown;
          Alcotest.(check int)
            "no waived findings beyond the committed baseline (make lint-update-baseline)"
            0
            (count d.Baseline.grown)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 poly-hash" `Quick test_poly_hash;
          Alcotest.test_case "R2 poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "R3 domain-unsafe-state" `Quick test_domain_unsafe_state;
          Alcotest.test_case "R4 lib-hygiene" `Quick test_lib_hygiene;
          Alcotest.test_case "waiver syntax" `Quick test_waiver_syntax;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "typed",
        [
          Alcotest.test_case "cmt loader fallback ladder" `Quick test_cmt_loader;
          Alcotest.test_case "dune name mangling" `Quick test_strip_mangling;
          Alcotest.test_case "typed R1/R2" `Quick test_typed_poly;
          Alcotest.test_case "R7 extraction and guards" `Quick test_typed_extract_site;
          Alcotest.test_case "R7 cross-module fixpoint" `Quick test_race_cross_module;
          Alcotest.test_case "R8 determinism" `Quick test_determinism;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "baseline diff" `Quick test_baseline_diff;
          Alcotest.test_case "fallback is advisory" `Quick test_fallback_advisory;
        ] );
      ( "driver",
        [
          Alcotest.test_case "R5 mli-coverage" `Quick test_mli_coverage;
          Alcotest.test_case "R6 synced catalogue" `Quick test_obs_sync_clean;
          Alcotest.test_case "R6 deliberate desync" `Quick test_obs_sync_desync;
          Alcotest.test_case "R6 span literals" `Quick test_obs_sync_span;
          Alcotest.test_case "all rules fire" `Quick test_each_rule_fires_through_driver;
          Alcotest.test_case "rule toggles" `Quick test_rule_toggles;
          Alcotest.test_case "dune graph scan" `Quick test_dune_scan;
        ] );
      ("repo", [ Alcotest.test_case "HEAD lints clean" `Quick test_repo_smoke ]);
    ]
