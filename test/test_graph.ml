(* Graph algorithm tests.  The exact solvers are cross-validated against
   brute-force enumeration of every path on random small instances. *)

module Staged_dag = Cddpd_graph.Staged_dag
module Kaware = Cddpd_graph.Kaware
module Ranking = Cddpd_graph.Ranking

(* A concrete random instance: explicit cost matrices. *)
type instance = {
  n_stages : int;
  n_nodes : int;
  node : float array array; (* stage x node *)
  edge : float array array array; (* stage x src x dst *)
  source : float array;
}

let graph_of_instance inst =
  Staged_dag.make ~n_stages:inst.n_stages ~n_nodes:inst.n_nodes
    ~node_cost:(fun s j -> inst.node.(s).(j))
    ~edge_cost:(fun s i j -> inst.edge.(s).(i).(j))
    ~source_cost:(fun j -> inst.source.(j))
    ()

let instance_gen =
  QCheck.Gen.(
    let cost = map (fun i -> float_of_int i) (int_bound 50) in
    int_range 1 5 >>= fun n_stages ->
    int_range 1 4 >>= fun n_nodes ->
    let matrix rows cols = array_size (return rows) (array_size (return cols) cost) in
    matrix n_stages n_nodes >>= fun node ->
    array_size (return (max 1 (n_stages - 1)))
      (matrix n_nodes n_nodes)
    >>= fun edge ->
    array_size (return n_nodes) cost >>= fun source ->
    return { n_stages; n_nodes; node; edge; source })

let print_instance inst =
  Printf.sprintf "stages=%d nodes=%d" inst.n_stages inst.n_nodes

let instance_arbitrary = QCheck.make ~print:print_instance instance_gen

(* Enumerate all n_nodes^n_stages paths. *)
let all_paths inst =
  let rec go stage acc =
    if stage = inst.n_stages then [ List.rev acc ]
    else
      List.concat_map
        (fun j -> go (stage + 1) (j :: acc))
        (List.init inst.n_nodes (fun j -> j))
  in
  List.map Array.of_list (go 0 [])

let changes ~initial path =
  let c = ref 0 in
  (match initial with Some j when path.(0) <> j -> incr c | _ -> ());
  for s = 1 to Array.length path - 1 do
    if path.(s) <> path.(s - 1) then incr c
  done;
  !c

(* -- unit tests ----------------------------------------------------------------- *)

let tiny_graph () =
  (* 2 stages, 2 nodes.  Node costs: stage0 = [10; 1], stage1 = [10; 1].
     Edge cost 5 when switching, 0 otherwise.  Source edges free. *)
  Staged_dag.make ~n_stages:2 ~n_nodes:2
    ~node_cost:(fun _ j -> if j = 0 then 10.0 else 1.0)
    ~edge_cost:(fun _ i j -> if i = j then 0.0 else 5.0)
    ()

let test_shortest_path_tiny () =
  let cost, path = Staged_dag.shortest_path (tiny_graph ()) in
  Alcotest.(check (float 1e-9)) "cost" 2.0 cost;
  Alcotest.(check (array int)) "path" [| 1; 1 |] path

let test_path_cost_agrees () =
  let g = tiny_graph () in
  Alcotest.(check (float 1e-9)) "path cost" 16.0 (Staged_dag.path_cost g [| 0; 1 |]);
  Alcotest.(check (float 1e-9)) "stay" 20.0 (Staged_dag.path_cost g [| 0; 0 |])

let test_path_changes () =
  let g = tiny_graph () in
  Alcotest.(check int) "no changes" 0 (Staged_dag.path_changes g ~initial:None [| 1; 1 |]);
  Alcotest.(check int) "one change" 1 (Staged_dag.path_changes g ~initial:None [| 0; 1 |]);
  Alcotest.(check int) "initial counts" 1
    (Staged_dag.path_changes g ~initial:(Some 0) [| 1; 1 |]);
  Alcotest.(check int) "initial matches" 0
    (Staged_dag.path_changes g ~initial:(Some 1) [| 1; 1 |])

let test_make_invalid () =
  Alcotest.(check bool) "zero stages rejected" true
    (match
       Staged_dag.make ~n_stages:0 ~n_nodes:1
         ~node_cost:(fun _ _ -> 0.0)
         ~edge_cost:(fun _ _ _ -> 0.0)
         ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_kaware_k0_stays () =
  (* With k=0 and an initial node, the only feasible path stays put. *)
  let g = tiny_graph () in
  match Kaware.solve g ~k:0 ~initial:(Some 0) with
  | Some (cost, path) ->
      Alcotest.(check (array int)) "stays on 0" [| 0; 0 |] path;
      Alcotest.(check (float 1e-9)) "cost" 20.0 cost
  | None -> Alcotest.fail "expected a solution"

let test_kaware_negative_k () =
  Alcotest.(check bool) "k<0 infeasible" true (Kaware.solve (tiny_graph ()) ~k:(-1) ~initial:None = None)

let test_kaware_large_k_equals_unconstrained () =
  let g = tiny_graph () in
  let unconstrained_cost, _ = Staged_dag.shortest_path g in
  match Kaware.solve g ~k:10 ~initial:(Some 0) with
  | Some (cost, _) -> Alcotest.(check (float 1e-9)) "equal" unconstrained_cost cost
  | None -> Alcotest.fail "expected a solution"

let test_ranking_first_is_shortest () =
  let g = tiny_graph () in
  let best_cost, best_path = Staged_dag.shortest_path g in
  match Ranking.enumerate g () with
  | Seq.Cons ((cost, path), _) ->
      Alcotest.(check (float 1e-9)) "same cost" best_cost cost;
      Alcotest.(check (array int)) "same path" best_path path
  | Seq.Nil -> Alcotest.fail "no paths"

let test_ranking_enumerates_all () =
  let g = tiny_graph () in
  let paths = List.of_seq (Ranking.enumerate g) in
  Alcotest.(check int) "2^2 paths" 4 (List.length paths)

let test_ranking_solve_constrained () =
  let g = tiny_graph () in
  match Ranking.solve_constrained g ~k:0 ~initial:(Some 0) () with
  | `Found (cost, path, rank) ->
      Alcotest.(check (array int)) "stays" [| 0; 0 |] path;
      Alcotest.(check (float 1e-9)) "cost" 20.0 cost;
      Alcotest.(check bool) "not rank 1" true (rank > 1)
  | `Gave_up _ -> Alcotest.fail "should find the k=0 path"

let test_ranking_gives_up () =
  match Ranking.solve_constrained (tiny_graph ()) ~k:0 ~initial:(Some 0) ~max_paths:1 () with
  | `Gave_up { Ranking.examined = 1; reason = Ranking.Path_budget; _ } -> ()
  | `Gave_up g ->
      Alcotest.failf "gave up after %d (%s)" g.Ranking.examined
        (Ranking.reason_to_string g.Ranking.reason)
  | `Found _ -> Alcotest.fail "should exhaust the path budget"

let test_ranking_queue_budget () =
  match
    Ranking.solve_constrained (tiny_graph ()) ~k:0 ~initial:(Some 0) ~max_queue:1 ()
  with
  | `Gave_up { Ranking.reason = Ranking.Queue_budget; queue_peak; _ } ->
      Alcotest.(check bool) "peak within budget" true (queue_peak <= 1)
  | `Gave_up g ->
      Alcotest.failf "wrong reason: %s" (Ranking.reason_to_string g.Ranking.reason)
  | `Found _ -> Alcotest.fail "should exhaust the queue budget"

let test_ranking_space_exhausted () =
  (* Negative k: no path is feasible, so the search ranks all 2^2 paths
     and reports the space as exhausted (not a budget hit). *)
  match Ranking.solve_constrained (tiny_graph ()) ~k:(-1) ~initial:None () with
  | `Gave_up { Ranking.examined = 4; reason = Ranking.Space_exhausted; _ } -> ()
  | `Gave_up g ->
      Alcotest.failf "gave up after %d (%s)" g.Ranking.examined
        (Ranking.reason_to_string g.Ranking.reason)
  | `Found _ -> Alcotest.fail "no path should be feasible"

let test_of_matrices_invalid () =
  let check_rejected name f =
    Alcotest.(check bool) name true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  check_rejected "empty exec" (fun () ->
      Staged_dag.of_matrices ~exec:[||] ~trans:[| [| 0.0 |] |] ());
  check_rejected "ragged exec" (fun () ->
      Staged_dag.of_matrices
        ~exec:[| [| 1.0; 2.0 |]; [| 1.0 |] |]
        ~trans:[| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |]
        ());
  check_rejected "trans dimension mismatch" (fun () ->
      Staged_dag.of_matrices ~exec:[| [| 1.0; 2.0 |] |] ~trans:[| [| 0.0 |] |] ())

(* -- properties ------------------------------------------------------------------- *)

(* A dense-representable instance: stage-invariant edge costs. *)
let dense_instance_gen =
  QCheck.Gen.(
    let cost = map (fun i -> float_of_int i) (int_bound 50) in
    int_range 1 5 >>= fun n_stages ->
    int_range 1 4 >>= fun n_nodes ->
    let matrix rows cols = array_size (return rows) (array_size (return cols) cost) in
    matrix n_stages n_nodes >>= fun exec ->
    matrix n_nodes n_nodes >>= fun trans ->
    array_size (return n_nodes) cost >>= fun source ->
    return (exec, trans, source))

let dense_instance_arbitrary =
  QCheck.make
    ~print:(fun (exec, trans, _) ->
      Printf.sprintf "stages=%d nodes=%d" (Array.length exec) (Array.length trans))
    dense_instance_gen

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let dense_matches_closures =
  QCheck.Test.make ~name:"of_matrices DP = closure DP, bit for bit" ~count:200
    (QCheck.pair dense_instance_arbitrary (QCheck.int_bound 4))
    (fun ((exec, trans, source), k) ->
      let n_stages = Array.length exec and n_nodes = Array.length trans in
      let dense_g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let closure_g =
        Staged_dag.make ~n_stages ~n_nodes
          ~node_cost:(fun s j -> exec.(s).(j))
          ~edge_cost:(fun _ i j -> trans.(i).(j))
          ~source_cost:(fun j -> source.(j))
          ()
      in
      let dc, dp = Staged_dag.shortest_path dense_g in
      let cc, cp = Staged_dag.shortest_path closure_g in
      same_float dc cc && dp = cp
      &&
      match
        (Kaware.solve dense_g ~k ~initial:(Some 0), Kaware.solve closure_g ~k ~initial:(Some 0))
      with
      | Some (dkc, dkp), Some (ckc, ckp) -> same_float dkc ckc && dkp = ckp
      | None, None -> true
      | _ -> false)

let shortest_path_matches_bruteforce =
  QCheck.Test.make ~name:"shortest_path = brute force" ~count:200 instance_arbitrary
    (fun inst ->
      let g = graph_of_instance inst in
      let cost, path = Staged_dag.shortest_path g in
      let best =
        List.fold_left
          (fun acc p -> Float.min acc (Staged_dag.path_cost g p))
          infinity (all_paths inst)
      in
      Float.abs (cost -. best) < 1e-6
      && Float.abs (Staged_dag.path_cost g path -. cost) < 1e-6)

let kaware_matches_bruteforce =
  QCheck.Test.make ~name:"kaware = constrained brute force" ~count:200
    (QCheck.pair instance_arbitrary (QCheck.int_bound 4))
    (fun (inst, k) ->
      let g = graph_of_instance inst in
      let initial = Some 0 in
      let feasible =
        List.filter (fun p -> changes ~initial p <= k) (all_paths inst)
      in
      let best =
        List.fold_left
          (fun acc p -> Float.min acc (Staged_dag.path_cost g p))
          infinity feasible
      in
      match Kaware.solve g ~k ~initial with
      | Some (cost, path) ->
          Float.abs (cost -. best) < 1e-6
          && changes ~initial path <= k
          && Float.abs (Staged_dag.path_cost g path -. cost) < 1e-6
      | None -> feasible = [])

let kaware_monotone_in_k =
  QCheck.Test.make ~name:"kaware cost nonincreasing in k" ~count:100 instance_arbitrary
    (fun inst ->
      let g = graph_of_instance inst in
      let costs =
        List.filter_map
          (fun k -> Option.map fst (Kaware.solve g ~k ~initial:(Some 0)))
          [ 0; 1; 2; 3; 4 ]
      in
      let rec nonincreasing xs =
        match xs with
        | a :: b :: rest -> a +. 1e-9 >= b && nonincreasing (b :: rest)
        | [ _ ] | [] -> true
      in
      nonincreasing costs)

let ranking_nondecreasing =
  QCheck.Test.make ~name:"ranking emits nondecreasing costs" ~count:100 instance_arbitrary
    (fun inst ->
      let g = graph_of_instance inst in
      let costs = List.of_seq (Seq.map fst (Ranking.enumerate g)) in
      let rec nondecreasing xs =
        match xs with
        | a :: b :: rest -> a <= b +. 1e-9 && nondecreasing (b :: rest)
        | [ _ ] | [] -> true
      in
      nondecreasing costs)

let ranking_complete =
  QCheck.Test.make ~name:"ranking enumerates every path exactly once" ~count:100
    instance_arbitrary (fun inst ->
      let g = graph_of_instance inst in
      let emitted = List.of_seq (Seq.map snd (Ranking.enumerate g)) in
      let expected = all_paths inst in
      List.length emitted = List.length expected
      && List.sort compare emitted = List.sort compare expected)

let cost_to_go_consistent =
  QCheck.Test.make ~name:"cost_to_go agrees with shortest_path" ~count:200
    dense_instance_arbitrary (fun (exec, trans, source) ->
      let g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let n = Array.length trans in
      let h = Staged_dag.cost_to_go g in
      (* Completing from the source layer: min over entry nodes of
         source + node + h must reproduce the unconstrained optimum. *)
      let best = ref infinity in
      for j = 0 to n - 1 do
        let total = source.(j) +. exec.(0).(j) +. h.(j) in
        if total < !best then best := total
      done;
      let cost, _ = Staged_dag.shortest_path g in
      Float.abs (!best -. cost) < 1e-6)

let kaware_parallel_matches_sequential =
  QCheck.Test.make ~name:"kaware parallel = sequential, bit for bit" ~count:100
    (QCheck.pair dense_instance_arbitrary (QCheck.int_bound 4))
    (fun ((exec, trans, source), k) ->
      let g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let reference = Kaware.solve ~jobs:1 g ~k ~initial:(Some 0) in
      List.for_all
        (fun jobs ->
          match (Kaware.solve ~jobs g ~k ~initial:(Some 0), reference) with
          | Some (c, p), Some (c', p') -> same_float c c' && p = p'
          | None, None -> true
          | _ -> false)
        [ 2; 4 ])

(* The constant "stay on node 0" schedule makes no changes, so with
   initial = Some 0 its cost upper-bounds the constrained optimum at every
   k >= 0 — the same shape of bound Optimizer seeds from the merging
   heuristic. *)
let constant_bound exec g = Staged_dag.path_cost g (Array.make (Array.length exec) 0)

let kaware_pruned_matches_unpruned =
  QCheck.Test.make ~name:"kaware bound pruning preserves (cost, path)" ~count:150
    (QCheck.pair dense_instance_arbitrary (QCheck.int_bound 4))
    (fun ((exec, trans, source), k) ->
      let g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let initial = Some 0 in
      let ub = constant_bound exec g in
      match
        (Kaware.solve ~upper_bound:ub g ~k ~initial, Kaware.solve g ~k ~initial)
      with
      | Some (c, p), Some (c', p') -> same_float c c' && p = p'
      | None, None -> true
      | _ -> false)

let ranking_budgeted_matches_plain =
  QCheck.Test.make ~name:"ranking bound pruning preserves (cost, path, rank)"
    ~count:150
    (QCheck.pair dense_instance_arbitrary (QCheck.int_bound 3))
    (fun ((exec, trans, source), k) ->
      let g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let initial = Some 0 in
      let ub = constant_bound exec g in
      match
        ( Ranking.solve_constrained g ~k ~initial ~upper_bound:ub
            ~max_paths:100_000 (),
          Ranking.solve_constrained g ~k ~initial ~max_paths:100_000 () )
      with
      | `Found (c, p, r), `Found (c', p', r') -> same_float c c' && p = p' && r = r'
      | `Gave_up _, `Gave_up _ -> true
      | _ -> false)

(* Exhaustive in k: for every budget the instance admits, the DP (pruned
   and unpruned) must match the constrained brute force. *)
let kaware_bruteforce_all_k =
  QCheck.Test.make ~name:"kaware = brute force at every k" ~count:100
    dense_instance_arbitrary (fun (exec, trans, source) ->
      let g = Staged_dag.of_matrices ~exec ~trans ~source () in
      let n_stages = Array.length exec and n_nodes = Array.length trans in
      let initial = Some 0 in
      let inst =
        {
          n_stages;
          n_nodes;
          node = exec;
          edge = Array.make (max 1 (n_stages - 1)) trans;
          source;
        }
      in
      let ub = constant_bound exec g in
      List.for_all
        (fun k ->
          let feasible =
            List.filter (fun p -> changes ~initial p <= k) (all_paths inst)
          in
          let best =
            List.fold_left
              (fun acc p -> Float.min acc (Staged_dag.path_cost g p))
              infinity feasible
          in
          match (Kaware.solve g ~k ~initial, Kaware.solve ~upper_bound:ub g ~k ~initial) with
          | Some (cost, path), Some (pruned_cost, pruned_path) ->
              Float.abs (cost -. best) < 1e-6
              && changes ~initial path <= k
              && same_float cost pruned_cost
              && path = pruned_path
          | _ -> false)
        (List.init (n_stages + 1) (fun k -> k)))

let ranking_agrees_with_kaware =
  QCheck.Test.make ~name:"ranking stopping rule = kaware optimum" ~count:150
    (QCheck.pair instance_arbitrary (QCheck.int_bound 3))
    (fun (inst, k) ->
      let g = graph_of_instance inst in
      let initial = Some 0 in
      match
        ( Ranking.solve_constrained g ~k ~initial ~max_paths:100_000 (),
          Kaware.solve g ~k ~initial )
      with
      | `Found (rank_cost, _, _), Some (kaware_cost, _) ->
          Float.abs (rank_cost -. kaware_cost) < 1e-6
      | `Gave_up _, None -> true
      | `Gave_up _, Some _ -> false (* budget is generous enough on these sizes *)
      | `Found _, None -> false)

let () =
  Alcotest.run "graph"
    [
      ( "unit",
        [
          Alcotest.test_case "shortest path tiny" `Quick test_shortest_path_tiny;
          Alcotest.test_case "path_cost" `Quick test_path_cost_agrees;
          Alcotest.test_case "path_changes" `Quick test_path_changes;
          Alcotest.test_case "make validation" `Quick test_make_invalid;
          Alcotest.test_case "of_matrices validation" `Quick test_of_matrices_invalid;
          Alcotest.test_case "kaware k=0" `Quick test_kaware_k0_stays;
          Alcotest.test_case "kaware negative k" `Quick test_kaware_negative_k;
          Alcotest.test_case "kaware large k" `Quick test_kaware_large_k_equals_unconstrained;
          Alcotest.test_case "ranking first is shortest" `Quick test_ranking_first_is_shortest;
          Alcotest.test_case "ranking enumerates all" `Quick test_ranking_enumerates_all;
          Alcotest.test_case "ranking constrained" `Quick test_ranking_solve_constrained;
          Alcotest.test_case "ranking gives up" `Quick test_ranking_gives_up;
          Alcotest.test_case "ranking queue budget" `Quick test_ranking_queue_budget;
          Alcotest.test_case "ranking space exhausted" `Quick test_ranking_space_exhausted;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest shortest_path_matches_bruteforce;
          QCheck_alcotest.to_alcotest dense_matches_closures;
          QCheck_alcotest.to_alcotest cost_to_go_consistent;
          QCheck_alcotest.to_alcotest kaware_matches_bruteforce;
          QCheck_alcotest.to_alcotest kaware_bruteforce_all_k;
          QCheck_alcotest.to_alcotest kaware_parallel_matches_sequential;
          QCheck_alcotest.to_alcotest kaware_pruned_matches_unpruned;
          QCheck_alcotest.to_alcotest ranking_budgeted_matches_plain;
          QCheck_alcotest.to_alcotest kaware_monotone_in_k;
          QCheck_alcotest.to_alcotest ranking_nondecreasing;
          QCheck_alcotest.to_alcotest ranking_complete;
          QCheck_alcotest.to_alcotest ranking_agrees_with_kaware;
        ] );
    ]
