(* Unit and property tests for Cddpd_util: Rng, Stats, Pqueue, Text_table,
   Timer, Parallel. *)

module Rng = Cddpd_util.Rng
module Stats = Cddpd_util.Stats
module Pqueue = Cddpd_util.Pqueue
module Text_table = Cddpd_util.Text_table
module Timer = Cddpd_util.Timer
module Parallel = Cddpd_util.Parallel

let check_float = Alcotest.(check (float 1e-9))

(* -- Rng ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge"
    false
    (List.init 4 (fun _ -> Rng.next_int64 a) = List.init 4 (fun _ -> Rng.next_int64 b))

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" false (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_uniformity () =
  let rng = Rng.create 11 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d has %d hits, expected ~%d" i c expected)
    counts

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of bounds: %f" v
  done

let test_rng_pick_weighted () =
  let rng = Rng.create 13 in
  let choices = [| ("x", 3.0); ("y", 1.0) |] in
  let x = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    if Rng.pick_weighted rng choices = "x" then incr x
  done;
  let frac = float_of_int !x /. float_of_int n in
  if frac < 0.72 || frac > 0.78 then
    Alcotest.failf "weighted pick fraction %.3f not near 0.75" frac

let test_rng_pick_weighted_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero total"
    (Invalid_argument "Rng.pick_weighted: weights sum to zero") (fun () ->
      ignore (Rng.pick_weighted rng [| ("x", 0.0) |]))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

(* The experiment runner pre-splits one stream per cell from a master
   generator in declaration order; determinism of the parallel fan-out
   requires the i-th split stream to depend only on (seed, i). *)
let rng_split_streams_prop =
  QCheck.Test.make ~name:"split streams depend only on (seed, index)" ~count:200
    QCheck.(pair small_nat (int_bound 5))
    (fun (seed, extra) ->
      let streams k =
        let master = Rng.create seed in
        Array.init k (fun _ -> Rng.split master)
      in
      let draws rng = List.init 8 (fun _ -> Rng.next_int64 rng) in
      let short = Array.map draws (streams 4) in
      let long = Array.map draws (streams (5 + extra)) in
      (* Splitting more streams later must leave earlier streams untouched. *)
      let stable = Array.for_all2 ( = ) short (Array.sub long 0 4) in
      (* Streams must not collide with each other. *)
      let all = Array.to_list long in
      let distinct = List.length (List.sort_uniq compare all) = List.length all in
      stable && distinct)

(* -- Stats ----------------------------------------------------------------- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_variance () =
  check_float "variance" 1.25 (Stats.variance [| 1.; 2.; 3.; 4. |])

let test_stats_minmax () =
  check_float "min" 1.0 (Stats.minimum [| 3.; 1.; 2. |]);
  check_float "max" 3.0 (Stats.maximum [| 3.; 1.; 2. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "median" 30.0 (Stats.percentile xs 50.0);
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0);
  check_float "p25" 20.0 (Stats.percentile xs 25.0)

let test_stats_percentile_single () =
  check_float "singleton" 7.0 (Stats.percentile [| 7.0 |] 83.0)

let test_stats_empty () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_histogram_counts () =
  let counts = Stats.histogram_counts [| 0.1; 0.2; 0.9; 1.5; -3.0 |] ~buckets:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "bucket counts" [| 3; 2 |] counts

(* -- Pqueue ---------------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.of_list [ (3.0, "c"); (1.0, "a"); (2.0, "b") ] in
  let rec drain q acc =
    match Pqueue.pop_min q with
    | None -> List.rev acc
    | Some (_, v, q) -> drain q (v :: acc)
  in
  Alcotest.(check (list string)) "ascending order" [ "a"; "b"; "c" ] (drain q [])

let test_pqueue_empty () =
  Alcotest.(check bool) "empty" true (Pqueue.is_empty Pqueue.empty);
  Alcotest.(check bool) "pop empty" true (Pqueue.pop_min Pqueue.empty = None)

let pqueue_sorted_prop =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun prios ->
      let q = Pqueue.of_list (List.map (fun p -> (p, p)) prios) in
      let rec drain q acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (p, _, q) -> drain q (p :: acc)
      in
      let popped = drain q [] in
      popped = List.sort compare prios)

let test_pqueue_size () =
  let q = Pqueue.of_list [ (1.0, ()); (2.0, ()); (3.0, ()) ] in
  Alcotest.(check int) "size" 3 (Pqueue.size q)

(* -- Text_table ------------------------------------------------------------ *)

let test_text_table_render () =
  let t = Text_table.create [ ("name", Text_table.Left); ("n", Text_table.Right) ] in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_row t [ "b"; "22" ];
  let rendered = Text_table.render t in
  Alcotest.(check string) "aligned"
    "name  |  n\n------+---\nalpha |  1\nb     | 22" rendered

let test_text_table_bad_row () =
  let t = Text_table.create [ ("a", Text_table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Text_table.add_row: wrong number of cells") (fun () ->
      Text_table.add_row t [ "x"; "y" ])

(* -- Timer ------------------------------------------------------------------ *)

let test_timer_returns_result () =
  let result, elapsed = Timer.time (fun () -> 1 + 1) in
  Alcotest.(check int) "result" 2 result;
  Alcotest.(check bool) "elapsed nonnegative" true (elapsed >= 0.0)

let test_timer_median () =
  let result, elapsed = Timer.time_median ~repeats:3 (fun () -> "ok") in
  Alcotest.(check string) "result" "ok" result;
  Alcotest.(check bool) "elapsed nonnegative" true (elapsed >= 0.0)

(* -- Parallel -------------------------------------------------------------- *)

let test_parallel_for_covers_range () =
  List.iter
    (fun jobs ->
      let n = 1000 in
      let marks = Array.make n 0 in
      Parallel.for_ ~jobs ~n (fun i -> marks.(i) <- marks.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each index once (jobs=%d)" jobs)
        true
        (Array.for_all (fun c -> c = 1) marks))
    [ 1; 2; 4; 7; 16 ]

let test_parallel_map_chunks_partition () =
  let chunks = Parallel.map_chunks ~jobs:4 ~n:10 (fun ~lo ~hi -> (lo, hi)) in
  let rec contiguous pos chunks =
    match chunks with
    | [] -> pos = 10
    | (lo, hi) :: rest -> lo = pos && hi >= lo && contiguous hi rest
  in
  Alcotest.(check bool) "chunks tile [0, n)" true (contiguous 0 chunks);
  Alcotest.(check (list (pair int int))) "empty range" []
    (Parallel.map_chunks ~jobs:4 ~n:0 (fun ~lo ~hi -> (lo, hi)))

let test_parallel_resolve_jobs () =
  Alcotest.(check int) "never more domains than indices" 3
    (Parallel.resolve_jobs ~jobs:8 ~n:3 ());
  Alcotest.(check int) "min_per_domain caps fan-out" 2
    (Parallel.resolve_jobs ~jobs:8 ~min_per_domain:5 ~n:10 ());
  Alcotest.(check int) "small input degrades to sequential" 1
    (Parallel.resolve_jobs ~jobs:8 ~min_per_domain:8 ~n:7 ());
  Alcotest.(check int) "empty input" 1 (Parallel.resolve_jobs ~jobs:8 ~n:0 ())

let test_parallel_exception_propagates () =
  Alcotest.check_raises "body exception re-raised" (Failure "boom") (fun () ->
      Parallel.for_ ~jobs:4 ~n:100 (fun i -> if i = 73 then failwith "boom"))

let parallel_sum_matches_sequential_prop =
  QCheck.Test.make ~name:"parallel chunk sums == sequential sum" ~count:50
    QCheck.(pair (int_range 1 500) (int_range 1 8))
    (fun (n, jobs) ->
      let values = Array.init n (fun i -> (i * 37 mod 101) - 50) in
      let chunk_sums =
        Parallel.map_chunks ~jobs ~n (fun ~lo ~hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + values.(i)
            done;
            !acc)
      in
      List.fold_left ( + ) 0 chunk_sums = Array.fold_left ( + ) 0 values)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "weighted pick" `Slow test_rng_pick_weighted;
          Alcotest.test_case "weighted pick invalid" `Quick test_rng_pick_weighted_invalid;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest rng_split_streams_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile singleton" `Quick test_stats_percentile_single;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
          Alcotest.test_case "histogram counts" `Quick test_stats_histogram_counts;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ascending order" `Quick test_pqueue_order;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "size" `Quick test_pqueue_size;
          QCheck_alcotest.to_alcotest pqueue_sorted_prop;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_text_table_render;
          Alcotest.test_case "bad row" `Quick test_text_table_bad_row;
        ] );
      ( "timer",
        [
          Alcotest.test_case "returns result" `Quick test_timer_returns_result;
          Alcotest.test_case "median" `Quick test_timer_median;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "for_ covers range" `Quick
            test_parallel_for_covers_range;
          Alcotest.test_case "map_chunks partitions" `Quick
            test_parallel_map_chunks_partition;
          Alcotest.test_case "resolve_jobs clamps" `Quick
            test_parallel_resolve_jobs;
          Alcotest.test_case "exception propagates" `Quick
            test_parallel_exception_propagates;
          QCheck_alcotest.to_alcotest parallel_sum_matches_sequential_prop;
        ] );
    ]
