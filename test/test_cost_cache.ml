(* Cost-cache and parallel-build tests: memoization must be invisible
   (bit-identical costs, matrices and solver outputs, whatever the cache
   setting or domain count) and the collision-safe keys must actually
   distinguish distinct inputs. *)

module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure
module Design = Cddpd_catalog.Design
module Ast = Cddpd_sql.Ast
module Cost_model = Cddpd_engine.Cost_model
module Cost_cache = Cddpd_engine.Cost_cache
module Cost_key = Cddpd_engine.Cost_key
module Database = Cddpd_engine.Database
module Config_space = Cddpd_core.Config_space
module Problem = Cddpd_core.Problem
module Optimizer = Cddpd_core.Optimizer
module Solution = Cddpd_core.Solution
module Rng = Cddpd_util.Rng

let params = Cost_model.default_params

let schema =
  Schema.table "t"
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let make_db ?(rows = 2_000) ?(value_range = 400) () =
  let db = Database.create ~pool_capacity:1024 [ schema ] in
  let rng = Rng.create 11 in
  let data =
    Array.init rows (fun _ -> Array.init 4 (fun _ -> Tuple.Int (Rng.int rng value_range)))
  in
  Database.load db ~table:"t" data;
  db

let db = make_db ()

let stats = Database.table_stats db "t"

let stats_of table = Database.table_stats db table

let index columns = Index_def.make ~table:"t" ~columns

let structure_pool =
  [
    Structure.index (index [ "a" ]);
    Structure.index (index [ "b" ]);
    Structure.index (index [ "c" ]);
    Structure.index (index [ "d" ]);
    Structure.index (index [ "a"; "b" ]);
    Structure.index (index [ "c"; "d" ]);
    Structure.view (View_def.make ~table:"t" ~group_by:"a");
    Structure.view (View_def.make ~table:"t" ~group_by:"c");
  ]

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* -- generators ------------------------------------------------------------- *)

let columns = [ "a"; "b"; "c"; "d" ]

let gen_predicate =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun column op value ->
            Ast.Cmp { column; op; value = Tuple.Int value })
          (oneofl columns)
          (oneofl [ Ast.Eq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
          (int_bound 399);
        map3
          (fun column low high ->
            Ast.Between
              { column; low = Tuple.Int (min low high); high = Tuple.Int (max low high) })
          (oneofl columns) (int_bound 399) (int_bound 399);
      ])

let gen_statement =
  QCheck.Gen.(
    let where = list_size (int_bound 3) gen_predicate in
    let projection =
      oneof
        [
          return Ast.Star;
          map (fun cs -> Ast.Columns cs) (map2 (fun c cs -> c :: cs) (oneofl columns) (list_size (int_bound 2) (oneofl columns)));
        ]
    in
    oneof
      [
        map2
          (fun projection where -> Ast.Select { projection; table = "t"; where })
          projection where;
        map3
          (fun group_by aggregate where ->
            Ast.Select_agg { table = "t"; group_by; aggregate; where })
          (oneofl columns)
          (oneof [ return Ast.Count_star; map (fun c -> Ast.Sum c) (oneofl columns) ])
          where;
        map
          (fun vs -> Ast.Insert { table = "t"; values = List.map (fun v -> Tuple.Int v) vs })
          (flatten_l (List.init 4 (fun _ -> int_bound 399)));
        map (fun where -> Ast.Delete { table = "t"; where }) where;
        map3
          (fun column value where ->
            Ast.Update { table = "t"; assignments = [ (column, Tuple.Int value) ]; where })
          (oneofl columns) (int_bound 399) where;
      ])

let gen_design =
  QCheck.Gen.(
    map
      (fun picks ->
        List.fold_left2
          (fun design pick structure ->
            if pick then Design.add_structure structure design else design)
          Design.empty picks structure_pool)
      (flatten_l (List.map (fun _ -> bool) structure_pool)))

let arb_statement_design =
  QCheck.make
    ~print:(fun (s, d) -> Cddpd_sql.Printer.to_string s ^ " under " ^ Design.name d)
    QCheck.Gen.(pair gen_statement gen_design)

(* -- properties -------------------------------------------------------------- *)

(* One shared cache across all iterations: later iterations hit entries
   cached by earlier ones, so the property also covers the hit path. *)
let shared_cache = Cost_cache.create ()

let cached_equals_uncached_prop =
  QCheck.Test.make ~name:"cached EXEC == uncached EXEC (bit-identical)" ~count:500
    arb_statement_design (fun (statement, design) ->
      let direct = Cost_model.statement_cost params stats design statement in
      let cached = Cost_cache.statement_cost shared_cache params stats ~design statement in
      let cached_again =
        Cost_cache.statement_cost shared_cache params stats ~design statement
      in
      same_float direct cached && same_float direct cached_again)

let cached_trans_equals_uncached_prop =
  QCheck.Test.make ~name:"cached TRANS == uncached TRANS (bit-identical)" ~count:200
    (QCheck.make
       ~print:(fun (a, b) -> Design.name a ^ " -> " ^ Design.name b)
       QCheck.Gen.(pair gen_design gen_design))
    (fun (from_design, to_design) ->
      let direct =
        Cost_model.transition_cost params ~stats_of ~from_design ~to_design
      in
      let cached =
        Cost_cache.transition_cost shared_cache params ~stats_of ~from_design ~to_design
      in
      same_float direct cached)

(* The statement key is a cost identity, not a syntactic one: distinct
   statements may share a key (that is where the hit rate comes from), but
   equal keys must imply bit-equal costs under every design. *)
let key_sound_prop =
  QCheck.Test.make ~name:"equal cost keys => bit-equal costs" ~count:1000
    (QCheck.pair arb_statement_design arb_statement_design)
    (fun ((s1, d1), (s2, d2)) ->
      let key s d =
        Cost_key.statement_under_design ~design_key:(Cost_key.design d) stats s
      in
      (not (String.equal (key s1 d1) (key s2 d2)))
      || same_float
           (Cost_model.statement_cost params stats d1 s1)
           (Cost_model.statement_cost params stats d2 s2))

let design_key_injective_prop =
  QCheck.Test.make ~name:"distinct designs => distinct design keys" ~count:300
    (QCheck.pair arb_statement_design arb_statement_design)
    (fun ((_, d1), (_, d2)) ->
      QCheck.assume (not (Design.equal d1 d2));
      not (String.equal (Cost_key.design d1) (Cost_key.design d2)))

(* -- Problem.build determinism ------------------------------------------------ *)

let steps_for_build =
  (* A fixed workload with plenty of repeated statements, like real
     segmented traces. *)
  let rand = Random.State.make [| 42 |] in
  let pool = Array.init 30 (fun _ -> QCheck.Gen.generate1 ~rand gen_statement) in
  Array.init 6 (fun _ ->
      Array.init 40 (fun _ -> pool.(Random.State.int rand (Array.length pool))))

let space = Config_space.single_structure structure_pool

let build ~jobs ~cost_cache =
  Problem.build ~params ~stats_of ~steps:steps_for_build ~space ~initial:Design.empty
    ~jobs ~cost_cache ()

let check_matrices_equal label (a : Problem.t) (b : Problem.t) =
  let matrix_equal m n =
    Array.length m = Array.length n
    && Array.for_all2 (fun r1 r2 -> Array.for_all2 same_float r1 r2) m n
  in
  Alcotest.(check bool) (label ^ ": exec identical") true (matrix_equal a.Problem.exec b.Problem.exec);
  Alcotest.(check bool) (label ^ ": trans identical") true (matrix_equal a.Problem.trans b.Problem.trans)

let test_build_deterministic_across_jobs () =
  let reference = build ~jobs:1 ~cost_cache:false in
  check_matrices_equal "jobs=1 cache" reference (build ~jobs:1 ~cost_cache:true);
  check_matrices_equal "jobs=4 cache" reference (build ~jobs:4 ~cost_cache:true);
  check_matrices_equal "jobs=4 nocache" reference (build ~jobs:4 ~cost_cache:false);
  check_matrices_equal "jobs=13 cache" reference (build ~jobs:13 ~cost_cache:true)

let test_solvers_bit_identical_cached_vs_uncached () =
  let cached = build ~jobs:4 ~cost_cache:true in
  let uncached = build ~jobs:1 ~cost_cache:false in
  let methods =
    [
      (Solution.Unconstrained, None);
      (Solution.Kaware, Some 2);
      (Solution.Greedy_seq, Some 2);
      (Solution.Merging, Some 2);
      (Solution.Ranking, Some 2);
      (Solution.Hybrid, Some 2);
    ]
  in
  List.iter
    (fun (method_name, k) ->
      let solve problem =
        match Optimizer.solve problem ~method_name ?k () with
        | Ok s -> s
        | Error _ ->
            Alcotest.failf "solver %s failed" (Solution.method_to_string method_name)
      in
      let a = solve cached and b = solve uncached in
      let name = Solution.method_to_string method_name in
      Alcotest.(check (array int)) (name ^ ": same path") b.Solution.path a.Solution.path;
      Alcotest.(check bool) (name ^ ": same cost bits") true
        (same_float a.Solution.cost b.Solution.cost);
      Alcotest.(check int) (name ^ ": same changes") b.Solution.changes a.Solution.changes)
    methods

(* -- cache mechanics ----------------------------------------------------------- *)

let test_cache_hits_and_misses () =
  let cache = Cost_cache.create () in
  let statement = Ast.Select { projection = Ast.Star; table = "t"; where = [] } in
  let design = Design.empty in
  let v1 = Cost_cache.statement_cost cache params stats ~design statement in
  let v2 = Cost_cache.statement_cost cache params stats ~design statement in
  Alcotest.(check bool) "same value" true (same_float v1 v2);
  let s = Cost_cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cost_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cost_cache.hits

let test_cache_eviction_keeps_answers () =
  let cache = Cost_cache.create ~capacity:4 () in
  let rand = Random.State.make [| 7 |] in
  let statements = Array.init 40 (fun _ -> QCheck.Gen.generate1 ~rand gen_statement) in
  let design = Design.singleton (index [ "a" ]) in
  Array.iter
    (fun statement ->
      let direct = Cost_model.statement_cost params stats design statement in
      let cached = Cost_cache.statement_cost cache params stats ~design statement in
      Alcotest.(check bool) "answer survives eviction pressure" true
        (same_float direct cached))
    statements;
  let s = Cost_cache.stats cache in
  Alcotest.(check bool) "evictions happened" true (s.Cost_cache.evictions > 0)

let test_merge_accumulates () =
  let into = Cost_cache.create () in
  let local = Cost_cache.create_local into in
  let statement = Ast.Select { projection = Ast.Star; table = "t"; where = [] } in
  ignore (Cost_cache.statement_cost local params stats ~design:Design.empty statement);
  Cost_cache.merge ~into local;
  let s = Cost_cache.stats into in
  Alcotest.(check int) "miss carried over" 1 s.Cost_cache.misses;
  (* The merged entry must now hit in the destination. *)
  ignore (Cost_cache.statement_cost into params stats ~design:Design.empty statement);
  let s = Cost_cache.stats into in
  Alcotest.(check int) "hit on merged entry" 1 s.Cost_cache.hits

let test_disabled_cache_passthrough () =
  let statement = Ast.Select { projection = Ast.Star; table = "t"; where = [] } in
  let direct = Cost_model.statement_cost params stats Design.empty statement in
  let through =
    Cost_cache.statement_cost Cost_cache.disabled params stats ~design:Design.empty
      statement
  in
  Alcotest.(check bool) "same value" true (same_float direct through);
  let s = Cost_cache.stats Cost_cache.disabled in
  Alcotest.(check int) "no stats" 0 (s.Cost_cache.hits + s.Cost_cache.misses)

let () =
  Alcotest.run "cost_cache"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest cached_equals_uncached_prop;
          QCheck_alcotest.to_alcotest cached_trans_equals_uncached_prop;
          QCheck_alcotest.to_alcotest key_sound_prop;
          QCheck_alcotest.to_alcotest design_key_injective_prop;
        ] );
      ( "problem_build",
        [
          Alcotest.test_case "matrices identical across jobs/cache" `Quick
            test_build_deterministic_across_jobs;
          Alcotest.test_case "six solvers bit-identical cached vs uncached" `Quick
            test_solvers_bit_identical_cached_vs_uncached;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "eviction keeps answers" `Quick
            test_cache_eviction_keeps_answers;
          Alcotest.test_case "merge accumulates" `Quick test_merge_accumulates;
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_cache_passthrough;
        ] );
    ]
