(* Comparing every solver in the library on one instance.

   Methods:
   - unconstrained     sequence-graph shortest path (Agrawal et al. 2006)
   - k-aware           optimal constrained (Section 3 of the paper)
   - greedy-seq        candidate reduction + k-aware (Section 4.1)
   - merging           sequential design merging (Section 4.2)
   - ranking           shortest-path ranking (Section 5)
   - hybrid            k-aware for small k, merging for large k (Section 6.4)
   - online tuner      a reactive baseline in the style of the on-line
                       tuning work the paper contrasts itself with

   Run with: dune exec examples/advisor_compare.exe *)

module Spec = Cddpd_workload.Spec
module Problem = Cddpd_core.Problem
module Optimizer = Cddpd_core.Optimizer
module Solution = Cddpd_core.Solution
module Online_tuner = Cddpd_core.Online_tuner
module Setup = Cddpd_experiments.Setup
module Text_table = Cddpd_util.Text_table

let () =
  let config = { Setup.default_config with Setup.rows = 20_000; value_range = 4_000 } in
  let db = Setup.make_database config in
  let spec = Spec.of_letters ~queries_per_segment:150 "AABBAACCDDCCAABB" in
  let steps = Spec.generate spec ~table:Setup.table_name ~value_range:4_000 ~seed:33 in
  let problem = Setup.build_problem db ~steps in
  let k = 3 in
  Printf.printf "instance: %d segments x 150 queries, %d configurations, k=%d\n\n"
    (Problem.n_steps problem) (Problem.n_configs problem) k;

  let table =
    Text_table.create
      [
        ("method", Text_table.Left);
        ("cost", Text_table.Right);
        ("vs optimal", Text_table.Right);
        ("changes", Text_table.Right);
        ("time (us)", Text_table.Right);
      ]
  in
  let optimal_cost = ref nan in
  let add_row label cost changes elapsed =
    let gap =
      if Float.is_nan !optimal_cost then "-"
      else Printf.sprintf "%+.2f%%" ((cost -. !optimal_cost) /. !optimal_cost *. 100.)
    in
    Text_table.add_row table
      [
        label;
        Printf.sprintf "%.0f" cost;
        gap;
        string_of_int changes;
        Printf.sprintf "%.0f" (elapsed *. 1e6);
      ]
  in
  (* The k-aware optimum first, as the reference point. *)
  (match Optimizer.solve problem ~method_name:Solution.Kaware ~k () with
  | Ok s ->
      optimal_cost := s.Solution.cost;
      add_row "k-aware (optimal)" s.Solution.cost s.Solution.changes s.Solution.elapsed
  | Error _ -> failwith "k-aware failed");
  List.iter
    (fun method_name ->
      match Optimizer.solve problem ~method_name ~k ~max_paths:200_000 () with
      | Ok s ->
          add_row
            (Solution.method_to_string method_name)
            s.Solution.cost s.Solution.changes s.Solution.elapsed
      | Error Optimizer.Infeasible ->
          Text_table.add_row table
            [ Solution.method_to_string method_name; "infeasible"; "-"; "-"; "-" ]
      | Error (Optimizer.Ranking_gave_up g) ->
          Text_table.add_row table
            [
              Solution.method_to_string method_name;
              Printf.sprintf "gave up after %d paths (%s)"
                g.Cddpd_graph.Ranking.examined
                (Cddpd_graph.Ranking.reason_to_string g.Cddpd_graph.Ranking.reason);
              "-"; "-"; "-";
            ])
    [ Solution.Greedy_seq; Solution.Merging; Solution.Hybrid; Solution.Ranking ];
  (* The unconstrained optimum (a lower bound that ignores k). *)
  let unconstrained = Optimizer.unconstrained problem in
  add_row "unconstrained (no k)" unconstrained.Solution.cost
    unconstrained.Solution.changes unconstrained.Solution.elapsed;
  (* The reactive online baseline. *)
  let online_path = Online_tuner.run problem in
  add_row "online tuner (reactive)"
    (Problem.path_cost problem online_path)
    (Problem.path_changes problem online_path)
    0.0;
  Text_table.print table;
  print_newline ();
  print_endline
    "Notes: ranking enumerates paths in cost order until one fits the budget —";
  print_endline
    "optimal when it finishes, but it can exhaust its path budget (the paper's";
  print_endline
    "worst case).  The online tuner reacts after shifts, so it pays for every";
  print_endline "fluctuation and lags each phase change."
