(** The single process-wide instrumentation on/off flag.

    Every recording call ([Counter.incr], [Histogram.observe],
    [Span.with_span]) reads it first, so a disabled run costs one
    boolean load per call site.  It lives in its own module so the
    metric types and the registry can both see it without a dependency
    cycle.  Toggle it through {!Registry.enable} / {!Registry.disable}
    rather than directly; it is only written from the main domain. *)

val on : bool ref
