(** The single process-wide instrumentation on/off flag.

    Every recording call ([Counter.incr], [Histogram.observe],
    [Span.with_span]) checks {!active} first, so a disabled run costs one
    boolean load per call site.  It lives in its own module so the
    metric types and the registry can both see it without a dependency
    cycle.  Toggle it through {!Registry.enable} / {!Registry.disable}
    rather than directly; it is only written from the main domain. *)

val on : bool ref

val active : unit -> bool
(** [on] and running on the main domain.  Counters, histograms and spans
    are unsynchronized, so recording off the main domain is suppressed
    rather than racy: with parallel experiment cells or worker-domain
    solves, process-wide metrics reflect main-domain work only (per-pool
    and per-disk {e stats} are still complete — each cell owns its own). *)
