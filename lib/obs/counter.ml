type t = { name : string; mutable value : int }

let make name = { name; value = 0 }

let name t = t.name

let value t = t.value

let incr t = if Switch.active () then t.value <- t.value + 1

let add t n = if Switch.active () then t.value <- t.value + n

let reset t = t.value <- 0
