type distribution = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p95 : float;
  max_value : float;
}

type value = Count of int | Dist of distribution

type t = (string * value) list

let summarize h =
  {
    count = Histogram.count h;
    sum = Histogram.sum h;
    mean = Histogram.mean h;
    p50 = Histogram.percentile h 50.0;
    p95 = Histogram.percentile h 95.0;
    max_value = Histogram.max_value h;
  }

let capture () =
  let counters =
    Registry.fold_counters
      (fun c acc -> (Counter.name c, Count (Counter.value c)) :: acc)
      []
  in
  let all =
    Registry.fold_histograms
      (fun h acc -> (Histogram.name h, Dist (summarize h)) :: acc)
      counters
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let entries t = t

let find t name = List.assoc_opt name t

let counter_value t name =
  match find t name with Some (Count n) -> Some n | Some (Dist _) | None -> None

let is_empty t =
  List.for_all
    (fun (_, v) -> match v with Count 0 -> true | Dist d -> d.count = 0 | Count _ -> false)
    t

(* Histogram percentiles cannot be subtracted; a diffed distribution keeps
   the [after] percentiles and diffs count/sum/mean.  Metrics absent from
   [before] (registered later) diff against zero. *)
let diff ~before ~after =
  List.map
    (fun (name, v_after) ->
      match (v_after, List.assoc_opt name before) with
      | Count a, Some (Count b) -> (name, Count (a - b))
      | Dist a, Some (Dist b) ->
          let count = a.count - b.count in
          let sum = a.sum -. b.sum in
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          (name, Dist { a with count; sum; mean })
      | v, (Some (Count _ | Dist _) | None) -> (name, v))
    after
