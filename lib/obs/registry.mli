(** The global metric registry and the instrumentation on/off switch.

    Instrumented modules obtain their metrics once, at module
    initialisation time ([let hits = Registry.counter "buffer_pool.hits"]),
    so every registered metric name is visible in snapshots from process
    start — a zero value means "instrumented but not hit", an absent name
    means "not linked in".  Recording is gated on {!enabled}: with
    instrumentation off (the default), every call site costs a single
    boolean load.

    Counter and histogram names share one namespace; registering a name as
    both kinds raises [Invalid_argument].  Names are dotted paths,
    [<module>.<event>] — see docs/OBSERVABILITY.md for the catalogue. *)

val enabled : unit -> bool
(** Whether instrumentation is currently recording.  Off at startup. *)

val enable : unit -> unit

val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run [f] with instrumentation on, restoring the previous state after
    (also on exception). *)

val counter : string -> Counter.t
(** Get-or-create the counter registered under [name].  Registration works
    even while disabled.  Raises [Invalid_argument] if [name] is already a
    histogram. *)

val histogram : string -> Histogram.t
(** Get-or-create the histogram registered under [name].  Raises
    [Invalid_argument] if [name] is already a counter. *)

val fold_counters : (Counter.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over every registered counter, in unspecified order. *)

val fold_histograms : (Histogram.t -> 'a -> 'a) -> 'a -> 'a

val on_reset : (unit -> unit) -> unit
(** Register a hook run by {!reset_values} — used by instrumented modules
    that keep auxiliary state (e.g. the cost model's repeat-lookup table). *)

val reset_values : unit -> unit
(** Zero every registered metric and run the {!on_reset} hooks.  The
    registrations themselves persist. *)
