(* Metric tables are filled by module-initialisation registration on the
   main domain and are read-only once domains spawn (worker domains only
   bump already-registered metrics); see docs/OBSERVABILITY.md "Design". *)

(* cddpd-lint: allow domain-unsafe-state — module-init registration on the main domain only *)
let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64

(* cddpd-lint: allow domain-unsafe-state — module-init registration on the main domain only *)
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

(* cddpd-lint: allow domain-unsafe-state — hooks registered at module init on the main domain; reset runs on the main domain *)
let reset_hooks : (unit -> unit) list ref = ref []

let enabled () = !Switch.on

let enable () = Switch.on := true

let disable () = Switch.on := false

let with_enabled f =
  let was = !Switch.on in
  Switch.on := true;
  Fun.protect ~finally:(fun () -> Switch.on := was) f

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      if Hashtbl.mem histograms name then
        invalid_arg (Printf.sprintf "Registry.counter: %s is a histogram" name);
      let c = Counter.make name in
      Hashtbl.add counters name c;
      c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      if Hashtbl.mem counters name then
        invalid_arg (Printf.sprintf "Registry.histogram: %s is a counter" name);
      let h = Histogram.make name in
      Hashtbl.add histograms name h;
      h

let fold_counters f init =
  Hashtbl.fold (fun _ c acc -> f c acc) counters init

let fold_histograms f init =
  Hashtbl.fold (fun _ h acc -> f h acc) histograms init

let on_reset hook = reset_hooks := hook :: !reset_hooks

let reset_values () =
  Hashtbl.iter (fun _ c -> Counter.reset c) counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) histograms;
  List.iter (fun hook -> hook ()) !reset_hooks
