(** Point-in-time, diffable views of every registered metric.

    A snapshot is an immutable name-sorted listing of all counters and
    histogram summaries in the {!Registry} at capture time.  Two snapshots
    bracket a region of interest; {!diff} yields the metrics attributable
    to that region — the pattern the CLI and bench harness use:

    {[
      let before = Snapshot.capture () in
      run_workload ();
      let delta = Snapshot.diff ~before ~after:(Snapshot.capture ()) in
    ]} *)

type distribution = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p95 : float;
  max_value : float;
}

type value = Count of int | Dist of distribution

type t

val capture : unit -> t
(** Snapshot every registered metric (zero-valued ones included — the
    registry registers at module-init time, so names are stable). *)

val entries : t -> (string * value) list
(** All entries, sorted by metric name. *)

val find : t -> string -> value option

val counter_value : t -> string -> int option
(** The value of counter [name]; [None] if absent or a histogram. *)

val is_empty : t -> bool
(** True when every counter is zero and every histogram empty. *)

val diff : before:t -> after:t -> t
(** Per-metric difference [after - before].  Counter values and histogram
    counts/sums/means subtract; histogram percentiles cannot be diffed and
    are reported as of [after].  Metrics registered after [before] was
    taken diff against zero. *)
