(* The single global on/off flag for all instrumentation.  Counters, spans
   and histograms read it on every recording call, so a disabled run costs
   one boolean load per call site.  Lives in its own module so that both
   the metric types and the registry can see it without a cycle. *)

(* cddpd-lint: allow domain-unsafe-state — single monotone-per-run bool set on the main domain before solves; racy worker reads only skip instrumentation *)
let on = ref false

(* Counter cells, histogram sample arrays and the span stack are plain
   unsynchronized state, so recording is restricted to the main domain:
   worker domains (experiment cells, parallel problem builds) skip
   instrumentation instead of corrupting it.  The short-circuit keeps the
   disabled path at one boolean load. *)
let active () = !on && Domain.is_main_domain ()
