(** Float-valued distributions (timings, costs).

    Unlike {!Cddpd_engine.Histogram} (equi-width column statistics), this
    is an observability primitive: it records every observed sample so
    snapshots can report exact percentiles through
    [Cddpd_util.Stats.percentile].  {!observe} is a no-op while
    instrumentation is disabled.  On an empty histogram the summary
    accessors all return [0.].

    Histograms are normally obtained from {!Registry.histogram}. *)

type t

val make : string -> t
(** A fresh empty histogram.  Not registered with the {!Registry}. *)

val name : t -> string

val observe : t -> float -> unit
(** Record one sample — only when instrumentation is enabled. *)

val count : t -> int

val sum : t -> float

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [[0, 100]], exact over all samples. *)

val max_value : t -> float

val values : t -> float array
(** A copy of the recorded samples, in observation order. *)

val reset : t -> unit
(** Forget all samples (unconditionally). *)
