module Stats = Cddpd_util.Stats

(* Samples are kept verbatim in a growable array so that percentiles are
   exact (via Cddpd_util.Stats.percentile).  Runs in this project observe
   at most a few thousand values per histogram; a reservoir would only be
   needed at much larger scale. *)

type t = {
  name : string;
  mutable samples : float array;
  mutable count : int;
  mutable sum : float;
}

let make name = { name; samples = [||]; count = 0; sum = 0.0 }

let name t = t.name

let count t = t.count

let sum t = t.sum

let grow t =
  let capacity = Array.length t.samples in
  let bigger = Array.make (max 16 (capacity * 2)) 0.0 in
  Array.blit t.samples 0 bigger 0 capacity;
  t.samples <- bigger

let observe t x =
  if Switch.active () then begin
    if t.count >= Array.length t.samples then grow t;
    t.samples.(t.count) <- x;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x
  end

let values t = Array.sub t.samples 0 t.count

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let percentile t p = if t.count = 0 then 0.0 else Stats.percentile (values t) p

let max_value t = if t.count = 0 then 0.0 else Stats.maximum (values t)

let reset t =
  t.samples <- [||];
  t.count <- 0;
  t.sum <- 0.0
