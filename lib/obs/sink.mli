(** Snapshot output: the pluggable sink formats.

    Two formats are provided (docs/OBSERVABILITY.md specifies both):

    - [Table] — a human-readable text table ({!Cddpd_util.Text_table});
      counters fill the [value] column, histograms the count/mean/p50/p95/
      max columns.  What [cddpd --metrics] prints.
    - [Json_lines] — one JSON object per line, machine-readable; what the
      bench harness writes to [BENCH_obs.json].  Counter lines are
      [{"metric":name,"type":"counter","value":n}]; histogram lines carry
      [count]/[sum]/[mean]/[p50]/[p95]/[max].  Non-finite floats are
      emitted as [null]. *)

type format = Table | Json_lines

val render : format -> Snapshot.t -> string

val emit : ?channel:out_channel -> format -> Snapshot.t -> unit
(** Write [render format snapshot] to [channel] (default [stdout]). *)

val span_json_lines : unit -> string
(** The current span tree as JSON lines,
    [{"span":"a/b","calls":n,"total_s":s}], one line per node, with the
    full root-to-node path in [span]. *)

val write_file : string -> format -> Snapshot.t -> unit
(** Write the snapshot to [path].  In [Json_lines] format the span-tree
    lines are appended after the metric lines. *)
