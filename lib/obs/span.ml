(* Hierarchical wall-clock spans.  Spans with the same name under the same
   parent are aggregated (calls, total time) rather than recorded per
   invocation, so the tree stays small no matter how hot the instrumented
   path is.  The current nesting is a stack; with_span pushes, runs,
   accumulates, and pops — exception-safely. *)

type t = {
  name : string;
  mutable calls : int;
  mutable total : float; (* seconds, summed over calls *)
  mutable children : t list; (* reverse creation order *)
}

let make_node name = { name; calls = 0; total = 0.0; children = [] }

(* The sanctioned clock for instrumentation outside lib/obs: determinism
   linting confines raw Unix.gettimeofday to this library. *)
let now_s () = Unix.gettimeofday ()

let root = make_node "<root>"

(* cddpd-lint: allow domain-unsafe-state — span trees are main-domain only by convention (docs/OBSERVABILITY.md); workers never open spans *)
let stack = ref [ root ]

let name t = t.name

let calls t = t.calls

let total_s t = t.total

let children t = List.rev t.children

let roots () = children root

let reset () =
  root.children <- [];
  root.calls <- 0;
  root.total <- 0.0;
  stack := [ root ]

let find_child parent name =
  match List.find_opt (fun c -> String.equal c.name name) parent.children with
  | Some c -> c
  | None ->
      let c = make_node name in
      parent.children <- c :: parent.children;
      c

let with_span name f =
  if not (Switch.active ()) then f ()
  else begin
    let parent = match !stack with node :: _ -> node | [] -> root in
    let node = find_child parent name in
    stack := node :: !stack;
    let started = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        node.calls <- node.calls + 1;
        node.total <- node.total +. (Unix.gettimeofday () -. started);
        (match !stack with
        | top :: rest when top == node -> stack := rest
        | _ -> () (* a reset ran inside the span; nothing to pop *)))
      f
  end

let render () =
  let buffer = Buffer.create 256 in
  let rec walk depth parent_total node =
    let share =
      if parent_total > 0.0 then
        Printf.sprintf " (%.1f%%)" (100.0 *. node.total /. parent_total)
      else ""
    in
    Buffer.add_string buffer
      (Printf.sprintf "%s%-*s calls=%-6d total=%9.3fms%s\n"
         (String.make (2 * depth) ' ')
         (max 1 (32 - (2 * depth)))
         node.name node.calls (1000.0 *. node.total) share);
    List.iter (walk (depth + 1) node.total) (children node)
  in
  match roots () with
  | [] -> "(no spans recorded)\n"
  | spans ->
      List.iter (walk 0 0.0) spans;
      Buffer.contents buffer
