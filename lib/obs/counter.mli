(** Monotonic event counters.

    A counter is a named mutable integer.  {!incr} and {!add} are no-ops
    while instrumentation is disabled ({!Registry.enabled}), so a counter
    embedded in a hot path costs one boolean load when observability is
    off.  Counters are "lock-free-style": plain unsynchronised mutable
    ints, safe under the single-domain runtime this project uses; they make
    no atomicity promise across OCaml 5 domains.

    Counters are normally obtained from {!Registry.counter}, which
    registers them for snapshots; [make] builds an unregistered one (used
    in tests). *)

type t

val make : string -> t
(** A fresh counter at zero.  Not registered with the {!Registry}. *)

val name : t -> string

val value : t -> int
(** Current count.  Always readable, enabled or not. *)

val incr : t -> unit
(** Add one — only when instrumentation is enabled. *)

val add : t -> int -> unit
(** Add [n] — only when instrumentation is enabled. *)

val reset : t -> unit
(** Zero the counter (unconditionally). *)
