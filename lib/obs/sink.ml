module Text_table = Cddpd_util.Text_table

type format = Table | Json_lines

(* -- text table -------------------------------------------------------------- *)

let table_string snapshot =
  let table =
    Text_table.create
      [
        ("metric", Text_table.Left);
        ("value", Text_table.Right);
        ("count", Text_table.Right);
        ("mean", Text_table.Right);
        ("p50", Text_table.Right);
        ("p95", Text_table.Right);
        ("max", Text_table.Right);
      ]
  in
  List.iter
    (fun (name, value) ->
      match value with
      | Snapshot.Count n ->
          Text_table.add_row table
            [ name; string_of_int n; ""; ""; ""; ""; "" ]
      | Snapshot.Dist d ->
          Text_table.add_row table
            [
              name;
              "";
              string_of_int d.Snapshot.count;
              Printf.sprintf "%.6g" d.Snapshot.mean;
              Printf.sprintf "%.6g" d.Snapshot.p50;
              Printf.sprintf "%.6g" d.Snapshot.p95;
              Printf.sprintf "%.6g" d.Snapshot.max_value;
            ])
    (Snapshot.entries snapshot);
  Text_table.render table ^ "\n"

(* -- JSON lines -------------------------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* JSON has no NaN/Infinity literals; clamp to null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let json_lines_string snapshot =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun (name, value) ->
      (match value with
      | Snapshot.Count n ->
          Buffer.add_string buffer
            (Printf.sprintf "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}"
               (json_escape name) n)
      | Snapshot.Dist d ->
          Buffer.add_string buffer
            (Printf.sprintf
               "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}"
               (json_escape name) d.Snapshot.count (json_float d.Snapshot.sum)
               (json_float d.Snapshot.mean) (json_float d.Snapshot.p50)
               (json_float d.Snapshot.p95) (json_float d.Snapshot.max_value)));
      Buffer.add_char buffer '\n')
    (Snapshot.entries snapshot);
  Buffer.contents buffer

let span_json_lines () =
  let buffer = Buffer.create 1024 in
  let rec walk path node =
    let path = path ^ Span.name node in
    Buffer.add_string buffer
      (Printf.sprintf
         "{\"span\":\"%s\",\"calls\":%d,\"total_s\":%s}\n"
         (json_escape path) (Span.calls node) (json_float (Span.total_s node)));
    List.iter (walk (path ^ "/")) (Span.children node)
  in
  List.iter (walk "") (Span.roots ());
  Buffer.contents buffer

(* -- dispatch ---------------------------------------------------------------- *)

let render format snapshot =
  match format with
  | Table -> table_string snapshot
  | Json_lines -> json_lines_string snapshot

let emit ?(channel = stdout) format snapshot =
  output_string channel (render format snapshot)

let write_file path format snapshot =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      output_string out (render format snapshot);
      if format = Json_lines then output_string out (span_json_lines ()))
