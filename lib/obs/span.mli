(** Lightweight hierarchical trace spans.

    [with_span "advisor.kaware" f] times [f] on the wall clock and records
    it under the span that is currently open, building a call tree.  Spans
    with the same name under the same parent aggregate (call count + total
    time) instead of appending, so instrumenting a function called ten
    thousand times adds one tree node, not ten thousand.

    When instrumentation is disabled ({!Registry.enabled} false),
    [with_span] is [f ()] plus one boolean test — no clock reads, no
    allocation.  Timing is exception-safe: a raise inside [f] still closes
    the span.

    Span names follow the metric convention ([<module>.<phase>], e.g.
    ["optimizer.solve"], ["advisor.kaware"]); see docs/OBSERVABILITY.md.
    The tree is global state, like the {!Registry}: single-domain use
    only. *)

type t
(** An aggregated node of the span tree. *)

val now_s : unit -> float
(** Wall-clock seconds (Unix epoch).  The sanctioned clock for
    instrumentation code outside lib/obs — the determinism lint confines
    raw [Unix.gettimeofday] to this library.  Only read it behind a
    {!Registry.enabled} gate so replays stay deterministic. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run [f] inside a span called [name], nested under the innermost open
    span (or at the root).  Returns [f ()]'s result. *)

val name : t -> string

val calls : t -> int
(** How many completed [with_span] invocations aggregated into this node. *)

val total_s : t -> float
(** Total wall-clock seconds across those invocations (children
    included — a parent's total covers its children's). *)

val children : t -> t list
(** Child spans, in first-opened order. *)

val roots : unit -> t list
(** Top-level spans recorded since the last {!reset}. *)

val reset : unit -> unit
(** Drop the recorded tree.  Calling it while spans are open abandons
    their timings. *)

val render : unit -> string
(** The span tree as an indented text block: per node, call count, total
    milliseconds, and share of the parent's time. *)
