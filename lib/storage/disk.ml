module Obs = Cddpd_obs

(* Global across all disks: the observability layer reports process-wide
   I/O totals; per-disk counts stay available through [stats]. *)
let m_page_reads = Obs.Registry.counter "disk.page_reads"
let m_page_writes = Obs.Registry.counter "disk.page_writes"
let m_pages_allocated = Obs.Registry.counter "disk.pages_allocated"

type t = {
  mutable pages : Page.t array;
  mutable used : int;
  mutable read_count : int;
  mutable write_count : int;
}

type stats = { reads : int; writes : int; allocated : int }

let create () = { pages = Array.make 64 (Page.create ()); used = 0; read_count = 0; write_count = 0 }

let grow t =
  let capacity = Array.length t.pages in
  let bigger = Array.make (capacity * 2) t.pages.(0) in
  Array.blit t.pages 0 bigger 0 capacity;
  t.pages <- bigger

let allocate t =
  if t.used >= Array.length t.pages then grow t;
  let pid = t.used in
  t.pages.(pid) <- Page.create ();
  t.used <- t.used + 1;
  Obs.Counter.incr m_pages_allocated;
  pid

let n_pages t = t.used

let check t pid name =
  if pid < 0 || pid >= t.used then
    invalid_arg (Printf.sprintf "Disk.%s: page %d not allocated" name pid)

let read_into t pid dst =
  check t pid "read_into";
  t.read_count <- t.read_count + 1;
  Obs.Counter.incr m_page_reads;
  Page.blit ~src:t.pages.(pid) ~dst

let read_batch t pairs =
  List.iter (fun (pid, dst) -> read_into t pid dst) pairs

let write_from t pid src =
  check t pid "write_from";
  t.write_count <- t.write_count + 1;
  Obs.Counter.incr m_page_writes;
  Page.blit ~src ~dst:t.pages.(pid)

let stats t = { reads = t.read_count; writes = t.write_count; allocated = t.used }

let reset_stats t =
  t.read_count <- 0;
  t.write_count <- 0
