(** Heap files: unordered tuple storage in slotted pages.

    Tuples are appended to the last page with room; a full insert allocates
    a new page.  Deletion clears the slot but does not reclaim space (the
    workloads in this library are read-mostly; compaction is out of
    scope). *)

type t

type rid = { page : int; slot : int }
(** Record identifier: page id plus slot number within the page. *)

val pp_rid : Format.formatter -> rid -> unit
(** Render as [page:slot]. *)

val compare_rid : rid -> rid -> int
(** Lexicographic (page, slot) order. *)

val create : Buffer_pool.t -> t
(** A fresh empty heap file. *)

val insert : t -> Tuple.t -> rid
(** Append a tuple.  Raises [Invalid_argument] if the encoded tuple cannot
    fit in an empty page. *)

val fetch : t -> rid -> Tuple.t option
(** [fetch t rid] returns the tuple, or [None] if the slot was deleted.
    Raises [Invalid_argument] on an out-of-range rid. *)

val delete : t -> rid -> bool
(** Clear the slot; returns whether a live tuple was there. *)

val iter : t -> (rid -> Tuple.t -> unit) -> unit
(** Full scan in storage order, skipping deleted slots.  All full scans
    ({!iter}, {!iter_raw}, {!iter_slices}, {!fold}) go through
    {!Buffer_pool.fetch_sequential}: scan-resistant eviction plus
    readahead, with unchanged logical-I/O accounting. *)

val iter_raw : t -> (rid -> bytes -> unit) -> unit
(** Full scan passing the encoded record instead of decoding it — fields
    can then be extracted lazily with {!Tuple.get_field}. *)

val iter_slices : t -> (bytes -> int -> unit) -> unit
(** Zero-copy full scan: the callback receives the page buffer and the
    byte offset of the encoded record (extract fields with
    {!Tuple.get_field_at}), valid only for the duration of the call — the
    executor's scan hot path (no per-row allocation at all: even the rid
    is omitted). *)

val fold : t -> init:'a -> f:('a -> rid -> Tuple.t -> 'a) -> 'a
(** Folding full scan. *)

val n_tuples : t -> int
(** Live tuple count. *)

val n_pages : t -> int
(** Number of pages the file occupies. *)
