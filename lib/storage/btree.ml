(* Node layout (see mli for the high-level contract):
     0  u8   kind: 0 = leaf, 1 = internal
     1  u16  n: number of keys
     3  i32  leaf: next-leaf page id (-1 at the end); internal: unused (-1)
     7  payload
   Leaf payload: n keys, each key_len * 8 bytes.
   Internal payload: child0 (i32) followed by n entries of key + child (i32).
   Invariant: for an internal node with keys k_1..k_n and children c_0..c_n,
   subtree c_i holds exactly the keys in [k_i, k_{i+1}) with k_0 = -inf and
   k_{n+1} = +inf. *)

type t = {
  pool : Buffer_pool.t;
  key_len : int;
  mutable root : int;
  mutable height : int;
  mutable entries : int;
  mutable pages : int;
}

let header = 7
let kind_leaf = 0
let kind_internal = 1

let key_bytes t = t.key_len * 8

let leaf_capacity t = (Page.size - header) / key_bytes t

let internal_capacity t =
  (* children: 4 bytes each; one more child than keys. *)
  (Page.size - header - 4) / (key_bytes t + 4)

let node_kind page = Page.get_u8 page 0
let node_n page = Page.get_u16 page 1
let set_node_n page n = Page.set_u16 page 1 n
let next_leaf page = Page.get_i32 page 3
let set_next_leaf page v = Page.set_i32 page 3 v

let init_node page ~kind =
  Page.set_u8 page 0 kind;
  set_node_n page 0;
  set_next_leaf page (-1)

(* -- key accessors ------------------------------------------------------ *)

let leaf_key_pos t i = header + (i * key_bytes t)

let read_key t page pos =
  Array.init t.key_len (fun j -> Page.get_i64 page (pos + (j * 8)))

let write_key t page pos key =
  for j = 0 to t.key_len - 1 do
    Page.set_i64 page (pos + (j * 8)) key.(j)
  done

let leaf_key t page i = read_key t page (leaf_key_pos t i)

(* Internal node: child i at child_pos i, key i (1-based separators stored
   0-based) at int_key_pos i. *)
let child_pos t i = header + if i = 0 then 0 else 4 + ((i - 1) * (key_bytes t + 4)) + key_bytes t
let int_key_pos t i = header + 4 + (i * (key_bytes t + 4))

let child t page i = Page.get_i32 page (child_pos t i)
let set_child t page i v = Page.set_i32 page (child_pos t i) v
let int_key t page i = read_key t page (int_key_pos t i)
let set_int_key t page i key = write_key t page (int_key_pos t i) key

let compare_key t a b =
  let rec go i =
    if i = t.key_len then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* First index in [0, n) whose key is >= [key]; n if none. *)
let lower_bound t ~get page key =
  let n = node_n page in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_key t (get t page mid) key < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* Child to descend into for [key]: number of separators <= key. *)
let descend_index t page key =
  let n = node_n page in
  let rec go lo hi =
    (* first separator index with sep > key; that index = child index *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_key t (int_key t page mid) key <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* -- construction -------------------------------------------------------- *)

let check_key_len key_len =
  if key_len < 1 || key_len > 16 then invalid_arg "Btree: key_len must be in [1, 16]"

let alloc_node t ~kind =
  let handle = Buffer_pool.allocate t.pool in
  init_node (Buffer_pool.page handle) ~kind;
  Buffer_pool.mark_dirty handle;
  t.pages <- t.pages + 1;
  handle

let create pool ~key_len =
  check_key_len key_len;
  let t = { pool; key_len; root = -1; height = 1; entries = 0; pages = 0 } in
  let handle = alloc_node t ~kind:kind_leaf in
  t.root <- Buffer_pool.page_id handle;
  Buffer_pool.unpin pool handle;
  t

let key_len t = t.key_len

let n_entries t = t.entries

let height t = t.height

let n_pages t = t.pages

let with_node t pid f =
  let handle = Buffer_pool.fetch t.pool pid in
  let result =
    try f handle (Buffer_pool.page handle)
    with exn ->
      Buffer_pool.unpin t.pool handle;
      raise exn
  in
  Buffer_pool.unpin t.pool handle;
  result

let check_key t key =
  if Array.length key <> t.key_len then
    invalid_arg "Btree: key has the wrong number of components"

(* -- search -------------------------------------------------------------- *)

let rec find_leaf t pid key =
  with_node t pid (fun _handle page ->
      if node_kind page = kind_leaf then pid
      else find_leaf t (child t page (descend_index t page key)) key)

let mem t key =
  check_key t key;
  let leaf = find_leaf t t.root key in
  with_node t leaf (fun _handle page ->
      let i = lower_bound t ~get:leaf_key page key in
      i < node_n page && compare_key t (leaf_key t page i) key = 0)

(* -- insertion ----------------------------------------------------------- *)

(* Shift leaf keys [i, n) one slot right and write [key] at [i]. *)
let leaf_insert_at t page i key =
  let n = node_n page in
  if n > i then
    Page.move page ~src:(leaf_key_pos t i) ~dst:(leaf_key_pos t (i + 1))
      ~len:((n - i) * key_bytes t);
  write_key t page (leaf_key_pos t i) key;
  set_node_n page (n + 1)

(* Insert separator [key] with right child [rc] after child position [i]. *)
let internal_insert_at t page i key rc =
  let n = node_n page in
  if n > i then
    Page.move page ~src:(int_key_pos t i) ~dst:(int_key_pos t (i + 1))
      ~len:((n - i) * (key_bytes t + 4));
  set_int_key t page i key;
  Page.set_i32 page (int_key_pos t i + key_bytes t) rc;
  set_node_n page (n + 1)

type split = { sep : int array; right : int }

(* Insert into the subtree rooted at [pid]; return a split description if
   the node had to split. *)
let rec insert_rec t pid key =
  let handle = Buffer_pool.fetch t.pool pid in
  let page = Buffer_pool.page handle in
  let result =
    if node_kind page = kind_leaf then insert_leaf t handle page key
    else begin
      let ci = descend_index t page key in
      match insert_rec t (child t page ci) key with
      | None -> None
      | Some { sep; right } ->
          Buffer_pool.mark_dirty handle;
          if node_n page < internal_capacity t then begin
            let pos = lower_bound t ~get:int_key page sep in
            internal_insert_at t page pos sep right;
            None
          end
          else split_internal t handle page sep right
    end
  in
  Buffer_pool.unpin t.pool handle;
  result

and insert_leaf t handle page key =
  let i = lower_bound t ~get:leaf_key page key in
  if i < node_n page && compare_key t (leaf_key t page i) key = 0 then None
  else begin
    Buffer_pool.mark_dirty handle;
    t.entries <- t.entries + 1;
    if node_n page < leaf_capacity t then begin
      leaf_insert_at t page i key;
      None
    end
    else begin
      (* Split: move the upper half to a fresh right sibling, then insert
         the key into whichever side it belongs. *)
      let n = node_n page in
      let mid = n / 2 in
      let right_handle = alloc_node t ~kind:kind_leaf in
      let right_page = Buffer_pool.page right_handle in
      let moved = n - mid in
      Page.set_bytes right_page ~pos:(leaf_key_pos t 0)
        (Page.get_bytes page ~pos:(leaf_key_pos t mid) ~len:(moved * key_bytes t));
      set_node_n right_page moved;
      set_node_n page mid;
      set_next_leaf right_page (next_leaf page);
      set_next_leaf page (Buffer_pool.page_id right_handle);
      let sep = leaf_key t right_page 0 in
      if compare_key t key sep < 0 then
        leaf_insert_at t page (lower_bound t ~get:leaf_key page key) key
      else
        leaf_insert_at t right_page (lower_bound t ~get:leaf_key right_page key) key;
      let right = Buffer_pool.page_id right_handle in
      Buffer_pool.unpin t.pool right_handle;
      Some { sep = leaf_key t right_page 0; right }
    end
  end

and split_internal t _handle page sep rc =
  (* The node is full: conceptually insert (sep, rc), then split in the
     middle, pushing the middle separator up.  To keep the page logic
     simple we materialise the combined entry list, split it, and rewrite
     both pages. *)
  let n = node_n page in
  let keys = Array.init n (fun i -> int_key t page i) in
  let children = Array.init (n + 1) (fun i -> child t page i) in
  let pos = lower_bound t ~get:int_key page sep in
  let all_keys = Array.make (n + 1) sep in
  let all_children = Array.make (n + 2) rc in
  Array.blit keys 0 all_keys 0 pos;
  Array.blit keys pos all_keys (pos + 1) (n - pos);
  Array.blit children 0 all_children 0 (pos + 1);
  Array.blit children (pos + 1) all_children (pos + 2) (n - pos);
  let total = n + 1 in
  let mid = total / 2 in
  let up = all_keys.(mid) in
  let right_handle = alloc_node t ~kind:kind_internal in
  let right_page = Buffer_pool.page right_handle in
  (* Left keeps keys [0, mid) and children [0, mid]. *)
  set_node_n page 0;
  set_child t page 0 all_children.(0);
  for i = 0 to mid - 1 do
    internal_insert_at t page i all_keys.(i) all_children.(i + 1)
  done;
  (* Right gets keys (mid, total) and children [mid+1, total+1). *)
  set_child t right_page 0 all_children.(mid + 1);
  for i = mid + 1 to total - 1 do
    internal_insert_at t right_page (i - mid - 1) all_keys.(i) all_children.(i + 1)
  done;
  let right = Buffer_pool.page_id right_handle in
  Buffer_pool.unpin t.pool right_handle;
  Some { sep = up; right }

let insert t key =
  check_key t key;
  match insert_rec t t.root key with
  | None -> ()
  | Some { sep; right } ->
      let handle = alloc_node t ~kind:kind_internal in
      let page = Buffer_pool.page handle in
      set_child t page 0 t.root;
      internal_insert_at t page 0 sep right;
      t.root <- Buffer_pool.page_id handle;
      t.height <- t.height + 1;
      Buffer_pool.unpin t.pool handle

(* -- deletion (no rebalancing) ------------------------------------------- *)

let delete t key =
  check_key t key;
  let leaf = find_leaf t t.root key in
  with_node t leaf (fun handle page ->
      let i = lower_bound t ~get:leaf_key page key in
      if i < node_n page && compare_key t (leaf_key t page i) key = 0 then begin
        let n = node_n page in
        if i < n - 1 then
          Page.move page ~src:(leaf_key_pos t (i + 1)) ~dst:(leaf_key_pos t i)
            ~len:((n - 1 - i) * key_bytes t);
        set_node_n page (n - 1);
        Buffer_pool.mark_dirty handle;
        t.entries <- t.entries - 1;
        true
      end
      else false)

(* -- range iteration ------------------------------------------------------ *)

let iter_range_slices t ~lo ~hi f =
  check_key t lo;
  check_key t hi;
  if compare_key t lo hi <= 0 then begin
    let leaf = find_leaf t t.root lo in
    let rec walk pid =
      if pid <> -1 then
        let continue_with =
          with_node t pid (fun _handle page ->
              let n = node_n page in
              let start = lower_bound t ~get:leaf_key page lo in
              let buf = Page.to_bytes page in
              let within_hi pos =
                let rec go j =
                  if j = t.key_len then true
                  else
                    let v = Int64.to_int (Bytes.get_int64_le buf (pos + (j * 8))) in
                    if v < hi.(j) then true else if v > hi.(j) then false else go (j + 1)
                in
                go 0
              in
              let rec emit i =
                if i >= n then Some (next_leaf page)
                else begin
                  let pos = leaf_key_pos t i in
                  if not (within_hi pos) then None
                  else begin
                    f buf pos;
                    emit (i + 1)
                  end
                end
              in
              emit start)
        in
        match continue_with with None -> () | Some next -> walk next
    in
    walk leaf
  end

let iter_range t ~lo ~hi f =
  iter_range_slices t ~lo ~hi (fun buf pos ->
      f (Array.init t.key_len (fun j -> Int64.to_int (Bytes.get_int64_le buf (pos + (j * 8))))))

let iter_prefix t ~prefix f =
  let plen = Array.length prefix in
  if plen > t.key_len then invalid_arg "Btree.iter_prefix: prefix too long";
  let lo = Array.make t.key_len min_int in
  let hi = Array.make t.key_len max_int in
  Array.blit prefix 0 lo 0 plen;
  Array.blit prefix 0 hi 0 plen;
  iter_range t ~lo ~hi f

let iter_all t f =
  let lo = Array.make t.key_len min_int in
  let hi = Array.make t.key_len max_int in
  iter_range t ~lo ~hi f

(* -- bulk loading --------------------------------------------------------- *)

let bulk_load pool ~key_len keys =
  check_key_len key_len;
  let t = { pool; key_len; root = -1; height = 1; entries = 0; pages = 0 } in
  let n = Array.length keys in
  Array.iter
    (fun key ->
      if Array.length key <> key_len then
        invalid_arg "Btree.bulk_load: key has the wrong number of components")
    keys;
  for i = 1 to n - 1 do
    if compare_key t keys.(i - 1) keys.(i) >= 0 then
      invalid_arg "Btree.bulk_load: keys must be sorted and unique"
  done;
  if n = 0 then begin
    let handle = alloc_node t ~kind:kind_leaf in
    t.root <- Buffer_pool.page_id handle;
    Buffer_pool.unpin pool handle;
    t
  end
  else begin
    let fill cap = max 1 (cap * 9 / 10) in
    (* Build the leaf level; collect (first_key, pid) per leaf. *)
    let per_leaf = fill (leaf_capacity t) in
    let leaves = ref [] in
    let prev_handle = ref None in
    let i = ref 0 in
    while !i < n do
      let count = min per_leaf (n - !i) in
      let handle = alloc_node t ~kind:kind_leaf in
      let page = Buffer_pool.page handle in
      for j = 0 to count - 1 do
        write_key t page (leaf_key_pos t j) keys.(!i + j)
      done;
      set_node_n page count;
      (match !prev_handle with
      | Some prev ->
          set_next_leaf (Buffer_pool.page prev) (Buffer_pool.page_id handle);
          Buffer_pool.unpin pool prev
      | None -> ());
      prev_handle := Some handle;
      leaves := (keys.(!i), Buffer_pool.page_id handle) :: !leaves;
      i := !i + count
    done;
    (match !prev_handle with Some prev -> Buffer_pool.unpin pool prev | None -> ());
    t.entries <- n;
    (* Build internal levels bottom-up until a single node remains. *)
    let rec build level_nodes height =
      match level_nodes with
      | [] -> assert false
      | [ (_, pid) ] ->
          t.root <- pid;
          t.height <- height
      | _ :: _ :: _ ->
          let per_node = fill (internal_capacity t) in
          let groups = ref [] in
          let rec take acc k rest =
            match (rest, k) with
            | _, 0 | [], _ -> (List.rev acc, rest)
            | x :: rest, k -> take (x :: acc) (k - 1) rest
          in
          let rec group rest =
            match rest with
            | [] -> ()
            | _ :: _ ->
                (* per_node keys means per_node + 1 children *)
                let children, rest = take [] (per_node + 1) rest in
                (* Avoid leaving a trailing group with a single child. *)
                let children, rest =
                  match rest with
                  | [ _ ] ->
                      let moved, keep =
                        match List.rev children with
                        | last :: keep_rev -> (last, List.rev keep_rev)
                        | [] -> assert false
                      in
                      (keep, [ moved ] @ rest)
                  | _ -> (children, rest)
                in
                let handle = alloc_node t ~kind:kind_internal in
                let page = Buffer_pool.page handle in
                (match children with
                | [] -> assert false
                | (first_key, first_pid) :: others ->
                    set_child t page 0 first_pid;
                    List.iteri
                      (fun idx (sep, pid) -> internal_insert_at t page idx sep pid)
                      others;
                    groups := (first_key, Buffer_pool.page_id handle) :: !groups);
                Buffer_pool.unpin pool handle;
                group rest
          in
          group level_nodes;
          build (List.rev !groups) (height + 1)
    in
    build (List.rev !leaves) 1;
    t
  end
