(* Slotted page layout:
     0  u16  slot count
     2  u16  free_end: offset one past the free region; record data occupies
             [free_end - data, Page.size) growing downward
     4  slot directory: per slot, u16 record offset + u16 record length
             (length 0 marks a deleted slot)
   A fresh page has slot count 0 and free_end = Page.size. *)

type t = {
  pool : Buffer_pool.t;
  mutable pages : int list; (* reversed: head is the last page *)
  mutable page_count : int;
  mutable live : int;
}

type rid = { page : int; slot : int }

let pp_rid ppf rid = Format.fprintf ppf "%d:%d" rid.page rid.slot

let compare_rid a b =
  let c = compare a.page b.page in
  if c <> 0 then c else compare a.slot b.slot

let header_size = 4
let slot_size = 4

let create pool = { pool; pages = []; page_count = 0; live = 0 }

let slot_count page = Page.get_u16 page 0
let set_slot_count page n = Page.set_u16 page 0 n
let free_end page = Page.get_u16 page 2
let set_free_end page v = Page.set_u16 page 2 v

let slot_offset page i = Page.get_u16 page (header_size + (i * slot_size))
let slot_length page i = Page.get_u16 page (header_size + (i * slot_size) + 2)

let set_slot page i ~offset ~length =
  Page.set_u16 page (header_size + (i * slot_size)) offset;
  Page.set_u16 page (header_size + (i * slot_size) + 2) length

let free_space page =
  let slots_end = header_size + (slot_count page * slot_size) in
  free_end page - slots_end

let init_page page =
  set_slot_count page 0;
  set_free_end page Page.size

let max_record = Page.size - header_size - slot_size

let try_insert_in page data =
  let len = Bytes.length data in
  if free_space page < len + slot_size then None
  else begin
    let offset = free_end page - len in
    Page.set_bytes page ~pos:offset data;
    let slot = slot_count page in
    set_slot page slot ~offset ~length:len;
    set_slot_count page (slot + 1);
    set_free_end page offset;
    Some slot
  end

let insert t tuple =
  let data = Tuple.encode tuple in
  if Bytes.length data > max_record then
    invalid_arg "Heap_file.insert: tuple larger than a page";
  let insert_in_new_page () =
    let handle = Buffer_pool.allocate t.pool in
    let page = Buffer_pool.page handle in
    init_page page;
    let pid = Buffer_pool.page_id handle in
    t.pages <- pid :: t.pages;
    t.page_count <- t.page_count + 1;
    let slot =
      match try_insert_in page data with
      | Some slot -> slot
      | None -> assert false
    in
    Buffer_pool.mark_dirty handle;
    Buffer_pool.unpin t.pool handle;
    { page = pid; slot }
  in
  let rid =
    match t.pages with
    | [] -> insert_in_new_page ()
    | last :: _ -> (
        let handle = Buffer_pool.fetch t.pool last in
        let page = Buffer_pool.page handle in
        match try_insert_in page data with
        | Some slot ->
            Buffer_pool.mark_dirty handle;
            Buffer_pool.unpin t.pool handle;
            { page = last; slot }
        | None ->
            Buffer_pool.unpin t.pool handle;
            insert_in_new_page ())
  in
  t.live <- t.live + 1;
  rid

let with_page t pid f =
  let handle = Buffer_pool.fetch t.pool pid in
  let result =
    try f handle (Buffer_pool.page handle)
    with exn ->
      Buffer_pool.unpin t.pool handle;
      raise exn
  in
  Buffer_pool.unpin t.pool handle;
  result

let fetch t rid =
  let check_slot page =
    if rid.slot < 0 || rid.slot >= slot_count page then
      invalid_arg "Heap_file.fetch: slot out of range"
  in
  with_page t rid.page (fun _handle page ->
      check_slot page;
      let len = slot_length page rid.slot in
      if len = 0 then None
      else
        let data = Page.get_bytes page ~pos:(slot_offset page rid.slot) ~len in
        Some (Tuple.decode data))

let delete t rid =
  with_page t rid.page (fun handle page ->
      if rid.slot < 0 || rid.slot >= slot_count page then
        invalid_arg "Heap_file.delete: slot out of range";
      let len = slot_length page rid.slot in
      if len = 0 then false
      else begin
        set_slot page rid.slot ~offset:0 ~length:0;
        Buffer_pool.mark_dirty handle;
        t.live <- t.live - 1;
        true
      end)

(* Full scans materialize the page run once (oldest first) and go through
   the pool's sequential path: scan-resistant eviction plus readahead, no
   per-page allocation beyond the run array itself. *)
let scan_run t =
  let n = t.page_count in
  let run = Array.make n (-1) in
  let i = ref (n - 1) in
  List.iter
    (fun pid ->
      run.(!i) <- pid;
      decr i)
    t.pages;
  run

let scan_pages t f =
  let run = scan_run t in
  Array.iteri
    (fun pos pid ->
      let handle = Buffer_pool.fetch_sequential t.pool ~run ~pos in
      let finish () = Buffer_pool.unpin t.pool handle in
      (try f pid (Buffer_pool.page handle)
       with exn ->
         finish ();
         raise exn);
      finish ())
    run

let iter_raw t f =
  scan_pages t (fun pid page ->
      for slot = 0 to slot_count page - 1 do
        let len = slot_length page slot in
        if len > 0 then
          f { page = pid; slot } (Page.get_bytes page ~pos:(slot_offset page slot) ~len)
      done)

let iter t f = iter_raw t (fun rid data -> f rid (Tuple.decode data))

let iter_slices t f =
  scan_pages t (fun _pid page ->
      let buf = Page.to_bytes page in
      for slot = 0 to slot_count page - 1 do
        if slot_length page slot > 0 then f buf (slot_offset page slot)
      done)

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun rid tuple -> acc := f !acc rid tuple);
  !acc

let n_tuples t = t.live

let n_pages t = t.page_count
