type value = Int of int | Text of string

type t = value array

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x = y) a b

let compare_value a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | Text x, Text y -> String.compare x y
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1

let pp_value ppf v =
  match v with
  | Int i -> Format.pp_print_int ppf i
  | Text s -> Format.fprintf ppf "'%s'" s

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_value)
    t

let to_string t = Format.asprintf "%a" pp t

let int_exn v =
  match v with Int i -> i | Text _ -> invalid_arg "Tuple.int_exn: Text value"

let text_exn v =
  match v with Text s -> s | Int _ -> invalid_arg "Tuple.text_exn: Int value"

let tag_int = 0
let tag_text = 1

let encoded_size t =
  Array.fold_left
    (fun acc v ->
      match v with Int _ -> acc + 1 + 8 | Text s -> acc + 1 + 2 + String.length s)
    2 t

let encode t =
  let n = Array.length t in
  if n > 0xFFFF then invalid_arg "Tuple.encode: too many fields";
  let buf = Bytes.create (encoded_size t) in
  Bytes.set_uint16_le buf 0 n;
  let pos = ref 2 in
  Array.iter
    (fun v ->
      match v with
      | Int i ->
          Bytes.set_uint8 buf !pos tag_int;
          Bytes.set_int64_le buf (!pos + 1) (Int64.of_int i);
          pos := !pos + 9
      | Text s ->
          if String.length s > 0xFFFF then invalid_arg "Tuple.encode: text too long";
          Bytes.set_uint8 buf !pos tag_text;
          Bytes.set_uint16_le buf (!pos + 1) (String.length s);
          Bytes.blit_string s 0 buf (!pos + 3) (String.length s);
          pos := !pos + 3 + String.length s)
    t;
  buf

let field_count buf =
  if Bytes.length buf < 2 then invalid_arg "Tuple.field_count: malformed tuple";
  Bytes.get_uint16_le buf 0

let get_field_at buf ~base i =
  let fail () = invalid_arg "Tuple.get_field: malformed tuple" in
  if base < 0 || base + 2 > Bytes.length buf then fail ();
  let n = Bytes.get_uint16_le buf base in
  if i < 0 || i >= n then invalid_arg "Tuple.get_field: index out of range";
  (* Walk the fields; int fields have fixed width so the common all-int
     case costs a few adds per skipped field. *)
  let rec seek pos remaining =
    if pos >= Bytes.length buf then fail ();
    let tag = Bytes.get_uint8 buf pos in
    if remaining = 0 then
      if tag = tag_int then begin
        if pos + 9 > Bytes.length buf then fail ();
        Int (Int64.to_int (Bytes.get_int64_le buf (pos + 1)))
      end
      else if tag = tag_text then begin
        if pos + 3 > Bytes.length buf then fail ();
        let len = Bytes.get_uint16_le buf (pos + 1) in
        if pos + 3 + len > Bytes.length buf then fail ();
        Text (Bytes.sub_string buf (pos + 3) len)
      end
      else fail ()
    else if tag = tag_int then seek (pos + 9) (remaining - 1)
    else if tag = tag_text then begin
      if pos + 3 > Bytes.length buf then fail ();
      seek (pos + 3 + Bytes.get_uint16_le buf (pos + 1)) (remaining - 1)
    end
    else fail ()
  in
  seek (base + 2) i

let get_field buf i = get_field_at buf ~base:0 i

let decode buf =
  let fail () = invalid_arg "Tuple.decode: malformed tuple" in
  if Bytes.length buf < 2 then fail ();
  let n = Bytes.get_uint16_le buf 0 in
  let pos = ref 2 in
  let read_field () =
    if !pos >= Bytes.length buf then fail ();
    let tag = Bytes.get_uint8 buf !pos in
    if tag = tag_int then begin
      if !pos + 9 > Bytes.length buf then fail ();
      let v = Int64.to_int (Bytes.get_int64_le buf (!pos + 1)) in
      pos := !pos + 9;
      Int v
    end
    else if tag = tag_text then begin
      if !pos + 3 > Bytes.length buf then fail ();
      let len = Bytes.get_uint16_le buf (!pos + 1) in
      if !pos + 3 + len > Bytes.length buf then fail ();
      let s = Bytes.sub_string buf (!pos + 3) len in
      pos := !pos + 3 + len;
      Text s
    end
    else fail ()
  in
  (* Fields must be read left to right; Array.init has unspecified order. *)
  let out = Array.make n (Int 0) in
  for i = 0 to n - 1 do
    out.(i) <- read_field ()
  done;
  out
