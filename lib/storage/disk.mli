(** Simulated disk: a growable array of pages with counted I/O.

    The paper's experiments ran against SQL Server on real hardware; here
    the "disk" is an in-memory page store that counts every page read and
    write, so that execution costs can be measured deterministically in
    page-I/O units.  All structured access should go through
    {!Buffer_pool}; this module is the raw device.

    Invariants: page ids are dense — [allocate] returns consecutive ids
    starting at 0, ids are never reused, and any read/write of an
    unallocated id is a programming error ([Invalid_argument]), never a
    silent grow.  Reads and writes copy whole pages by value, so a page
    buffer handed to [read_into] can be mutated freely without aliasing
    the store.  Every transfer bumps the corresponding per-disk counter
    ({!stats}) and, when instrumentation is enabled, the process-wide
    observability counters [disk.page_reads], [disk.page_writes] and
    [disk.pages_allocated] (see docs/OBSERVABILITY.md). *)

type t

type stats = { reads : int; writes : int; allocated : int }

val create : unit -> t
(** An empty disk. *)

val allocate : t -> int
(** [allocate t] reserves a fresh zeroed page and returns its page id. *)

val n_pages : t -> int
(** Number of allocated pages. *)

val read_into : t -> int -> Page.t -> unit
(** [read_into t pid dst] copies page [pid] from the disk into [dst],
    counting one read.  Raises [Invalid_argument] on an unallocated id. *)

val read_batch : t -> (int * Page.t) list -> unit
(** [read_batch t pairs] reads each [(pid, dst)] pair in order — the
    buffer pool's readahead entry point.  The simulated device has no
    seek cost, so a batch costs exactly one counted read per page; a real
    device would coalesce the run into one large transfer.  Raises
    [Invalid_argument] on an unallocated id. *)

val write_from : t -> int -> Page.t -> unit
(** [write_from t pid src] copies [src] onto page [pid], counting one
    write.  Raises [Invalid_argument] on an unallocated id. *)

val stats : t -> stats
(** Cumulative I/O counters. *)

val reset_stats : t -> unit
(** Zero the I/O counters (allocation count is preserved). *)
