module Obs = Cddpd_obs

(* Global across all pools (the observability layer reports process-wide
   totals); [stats] remains the per-pool view. *)
let m_hits = Obs.Registry.counter "buffer_pool.hits"
let m_misses = Obs.Registry.counter "buffer_pool.misses"
let m_evictions = Obs.Registry.counter "buffer_pool.evictions"
let m_write_backs = Obs.Registry.counter "buffer_pool.write_backs"
let m_scan_fetches = Obs.Registry.counter "buffer_pool.scan_fetches"
let m_readahead_pages = Obs.Registry.counter "buffer_pool.readahead_pages"

type frame = {
  mutable pid : int; (* -1 when the frame is empty *)
  buffer : Page.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable referenced : bool; (* second-chance bit *)
}

type handle = frame

type t = {
  disk : Disk.t;
  frames : frame array;
  table : (int, frame) Hashtbl.t;
  mutable free : int list; (* indices of empty frames *)
  mutable hand : int; (* clock hand *)
  readahead : int; (* max pages prefetched per sequential miss; 0 = off *)
  (* One-entry memo: the frame returned by the most recent fetch.  Checking
     [last.pid = pid] is sound without any invalidation hook because
     [evict] resets [pid] to -1 before a frame is reused and [pid] is only
     ever set together with the matching [table] insertion — so a matching
     pid proves the frame still holds that page. *)
  mutable last : frame;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  mutable scan_fetch_count : int;
  mutable readahead_count : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  scan_fetches : int;
  readahead_pages : int;
}

let default_readahead = 8

let create ?(capacity = 256) ?(readahead = default_readahead) disk =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity <= 0";
  if readahead < 0 then invalid_arg "Buffer_pool.create: readahead < 0";
  let make_frame _ =
    { pid = -1; buffer = Page.create (); pins = 0; dirty = false; referenced = false }
  in
  let frames = Array.init capacity make_frame in
  {
    disk;
    frames;
    table = Hashtbl.create (capacity * 2);
    free = List.init capacity (fun i -> i);
    hand = 0;
    (* A prefetch batch must never be forced to evict its own leader, so
       leave headroom for the pinned leader plus one victim slot. *)
    readahead = min readahead (max 0 (capacity - 2));
    last = make_frame 0 (* dummy: pid = -1 never matches a real fetch *);
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    scan_fetch_count = 0;
    readahead_count = 0;
  }

let capacity t = Array.length t.frames

let write_back t frame =
  if frame.dirty then begin
    Disk.write_from t.disk frame.pid frame.buffer;
    Obs.Counter.incr m_write_backs;
    frame.dirty <- false
  end

(* Clock (second-chance) sweep: advance the hand, clearing reference bits,
   until an unpinned, unreferenced frame is found.  Amortised O(1) per
   miss.  Two full sweeps guarantee we revisit every frame after clearing
   its reference bit; only pins can then keep a frame unavailable. *)
let clock_sweep t =
  let n = Array.length t.frames in
  let rec sweep remaining =
    if remaining = 0 then failwith "Buffer_pool: all frames are pinned"
    else begin
      let frame = t.frames.(t.hand) in
      t.hand <- (t.hand + 1) mod n;
      if frame.pins > 0 then sweep (remaining - 1)
      else if frame.referenced then begin
        frame.referenced <- false;
        sweep (remaining - 1)
      end
      else frame
    end
  in
  sweep (2 * n)

let victim t =
  match t.free with
  | i :: rest ->
      t.free <- rest;
      t.frames.(i)
  | [] -> clock_sweep t

(* Scan-resistant victim selection for sequential loads: take a free frame
   or an already-unreferenced unpinned frame, but never clear reference
   bits while searching.  Because sequential fetches leave their own
   frames unreferenced, a scan recycles its own trail of frames instead of
   demoting (and eventually flushing) the referenced working set.  If one
   full revolution finds nothing (everything referenced or pinned), fall
   back to the normal clearing sweep so the fetch still terminates. *)
let seq_victim t =
  match t.free with
  | i :: rest ->
      t.free <- rest;
      t.frames.(i)
  | [] ->
      let n = Array.length t.frames in
      let rec sweep remaining =
        if remaining = 0 then clock_sweep t
        else begin
          let frame = t.frames.(t.hand) in
          t.hand <- (t.hand + 1) mod n;
          if frame.pins = 0 && not frame.referenced then frame
          else sweep (remaining - 1)
        end
      in
      sweep n

let evict t frame =
  if frame.pid <> -1 then begin
    write_back t frame;
    Hashtbl.remove t.table frame.pid;
    frame.pid <- -1;
    t.eviction_count <- t.eviction_count + 1;
    Obs.Counter.incr m_evictions
  end

let record_hit t frame =
  t.hit_count <- t.hit_count + 1;
  Obs.Counter.incr m_hits;
  frame.pins <- frame.pins + 1

let fetch t pid =
  let last = t.last in
  if last.pid = pid then begin
    record_hit t last;
    last.referenced <- true;
    last
  end
  else
    let frame =
      match Hashtbl.find_opt t.table pid with
      | Some frame ->
          record_hit t frame;
          frame.referenced <- true;
          frame
      | None ->
          t.miss_count <- t.miss_count + 1;
          Obs.Counter.incr m_misses;
          let frame = victim t in
          evict t frame;
          Disk.read_into t.disk pid frame.buffer;
          frame.pid <- pid;
          frame.pins <- 1;
          frame.dirty <- false;
          frame.referenced <- true;
          Hashtbl.replace t.table pid frame;
          frame
    in
    t.last <- frame;
    frame

(* Prefetch the next non-resident pages of [run] into unpinned,
   unreferenced frames (first in line for recycling), reading them from
   disk in one batch.  Called with the leader frame pinned, so the batch
   cannot evict it.  In a pathologically small pool a prefetched frame may
   be recycled before its page is consumed — the page is then simply a
   regular miss later; correctness and logical-I/O accounting are
   unaffected. *)
let readahead_batch t ~run ~pos =
  let stop = min (Array.length run - 1) (pos + t.readahead) in
  let batch = ref [] in
  for j = pos + 1 to stop do
    let pid = run.(j) in
    if not (Hashtbl.mem t.table pid) then begin
      let frame = seq_victim t in
      evict t frame;
      frame.pid <- pid;
      frame.pins <- 0;
      frame.dirty <- false;
      frame.referenced <- false;
      Hashtbl.replace t.table pid frame;
      batch := (pid, frame.buffer) :: !batch;
      t.readahead_count <- t.readahead_count + 1;
      Obs.Counter.incr m_readahead_pages
    end
  done;
  match !batch with [] -> () | pairs -> Disk.read_batch t.disk (List.rev pairs)

let fetch_sequential t ~run ~pos =
  let pid = run.(pos) in
  t.scan_fetch_count <- t.scan_fetch_count + 1;
  Obs.Counter.incr m_scan_fetches;
  let last = t.last in
  if last.pid = pid then begin
    record_hit t last;
    (* scan fetches never set the reference bit *)
    last
  end
  else
    let frame =
      match Hashtbl.find_opt t.table pid with
      | Some frame ->
          record_hit t frame;
          frame
      | None ->
          t.miss_count <- t.miss_count + 1;
          Obs.Counter.incr m_misses;
          let frame = seq_victim t in
          evict t frame;
          Disk.read_into t.disk pid frame.buffer;
          frame.pid <- pid;
          frame.pins <- 1;
          frame.dirty <- false;
          frame.referenced <- false;
          Hashtbl.replace t.table pid frame;
          if t.readahead > 0 then readahead_batch t ~run ~pos;
          frame
    in
    t.last <- frame;
    frame

let allocate t =
  let pid = Disk.allocate t.disk in
  let frame = victim t in
  evict t frame;
  Page.zero frame.buffer;
  frame.pid <- pid;
  frame.pins <- 1;
  frame.dirty <- true;
  frame.referenced <- true;
  Hashtbl.replace t.table pid frame;
  t.last <- frame;
  frame

let page frame = frame.buffer

let page_id frame = frame.pid

let mark_dirty frame = frame.dirty <- true

let unpin _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_pool.unpin: handle not pinned";
  frame.pins <- frame.pins - 1

let flush_all t =
  Array.iter (fun frame -> if frame.pid <> -1 then write_back t frame) t.frames

let drop_cache t =
  Array.iteri
    (fun i frame ->
      if frame.pins > 0 then failwith "Buffer_pool.drop_cache: frame still pinned";
      if frame.pid <> -1 then begin
        write_back t frame;
        Hashtbl.remove t.table frame.pid;
        frame.pid <- -1;
        t.free <- i :: t.free
      end)
    t.frames

let stats t =
  {
    hits = t.hit_count;
    misses = t.miss_count;
    evictions = t.eviction_count;
    scan_fetches = t.scan_fetch_count;
    readahead_pages = t.readahead_count;
  }

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.eviction_count <- 0;
  t.scan_fetch_count <- 0;
  t.readahead_count <- 0
