module Obs = Cddpd_obs

(* Global across all pools (the observability layer reports process-wide
   totals); [stats] remains the per-pool view. *)
let m_hits = Obs.Registry.counter "buffer_pool.hits"
let m_misses = Obs.Registry.counter "buffer_pool.misses"
let m_evictions = Obs.Registry.counter "buffer_pool.evictions"
let m_write_backs = Obs.Registry.counter "buffer_pool.write_backs"

type frame = {
  mutable pid : int; (* -1 when the frame is empty *)
  buffer : Page.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable referenced : bool; (* second-chance bit *)
}

type handle = frame

type t = {
  disk : Disk.t;
  frames : frame array;
  table : (int, frame) Hashtbl.t;
  mutable free : int list; (* indices of empty frames *)
  mutable hand : int; (* clock hand *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(capacity = 256) disk =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity <= 0";
  let make_frame _ =
    { pid = -1; buffer = Page.create (); pins = 0; dirty = false; referenced = false }
  in
  {
    disk;
    frames = Array.init capacity make_frame;
    (* cddpd-lint: allow poly-hash — int page-id keys *)
    table = Hashtbl.create (capacity * 2);
    free = List.init capacity (fun i -> i);
    hand = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let capacity t = Array.length t.frames

let write_back t frame =
  if frame.dirty then begin
    Disk.write_from t.disk frame.pid frame.buffer;
    Obs.Counter.incr m_write_backs;
    frame.dirty <- false
  end

(* Clock (second-chance) replacement: take a free frame if any; otherwise
   sweep the hand, clearing reference bits, until an unpinned,
   unreferenced frame is found.  Amortised O(1) per miss. *)
let victim t =
  match t.free with
  | i :: rest ->
      t.free <- rest;
      t.frames.(i)
  | [] ->
      let n = Array.length t.frames in
      (* Two full sweeps guarantee we revisit every frame after clearing
         its reference bit; only pins can then keep a frame unavailable. *)
      let rec sweep remaining =
        if remaining = 0 then failwith "Buffer_pool: all frames are pinned"
        else begin
          let frame = t.frames.(t.hand) in
          t.hand <- (t.hand + 1) mod n;
          if frame.pins > 0 then sweep (remaining - 1)
          else if frame.referenced then begin
            frame.referenced <- false;
            sweep (remaining - 1)
          end
          else frame
        end
      in
      sweep (2 * n)

let evict t frame =
  if frame.pid <> -1 then begin
    write_back t frame;
    Hashtbl.remove t.table frame.pid;
    frame.pid <- -1;
    t.eviction_count <- t.eviction_count + 1;
    Obs.Counter.incr m_evictions
  end

let fetch t pid =
  match Hashtbl.find_opt t.table pid with
  | Some frame ->
      t.hit_count <- t.hit_count + 1;
      Obs.Counter.incr m_hits;
      frame.pins <- frame.pins + 1;
      frame.referenced <- true;
      frame
  | None ->
      t.miss_count <- t.miss_count + 1;
      Obs.Counter.incr m_misses;
      let frame = victim t in
      evict t frame;
      Disk.read_into t.disk pid frame.buffer;
      frame.pid <- pid;
      frame.pins <- 1;
      frame.dirty <- false;
      frame.referenced <- true;
      Hashtbl.replace t.table pid frame;
      frame

let allocate t =
  let pid = Disk.allocate t.disk in
  let frame = victim t in
  evict t frame;
  Page.zero frame.buffer;
  frame.pid <- pid;
  frame.pins <- 1;
  frame.dirty <- true;
  frame.referenced <- true;
  Hashtbl.replace t.table pid frame;
  frame

let page frame = frame.buffer

let page_id frame = frame.pid

let mark_dirty frame = frame.dirty <- true

let unpin _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_pool.unpin: handle not pinned";
  frame.pins <- frame.pins - 1

let flush_all t =
  Array.iter (fun frame -> if frame.pid <> -1 then write_back t frame) t.frames

let drop_cache t =
  Array.iteri
    (fun i frame ->
      if frame.pins > 0 then failwith "Buffer_pool.drop_cache: frame still pinned";
      if frame.pid <> -1 then begin
        write_back t frame;
        Hashtbl.remove t.table frame.pid;
        frame.pid <- -1;
        t.free <- i :: t.free
      end)
    t.frames

let stats t = { hits = t.hit_count; misses = t.miss_count; evictions = t.eviction_count }

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.eviction_count <- 0
