(** Buffer pool over a {!Disk} with clock (second-chance) replacement.

    All heap-file and B+-tree page accesses go through the pool.  A fetched
    page is pinned until released; unpinned frames are replaced by a clock
    sweep (approximate LRU, amortised O(1) per miss), writing dirty pages
    back to disk.  Hit and miss counters let the engine report logical vs.
    physical I/O.

    {2 Pin/unpin discipline}

    Every handle returned by {!fetch}, {!fetch_sequential} or {!allocate}
    holds one pin; the caller must {!unpin} it exactly once, after which
    the handle must not be used again (its frame may be reassigned to
    another page at any later miss).  Pins nest: fetching an
    already-pinned page increments its pin count, and the frame is only
    evictable when the count returns to zero.  Holding many pins
    concurrently risks [Failure] on a miss — eviction needs at least one
    unpinned frame — so access methods pin briefly: fetch, read/write,
    unpin.  Mutating a pinned page's buffer is only durable if
    {!mark_dirty} is called before the pin is released.

    {2 Clock-sweep eviction policy}

    Frames form a circular list with a sweep hand.  A {!fetch} sets the
    frame's reference bit; a miss with no free frame advances the hand,
    skipping pinned frames and clearing reference bits, and takes the first
    unpinned frame whose bit is already clear.  Each frame therefore
    survives one full revolution after its last access (the "second
    chance"), approximating LRU with O(1) state per frame.  Two full
    sweeps guarantee termination: after the first, every unpinned frame's
    bit is clear, so only an all-pinned pool fails.  Evicting a dirty
    frame writes the page back first ({e write-back}, not write-through:
    clean evictions cost no disk write).

    {2 Sequential scans}

    {!fetch_sequential} is the scan hot path used by
    [Heap_file.iter]/[iter_slices].  It differs from {!fetch} in three
    ways, none of which change logical-I/O accounting (a scan fetch is
    still exactly one hit or one miss):

    - {e scan resistance}: sequential fetches never set the reference
      bit, and their victim search takes only frames that are already
      unreferenced — without clearing anyone else's bit.  A scan larger
      than the pool therefore recycles its own trail of frames and cannot
      flush the referenced working set.  (If every frame is referenced or
      pinned, the search falls back to the normal clearing sweep so the
      fetch still terminates.)
    - {e readahead}: a sequential miss prefetches up to the pool's
      readahead budget of upcoming non-resident pages of the scan's page
      run in one {!Disk.read_batch}, so they are hits when the scan
      reaches them.  Prefetched frames sit unpinned and unreferenced.
    - {e last-page memo}: consecutive fetches of the same page (common
      when a scan re-reads the tail page) skip the hash-table probe via a
      one-entry memo.  The memo needs no invalidation: it is validated by
      the frame's page id, which eviction resets.

    {2 Observability}

    When instrumentation is enabled ({!Cddpd_obs.Registry.enable}), every
    pool also feeds the process-wide counters [buffer_pool.hits],
    [buffer_pool.misses], [buffer_pool.evictions],
    [buffer_pool.write_backs], [buffer_pool.scan_fetches] and
    [buffer_pool.readahead_pages]; {!stats} remains the per-pool view. *)

type t

type handle
(** A pinned page.  The underlying buffer stays valid until {!unpin};
    after that the handle is dead and must not be reused. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  scan_fetches : int;  (** calls to {!fetch_sequential} (each also a hit or miss) *)
  readahead_pages : int;  (** pages prefetched ahead of sequential misses *)
}

val default_readahead : int
(** Default readahead budget (pages prefetched per sequential miss). *)

val create : ?capacity:int -> ?readahead:int -> Disk.t -> t
(** [create ?capacity ?readahead disk] makes a pool holding at most
    [capacity] pages (default 256).  [readahead] bounds how many upcoming
    pages a sequential miss prefetches (default {!default_readahead};
    [0] disables readahead; internally clamped to [capacity - 2] so a
    batch can never evict its own pinned leader).  Raises
    [Invalid_argument] if [capacity <= 0] or [readahead < 0]. *)

val capacity : t -> int
(** The number of frames. *)

val fetch : t -> int -> handle
(** [fetch t pid] pins page [pid], reading it from disk on a miss (a hit
    costs no disk I/O).  Fetching a page that is already pinned returns
    the same frame with its pin count incremented.  Raises [Failure] if a
    miss finds every frame pinned. *)

val fetch_sequential : t -> run:int array -> pos:int -> handle
(** [fetch_sequential t ~run ~pos] pins page [run.(pos)] as part of a
    sequential scan over the page run [run] (scan order, one array per
    scan) — scan-resistant eviction plus readahead of [run.(pos+1 ...)]
    on a miss; see the module preamble.  Exactly one hit or one miss is
    counted, like {!fetch}.  Raises [Failure] if a miss finds every frame
    pinned. *)

val allocate : t -> handle
(** Allocate a fresh zeroed page on the disk and pin it (dirty), without a
    disk read. *)

val page : handle -> Page.t
(** The pinned page buffer.  Mutating it requires {!mark_dirty}. *)

val page_id : handle -> int
(** The disk page id of the pinned page. *)

val mark_dirty : handle -> unit
(** Record that the page buffer was modified so eviction writes it back. *)

val unpin : t -> handle -> unit
(** Release one pin (must pair with the {!fetch}/{!allocate} that took
    it).  The page stays cached; it merely becomes evictable once its pin
    count reaches zero.  Raises [Invalid_argument] if the handle is not
    pinned. *)

val flush_all : t -> unit
(** Write all dirty pages back to disk (pages stay cached). *)

val drop_cache : t -> unit
(** Flush and forget every unpinned frame: the next access to any page is a
    disk read.  Used to measure cold-cache costs.  Raises [Failure] if a
    frame is still pinned. *)

val stats : t -> stats
(** Cumulative per-pool counters. *)

val reset_stats : t -> unit
(** Zero the counters. *)
