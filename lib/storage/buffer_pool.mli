(** Buffer pool over a {!Disk} with clock (second-chance) replacement.

    All heap-file and B+-tree page accesses go through the pool.  A fetched
    page is pinned until released; unpinned frames are replaced by a clock
    sweep (approximate LRU, amortised O(1) per miss), writing dirty pages
    back to disk.  Hit and miss counters let the engine report logical vs.
    physical I/O.

    {2 Pin/unpin discipline}

    Every handle returned by {!fetch} or {!allocate} holds one pin; the
    caller must {!unpin} it exactly once, after which the handle must not
    be used again (its frame may be reassigned to another page at any later
    miss).  Pins nest: fetching an already-pinned page increments its pin
    count, and the frame is only evictable when the count returns to zero.
    Holding many pins concurrently risks [Failure] on a miss — eviction
    needs at least one unpinned frame — so access methods pin briefly:
    fetch, read/write, unpin.  Mutating a pinned page's buffer is only
    durable if {!mark_dirty} is called before the pin is released.

    {2 Clock-sweep eviction policy}

    Frames form a circular list with a sweep hand.  A page access sets the
    frame's reference bit; a miss with no free frame advances the hand,
    skipping pinned frames and clearing reference bits, and takes the first
    unpinned frame whose bit is already clear.  Each frame therefore
    survives one full revolution after its last access (the "second
    chance"), approximating LRU with O(1) state per frame.  Two full
    sweeps guarantee termination: after the first, every unpinned frame's
    bit is clear, so only an all-pinned pool fails.  Evicting a dirty
    frame writes the page back first ({e write-back}, not write-through:
    clean evictions cost no disk write).

    {2 Observability}

    When instrumentation is enabled ({!Cddpd_obs.Registry.enable}), every
    pool also feeds the process-wide counters [buffer_pool.hits],
    [buffer_pool.misses], [buffer_pool.evictions] and
    [buffer_pool.write_backs]; {!stats} remains the per-pool view. *)

type t

type handle
(** A pinned page.  The underlying buffer stays valid until {!unpin};
    after that the handle is dead and must not be reused. *)

type stats = { hits : int; misses : int; evictions : int }

val create : ?capacity:int -> Disk.t -> t
(** [create ?capacity disk] makes a pool holding at most [capacity] pages
    (default 256).  Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int
(** The number of frames. *)

val fetch : t -> int -> handle
(** [fetch t pid] pins page [pid], reading it from disk on a miss (a hit
    costs no disk I/O).  Fetching a page that is already pinned returns
    the same frame with its pin count incremented.  Raises [Failure] if a
    miss finds every frame pinned. *)

val allocate : t -> handle
(** Allocate a fresh zeroed page on the disk and pin it (dirty), without a
    disk read. *)

val page : handle -> Page.t
(** The pinned page buffer.  Mutating it requires {!mark_dirty}. *)

val page_id : handle -> int
(** The disk page id of the pinned page. *)

val mark_dirty : handle -> unit
(** Record that the page buffer was modified so eviction writes it back. *)

val unpin : t -> handle -> unit
(** Release one pin (must pair with the {!fetch}/{!allocate} that took
    it).  The page stays cached; it merely becomes evictable once its pin
    count reaches zero.  Raises [Invalid_argument] if the handle is not
    pinned. *)

val flush_all : t -> unit
(** Write all dirty pages back to disk (pages stay cached). *)

val drop_cache : t -> unit
(** Flush and forget every unpinned frame: the next access to any page is a
    disk read.  Used to measure cold-cache costs.  Raises [Failure] if a
    frame is still pinned. *)

val stats : t -> stats
(** Cumulative hit/miss/eviction counts. *)

val reset_stats : t -> unit
(** Zero the counters. *)
