(* Bottom-up merge sort specialised to [int array].  The generic
   [Array.sort] is a heapsort driven through a comparator closure — about
   2n log n indirect calls; merging unboxed ints with inline comparisons
   does the same job in roughly a quarter of the time, which matters when
   sorting packed index keys on the bulk-load path. *)

let sort (a : int array) =
  let n = Array.length a in
  if n > 1 then begin
    let b = Array.make n 0 in
    let src = ref a and dst = ref b in
    let width = ref 1 in
    while !width < n do
      let s = !src and d = !dst in
      let i = ref 0 in
      while !i < n do
        let mid = min (!i + !width) n and hi = min (!i + (2 * !width)) n in
        let l = ref !i and r = ref mid and o = ref !i in
        while !l < mid && !r < hi do
          let x = Array.unsafe_get s !l and y = Array.unsafe_get s !r in
          if x <= y then begin
            Array.unsafe_set d !o x;
            incr l
          end
          else begin
            Array.unsafe_set d !o y;
            incr r
          end;
          incr o
        done;
        while !l < mid do
          Array.unsafe_set d !o (Array.unsafe_get s !l);
          incr l;
          incr o
        done;
        while !r < hi do
          Array.unsafe_set d !o (Array.unsafe_get s !r);
          incr r;
          incr o
        done;
        i := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := 2 * !width
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end
