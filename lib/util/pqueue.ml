(* Leftist heap: the rank (null-path length) of the left child is always at
   least that of the right child, so merge runs in O(log n). *)

type 'a t = Leaf | Node of { rank : int; prio : float; value : 'a; left : 'a t; right : 'a t }

let empty = Leaf

let is_empty t = match t with Leaf -> true | Node _ -> false

let rank t = match t with Leaf -> 0 | Node { rank; _ } -> rank

let rec merge a b =
  match (a, b) with
  | Leaf, t | t, Leaf -> t
  | Node { prio = pa; _ }, Node { prio = pb; _ } when pa > pb -> merge b a
  | Node { prio; value; left; right; _ }, other ->
      let merged = merge right other in
      if rank left >= rank merged then
        Node { rank = rank merged + 1; prio; value; left; right = merged }
      else Node { rank = rank left + 1; prio; value; left = merged; right = left }

let insert t prio value =
  merge t (Node { rank = 1; prio; value; left = Leaf; right = Leaf })

let pop_min t =
  match t with
  | Leaf -> None
  | Node { prio; value; left; right; _ } -> Some (prio, value, merge left right)

let rec size t =
  match t with Leaf -> 0 | Node { left; right; _ } -> 1 + size left + size right

let of_list items = List.fold_left (fun acc (prio, value) -> insert acc prio value) empty items
