type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let render_cells cells =
    String.concat " | "
      (List.map2
         (fun (cell, align) width -> pad align width cell)
         (List.combine cells t.aligns)
         widths)
  in
  let body =
    List.map
      (fun row ->
        match row with Separator -> rule | Cells cells -> render_cells cells)
      rows
  in
  String.concat "\n" (render_cells t.headers :: rule :: body)

(* cddpd-lint: allow lib-hygiene — Text_table.print is an explicit stdout API; the --metrics sink and experiments call it on purpose *)
let print t = print_endline (render t)
