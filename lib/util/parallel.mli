(** Chunked data-parallel loops over OCaml 5 domains.

    A tiny, dependency-free fork/join helper: the index range [0, n) is
    split into one contiguous chunk per domain, chunk 0 runs on the
    calling domain and the rest on freshly spawned domains, and every
    domain is joined before the call returns.  Spawning is the only
    synchronisation — bodies must confine themselves to disjoint state
    (e.g. distinct array slots) or domain-local accumulators returned for
    a sequential merge.

    The degree of parallelism is resolved by {!resolve_jobs}: an explicit
    [jobs] argument wins, then the process default ({!set_default_jobs},
    seeded from the [CDDPD_JOBS] environment variable), then
    {!ncpu}.  Small inputs degrade to a plain sequential loop — with one
    resolved job nothing is ever spawned, so [CDDPD_JOBS=1] is a global
    kill switch. *)

val ncpu : unit -> int
(** [Domain.recommended_domain_count ()]: hardware parallelism available
    to this process. *)

val env_jobs : unit -> int option
(** A positive integer parse of the [CDDPD_JOBS] environment variable, if
    any — exposed so other job pools (e.g. the experiment cell runner)
    can honor the same variable without coupling to this module's
    {!set_default_jobs} state. *)

val default_jobs : unit -> int
(** The process-wide default degree of parallelism: the last
    {!set_default_jobs} value if any, else a positive integer parse of
    [CDDPD_JOBS], else {!ncpu}. *)

val set_default_jobs : int -> unit
(** Override the process default (the [--jobs] CLI flag).  Raises
    [Invalid_argument] if [jobs < 1]. *)

val resolve_jobs : ?jobs:int -> ?min_per_domain:int -> n:int -> unit -> int
(** The number of domains a loop over [n] indices will actually use:
    [jobs] (default {!default_jobs}) clamped so no domain receives fewer
    than [min_per_domain] indices (default 1) and never more domains than
    indices.  Always at least 1. *)

val map_chunks :
  ?jobs:int -> ?min_per_domain:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [map_chunks ~n f] partitions [0, n) into contiguous chunks, runs
    [f ~lo ~hi] (the half-open range [lo, hi)) once per chunk — in
    parallel when more than one job resolves — and returns the chunk
    results in index order.  [n <= 0] returns [[]].  An exception raised
    by any chunk is re-raised after all domains are joined. *)

val for_ : ?jobs:int -> ?min_per_domain:int -> n:int -> (int -> unit) -> unit
(** [for_ ~n f] runs [f i] for every [i] in [0, n), chunked across
    domains as in {!map_chunks}.  Within a chunk, indices run in
    increasing order. *)
