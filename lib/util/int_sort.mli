(** Monomorphic sorting of [int array]s.

    [Array.sort] pays an indirect comparator call per comparison (and, as
    a heapsort, makes about twice as many comparisons as a merge sort).
    This merge sort compares unboxed ints inline, which is ~4x faster —
    the difference between the index bulk-load path being a win or a wash
    at 100k rows. *)

val sort : int array -> unit
(** Sort ascending, in place.  Allocates one scratch array of the same
    length; not stable (irrelevant for ints). *)
