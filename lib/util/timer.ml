let time f =
  (* cddpd-lint: allow determinism — Timer is the sanctioned wall-clock wrapper; callers opt into measurement explicitly *)
  let start = Unix.gettimeofday () in
  let result = f () in
  (* cddpd-lint: allow determinism — Timer is the sanctioned wall-clock wrapper; callers opt into measurement explicitly *)
  (result, Unix.gettimeofday () -. start)

let time_median ?(repeats = 3) f =
  if repeats <= 0 then invalid_arg "Timer.time_median: repeats <= 0";
  let samples = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let r, dt = time f in
    result := Some r;
    samples.(i) <- dt
  done;
  let median = Stats.percentile samples 50.0 in
  match !result with
  | Some r -> (r, median)
  | None -> assert false
