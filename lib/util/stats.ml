let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  total xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let histogram_counts xs ~buckets ~lo ~hi =
  if buckets <= 0 then invalid_arg "Stats.histogram_counts: buckets <= 0";
  if hi <= lo then invalid_arg "Stats.histogram_counts: hi <= lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (buckets - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
