let ncpu () = Domain.recommended_domain_count ()

let env_jobs () =
  match Sys.getenv_opt "CDDPD_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | Some _ | None -> None)

(* cddpd-lint: allow domain-unsafe-state — set once by the CLI on the main domain before any parallel region; workers never touch it *)
let default = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None -> ( match env_jobs () with Some j -> j | None -> ncpu ())

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Parallel.set_default_jobs: jobs < 1";
  default := Some jobs

let resolve_jobs ?jobs ?(min_per_domain = 1) ~n () =
  if n <= 0 then 1
  else
    let requested = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let by_work = if min_per_domain <= 1 then n else max 1 (n / min_per_domain) in
    max 1 (min requested (min n by_work))

(* Chunk c of d covers [bound c, bound (c+1)): sizes differ by at most one,
   earlier chunks get the remainder. *)
let bound ~n ~d c =
  let base = n / d and extra = n mod d in
  (c * base) + min c extra

let map_chunks ?jobs ?min_per_domain ~n f =
  if n <= 0 then []
  else
    let d = resolve_jobs ?jobs ?min_per_domain ~n () in
    if d = 1 then [ f ~lo:0 ~hi:n ]
    else begin
      let lo c = bound ~n ~d c and hi c = bound ~n ~d (c + 1) in
      let spawned =
        Array.init (d - 1) (fun i ->
            let c = i + 1 in
            Domain.spawn (fun () -> f ~lo:(lo c) ~hi:(hi c)))
      in
      (* Chunk 0 runs here, so d jobs occupy d domains in total.  Join
         everything before re-raising, or a stray domain would outlive the
         exception. *)
      let first = try Ok (f ~lo:(lo 0) ~hi:(hi 0)) with e -> Error e in
      let rest = Array.map (fun dom -> try Ok (Domain.join dom) with e -> Error e) spawned in
      let results =
        Array.to_list (Array.append [| first |] rest)
        |> List.map (function Ok v -> v | Error e -> raise e)
      in
      results
    end

let for_ ?jobs ?min_per_domain ~n f =
  ignore
    (map_chunks ?jobs ?min_per_domain ~n (fun ~lo ~hi ->
         for i = lo to hi - 1 do
           f i
         done))
