module Ast = Cddpd_sql.Ast

type params = { window : int; threshold : float; min_segment : int }

let default_params = { window = 250; threshold = 0.5; min_segment = 250 }

let predicate_columns statement =
  List.map
    (fun pred ->
      match pred with Ast.Cmp { column; _ } | Ast.Between { column; _ } -> column)
    (Ast.where_of statement)

let column_profile statements =
  let counts = Hashtbl.create 8 in
  let total = ref 0 in
  Array.iter
    (fun statement ->
      List.iter
        (fun column ->
          incr total;
          Hashtbl.replace counts column
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts column)))
        (predicate_columns statement))
    statements;
  if !total = 0 then []
  else
    Hashtbl.to_seq counts
    |> Seq.map (fun (column, count) ->
           (column, float_of_int count /. float_of_int !total))
    |> List.of_seq
    |> List.sort (fun (c1, f1) (c2, f2) ->
           let c = Float.compare f2 f1 in
           if c <> 0 then c else String.compare c1 c2)

let profile_distance p1 p2 =
  let columns =
    List.sort_uniq String.compare (List.map fst p1 @ List.map fst p2)
  in
  let freq profile column = Option.value ~default:0.0 (List.assoc_opt column profile) in
  List.fold_left
    (fun acc column -> acc +. Float.abs (freq p1 column -. freq p2 column))
    0.0 columns

let check_params params =
  if params.window <= 0 then invalid_arg "Segmenter: window <= 0";
  if params.min_segment <= 0 then invalid_arg "Segmenter: min_segment <= 0";
  if params.threshold < 0.0 then invalid_arg "Segmenter: negative threshold"

let boundaries ?(params = default_params) statements =
  check_params params;
  let n = Array.length statements in
  let w = params.window in
  if n < 2 * w then []
  else begin
    let out = ref [] in
    let last_boundary = ref 0 in
    (* Slide in window-sized strides: compare the window before [i] with
       the window after it. *)
    let i = ref w in
    while !i + w <= n do
      let before = Array.sub statements (!i - w) w in
      let after = Array.sub statements !i w in
      let d = profile_distance (column_profile before) (column_profile after) in
      if d > params.threshold && !i - !last_boundary >= params.min_segment then begin
        out := !i :: !out;
        last_boundary := !i
      end;
      i := !i + w
    done;
    List.rev !out
  end

let segment ?(params = default_params) statements =
  let cuts = boundaries ~params statements in
  let n = Array.length statements in
  let rec build start cuts acc =
    match cuts with
    | [] -> List.rev (Array.sub statements start (n - start) :: acc)
    | cut :: rest -> build cut rest (Array.sub statements start (cut - start) :: acc)
  in
  if n = 0 then [||] else Array.of_list (build 0 cuts [])

let suggest_k ?(params = default_params) statements =
  List.length (boundaries ~params statements)
