module Rng = Cddpd_util.Rng

type segment = { mix : Mix.t; n_queries : int }

type t = { segments : segment list }

let make segments =
  (match segments with
  | [] -> invalid_arg "Spec.make: no segments"
  | _ :: _ -> ());
  List.iter
    (fun s -> if s.n_queries <= 0 then invalid_arg "Spec.make: non-positive segment size")
    segments;
  { segments }

let of_letters ?(queries_per_segment = 500) letters =
  if String.length letters = 0 then invalid_arg "Spec.of_letters: empty string";
  make
    (List.init (String.length letters) (fun i ->
         { mix = Mix.of_letter letters.[i]; n_queries = queries_per_segment }))

let segments t = t.segments

let n_segments t = List.length t.segments

let total_queries t = List.fold_left (fun acc s -> acc + s.n_queries) 0 t.segments

let mix_letters t = String.concat "" (List.map (fun s -> Mix.name s.mix) t.segments)

let generate t ~table ~value_range ~seed =
  let rng = Rng.create seed in
  let gen_segment segment =
    (* Each segment gets a split stream so inserting segments earlier in
       the spec does not shift later segments' queries. *)
    let segment_rng = Rng.split rng in
    (* Explicit loop: queries must be drawn in order for determinism
       (Array.init's evaluation order is unspecified). *)
    let first = Mix.sample_query segment.mix ~table ~value_range segment_rng in
    let queries = Array.make segment.n_queries first in
    for i = 1 to segment.n_queries - 1 do
      queries.(i) <- Mix.sample_query segment.mix ~table ~value_range segment_rng
    done;
    queries
  in
  Array.of_list (List.map gen_segment t.segments)

let generate_flat t ~table ~value_range ~seed =
  Array.concat (Array.to_list (generate t ~table ~value_range ~seed))

let pp ppf t =
  Format.fprintf ppf "@[<v>workload: %d segments, %d queries@," (n_segments t)
    (total_queries t);
  List.iter
    (fun s -> Format.fprintf ppf "  %d x %a@," s.n_queries Mix.pp s.mix)
    t.segments;
  Format.fprintf ppf "@]"
