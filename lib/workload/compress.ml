type t = {
  cluster_of : int array;
  representatives : int array;
  counts : int array;
}

let n_clusters t = Array.length t.representatives

let cluster ~key items =
  let n = Array.length items in
  let ids : (string, int) Hashtbl.t = Hashtbl.create (max 16 (n / 4)) in
  let cluster_of = Array.make n 0 in
  let reps = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i item ->
      let k = key item in
      match Hashtbl.find_opt ids k with
      | Some id -> cluster_of.(i) <- id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.replace ids k id;
          reps := i :: !reps;
          cluster_of.(i) <- id)
    items;
  let representatives = Array.of_list (List.rev !reps) in
  let counts = Array.make !next 0 in
  Array.iter (fun id -> counts.(id) <- counts.(id) + 1) cluster_of;
  { cluster_of; representatives; counts }

let cluster_keys keys = cluster ~key:Fun.id keys
