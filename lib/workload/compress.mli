(** Workload compression: clustering by a caller-supplied identity key.

    CoPhy-style workload compression groups statements whose what-if
    costs are provably equal, so a cost matrix pays one evaluation per
    {e cluster} instead of one per statement.  This module implements the
    generic, engine-free half of that: partition an array by an arbitrary
    string key.  The key that makes the partition {e exact} — the cost
    identity of [Cddpd_engine.Cost_key], under which equal keys imply
    equal cost under every design — is supplied by the caller
    ({!Cddpd_core.Problem.build}, the pruner); this library never sees
    the cost model.

    Clusters are numbered by first occurrence, and each cluster's
    representative is its first member, so the clustering is
    deterministic and order-stable. *)

type t = {
  cluster_of : int array;  (** item index -> cluster id *)
  representatives : int array;
      (** cluster id -> index of its first (representative) item *)
  counts : int array;  (** cluster id -> number of members *)
}

val cluster : key:('a -> string) -> 'a array -> t
(** [cluster ~key items] partitions [items] by [key].  [key] is called
    exactly once per item, in index order. *)

val cluster_keys : string array -> t
(** [cluster_keys keys] partitions by the precomputed key array itself:
    [cluster_keys (Array.map key items) = cluster ~key items].  For
    callers that already paid the keying pass (serve ingest computes
    each window's cost-identity keys once and shares them between drift
    detection and problem building). *)

val n_clusters : t -> int
