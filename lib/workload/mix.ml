module Rng = Cddpd_util.Rng
module Ast = Cddpd_sql.Ast
module Tuple = Cddpd_storage.Tuple

type t = { name : string; weights : (string * float) array }

let make ~name weights =
  (match weights with
  | [] -> invalid_arg "Mix.make: no columns"
  | _ :: _ -> ());
  List.iter
    (fun (_, w) -> if w <= 0.0 then invalid_arg "Mix.make: weights must be positive")
    weights;
  let columns = List.map fst weights in
  if List.length (List.sort_uniq String.compare columns) <> List.length columns then
    invalid_arg "Mix.make: duplicate columns";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  { name; weights = Array.of_list (List.map (fun (c, w) -> (c, w /. total)) weights) }

let name t = t.name

let weights t = Array.to_list t.weights

let weight t column =
  Array.fold_left
    (fun acc (c, w) -> if String.equal c column then acc +. w else acc)
    0.0 t.weights

let columns t = Array.to_list (Array.map fst t.weights)

let sample_column t rng = Rng.pick_weighted rng t.weights

let sample_query t ~table ~value_range rng =
  let column = sample_column t rng in
  let value = Rng.int rng value_range in
  Ast.Select
    {
      projection = Ast.Columns [ column ];
      table;
      where = [ Ast.Cmp { column; op = Ast.Eq; value = Tuple.Int value } ];
    }

let mix_a = make ~name:"A" [ ("a", 55.0); ("b", 25.0); ("c", 10.0); ("d", 10.0) ]
let mix_b = make ~name:"B" [ ("a", 25.0); ("b", 55.0); ("c", 10.0); ("d", 10.0) ]
let mix_c = make ~name:"C" [ ("a", 10.0); ("b", 10.0); ("c", 55.0); ("d", 25.0) ]
let mix_d = make ~name:"D" [ ("a", 10.0); ("b", 10.0); ("c", 25.0); ("d", 55.0) ]

let of_letter c =
  match Char.uppercase_ascii c with
  | 'A' -> mix_a
  | 'B' -> mix_b
  | 'C' -> mix_c
  | 'D' -> mix_d
  | c -> invalid_arg (Printf.sprintf "Mix.of_letter: %C is not one of A-D" c)

let pp ppf t =
  Format.fprintf ppf "%s[%s]" t.name
    (String.concat "; "
       (List.map (fun (c, w) -> Printf.sprintf "%s:%.0f%%" c (w *. 100.0)) (weights t)))
