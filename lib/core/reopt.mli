(** Incremental re-optimization sessions.

    A [Reopt.t] is the state an online advisor (the serve loop) keeps
    {e between} re-optimizations, so that consecutive drift events do not
    pay from-scratch costing and cold-started search:

    - a persistent {!Problem.Reuse} session: the shared
      {!Cddpd_engine.Cost_cache} (statement entries and the structure
      build memo stay warm across builds) plus the previous build's
      compressed cluster table and TRANS matrix, which
      {!Problem.build} consults to copy unchanged exec columns and
      TRANS entries and recost only the delta;
    - warm-started solving: {!solve} seeds the exact solvers'
      branch-and-bound with the incumbent's hold-at-C0 what-if cost
      (a feasible zero-change schedule, hence always a valid upper
      bound), via {!Optimizer.solve}'s [upper_bound].

    Everything is bit-identical to the from-scratch path: reuse only
    copies floats whose {!Cddpd_engine.Cost_key} cost identity proves
    them equal, statistics changes are fenced by per-table fingerprints,
    and warm bounds never change what the exact solvers return — only
    how fast.  Property-tested over random drift traces in
    [test_serve.ml].

    Sessions assume fixed cost-model parameters (same contract as
    {!Cddpd_engine.Cost_cache}) and are not domain-safe: drive one
    session from one domain (builds parallelise internally). *)

type t

type stats = {
  reoptimizations : int;  (** problems built through this session *)
  warm_start_bounds : int;  (** solves seeded with a hold-at-C0 bound *)
  reuse : Problem.Reuse.tallies;
      (** exec/TRANS reuse accounting (zeros when reuse is disabled) *)
  cache : Cddpd_engine.Cost_cache.stats;
      (** the persistent cache's hits/misses/evictions/generations
          (zeros when reuse is disabled — builds then use per-build
          caches) *)
}

val create : ?reuse:bool -> Cddpd_engine.Database.t -> t
(** A fresh session over [db].  [reuse] (default [true]) enables the
    persistent {!Problem.Reuse} state; with [reuse:false] every
    {!build_problem} is a from-scratch build (the [--no-reopt-reuse]
    escape hatch) and only warm-started solving remains. *)

val reuse_enabled : t -> bool

val build_problem :
  ?statement_keys:string array -> t -> Advisor.request -> Problem.t
(** {!Advisor.build_problem} threaded through the session's reuse state.
    [statement_keys] as in {!Problem.build} — precomputed cost-identity
    keys for the request's concatenated steps, valid only under the
    current statistics (callers check fingerprints). *)

val solve :
  ?k:int ->
  ?jobs:int ->
  ?max_paths:int ->
  ?max_queue:int ->
  t ->
  Problem.t ->
  method_name:Solution.method_name ->
  (Solution.t, Optimizer.error) result
(** {!Optimizer.solve} with the branch-and-bound seeded by the
    incumbent's hold-at-C0 cost of [problem] (always a valid bound: the
    hold schedule makes zero changes).  Identical results to an unseeded
    solve, measured by [reopt.warm_start_bound_used]. *)

val flush : t -> unit
(** Drop the reuse summary and build memo (see {!Problem.Reuse.flush});
    the next build recosts from scratch.  No-op when reuse is off. *)

val stats : t -> stats
(** Session accounting, readable with instrumentation off — what
    [cddpd serve --status] reports between re-optimizations. *)
