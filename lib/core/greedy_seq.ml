module Kaware = Cddpd_graph.Kaware
module Obs = Cddpd_obs

let m_configs_kept = Obs.Registry.counter "advisor.greedy_seq.configs_kept"
let m_configs_pruned = Obs.Registry.counter "advisor.greedy_seq.configs_pruned"

let reduced_config_ids problem =
  let n_configs = Problem.n_configs problem in
  let best_for_step row =
    let best = ref 0 in
    for c = 1 to n_configs - 1 do
      if row.(c) < row.(!best) then best := c
    done;
    !best
  in
  let winners = Array.to_list (Array.map best_for_step problem.Problem.exec) in
  let rec dedup seen acc ids =
    match ids with
    | [] -> List.rev acc
    | id :: rest ->
        if List.mem id seen then dedup seen acc rest
        else dedup (id :: seen) (id :: acc) rest
  in
  dedup [] [] (problem.Problem.initial :: winners)

let solve problem ~k =
  Obs.Span.with_span "advisor.greedy_seq" @@ fun () ->
  let kept = reduced_config_ids problem in
  if Obs.Registry.enabled () then begin
    Obs.Counter.add m_configs_kept (List.length kept);
    Obs.Counter.add m_configs_pruned (Problem.n_configs problem - List.length kept)
  end;
  let sub, mapping = Problem.restrict problem kept in
  match
    Kaware.solve (Problem.to_graph sub) ~k ~initial:(Problem.initial_for_counting sub)
  with
  | None -> None
  | Some (cost, sub_path) -> Some (cost, Array.map (fun j -> mapping.(j)) sub_path)
