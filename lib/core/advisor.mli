(** The advisor façade: workload in, recommended design schedule out.

    Wires together candidate generation, configuration-space construction,
    what-if cost matrices, and the chosen solver.  This is the API a DBA
    (or the CLI in [bin/]) uses; the individual pieces remain available
    for finer control. *)

type request = {
  steps : Cddpd_sql.Ast.statement array array;
      (** the workload, one statement bag per step *)
  table : string;  (** the table under design *)
  candidates : Cddpd_catalog.Structure.t list option;
      (** explicit candidate structures (indexes and/or views), or [None]
          to derive them from the workload *)
  composite_pairs : int;  (** composite index candidates to derive (default 2) *)
  max_candidates : int option;
      (** the [--candidates] flag: cap on generated candidates.  Setting
          this (or [composite_width]) switches auto-derivation from the
          paper's pairs heuristic to the multi-column generator
          {!Candidates.generate} *)
  composite_width : int option;
      (** the [--composite-width] flag: widest composite index the
          multi-column generator derives (generator default 3) *)
  prune : int option;
      (** the [--prune] flag: [Some budget] what-if-scores the candidates
          against the compressed workload, drops benefit-dominated ones,
          keeps at most [budget], and builds the space with
          {!Pruner.space} instead of {!Config_space.enumerate} *)
  compress_workload : bool;
      (** the [--compress-workload] flag: cluster statements by cost
          identity in {!Problem.build} (bit-identical; default [false]) *)
  max_configs : int option;
      (** configuration budget for the pruned space (default 512); only
          read when [prune] is set *)
  max_structures_per_config : int option;
      (** at most this many structures per configuration (default [Some 1],
          the paper's design space) *)
  space_bound_bytes : int option;  (** Definition 1's b, if any *)
  initial : Cddpd_catalog.Design.t;  (** C0 *)
  count_initial_change : bool;
  k : int option;  (** change budget; [None] = unconstrained *)
  method_name : Solution.method_name;
  jobs : int option;
      (** domains for {!Problem.build}; [None] = process default *)
  cost_cache : bool option;
      (** memoize what-if calls; [None] = process default (on) *)
  max_paths : int option;
      (** complete-path budget for the [Ranking] method; [None] = solver
          default (1_000_000) *)
  max_queue : int option;
      (** frontier-size budget for the [Ranking] method; [None] =
          unbounded *)
}

val default_request :
  steps:Cddpd_sql.Ast.statement array array -> table:string -> request
(** Unconstrained request with auto-derived candidates, single-index
    configurations, empty C0. *)

type recommendation = {
  problem : Problem.t;
  solution : Solution.t;
  schedule : Cddpd_catalog.Design.t array;  (** design per step *)
}

val build_problem :
  ?reuse:Problem.Reuse.t ->
  ?statement_keys:string array ->
  Cddpd_engine.Database.t ->
  request ->
  Problem.t
(** Candidate generation + space enumeration + cost matrices, without
    solving — the entry point for callers that solve the same instance
    repeatedly or under their own policy (the serve loop, the k-selection
    examples).  [reuse] and [statement_keys] are passed through to
    {!Problem.build} (the incremental re-optimization path; see
    {!Reopt}).  Raises [Invalid_argument] on inconsistent requests. *)

val recommend :
  Cddpd_engine.Database.t -> request -> (recommendation, Optimizer.error) result
(** Build the problem from the database's statistics and solve it.  Raises
    [Invalid_argument] on inconsistent requests (e.g. [k] missing for a
    constrained method, unknown table). *)

val recommend_exn : Cddpd_engine.Database.t -> request -> recommendation
(** Like {!recommend}; raises [Failure] on solver errors. *)
