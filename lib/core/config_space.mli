(** Configuration spaces: the candidate physical designs the optimizers
    choose among.

    A space is an ordered, duplicate-free array of designs; optimizers work
    with integer config ids (indexes into the array).  The paper's
    experiments use a 7-configuration space: the empty design plus one
    design per candidate index. *)

type t

val of_designs : Cddpd_catalog.Design.t list -> t
(** Build a space from explicit designs (duplicates collapsed, order of
    first occurrence kept).  Raises [Invalid_argument] on an empty list. *)

val single_index : Cddpd_catalog.Index_def.t list -> t
(** The empty design plus one singleton design per candidate index — the
    paper's "at most one index" space.  Duplicated candidates are
    collapsed. *)

val single_structure : Cddpd_catalog.Structure.t list -> t
(** Like {!single_index} over arbitrary structures (indexes and
    materialized views). *)

val enumerate :
  candidates:Cddpd_catalog.Structure.t list ->
  ?max_structures:int ->
  ?space_bound_bytes:int ->
  size_of:(Cddpd_catalog.Structure.t -> int) ->
  unit ->
  t
(** All subsets of [candidates] with at most [max_structures] members
    (default: no limit) whose total size fits [space_bound_bytes] (default:
    no limit) — the SIZE(C) <= b constraint of Definition 1 applied at
    space construction time.  The empty design is always included.  Raises
    [Invalid_argument] when more than 20 candidates are given without a
    [max_structures] cap (2^20 designs is past the point where the
    exponential algorithms are usable); the error names the two ways out —
    cap [max_structures], or build a dominance-pruned space with
    {!Pruner.space}. *)

val size : t -> int
(** Number of configurations. *)

val design : t -> int -> Cddpd_catalog.Design.t
(** The design with the given id.  Raises [Invalid_argument] when out of
    range. *)

val designs : t -> Cddpd_catalog.Design.t array
(** All designs (a copy). *)

val id_of : t -> Cddpd_catalog.Design.t -> int option
(** Reverse lookup. *)

val id_of_exn : t -> Cddpd_catalog.Design.t -> int

val restrict : t -> int list -> t * int array
(** [restrict t ids] is the sub-space containing the given configs (deduped,
    in given order) together with the mapping from new ids back to old ids.
    Used by GREEDY-SEQ to run the exact solver on a reduced space. *)

val pp : Format.formatter -> t -> unit
