module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure

type t = { designs : Design.t array }

module Design_set = Set.Make (struct
  type t = Design.t

  let compare = Design.compare
end)

(* First occurrence wins; set-backed so spaces of hundreds of configs
   dedup in O(n log n), not O(n^2). *)
let dedup designs =
  let rec go seen acc designs =
    match designs with
    | [] -> List.rev acc
    | d :: rest ->
        if Design_set.mem d seen then go seen acc rest
        else go (Design_set.add d seen) (d :: acc) rest
  in
  go Design_set.empty [] designs

let of_designs designs =
  (match designs with
  | [] -> invalid_arg "Config_space.of_designs: empty"
  | _ :: _ -> ());
  { designs = Array.of_list (dedup designs) }

let single_structure candidates =
  of_designs
    (Design.empty :: List.map (fun s -> Design.add_structure s Design.empty) candidates)

let single_index candidates = single_structure (List.map Structure.index candidates)

let enumerate ~candidates ?max_structures ?space_bound_bytes ~size_of () =
  let n = List.length candidates in
  (match max_structures with
  | None when n > 20 ->
      invalid_arg
        (Printf.sprintf
           "Config_space.enumerate: %d candidates with no max_structures cap would \
            enumerate 2^%d subsets; pass ~max_structures to bound configuration \
            width, or build a pruned space with Cddpd_core.Pruner.space (the \
            `cddpd recommend --prune` pipeline)"
           n n)
  | _ -> ());
  let cap = match max_structures with None -> n | Some c -> c in
  let fits design =
    match space_bound_bytes with
    | None -> true
    | Some bound ->
        Design.fold (fun structure acc -> acc + size_of structure) design 0 <= bound
  in
  (* Depth-first subset enumeration, pruning on cardinality. *)
  let out = ref [] in
  let rec go design count candidates =
    match candidates with
    | [] -> if fits design then out := design :: !out
    | c :: rest ->
        go design count rest;
        if count < cap then go (Design.add_structure c design) (count + 1) rest
  in
  go Design.empty 0 candidates;
  (* Ensure the empty design survives even if space_bound excludes others. *)
  let designs = dedup (Design.empty :: List.rev !out) in
  { designs = Array.of_list designs }

let size t = Array.length t.designs

let design t i =
  if i < 0 || i >= Array.length t.designs then
    invalid_arg "Config_space.design: id out of range";
  t.designs.(i)

let designs t = Array.copy t.designs

let id_of t d =
  let n = Array.length t.designs in
  let rec go i =
    if i >= n then None else if Design.equal t.designs.(i) d then Some i else go (i + 1)
  in
  go 0

let id_of_exn t d =
  match id_of t d with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Config_space.id_of_exn: design %s not in space" (Design.name d))

let restrict t ids =
  let rec go seen acc ids =
    match ids with
    | [] -> List.rev acc
    | id :: rest ->
        if id < 0 || id >= Array.length t.designs then
          invalid_arg "Config_space.restrict: id out of range"
        else if List.mem id seen then go seen acc rest
        else go (id :: seen) (id :: acc) rest
  in
  let kept = go [] [] ids in
  if kept = [] then invalid_arg "Config_space.restrict: empty selection";
  let mapping = Array.of_list kept in
  ({ designs = Array.map (fun id -> t.designs.(id)) mapping }, mapping)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d configurations:@," (size t);
  Array.iteri (fun i d -> Format.fprintf ppf "  %d: %a@," i Design.pp d) t.designs;
  Format.fprintf ppf "@]"
