module Obs = Cddpd_obs

let m_merge_iterations = Obs.Registry.counter "advisor.merging.merge_iterations"
let m_candidates_evaluated = Obs.Registry.counter "advisor.merging.candidates_evaluated"

type run = { config : int; start : int; len : int }

(* exec cost of steps [start, start+len) under config c, via prefix sums *)
let make_run_exec problem =
  let n_steps = Problem.n_steps problem in
  let n_configs = Problem.n_configs problem in
  let prefix = Array.make_matrix n_configs (n_steps + 1) 0.0 in
  for c = 0 to n_configs - 1 do
    for s = 0 to n_steps - 1 do
      prefix.(c).(s + 1) <- prefix.(c).(s) +. problem.Problem.exec.(s).(c)
    done
  done;
  fun c ~start ~len -> prefix.(c).(start + len) -. prefix.(c).(start)

let runs_of_path path =
  let n = Array.length path in
  let rec go start acc =
    if start >= n then List.rev acc
    else begin
      let config = path.(start) in
      let stop = ref start in
      while !stop < n && path.(!stop) = config do
        incr stop
      done;
      go !stop ({ config; start; len = !stop - start } :: acc)
    end
  in
  Array.of_list (go 0 [])

let path_of_runs n runs =
  let path = Array.make n 0 in
  Array.iter
    (fun run ->
      for s = run.start to run.start + run.len - 1 do
        path.(s) <- run.config
      done)
    runs;
  path

let changes_of_runs problem runs =
  let boundary = Array.length runs - 1 in
  match Problem.initial_for_counting problem with
  | Some init when Array.length runs > 0 && runs.(0).config <> init -> boundary + 1
  | Some _ | None -> boundary

(* Coalesce adjacent runs with equal configs. *)
let coalesce runs =
  let rec go acc runs =
    match (acc, runs) with
    | _, [] -> List.rev acc
    | prev :: acc', run :: rest when prev.config = run.config ->
        go ({ prev with len = prev.len + run.len } :: acc') rest
    | _, run :: rest -> go (run :: acc) rest
  in
  Array.of_list (go [] (Array.to_list runs))

let refine problem ~k path =
  if k < 0 then invalid_arg "Merging.refine: negative k";
  if Array.length path <> Problem.n_steps problem then
    invalid_arg "Merging.refine: wrong path length";
  Obs.Span.with_span "advisor.merging" @@ fun () ->
  let run_exec = make_run_exec problem in
  let trans = problem.Problem.trans in
  let initial = problem.Problem.initial in
  let n_configs = Problem.n_configs problem in
  let merge_step runs =
    (* Find the adjacent pair (r, r+1) and replacement config c' with the
       smallest penalty. *)
    Obs.Counter.incr m_merge_iterations;
    let n_runs = Array.length runs in
    if Obs.Registry.enabled () then
      Obs.Counter.add m_candidates_evaluated (max 0 (n_runs - 1) * n_configs);
    let best = ref None in
    for r = 0 to n_runs - 2 do
      let left = runs.(r) and right = runs.(r + 1) in
      let cprev = if r = 0 then initial else runs.(r - 1).config in
      let cnext = if r + 2 < n_runs then Some runs.(r + 2).config else None in
      let trans_next c = match cnext with Some next -> trans.(c).(next) | None -> 0.0 in
      let old_cost =
        trans.(cprev).(left.config)
        +. run_exec left.config ~start:left.start ~len:left.len
        +. trans.(left.config).(right.config)
        +. run_exec right.config ~start:right.start ~len:right.len
        +. trans_next right.config
      in
      for c = 0 to n_configs - 1 do
        let new_cost =
          trans.(cprev).(c)
          +. run_exec c ~start:left.start ~len:(left.len + right.len)
          +. trans_next c
        in
        let penalty = new_cost -. old_cost in
        match !best with
        | Some (best_penalty, _, _) when best_penalty <= penalty -> ()
        | Some _ | None -> best := Some (penalty, r, c)
      done
    done;
    match !best with
    | None -> runs (* single run: nothing to merge *)
    | Some (_, r, c) ->
        let merged =
          { config = c; start = runs.(r).start; len = runs.(r).len + runs.(r + 1).len }
        in
        let rebuilt =
          Array.concat
            [ Array.sub runs 0 r; [| merged |]; Array.sub runs (r + 2) (Array.length runs - r - 2) ]
        in
        coalesce rebuilt
  in
  let rec loop runs =
    if changes_of_runs problem runs <= k then runs
    else if Array.length runs <= 1 then
      (* Only reachable when the initial change is counted and k = 0: the
         sole feasible schedule stays on the initial configuration. *)
      [| { config = initial; start = 0; len = Problem.n_steps problem } |]
    else loop (merge_step runs)
  in
  path_of_runs (Problem.n_steps problem) (loop (runs_of_path path))
