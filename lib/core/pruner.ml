module Ast = Cddpd_sql.Ast
module Cost_model = Cddpd_engine.Cost_model
module Cost_key = Cddpd_engine.Cost_key
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Compress = Cddpd_workload.Compress
module Obs = Cddpd_obs

let m_pruned = Obs.Registry.counter "candidates.pruned"
let m_clusters = Obs.Registry.counter "workload.clusters"

type scored = {
  structure : Structure.t;
  benefit : float array;
  weighted_benefit : float;
  size_bytes : int;
  build_cost : float;
}

let table_of statement =
  match statement with
  | Ast.Select { table; _ }
  | Ast.Select_agg { table; _ }
  | Ast.Insert { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Update { table; _ } ->
      table

let score ~params ~stats_of ~steps candidates =
  let flat = Array.concat (Array.to_list steps) in
  if Array.length flat = 0 then invalid_arg "Pruner.score: empty workload";
  let clustering =
    Compress.cluster
      ~key:(fun statement -> Cost_key.statement (stats_of (table_of statement)) statement)
      flat
  in
  let n_clusters = Compress.n_clusters clustering in
  Obs.Counter.add m_clusters n_clusters;
  let reps = Array.map (fun i -> flat.(i)) clustering.Compress.representatives in
  let base =
    Array.map
      (fun rep ->
        Cost_model.statement_cost params (stats_of (table_of rep)) Design.empty rep)
      reps
  in
  List.map
    (fun structure ->
      let stats = stats_of (Structure.table structure) in
      let design = Design.add_structure structure Design.empty in
      let benefit =
        Array.init n_clusters (fun r ->
            let rep = reps.(r) in
            base.(r)
            -. Cost_model.statement_cost params (stats_of (table_of rep)) design rep)
      in
      let weighted_benefit =
        let acc = ref 0.0 in
        Array.iteri
          (fun r b ->
            acc := !acc +. (float_of_int clustering.Compress.counts.(r) *. b))
          benefit;
        !acc
      in
      {
        structure;
        benefit;
        weighted_benefit;
        size_bytes = Cost_model.structure_size_bytes params ~stats structure;
        build_cost = Cost_model.structure_build_cost params stats structure;
      })
    candidates

let rank s1 s2 =
  let c = Float.compare s2.weighted_benefit s1.weighted_benefit in
  if c <> 0 then c
  else
    let c = Int.compare s1.size_bytes s2.size_bytes in
    if c <> 0 then c
    else String.compare (Cost_key.structure s1.structure) (Cost_key.structure s2.structure)

(* [s'] dominates [s]: at least as beneficial on every cluster, no larger,
   no more expensive to build.  Swapping [s] for [s'] in any atomic
   schedule then never raises EXEC (per-cluster benefits bound every
   step's sum), never raises TRANS (build cost no higher, drop cost
   identical), and never violates a SIZE bound [s] satisfied — which is
   the exactness argument the property tests check. *)
let dominates s' s =
  s'.size_bytes <= s.size_bytes
  && s'.build_cost <= s.build_cost
  && Array.for_all2 (fun b' b -> b' >= b) s'.benefit s.benefit

let dominance_prune ?max_candidates scored =
  Obs.Span.with_span "problem.prune" @@ fun () ->
  let ranked = List.sort rank scored in
  (* Best-first: a candidate is dropped only when an already-surviving one
     dominates it, so one member of every mutually-dominating clique
     survives. *)
  let survivors =
    List.fold_left
      (fun survivors s ->
        if List.exists (fun s' -> dominates s' s) survivors then survivors
        else s :: survivors)
      [] ranked
  in
  let survivors = List.rev survivors in
  let survivors =
    match max_candidates with
    | None -> survivors
    | Some cap ->
        if cap < 1 then invalid_arg "Pruner.dominance_prune: max_candidates < 1";
        List.filteri (fun i _ -> i < cap) survivors
  in
  let pruned = List.length scored - List.length survivors in
  Obs.Counter.add m_pruned pruned;
  (survivors, pruned)

exception Budget_exhausted

let space ?(max_structures = 1) ?space_bound_bytes ?(max_configs = 512) scored =
  if max_structures < 1 then invalid_arg "Pruner.space: max_structures < 1";
  if max_configs < 1 then invalid_arg "Pruner.space: max_configs < 1";
  let ranked = Array.of_list (List.sort rank scored) in
  let n = Array.length ranked in
  let fits total_size =
    match space_bound_bytes with None -> true | Some bound -> total_size <= bound
  in
  let out = ref [ Design.empty ] in
  let emitted = ref 1 in
  let emit design =
    if !emitted >= max_configs then raise Budget_exhausted;
    out := design :: !out;
    incr emitted
  in
  (* Atomic closure first — every surviving candidate gets its singleton
     configuration — then wider subsets of the best-ranked candidates in
     rank-lexicographic order, so the config budget is spent on the
     top-scoring combinations. *)
  (try
     for i = 0 to n - 1 do
       if fits ranked.(i).size_bytes then
         emit (Design.add_structure ranked.(i).structure Design.empty)
     done;
     for width = 2 to max_structures do
       let rec combos start chosen_rev size count =
         if count = width then emit (List.fold_left (fun d s -> Design.add_structure s d) Design.empty chosen_rev)
         else
           for i = start to n - 1 do
             let size = size + ranked.(i).size_bytes in
             if fits size then
               combos (i + 1) (ranked.(i).structure :: chosen_rev) size (count + 1)
           done
       in
       combos 0 [] 0 0
     done
   with Budget_exhausted -> ());
  Config_space.of_designs (List.rev !out)
