module Ast = Cddpd_sql.Ast
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure
module Obs = Cddpd_obs

let m_generated = Obs.Registry.counter "candidates.generated"

let is_indexable table column =
  match Schema.column_type table column with
  | Some Schema.Int_type -> true
  | Some Schema.Text_type | None -> false

let predicate_column pred =
  match pred with
  | Ast.Cmp { column; _ } | Ast.Between { column; _ } -> column

let tally table bump statement =
  let consider statement_table where =
    if String.equal statement_table table.Schema.name then
      List.iter
        (fun pred ->
          let column = predicate_column pred in
          if is_indexable table column then bump column)
        where
  in
  match statement with
  | Ast.Insert _ -> ()
  | Ast.Select select -> consider select.Ast.table select.Ast.where
  | Ast.Select_agg { table = statement_table; where; _ } -> consider statement_table where
  | Ast.Delete { table = statement_table; where } -> consider statement_table where
  | Ast.Update { table = statement_table; where; _ } -> consider statement_table where

let column_frequencies table statements =
  let counts = Hashtbl.create 8 in
  let bump column =
    Hashtbl.replace counts column (1 + Option.value ~default:0 (Hashtbl.find_opt counts column))
  in
  Array.iter (tally table bump) statements;
  (* cddpd-lint: allow determinism — fold builds an unordered tally; the result is sorted on the next line *)
  Hashtbl.fold (fun column count acc -> (column, count) :: acc) counts []
  |> List.sort (fun (c1, n1) (c2, n2) ->
         let c = Int.compare n2 n1 in
         if c <> 0 then c else String.compare c1 c2)

let from_statements table ?(composite_pairs = 0) statements =
  let frequencies = column_frequencies table statements in
  let singles =
    List.map
      (fun (column, _) -> Index_def.make ~table:table.Schema.name ~columns:[ column ])
      frequencies
  in
  (* Composite candidates: pair the predicate columns two by two in
     frequency order.  A composite I(x,y) serves x-queries by covering
     seek and y-queries by covering leaf scan, which is exactly why the
     paper's space includes I(a,b) and I(c,d); pairing by frequency
     recovers those on mix-style workloads. *)
  let rec pair_up remaining taken =
    if taken >= composite_pairs then []
    else
      match remaining with
      | (x, _) :: (y, _) :: rest ->
          Index_def.make ~table:table.Schema.name ~columns:[ x; y ]
          :: pair_up rest (taken + 1)
      | [ _ ] | [] -> []
  in
  let composites = pair_up frequencies 0 in
  let all = singles @ composites in
  (* Deduplicate while keeping order. *)
  let rec dedup seen acc items =
    match items with
    | [] -> List.rev acc
    | i :: rest ->
        if List.exists (Index_def.equal i) seen then dedup seen acc rest
        else dedup (i :: seen) (i :: acc) rest
  in
  dedup [] [] all

let view_candidates table statements =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun statement ->
      match statement with
      | Ast.Select_agg { table = statement_table; group_by; _ }
        when String.equal statement_table table.Schema.name
             && is_indexable table group_by ->
          Hashtbl.replace seen group_by ()
      | Ast.Select_agg _ | Ast.Select _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
          ())
    statements;
  (* cddpd-lint: allow determinism — fold collects keys that are sorted by String.compare below *)
  Hashtbl.fold (fun group_by () acc -> group_by :: acc) seen []
  |> List.sort String.compare
  |> List.map (fun group_by -> View_def.make ~table:table.Schema.name ~group_by)

let structures_from_statements table ?composite_pairs statements =
  List.map Structure.index (from_statements table ?composite_pairs statements)
  @ List.map Structure.view (view_candidates table statements)

(* -- multi-column syntactic generation -------------------------------------- *)

(* The scaled pipeline's generator: instead of frequency-paired composites
   it derives, per statement, the column lists an access-path planner can
   actually exploit — the equality prefix, the prefix extended by the
   range column, and the covering extension — then closes the set under
   prefixes and merges high-frequency candidates pairwise (index merging).
   The result is ordered best-first by how many statements produced each
   column list. *)

let rec take n xs =
  if n <= 0 then [] else match xs with [] -> [] | x :: rest -> x :: take (n - 1) rest

let dedup_columns columns =
  let rec go seen acc columns =
    match columns with
    | [] -> List.rev acc
    | c :: rest ->
        if List.mem c seen then go seen acc rest else go (c :: seen) (c :: acc) rest
  in
  go [] [] columns

(* The column lists statement [s] makes useful as index keys, widest first.
   Only SELECTs generate composites: aggregates are answered by views and
   DML only seeks on its predicate columns (wide indexes are pure
   maintenance weight there). *)
let statement_column_lists table ~max_width statement =
  let indexable = is_indexable table in
  let split_where where =
    let eq, range =
      List.partition
        (fun pred -> match pred with Ast.Cmp { op = Ast.Eq; _ } -> true | _ -> false)
        where
    in
    ( dedup_columns (List.filter indexable (List.map predicate_column eq)),
      dedup_columns (List.filter indexable (List.map predicate_column range)) )
  in
  let singles columns = List.map (fun c -> [ c ]) columns in
  match statement with
  | Ast.Insert _ -> []
  | Ast.Select_agg _ -> []
  | Ast.Delete { table = t; where } | Ast.Update { table = t; where; _ } ->
      if not (String.equal t table.Schema.name) then []
      else
        let eq, range = split_where where in
        singles (eq @ range)
  | Ast.Select select ->
      if not (String.equal select.Ast.table table.Schema.name) then []
      else
        let eq, range = split_where select.Ast.where in
        let range_head = match range with [] -> [] | r :: _ -> [ r ] in
        let sargable = take max_width (eq @ range_head) in
        let covering =
          match select.Ast.projection with
          | Ast.Star -> []
          | Ast.Columns _ ->
              let referenced =
                dedup_columns
                  (List.filter indexable (Ast.referenced_columns statement))
              in
              let rest = List.filter (fun c -> not (List.mem c sargable)) referenced in
              let extended = take max_width (sargable @ rest) in
              if List.length extended > List.length sargable then [ extended ] else []
        in
        let composites =
          (if List.length sargable >= 2 then [ sargable ] else []) @ covering
        in
        composites @ singles (eq @ range)

let column_list_key columns = String.concat "," columns

(* Merge two column lists, first one's order winning (index merging). *)
let merge_columns ~max_width a b =
  take max_width (dedup_columns (a @ b))

let generate table ?(max_width = 3) ?max_candidates statements =
  if max_width < 1 then invalid_arg "Candidates.generate: max_width < 1";
  Obs.Span.with_span "candidates.generate" @@ fun () ->
  (* Tally every per-statement column list; [order] keeps first-occurrence
     order so the result never depends on hash-table iteration. *)
  let freq = Hashtbl.create 64 in
  let order = ref [] in
  let add_list weight columns =
    match columns with
    | [] -> ()
    | _ -> (
        let key = column_list_key columns in
        match Hashtbl.find_opt freq key with
        | Some (count, _) -> Hashtbl.replace freq key (count + weight, columns)
        | None ->
            Hashtbl.replace freq key (weight, columns);
            order := key :: !order)
  in
  Array.iter
    (fun statement ->
      List.iter (add_list 1) (statement_column_lists table ~max_width statement))
    statements;
  let keys_in_order () = List.rev !order in
  (* Index merging: walk candidates best-first and merge rank-adjacent
     pairs, the classic way one wider index replaces two narrower ones. *)
  let ranked () =
    List.map (fun key -> Hashtbl.find freq key) (keys_in_order ())
    |> List.sort (fun (n1, c1) (n2, c2) ->
           let c = Int.compare n2 n1 in
           if c <> 0 then c
           else
             let c = Int.compare (List.length c1) (List.length c2) in
             if c <> 0 then c
             else String.compare (column_list_key c1) (column_list_key c2))
  in
  let rec merge_adjacent pairs =
    match pairs with
    | (_, a) :: ((_, b) :: _ as rest) ->
        let merged = merge_columns ~max_width a b in
        if not (List.equal String.equal merged a) then add_list 0 merged;
        merge_adjacent rest
    | [ _ ] | [] -> ()
  in
  merge_adjacent (ranked ());
  (* Prefix closure: every proper prefix of a candidate (merged ones
     included) is itself a candidate, with zero own frequency unless some
     statement generated it. *)
  List.iter
    (fun key ->
      let _, columns = Hashtbl.find freq key in
      let rec close_prefixes prefix_rev remaining =
        match remaining with
        | [] | [ _ ] -> () (* the full list is already a candidate *)
        | c :: rest ->
            add_list 0 (List.rev (c :: prefix_rev));
            close_prefixes (c :: prefix_rev) rest
      in
      close_prefixes [] columns)
    (keys_in_order ());
  let indexes =
    List.map
      (fun (_, columns) -> Index_def.make ~table:table.Schema.name ~columns)
      (ranked ())
  in
  let all =
    List.map Structure.index indexes
    @ List.map Structure.view (view_candidates table statements)
  in
  let all = match max_candidates with None -> all | Some cap -> take cap all in
  Obs.Counter.add m_generated (List.length all);
  all
