module Ast = Cddpd_sql.Ast
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure

let is_indexable table column =
  match Schema.column_type table column with
  | Some Schema.Int_type -> true
  | Some Schema.Text_type | None -> false

let predicate_column pred =
  match pred with
  | Ast.Cmp { column; _ } | Ast.Between { column; _ } -> column

let tally table bump statement =
  let consider statement_table where =
    if String.equal statement_table table.Schema.name then
      List.iter
        (fun pred ->
          let column = predicate_column pred in
          if is_indexable table column then bump column)
        where
  in
  match statement with
  | Ast.Insert _ -> ()
  | Ast.Select select -> consider select.Ast.table select.Ast.where
  | Ast.Select_agg { table = statement_table; where; _ } -> consider statement_table where
  | Ast.Delete { table = statement_table; where } -> consider statement_table where
  | Ast.Update { table = statement_table; where; _ } -> consider statement_table where

let column_frequencies table statements =
  (* cddpd-lint: allow poly-hash — string column-name keys *)
  let counts = Hashtbl.create 8 in
  let bump column =
    Hashtbl.replace counts column (1 + Option.value ~default:0 (Hashtbl.find_opt counts column))
  in
  Array.iter (tally table bump) statements;
  Hashtbl.fold (fun column count acc -> (column, count) :: acc) counts []
  |> List.sort (fun (c1, n1) (c2, n2) ->
         let c = Int.compare n2 n1 in
         if c <> 0 then c else String.compare c1 c2)

let from_statements table ?(composite_pairs = 0) statements =
  let frequencies = column_frequencies table statements in
  let singles =
    List.map
      (fun (column, _) -> Index_def.make ~table:table.Schema.name ~columns:[ column ])
      frequencies
  in
  (* Composite candidates: pair the predicate columns two by two in
     frequency order.  A composite I(x,y) serves x-queries by covering
     seek and y-queries by covering leaf scan, which is exactly why the
     paper's space includes I(a,b) and I(c,d); pairing by frequency
     recovers those on mix-style workloads. *)
  let rec pair_up remaining taken =
    if taken >= composite_pairs then []
    else
      match remaining with
      | (x, _) :: (y, _) :: rest ->
          Index_def.make ~table:table.Schema.name ~columns:[ x; y ]
          :: pair_up rest (taken + 1)
      | [ _ ] | [] -> []
  in
  let composites = pair_up frequencies 0 in
  let all = singles @ composites in
  (* Deduplicate while keeping order. *)
  let rec dedup seen acc items =
    match items with
    | [] -> List.rev acc
    | i :: rest ->
        if List.exists (Index_def.equal i) seen then dedup seen acc rest
        else dedup (i :: seen) (i :: acc) rest
  in
  dedup [] [] all

let view_candidates table statements =
  (* cddpd-lint: allow poly-hash — string group-by column keys *)
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun statement ->
      match statement with
      | Ast.Select_agg { table = statement_table; group_by; _ }
        when String.equal statement_table table.Schema.name
             && is_indexable table group_by ->
          Hashtbl.replace seen group_by ()
      | Ast.Select_agg _ | Ast.Select _ | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
          ())
    statements;
  Hashtbl.fold (fun group_by () acc -> group_by :: acc) seen []
  |> List.sort String.compare
  |> List.map (fun group_by -> View_def.make ~table:table.Schema.name ~group_by)

let structures_from_statements table ?composite_pairs statements =
  List.map Structure.index (from_statements table ?composite_pairs statements)
  @ List.map Structure.view (view_candidates table statements)
