module Database = Cddpd_engine.Database
module Cost_cache = Cddpd_engine.Cost_cache

type stats = {
  reoptimizations : int;
  warm_start_bounds : int;
  reuse : Problem.Reuse.tallies;
  cache : Cost_cache.stats;
}

type t = {
  db : Database.t;
  reuse : Problem.Reuse.t option;
  mutable reoptimizations : int;
  mutable warm_start_bounds : int;
}

let create ?(reuse = true) db =
  {
    db;
    reuse = (if reuse then Some (Problem.Reuse.create ()) else None);
    reoptimizations = 0;
    warm_start_bounds = 0;
  }

let reuse_enabled t = Option.is_some t.reuse

let flush t = Option.iter Problem.Reuse.flush t.reuse

let build_problem ?statement_keys t request =
  t.reoptimizations <- t.reoptimizations + 1;
  Advisor.build_problem ?reuse:t.reuse ?statement_keys t.db request

(* The incumbent's hold-at-C0 schedule: stay at the initial configuration
   for every step.  Zero changes, so it is feasible for every k >= 0, and
   its cost — computed through the instance's own graph, so floats
   associate exactly as the solvers' accumulators do — is a valid
   branch-and-bound upper bound on the constrained optimum.  (A measured
   I/O tally would NOT be: it can undercut the what-if optimum and prune
   the true solution away.) *)
let hold_bound problem =
  let hold = Array.make (Problem.n_steps problem) problem.Problem.initial in
  Problem.path_cost problem hold

let solve ?k ?jobs ?max_paths ?max_queue t problem ~method_name =
  t.warm_start_bounds <- t.warm_start_bounds + 1;
  Optimizer.solve problem ~method_name ?k ?jobs ?max_paths ?max_queue
    ~upper_bound:(hold_bound problem) ()

let stats t =
  let reuse, cache =
    match t.reuse with
    | Some r -> (Problem.Reuse.tallies r, Problem.Reuse.cache_stats r)
    | None ->
        ( {
            Problem.Reuse.builds = 0;
            exec_columns_reused = 0;
            clusters_recosted = 0;
            trans_blocks_reused = 0;
            stats_invalidations = 0;
          },
          Cost_cache.stats Cost_cache.disabled )
  in
  {
    reoptimizations = t.reoptimizations;
    warm_start_bounds = t.warm_start_bounds;
    reuse;
    cache;
  }
