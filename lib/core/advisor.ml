module Database = Cddpd_engine.Database
module Cost_model = Cddpd_engine.Cost_model
module Design = Cddpd_catalog.Design

type request = {
  steps : Cddpd_sql.Ast.statement array array;
  table : string;
  candidates : Cddpd_catalog.Structure.t list option;
  composite_pairs : int;
  max_candidates : int option;
  composite_width : int option;
  prune : int option;
  compress_workload : bool;
  max_configs : int option;
  max_structures_per_config : int option;
  space_bound_bytes : int option;
  initial : Design.t;
  count_initial_change : bool;
  k : int option;
  method_name : Solution.method_name;
  jobs : int option;
  cost_cache : bool option;
  max_paths : int option;
  max_queue : int option;
}

let default_request ~steps ~table =
  {
    steps;
    table;
    candidates = None;
    composite_pairs = 2;
    max_candidates = None;
    composite_width = None;
    prune = None;
    compress_workload = false;
    max_configs = None;
    max_structures_per_config = Some 1;
    space_bound_bytes = None;
    initial = Design.empty;
    count_initial_change = false;
    k = None;
    method_name = Solution.Unconstrained;
    jobs = None;
    cost_cache = None;
    max_paths = None;
    max_queue = None;
  }

type recommendation = {
  problem : Problem.t;
  solution : Solution.t;
  schedule : Design.t array;
}

let build_space db request =
  let schema =
    match Database.schema db request.table with
    | Some schema -> schema
    | None -> invalid_arg (Printf.sprintf "Advisor: unknown table %s" request.table)
  in
  let scaled_generation =
    request.composite_width <> None || request.max_candidates <> None
  in
  let candidates =
    match request.candidates with
    | Some candidates -> candidates
    | None ->
        let flat = Array.concat (Array.to_list request.steps) in
        if scaled_generation then
          Candidates.generate schema
            ?max_width:request.composite_width
            ?max_candidates:request.max_candidates flat
        else
          Candidates.structures_from_statements schema
            ~composite_pairs:request.composite_pairs flat
  in
  let params = Database.params db in
  let stats_of table = Database.table_stats db table in
  match request.prune with
  | None ->
      let size_of structure =
        Cost_model.structure_size_bytes params
          ~stats:(stats_of (Cddpd_catalog.Structure.table structure))
          structure
      in
      Config_space.enumerate ~candidates
        ?max_structures:request.max_structures_per_config
        ?space_bound_bytes:request.space_bound_bytes ~size_of ()
  | Some budget ->
      let scored = Pruner.score ~params ~stats_of ~steps:request.steps candidates in
      let survivors, _pruned = Pruner.dominance_prune ~max_candidates:budget scored in
      let max_structures =
        match request.max_structures_per_config with
        | Some m -> m
        | None -> max 1 (List.length survivors)
      in
      Pruner.space ~max_structures ?space_bound_bytes:request.space_bound_bytes
        ?max_configs:request.max_configs survivors

let build_problem ?reuse ?statement_keys db request =
  let space = build_space db request in
  Problem.build ~params:(Database.params db)
    ~stats_of:(fun table -> Database.table_stats db table)
    ~steps:request.steps ~space ~initial:request.initial
    ~count_initial_change:request.count_initial_change ?jobs:request.jobs
    ?cost_cache:request.cost_cache ~compress_workload:request.compress_workload
    ?reuse ?statement_keys ()

let recommend db request =
  let problem = build_problem db request in
  match
    Optimizer.solve problem ~method_name:request.method_name ?k:request.k
      ?jobs:request.jobs ?max_paths:request.max_paths ?max_queue:request.max_queue
      ()
  with
  | Ok solution ->
      Ok { problem; solution; schedule = Solution.schedule problem solution }
  | Error e -> Error e

let recommend_exn db request =
  match recommend db request with
  | Ok recommendation -> recommendation
  | Error Optimizer.Infeasible -> failwith "Advisor: infeasible change budget"
  | Error (Optimizer.Ranking_gave_up g) ->
      failwith
        (Printf.sprintf "Advisor: ranking gave up after %d paths (%s)"
           g.Cddpd_graph.Ranking.examined
           (Cddpd_graph.Ranking.reason_to_string g.Cddpd_graph.Ranking.reason))
