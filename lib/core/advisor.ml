module Database = Cddpd_engine.Database
module Cost_model = Cddpd_engine.Cost_model
module Design = Cddpd_catalog.Design

type request = {
  steps : Cddpd_sql.Ast.statement array array;
  table : string;
  candidates : Cddpd_catalog.Structure.t list option;
  composite_pairs : int;
  max_structures_per_config : int option;
  space_bound_bytes : int option;
  initial : Design.t;
  count_initial_change : bool;
  k : int option;
  method_name : Solution.method_name;
  jobs : int option;
  cost_cache : bool option;
  max_paths : int option;
  max_queue : int option;
}

let default_request ~steps ~table =
  {
    steps;
    table;
    candidates = None;
    composite_pairs = 2;
    max_structures_per_config = Some 1;
    space_bound_bytes = None;
    initial = Design.empty;
    count_initial_change = false;
    k = None;
    method_name = Solution.Unconstrained;
    jobs = None;
    cost_cache = None;
    max_paths = None;
    max_queue = None;
  }

type recommendation = {
  problem : Problem.t;
  solution : Solution.t;
  schedule : Design.t array;
}

let build_space db request =
  let schema =
    match Database.schema db request.table with
    | Some schema -> schema
    | None -> invalid_arg (Printf.sprintf "Advisor: unknown table %s" request.table)
  in
  let candidates =
    match request.candidates with
    | Some candidates -> candidates
    | None ->
        let flat = Array.concat (Array.to_list request.steps) in
        Candidates.structures_from_statements schema
          ~composite_pairs:request.composite_pairs flat
  in
  let params = Database.params db in
  let size_of structure =
    Cost_model.structure_size_bytes params
      ~stats:(Database.table_stats db (Cddpd_catalog.Structure.table structure))
      structure
  in
  Config_space.enumerate ~candidates ?max_structures:request.max_structures_per_config
    ?space_bound_bytes:request.space_bound_bytes ~size_of ()

let build_problem db request =
  let space = build_space db request in
  Problem.build ~params:(Database.params db)
    ~stats_of:(fun table -> Database.table_stats db table)
    ~steps:request.steps ~space ~initial:request.initial
    ~count_initial_change:request.count_initial_change ?jobs:request.jobs
    ?cost_cache:request.cost_cache ()

let recommend db request =
  let problem = build_problem db request in
  match
    Optimizer.solve problem ~method_name:request.method_name ?k:request.k
      ?jobs:request.jobs ?max_paths:request.max_paths ?max_queue:request.max_queue
      ()
  with
  | Ok solution ->
      Ok { problem; solution; schedule = Solution.schedule problem solution }
  | Error e -> Error e

let recommend_exn db request =
  match recommend db request with
  | Ok recommendation -> recommendation
  | Error Optimizer.Infeasible -> failwith "Advisor: infeasible change budget"
  | Error (Optimizer.Ranking_gave_up g) ->
      failwith
        (Printf.sprintf "Advisor: ranking gave up after %d paths (%s)"
           g.Cddpd_graph.Ranking.examined
           (Cddpd_graph.Ranking.reason_to_string g.Cddpd_graph.Ranking.reason))
