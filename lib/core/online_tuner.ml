type params = { window : int; horizon : int; threshold : float }

let default_params = { window = 2; horizon = 4; threshold = 1.0 }

let decide ~params ~window_cost ~trans_cost ~n_configs ~current ~window_len () =
  if window_len <= 0.0 then invalid_arg "Online_tuner.decide: window_len must be positive";
  let current_cost = window_cost current in
  let best = ref current in
  let best_cost = ref current_cost in
  for c = 0 to n_configs - 1 do
    let cost = window_cost c in
    if cost < !best_cost then begin
      best := c;
      best_cost := cost
    end
  done;
  if !best = current then current
  else
    let benefit =
      (current_cost -. !best_cost) *. float_of_int params.horizon /. window_len
    in
    if benefit > params.threshold *. trans_cost !best then !best else current

let run ?(params = default_params) problem =
  if params.window <= 0 || params.horizon <= 0 then
    invalid_arg "Online_tuner.run: window and horizon must be positive";
  let n_steps = Problem.n_steps problem in
  let n_configs = Problem.n_configs problem in
  let exec = problem.Problem.exec in
  let trans = problem.Problem.trans in
  let path = Array.make n_steps problem.Problem.initial in
  let current = ref problem.Problem.initial in
  for s = 0 to n_steps - 1 do
    path.(s) <- !current;
    (* Evaluate the window [s - window + 1 .. s] after executing step s. *)
    let window_start = max 0 (s - params.window + 1) in
    let window_cost c =
      let acc = ref 0.0 in
      for i = window_start to s do
        acc := !acc +. exec.(i).(c)
      done;
      !acc
    in
    current :=
      decide ~params ~window_cost
        ~trans_cost:(fun c -> trans.(!current).(c))
        ~n_configs ~current:!current
        ~window_len:(float_of_int (s - window_start + 1))
        ()
  done;
  path
