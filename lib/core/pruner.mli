(** Benefit-dominance candidate pruning (CoPhy-style).

    The scaled pipeline's middle stage: between candidate generation
    ({!Candidates.generate}) and problem construction ({!Problem.build})
    sits a what-if scoring pass that (1) compresses the workload into
    cost-identity clusters ({!Cddpd_workload.Compress} keyed by
    {!Cddpd_engine.Cost_key}), (2) scores every candidate structure with
    its per-cluster benefit vector, (3) drops candidates whose vector is
    dominated by a smaller, cheaper-to-build survivor, and (4) builds a
    configuration space from the survivors without enumerating
    [2^candidates] subsets.

    Scoring costs one what-if call per (cluster, candidate) — the whole
    point of compressing first — and pruning is exact for atomic
    (one-structure-per-config) spaces: replacing a dominated structure by
    its dominator in any schedule never raises EXEC, TRANS, or SIZE, so
    some optimal schedule survives the prune (property-tested).  For
    wider configurations the per-structure dominance argument no longer
    covers interactions (a dominated index can still win inside a
    multi-structure config), so the prune is a heuristic there. *)

type scored = {
  structure : Cddpd_catalog.Structure.t;
  benefit : float array;
      (** per workload cluster: EXEC(rep, {}) - EXEC(rep, {structure}) —
          negative when the structure is pure maintenance weight *)
  weighted_benefit : float;  (** benefits weighted by cluster populations *)
  size_bytes : int;
  build_cost : float;
}

val score :
  params:Cddpd_engine.Cost_model.params ->
  stats_of:(string -> Cddpd_engine.Table_stats.t) ->
  steps:Cddpd_sql.Ast.statement array array ->
  Cddpd_catalog.Structure.t list ->
  scored list
(** What-if-score the candidates against the compressed workload, in the
    given candidate order.  Adds the cluster count to the
    [workload.clusters] counter.  Raises [Invalid_argument] on an empty
    workload. *)

val dominance_prune : ?max_candidates:int -> scored list -> scored list * int
(** Survivors (best-first: weighted benefit desc, size asc, key asc) and
    the number dropped.  A candidate is dropped iff an already-surviving
    candidate beats-or-ties it on every cluster benefit, size, and build
    cost, so one member of every mutually-dominating clique survives;
    [max_candidates] then keeps only the top of the ranking.  Runs under
    the [problem.prune] span and adds to the [candidates.pruned]
    counter. *)

val space :
  ?max_structures:int ->
  ?space_bound_bytes:int ->
  ?max_configs:int ->
  scored list ->
  Config_space.t
(** The pruned configuration space: the empty design, one singleton per
    surviving candidate that fits [space_bound_bytes], then subsets of
    2..[max_structures] (default 1) structures in rank-lexicographic
    order (best-scoring combinations first), stopping at [max_configs]
    (default 512) configurations.  Replaces {!Config_space.enumerate}'s
    exponential blowup for large candidate sets. *)
