(** Candidate index generation from a workload.

    The paper deliberately leaves candidate generation to prior work
    (Chaudhuri/Narasayya-style tools); this module implements the classic
    syntactic approach those tools start from: a single-column index for
    every column appearing in a sargable predicate, plus composite indexes
    for the highest-frequency column pairs (which, on the paper's
    workloads, recovers I(a,b) and I(c,d)).  Only integer columns are
    considered (the engine's index key restriction). *)

val from_statements :
  Cddpd_catalog.Schema.table ->
  ?composite_pairs:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.Index_def.t list
(** [from_statements table ~composite_pairs stmts] returns candidates for
    [table], most-frequently-useful first: one single-column index per
    predicate column, then up to [composite_pairs] (default 0) two-column
    indexes pairing each of the most frequent predicate columns with the
    column most often co-selected with it (queries that filter on one
    column and project the other benefit from the covering composite). *)

val column_frequencies :
  Cddpd_catalog.Schema.table -> Cddpd_sql.Ast.statement array -> (string * int) list
(** Predicate-column occurrence counts, most frequent first (ties broken
    by name). *)

val view_candidates :
  Cddpd_catalog.Schema.table ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.View_def.t list
(** One materialized-view candidate per grouping column observed in the
    workload's aggregate queries (integer columns only). *)

val structures_from_statements :
  Cddpd_catalog.Schema.table ->
  ?composite_pairs:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.Structure.t list
(** Index candidates ({!from_statements}) followed by view candidates. *)

val generate :
  Cddpd_catalog.Schema.table ->
  ?max_width:int ->
  ?max_candidates:int ->
  Cddpd_sql.Ast.statement array ->
  Cddpd_catalog.Structure.t list
(** The scaled pipeline's multi-column generator (the [--candidates] /
    [--composite-width] path).  Per SELECT it derives the column lists an
    access-path planner can exploit — the equality prefix, the prefix
    extended by the statement's range column, and the covering extension
    (every referenced column, for index-only scans) — each truncated to
    [max_width] (default 3) columns; DML contributes single-column
    candidates on its predicate columns.  The set is closed under
    prefixes and rank-adjacent candidates are merged pairwise (index
    merging), then ordered best-first by the number of statements that
    produced each column list (ties: narrower first, then by name) with
    view candidates appended, and capped at [max_candidates] (default:
    unlimited).  Deterministic: output depends only on the statements'
    order.  Increments the [candidates.generated] counter and runs under
    the [candidates.generate] span.  Raises [Invalid_argument] if
    [max_width < 1]. *)
