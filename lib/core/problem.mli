(** Constrained-dynamic-physical-design problem instances (Definition 1).

    An instance fixes the workload steps, the configuration space, the
    initial configuration, and the two cost matrices the optimizers
    consume: [exec.(s).(c)] = EXEC of step [s] under configuration [c] and
    [trans.(i).(j)] = TRANS from configuration [i] to [j].  The change
    budget [k] is supplied per solver call, so one instance can be solved
    at many [k].

    A {e step} is a bag of statements: per-statement optimization (the
    Agrawal et al. formulation) is the special case of one statement per
    step, while the paper's experiments use 500-query segments.

    The space bound of Definition 1 is enforced at space-construction time
    ({!Config_space.enumerate}); every configuration in an instance is
    feasible by construction. *)

type t = private {
  steps : Cddpd_sql.Ast.statement array array;
  space : Config_space.t;
  initial : int;  (** config id of C0 *)
  exec : float array array;  (** steps x configs *)
  trans : float array array;  (** configs x configs *)
  count_initial_change : bool;
      (** whether C0 <> C1 consumes one of the k changes.  Definition 1
          counts it; the paper's own Table 2 example does not (its k=2
          design uses three configurations from an empty C0), so
          experiments set this to [false].  See DESIGN.md. *)
  graph : Cddpd_graph.Staged_dag.t Lazy.t;
      (** the memoized sequence graph; read it via {!to_graph} *)
}

(** {1 Incremental re-optimization state} *)

module Reuse : sig
  type t
  (** Persistent state an advisor session threads through successive
      {!build} calls: a shared {!Cddpd_engine.Cost_cache} (statement
      entries and the structure build memo stay hot between
      re-optimizations) plus the previous build's compressed cluster
      table, per-design cluster costs, and TRANS matrix, all keyed by
      {!Cddpd_engine.Cost_key} cost identities.  A build given a [Reuse.t]
      copies every exec cluster cost whose (design, cluster) identity
      already appeared in the previous build and every TRANS entry
      between configuration pairs that both existed before, and only
      calls the cost model for the delta.  Reuse never changes a result:
      keys are exact cost identities and statistics changes are fenced by
      per-table fingerprints ({!Cddpd_engine.Table_stats.fingerprint}),
      so matrices are bit-identical to a from-scratch build.

      A [Reuse.t] is only sound while the cost-model parameters behind
      it are fixed (the same contract as {!Cddpd_engine.Cost_cache}) and
      must not be shared across concurrent builds. *)

  type tallies = {
    builds : int;  (** builds threaded through this session state *)
    exec_columns_reused : int;
        (** filled EXEC columns served entirely from the previous build *)
    clusters_recosted : int;
        (** clusters with no match in the previous build's table *)
    trans_blocks_reused : int;
        (** TRANS entries copied verbatim from the previous matrix *)
    stats_invalidations : int;
        (** summaries dropped because a table's statistics fingerprint
            changed (forces a full recost; the build memo is flushed) *)
  }

  val create : ?capacity:int -> unit -> t
  (** Fresh session state with an empty cache ([capacity] as
      {!Cddpd_engine.Cost_cache.create}). *)

  val flush : t -> unit
  (** Drop the previous-build summary and the structure build memo, as a
      statistics invalidation would.  The next build recosts everything
      (statement cache entries survive; their keys self-invalidate). *)

  val tallies : t -> tallies
  (** Cumulative reuse accounting — the plain-int mirror of the
      [reopt.*] counters, readable with instrumentation off. *)

  val cache_stats : t -> Cddpd_engine.Cost_cache.stats
  (** The session cache's hit/miss/eviction/generation tallies. *)
end

val build :
  params:Cddpd_engine.Cost_model.params ->
  stats_of:(string -> Cddpd_engine.Table_stats.t) ->
  steps:Cddpd_sql.Ast.statement array array ->
  space:Config_space.t ->
  initial:Cddpd_catalog.Design.t ->
  ?count_initial_change:bool ->
  ?jobs:int ->
  ?cost_cache:bool ->
  ?compress_workload:bool ->
  ?reuse:Reuse.t ->
  ?statement_keys:string array ->
  unit ->
  t
(** Compute the cost matrices from the what-if cost model.
    [count_initial_change] defaults to [false] (the paper's experimental
    convention).  Raises [Invalid_argument] if [steps] is empty or
    [initial] is not in the space.

    The build memoizes what-if calls through a fresh
    {!Cddpd_engine.Cost_cache} (disable with [cost_cache:false], or
    process-wide via {!Cddpd_engine.Cost_cache.set_default_enabled}) and
    fills the matrices across [jobs] domains (default
    {!Cddpd_util.Parallel.default_jobs}; small instances always run
    sequentially).  TRANS always pays per {e distinct structure-delta}:
    designs are bitmasks over the sorted structure universe and each
    added-set build sum is memoized per domain (the
    [problem.trans_builds_memoized] counter), never per config pair.

    [compress_workload] (default [false]) additionally compresses the
    EXEC side: statements are clustered by {!Cddpd_engine.Cost_key} cost
    identity ([workload.clusters]) so each configuration costs one
    what-if call per cluster instead of per statement, and configurations
    whose designs agree on their workload-relevant structures share one
    column fill ([problem.exec_columns_skipped]).

    [reuse] threads the session state of {!Reuse} through the build:
    exec cluster costs and TRANS entries already known from the previous
    build are copied instead of recomputed (instrumented as
    [reopt.exec_columns_reused], [reopt.clusters_recosted],
    [reopt.trans_blocks_reused], [reopt.stats_invalidations]), and the
    finished build replaces the session summary.  [reuse] implies
    [compress_workload] and caches through the session's persistent
    cache ([cost_cache] is ignored).

    [statement_keys] hands the build precomputed
    {!Cddpd_engine.Cost_key.statement} keys for the concatenated steps,
    skipping the keying pass; the caller must guarantee they equal the
    keys under the current statistics (serve checks per-window
    statistics fingerprints before passing them).  Raises
    [Invalid_argument] on a length mismatch.  Only consulted on the
    compressed path.

    None of these knobs changes the result: matrices are bit-identical
    across cache settings, domain counts, compression, and reuse
    (compression re-expands cluster costs in the original statement
    order; column sharing only merges columns the cost model provably
    computes equal; reuse only copies floats whose cost identity proves
    them equal to a fresh computation).  [stats_of] is called only from
    the calling domain.  See docs/PERFORMANCE.md. *)

val of_matrices :
  steps:Cddpd_sql.Ast.statement array array ->
  space:Config_space.t ->
  initial:int ->
  exec:float array array ->
  trans:float array array ->
  ?count_initial_change:bool ->
  unit ->
  t
(** Wrap precomputed matrices (used by tests to model arbitrary cost
    structures).  Raises [Invalid_argument] on dimension mismatches,
    negative costs, or non-zero self-transitions. *)

val n_steps : t -> int

val n_configs : t -> int

val to_graph : t -> Cddpd_graph.Staged_dag.t
(** The sequence graph of the instance: node cost [exec], edge cost
    [trans], source edges [trans from C0]. *)

val initial_for_counting : t -> int option
(** [Some initial] when initial changes are counted, else [None]; the
    argument solvers pass to {!Cddpd_graph.Staged_dag.path_changes}. *)

val path_cost : t -> int array -> float
(** Sequence execution cost of an assignment of one config per step. *)

val path_changes : t -> int array -> int
(** Design changes of an assignment, under the instance's counting
    convention. *)

val restrict : t -> int list -> t * int array
(** Sub-instance on a subset of config ids (the GREEDY-SEQ reduction); the
    returned mapping sends new ids to old ids.  The initial config is
    always retained.  Matrices are shared views (copied), not
    recomputed. *)
