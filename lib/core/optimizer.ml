module Staged_dag = Cddpd_graph.Staged_dag
module Kaware = Cddpd_graph.Kaware
module Ranking = Cddpd_graph.Ranking
module Timer = Cddpd_util.Timer
module Obs = Cddpd_obs

type error = Infeasible | Ranking_gave_up of Ranking.gave_up

let m_solves = Obs.Registry.counter "optimizer.solves"
let h_solve_s = Obs.Registry.histogram "optimizer.solve_s"
let m_warm_bound_used = Obs.Registry.counter "reopt.warm_start_bound_used"

let finish problem method_name elapsed path =
  {
    Solution.path;
    cost = Problem.path_cost problem path;
    changes = Problem.path_changes problem path;
    method_name;
    elapsed;
  }

let require_k method_name k =
  match k with
  | Some k when k >= 0 -> k
  | Some _ -> invalid_arg "Optimizer.solve: negative k"
  | None ->
      invalid_arg
        (Printf.sprintf "Optimizer.solve: method %s requires k"
           (Solution.method_to_string method_name))

let hybrid_uses_merging ~l ~k = k > l / 2

(* Branch-and-bound seed for the exact solvers: the merging heuristic
   refined from the unconstrained optimum is always a feasible
   ≤ k-changes schedule, so its cost upper-bounds the constrained
   optimum.  Costed through the graph so the bound and the solvers'
   accumulators associate floats identically. *)
let merging_upper_bound problem graph ~k unconstrained_path =
  Staged_dag.path_cost graph (Merging.refine problem ~k unconstrained_path)

let solve problem ~method_name ?k ?jobs ?(max_paths = 1_000_000) ?max_queue
    ?upper_bound:warm_bound () =
  let graph = Problem.to_graph problem in
  let initial = Problem.initial_for_counting problem in
  (* Warm-started branch-and-bound: a caller-supplied feasible bound (the
     incumbent's hold-at-C0 cost, in serve) tightens the merging seed
     when it is smaller.  Both bounds are costs of feasible ≤ k-changes
     schedules, so the min is still a valid upper bound on the
     constrained optimum and pruning stays exact — the returned schedule
     cannot change. *)
  let seeded_bound problem graph ~k unconstrained_path =
    let merging = merging_upper_bound problem graph ~k unconstrained_path in
    match warm_bound with
    | Some warm when warm < merging ->
        Obs.Counter.incr m_warm_bound_used;
        warm
    | _ -> merging
  in
  let run () =
    match method_name with
    | Solution.Unconstrained ->
        let _, path = Staged_dag.shortest_path graph in
        Ok path
    | Solution.Kaware -> (
        let k = require_k method_name k in
        let _, unconstrained_path = Staged_dag.shortest_path graph in
        let upper_bound = seeded_bound problem graph ~k unconstrained_path in
        match Kaware.solve ?jobs ~upper_bound graph ~k ~initial with
        | Some (_, path) -> Ok path
        | None -> Error Infeasible)
    | Solution.Greedy_seq -> (
        let k = require_k method_name k in
        match Greedy_seq.solve problem ~k with
        | Some (_, path) -> Ok path
        | None -> Error Infeasible)
    | Solution.Merging ->
        let k = require_k method_name k in
        let _, unconstrained_path = Staged_dag.shortest_path graph in
        Ok (Merging.refine problem ~k unconstrained_path)
    | Solution.Ranking -> (
        let k = require_k method_name k in
        let _, unconstrained_path = Staged_dag.shortest_path graph in
        let upper_bound = seeded_bound problem graph ~k unconstrained_path in
        match
          Ranking.solve_constrained graph ~k ~initial ~upper_bound ~max_paths
            ?max_queue ()
        with
        | `Found (_, path, _) -> Ok path
        | `Gave_up g -> Error (Ranking_gave_up g))
    | Solution.Hybrid -> (
        let k = require_k method_name k in
        let _, unconstrained_path = Staged_dag.shortest_path graph in
        let l = Staged_dag.path_changes graph ~initial unconstrained_path in
        if l <= k then Ok unconstrained_path
        else if hybrid_uses_merging ~l ~k then
          Ok (Merging.refine problem ~k unconstrained_path)
        else
          let upper_bound = seeded_bound problem graph ~k unconstrained_path in
          match Kaware.solve ?jobs ~upper_bound graph ~k ~initial with
          | Some (_, path) -> Ok path
          | None -> Error Infeasible)
  in
  let result, elapsed =
    Obs.Span.with_span
      ("optimizer." ^ Solution.method_to_string method_name)
      (fun () -> Timer.time run)
  in
  Obs.Counter.incr m_solves;
  Obs.Histogram.observe h_solve_s elapsed;
  Result.map (finish problem method_name elapsed) result

let unconstrained problem =
  match solve problem ~method_name:Solution.Unconstrained () with
  | Ok solution -> solution
  | Error (Infeasible | Ranking_gave_up _) ->
      assert false (* the unconstrained problem always has a solution *)
