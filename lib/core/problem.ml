module Ast = Cddpd_sql.Ast
module Cost_model = Cddpd_engine.Cost_model
module Cost_cache = Cddpd_engine.Cost_cache
module Cost_key = Cddpd_engine.Cost_key
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Staged_dag = Cddpd_graph.Staged_dag
module Parallel = Cddpd_util.Parallel
module Obs = Cddpd_obs

let m_builds = Obs.Registry.counter "problem.builds"
let m_domains_used = Obs.Registry.counter "problem.build.domains_used"

type t = {
  steps : Ast.statement array array;
  space : Config_space.t;
  initial : int;
  exec : float array array;
  trans : float array array;
  count_initial_change : bool;
  graph : Staged_dag.t Lazy.t;
}

(* The sequence graph is derived from the matrices and immutable, so it is
   built once and memoized: path_cost / path_changes / solver calls on the
   same instance no longer re-flatten the matrices each time. *)
let make_t ~steps ~space ~initial ~exec ~trans ~count_initial_change =
  let graph =
    lazy (Staged_dag.of_matrices ~exec ~trans ~source:trans.(initial) ())
  in
  { steps; space; initial; exec; trans; count_initial_change; graph }

let n_steps t = Array.length t.steps

let n_configs t = Config_space.size t.space

let table_of statement =
  match statement with
  | Ast.Select { table; _ }
  | Ast.Select_agg { table; _ }
  | Ast.Insert { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Update { table; _ } ->
      table

(* Below this many EXEC evaluations the build is not worth fork/join
   overhead and runs sequentially on the calling domain. *)
let sequential_threshold = 2048

let build ~params ~stats_of ~steps ~space ~initial ?(count_initial_change = false)
    ?jobs ?cost_cache () =
  if Array.length steps = 0 then invalid_arg "Problem.build: no steps";
  Obs.Span.with_span "problem.build" @@ fun () ->
  Obs.Counter.incr m_builds;
  let initial_id = Config_space.id_of_exn space initial in
  let n_configs = Config_space.size space in
  let n_steps = Array.length steps in
  let designs = Array.init n_configs (Config_space.design space) in
  let use_cache =
    match cost_cache with Some on -> on | None -> Cost_cache.default_enabled ()
  in
  let cache = if use_cache then Cost_cache.create () else Cost_cache.disabled in
  (* Snapshot statistics on this domain: a Database-backed [stats_of]
     computes stats lazily (mutating the database) and must not be called
     from worker domains.  Every table the build can touch is resolved
     here; the workers then read the snapshot. *)
  (* cddpd-lint: allow poly-hash — string table-name keys *)
  let stats_tbl = Hashtbl.create 8 in
  let resolve table =
    if not (Hashtbl.mem stats_tbl table) then Hashtbl.replace stats_tbl table (stats_of table)
  in
  Array.iter (fun step -> Array.iter (fun s -> resolve (table_of s)) step) steps;
  Array.iter
    (fun design -> Design.fold (fun s () -> resolve (Structure.table s)) design ())
    designs;
  let stats_of table = Hashtbl.find stats_tbl table in
  let design_keys =
    Array.map (fun d -> if use_cache then Some (Cost_key.design d) else None) designs
  in
  (* EXEC matrix: one column per configuration, filled in parallel with a
     domain-local cache per chunk (columns share repeated statements, so
     chunking by configuration keeps the hit rate local).  Each cell is an
     independent left-to-right sum, so the matrix is bit-identical
     whatever the domain count. *)
  let total_statements = Array.fold_left (fun acc step -> acc + Array.length step) 0 steps in
  let exec_jobs =
    if total_statements * n_configs < sequential_threshold then 1
    else Parallel.resolve_jobs ?jobs ~n:n_configs ()
  in
  Obs.Counter.add m_domains_used exec_jobs;
  let exec = Array.make_matrix n_steps n_configs 0.0 in
  let locals =
    Obs.Span.with_span "problem.build.exec" @@ fun () ->
    Parallel.map_chunks ~jobs:exec_jobs ~n:n_configs (fun ~lo ~hi ->
        let local = Cost_cache.create_local cache in
        for c = lo to hi - 1 do
          let design = designs.(c) in
          let design_key = design_keys.(c) in
          for s = 0 to n_steps - 1 do
            let step = steps.(s) in
            let acc = ref 0.0 in
            for q = 0 to Array.length step - 1 do
              let statement = step.(q) in
              acc :=
                !acc
                +. Cost_cache.statement_cost local params
                     (stats_of (table_of statement))
                     ~design ?design_key statement
            done;
            exec.(s).(c) <- !acc
          done
        done;
        local)
  in
  List.iter (fun local -> Cost_cache.merge ~into:cache local) locals;
  (* TRANS matrix: every structure's build cost is computed once up front,
     so the n_configs^2 pairs only pay set diffs and memo hits — and the
     warmed cache is read-only, safe to share across row-parallel
     domains. *)
  let trans =
    Obs.Span.with_span "problem.build.trans" @@ fun () ->
    let all_structures =
      (* cddpd-lint: allow poly-hash — Cost_key.structure string keys *)
      let seen = Hashtbl.create 32 in
      Array.iter
        (fun design ->
          Design.fold
            (fun s () ->
              let key = Cost_key.structure s in
              if not (Hashtbl.mem seen key) then Hashtbl.replace seen key s)
            design ())
        designs;
      Hashtbl.fold (fun _ s acc -> s :: acc) seen []
    in
    Cost_cache.warm_structures cache params ~stats_of all_structures;
    let trans = Array.make_matrix n_configs n_configs 0.0 in
    Parallel.for_ ?jobs ~min_per_domain:8 ~n:n_configs (fun i ->
        let from_design = designs.(i) in
        let row = trans.(i) in
        for j = 0 to n_configs - 1 do
          if i <> j then
            row.(j) <-
              Cost_cache.transition_cost cache params ~stats_of ~from_design
                ~to_design:designs.(j)
        done);
    trans
  in
  Cost_cache.publish_obs cache;
  make_t ~steps ~space ~initial:initial_id ~exec ~trans ~count_initial_change

let of_matrices ~steps ~space ~initial ~exec ~trans ?(count_initial_change = false) () =
  let n_steps = Array.length steps in
  let n_configs = Config_space.size space in
  if n_steps = 0 then invalid_arg "Problem.of_matrices: no steps";
  if initial < 0 || initial >= n_configs then
    invalid_arg "Problem.of_matrices: initial out of range";
  if Array.length exec <> n_steps then
    invalid_arg "Problem.of_matrices: exec has wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: exec row has wrong width";
      Array.iter
        (fun c -> if c < 0.0 then invalid_arg "Problem.of_matrices: negative exec cost")
        row)
    exec;
  if Array.length trans <> n_configs then
    invalid_arg "Problem.of_matrices: trans has wrong number of rows";
  Array.iteri
    (fun i row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: trans row has wrong width";
      Array.iteri
        (fun j c ->
          if c < 0.0 then invalid_arg "Problem.of_matrices: negative trans cost";
          if i = j && not (Float.equal c 0.0) then
            invalid_arg "Problem.of_matrices: non-zero self-transition")
        row)
    trans;
  make_t ~steps ~space ~initial ~exec ~trans ~count_initial_change

let to_graph t = Lazy.force t.graph

let initial_for_counting t = if t.count_initial_change then Some t.initial else None

let path_cost t path = Staged_dag.path_cost (to_graph t) path

let path_changes t path =
  Staged_dag.path_changes (to_graph t) ~initial:(initial_for_counting t) path

let restrict t ids =
  let with_initial = if List.mem t.initial ids then ids else t.initial :: ids in
  let sub_space, mapping = Config_space.restrict t.space with_initial in
  let n = Array.length mapping in
  let exec =
    Array.map (fun row -> Array.init n (fun j -> row.(mapping.(j)))) t.exec
  in
  let trans =
    Array.init n (fun i -> Array.init n (fun j -> t.trans.(mapping.(i)).(mapping.(j))))
  in
  let initial =
    let rec find i = if mapping.(i) = t.initial then i else find (i + 1) in
    find 0
  in
  ( make_t ~steps:t.steps ~space:sub_space ~initial ~exec ~trans
      ~count_initial_change:t.count_initial_change,
    mapping )
