module Ast = Cddpd_sql.Ast
module Cost_model = Cddpd_engine.Cost_model
module Cost_cache = Cddpd_engine.Cost_cache
module Cost_key = Cddpd_engine.Cost_key
module Table_stats = Cddpd_engine.Table_stats
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Staged_dag = Cddpd_graph.Staged_dag
module Parallel = Cddpd_util.Parallel
module Compress = Cddpd_workload.Compress
module Obs = Cddpd_obs

let m_builds = Obs.Registry.counter "problem.builds"
let m_domains_used = Obs.Registry.counter "problem.build.domains_used"
let m_clusters = Obs.Registry.counter "workload.clusters"
let m_exec_skipped = Obs.Registry.counter "problem.exec_columns_skipped"
let m_trans_memoized = Obs.Registry.counter "problem.trans_builds_memoized"
let m_reopt_exec_reused = Obs.Registry.counter "reopt.exec_columns_reused"
let m_reopt_clusters_recosted = Obs.Registry.counter "reopt.clusters_recosted"
let m_reopt_trans_reused = Obs.Registry.counter "reopt.trans_blocks_reused"
let m_reopt_invalidations = Obs.Registry.counter "reopt.stats_invalidations"

type t = {
  steps : Ast.statement array array;
  space : Config_space.t;
  initial : int;
  exec : float array array;
  trans : float array array;
  count_initial_change : bool;
  graph : Staged_dag.t Lazy.t;
}

(* The sequence graph is derived from the matrices and immutable, so it is
   built once and memoized: path_cost / path_changes / solver calls on the
   same instance no longer re-flatten the matrices each time. *)
let make_t ~steps ~space ~initial ~exec ~trans ~count_initial_change =
  let graph =
    lazy (Staged_dag.of_matrices ~exec ~trans ~source:trans.(initial) ())
  in
  { steps; space; initial; exec; trans; count_initial_change; graph }

let n_steps t = Array.length t.steps

let n_configs t = Config_space.size t.space

let table_of statement =
  match statement with
  | Ast.Select { table; _ }
  | Ast.Select_agg { table; _ }
  | Ast.Insert { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Update { table; _ } ->
      table

(* Below this many EXEC evaluations the build is not worth fork/join
   overhead and runs sequentially on the calling domain. *)
let sequential_threshold = 2048

(* -- structure relevance ------------------------------------------------------ *)

(* Which structures can influence any statement's what-if cost.  Two
   configurations whose designs agree on their relevant subsets have
   bit-identical EXEC columns, so one column fill serves both (the
   [problem.exec_columns_skipped] optimization).  The rules mirror the
   cost model exactly: DML pays maintenance for every structure on its
   table; a SELECT reads an index only through a seek (sargable leading
   column) or an index-only scan (key covers the referenced columns); an
   aggregate reads a view only when the group columns match. *)
module String_set = Set.Make (String)

type table_relevance = {
  mutable dml : bool;
  mutable predicate_columns : String_set.t;
  mutable covered_sets : string list list;  (** sorted referenced-column sets *)
  mutable group_columns : String_set.t;
}

let relevance_summary steps =
  let tables = Hashtbl.create 8 in
  let info table =
    match Hashtbl.find_opt tables table with
    | Some info -> info
    | None ->
        let info =
          {
            dml = false;
            predicate_columns = String_set.empty;
            covered_sets = [];
            group_columns = String_set.empty;
          }
        in
        Hashtbl.replace tables table info;
        info
  in
  let predicate_column pred =
    match pred with Ast.Cmp { column; _ } | Ast.Between { column; _ } -> column
  in
  let note statement =
    match statement with
    | Ast.Insert { table; _ } -> (info table).dml <- true
    | Ast.Delete { table; _ } | Ast.Update { table; _ } -> (info table).dml <- true
    | Ast.Select_agg { table; group_by; _ } ->
        let info = info table in
        info.group_columns <- String_set.add group_by info.group_columns
    | Ast.Select { table; where; projection } ->
        let info = info table in
        List.iter
          (fun pred ->
            info.predicate_columns <-
              String_set.add (predicate_column pred) info.predicate_columns)
          where;
        (match projection with
        | Ast.Star -> ()
        | Ast.Columns _ ->
            let set =
              List.sort_uniq String.compare (Ast.referenced_columns statement)
            in
            if not (List.mem set info.covered_sets) then
              info.covered_sets <- set :: info.covered_sets)
  in
  Array.iter (fun step -> Array.iter note step) steps;
  tables

let structure_is_relevant tables structure =
  match Hashtbl.find_opt tables (Structure.table structure) with
  | None -> false
  | Some info -> (
      info.dml
      ||
      match structure with
      | Structure.View view -> String_set.mem (View_def.group_by view) info.group_columns
      | Structure.Index index ->
          let columns = Index_def.columns index in
          (match columns with
          | leading :: _ -> String_set.mem leading info.predicate_columns
          | [] -> false)
          || List.exists
               (fun set -> List.for_all (fun c -> List.mem c columns) set)
               info.covered_sets)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

(* -- incremental re-optimization state ---------------------------------------- *)

(* What one build leaves behind for the next: every exec cluster cost
   keyed by (design key, cluster key), the TRANS matrix keyed by design
   key, and the statistics fingerprints everything was computed under.
   Lookups are exact — {!Cost_key} keys are cost identities (equal keys
   imply equal cost), so a match proves the stored float is bit-identical
   to what a fresh computation would produce. *)
type reuse_summary = {
  s_cluster_id_of : (string, int) Hashtbl.t;
      (** cluster cost-identity key -> previous cluster id *)
  s_by_design : (string, float array) Hashtbl.t;
      (** design key -> per-previous-cluster exec costs *)
  s_id_of_design : (string, int) Hashtbl.t;  (** design key -> previous config id *)
  s_trans : float array array;
  s_fingerprints : (string, string) Hashtbl.t;  (** table -> stats fingerprint *)
}

module Reuse = struct
  type tallies = {
    builds : int;
    exec_columns_reused : int;
    clusters_recosted : int;
    trans_blocks_reused : int;
    stats_invalidations : int;
  }

  type t = {
    cache : Cost_cache.t;
    mutable summary : reuse_summary option;
    mutable t_builds : int;
    mutable t_exec_columns_reused : int;
    mutable t_clusters_recosted : int;
    mutable t_trans_blocks_reused : int;
    mutable t_stats_invalidations : int;
  }

  let create ?capacity () =
    {
      cache = Cost_cache.create ?capacity ();
      summary = None;
      t_builds = 0;
      t_exec_columns_reused = 0;
      t_clusters_recosted = 0;
      t_trans_blocks_reused = 0;
      t_stats_invalidations = 0;
    }

  let flush t =
    t.summary <- None;
    Cost_cache.invalidate_builds t.cache

  let tallies t =
    {
      builds = t.t_builds;
      exec_columns_reused = t.t_exec_columns_reused;
      clusters_recosted = t.t_clusters_recosted;
      trans_blocks_reused = t.t_trans_blocks_reused;
      stats_invalidations = t.t_stats_invalidations;
    }

  let cache_stats t = Cost_cache.stats t.cache
end

let build ~params ~stats_of ~steps ~space ~initial ?(count_initial_change = false)
    ?jobs ?cost_cache ?(compress_workload = false) ?reuse ?statement_keys () =
  if Array.length steps = 0 then invalid_arg "Problem.build: no steps";
  Obs.Span.with_span "problem.build" @@ fun () ->
  Obs.Counter.incr m_builds;
  let initial_id = Config_space.id_of_exn space initial in
  let n_configs = Config_space.size space in
  let n_steps = Array.length steps in
  let designs = Array.init n_configs (Config_space.design space) in
  (* Reuse implies the compressed path (the summary is a cluster-cost
     table) and always caches through the session's persistent cache. *)
  let compress_workload = compress_workload || Option.is_some reuse in
  let cache =
    match reuse with
    | Some r -> r.Reuse.cache
    | None ->
        let use_cache =
          match cost_cache with Some on -> on | None -> Cost_cache.default_enabled ()
        in
        if use_cache then Cost_cache.create () else Cost_cache.disabled
  in
  let use_cache = Cost_cache.is_enabled cache in
  (* Snapshot statistics on this domain: a Database-backed [stats_of]
     computes stats lazily (mutating the database) and must not be called
     from worker domains.  Every table the build can touch is resolved
     here; the workers then read the snapshot. *)
  let stats_tbl = Hashtbl.create 8 in
  let resolve table =
    if not (Hashtbl.mem stats_tbl table) then Hashtbl.replace stats_tbl table (stats_of table)
  in
  Array.iter (fun step -> Array.iter (fun s -> resolve (table_of s)) step) steps;
  Array.iter
    (fun design -> Design.fold (fun s () -> resolve (Structure.table s)) design ())
    designs;
  let stats_of table = Hashtbl.find stats_tbl table in
  (* Stale-statistics gate: a session summary (and the persistent build
     memo, whose keys do not embed statistics) is only trusted while
     every table it was computed under still fingerprints the same.  Any
     mismatch drops the whole summary and the build memo — statement
     cache entries self-invalidate through their keys and are kept. *)
  let fp_tbl = Hashtbl.create 8 in
  (match reuse with
  | None -> ()
  | Some r -> (
      (* cddpd-lint: allow determinism — keyed replace into a per-table map; each key is visited once *)
      Hashtbl.iter
        (fun table stats -> Hashtbl.replace fp_tbl table (Table_stats.fingerprint stats))
        stats_tbl;
      match r.Reuse.summary with
      | None -> ()
      | Some s ->
          let stale = ref false in
          (* cddpd-lint: allow determinism — order-insensitive staleness check: any mismatch sets the flag *)
          Hashtbl.iter
            (fun table fp ->
              match Hashtbl.find_opt s.s_fingerprints table with
              | Some recorded when not (String.equal recorded fp) -> stale := true
              | Some _ | None -> ())
            fp_tbl;
          if !stale then begin
            r.Reuse.summary <- None;
            Cost_cache.invalidate_builds cache;
            r.Reuse.t_stats_invalidations <- r.Reuse.t_stats_invalidations + 1;
            Obs.Counter.incr m_reopt_invalidations
          end));
  let reuse_summary =
    match reuse with Some r -> r.Reuse.summary | None -> None
  in
  let design_keys =
    Array.map (fun d -> if use_cache then Some (Cost_key.design d) else None) designs
  in
  (* Exec half of the next summary, assembled inside the compressed
     branch (cluster table + per-design cluster costs). *)
  let pending_exec_summary = ref None in
  (* EXEC matrix: one column per configuration, filled in parallel with a
     domain-local cache per chunk (columns share repeated statements, so
     chunking by configuration keeps the hit rate local).  Each cell is an
     independent left-to-right sum, so the matrix is bit-identical
     whatever the domain count. *)
  let total_statements = Array.fold_left (fun acc step -> acc + Array.length step) 0 steps in
  let exec_jobs =
    if total_statements * n_configs < sequential_threshold then 1
    else Parallel.resolve_jobs ?jobs ~n:n_configs ()
  in
  Obs.Counter.add m_domains_used exec_jobs;
  let exec = Array.make_matrix n_steps n_configs 0.0 in
  let locals =
    Obs.Span.with_span "problem.build.exec" @@ fun () ->
    if not compress_workload then
      (* cddpd-lint: allow domain-race — workers derive read-only domain-local caches via Cost_cache.create_local and merge after the join; obs counter and Switch writes are gated to the main domain by Switch.active *)
      Parallel.map_chunks ~jobs:exec_jobs ~n:n_configs (fun ~lo ~hi ->
          let local = Cost_cache.create_local cache in
          for c = lo to hi - 1 do
            let design = designs.(c) in
            let design_key = design_keys.(c) in
            for s = 0 to n_steps - 1 do
              let step = steps.(s) in
              let acc = ref 0.0 in
              for q = 0 to Array.length step - 1 do
                let statement = step.(q) in
                acc :=
                  !acc
                  +. Cost_cache.statement_cost local params
                       (stats_of (table_of statement))
                       ~design ?design_key statement
              done;
              exec.(s).(c) <- !acc
            done
          done;
          local)
    else begin
      (* Compressed fill: cluster statements by cost identity once (the
         key already implies equal cost under every design), cost one
         what-if call per (cluster, config), and re-expand by summing the
         per-cluster costs in the original statement order — the same
         floats the per-statement loop adds, in the same order, so the
         matrix is bit-identical to the uncompressed one. *)
      let flat = Array.concat (Array.to_list steps) in
      let keys =
        match statement_keys with
        | Some keys ->
            if Array.length keys <> Array.length flat then
              invalid_arg "Problem.build: statement_keys length mismatch";
            keys
        | None ->
            Array.map
              (fun statement ->
                Cost_key.statement (stats_of (table_of statement)) statement)
              flat
      in
      let clustering = Compress.cluster_keys keys in
      let n_clusters = Compress.n_clusters clustering in
      Obs.Counter.add m_clusters n_clusters;
      let reps = Array.map (fun i -> flat.(i)) clustering.Compress.representatives in
      let cluster_ids =
        let pos = ref 0 in
        Array.map
          (fun step ->
            let ids =
              Array.init (Array.length step) (fun q ->
                  clustering.Compress.cluster_of.(!pos + q))
            in
            pos := !pos + Array.length step;
            ids)
          steps
      in
      (* Relevant-column dedup: configurations whose designs agree on the
         workload-relevant structures have bit-identical columns, so only
         the first of each class is filled and the rest copy it. *)
      let relevance = relevance_summary steps in
      let relevant_key =
        let memo = Hashtbl.create 32 in
        fun structure ->
          let key = Cost_key.structure structure in
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let r = structure_is_relevant relevance structure in
              Hashtbl.replace memo key r;
              r
      in
      let column_src = Array.make n_configs 0 in
      let fill_configs =
        let first_by_fingerprint = Hashtbl.create 64 in
        let out = ref [] in
        for c = 0 to n_configs - 1 do
          let relevant =
            Design.fold
              (fun s acc -> if relevant_key s then Design.add_structure s acc else acc)
              designs.(c) Design.empty
          in
          let fingerprint = Cost_key.design relevant in
          match Hashtbl.find_opt first_by_fingerprint fingerprint with
          | Some first -> column_src.(c) <- first
          | None ->
              Hashtbl.replace first_by_fingerprint fingerprint c;
              column_src.(c) <- c;
              out := c :: !out
        done;
        Array.of_list (List.rev !out)
      in
      let n_fill = Array.length fill_configs in
      Obs.Counter.add m_exec_skipped (n_configs - n_fill);
      (* Delta accounting against the previous build's summary: map each
         new cluster to its previous id (or -1), so workers copy matched
         cluster costs instead of calling the cost model. *)
      let cluster_keys =
        Array.map (fun i -> keys.(i)) clustering.Compress.representatives
      in
      let prev_cluster =
        match reuse_summary with
        | None -> None
        | Some s ->
            Some
              (Array.map
                 (fun k ->
                   match Hashtbl.find_opt s.s_cluster_id_of k with
                   | Some id -> id
                   | None -> -1)
                 cluster_keys)
      in
      (match reuse with
      | None -> ()
      | Some r ->
          let recosted =
            match prev_cluster with
            | None -> n_clusters
            | Some pm ->
                Array.fold_left (fun acc p -> if p < 0 then acc + 1 else acc) 0 pm
          in
          r.Reuse.t_clusters_recosted <- r.Reuse.t_clusters_recosted + recosted;
          Obs.Counter.add m_reopt_clusters_recosted recosted;
          let all_matched =
            match prev_cluster with
            | Some pm -> Array.for_all (fun p -> p >= 0) pm
            | None -> false
          in
          if all_matched then begin
            let reused_columns = ref 0 in
            (match reuse_summary with
            | Some s ->
                Array.iter
                  (fun c ->
                    match design_keys.(c) with
                    | Some dk when Hashtbl.mem s.s_by_design dk -> incr reused_columns
                    | Some _ | None -> ())
                  fill_configs
            | None -> ());
            r.Reuse.t_exec_columns_reused <-
              r.Reuse.t_exec_columns_reused + !reused_columns;
            Obs.Counter.add m_reopt_exec_reused !reused_columns
          end);
      let results =
        (* cddpd-lint: allow domain-race — same discipline as the EXEC build above: create_local per worker, merge after the join, obs writes main-domain gated by Switch.active *)
        Parallel.map_chunks ~jobs:exec_jobs ~n:n_fill (fun ~lo ~hi ->
            let local = Cost_cache.create_local cache in
            let collected = ref [] in
            for t = lo to hi - 1 do
              let c = fill_configs.(t) in
              let design = designs.(c) in
              let design_key = design_keys.(c) in
              let prev_costs =
                match (reuse_summary, design_key) with
                | Some s, Some dk -> Hashtbl.find_opt s.s_by_design dk
                | _ -> None
              in
              let cluster_cost = Array.make (max 1 n_clusters) 0.0 in
              for r = 0 to n_clusters - 1 do
                let copied =
                  match (prev_costs, prev_cluster) with
                  | Some pc, Some pm when pm.(r) >= 0 ->
                      cluster_cost.(r) <- pc.(pm.(r));
                      true
                  | _ -> false
                in
                if not copied then begin
                  let rep = reps.(r) in
                  cluster_cost.(r) <-
                    Cost_cache.statement_cost local params
                      (stats_of (table_of rep))
                      ~design ?design_key rep
                end
              done;
              for s = 0 to n_steps - 1 do
                let ids = cluster_ids.(s) in
                let acc = ref 0.0 in
                for q = 0 to Array.length ids - 1 do
                  acc := !acc +. cluster_cost.(ids.(q))
                done;
                exec.(s).(c) <- !acc
              done;
              if Option.is_some reuse then collected := (c, cluster_cost) :: !collected
            done;
            (local, !collected))
      in
      let locals = List.map fst results in
      for c = 0 to n_configs - 1 do
        let src = column_src.(c) in
        if src <> c then
          for s = 0 to n_steps - 1 do
            exec.(s).(c) <- exec.(s).(src)
          done
      done;
      (* Assemble the exec half of the next summary.  Filled columns
         store their own cluster costs; copied columns share the source
         column's array — valid as a (design, cluster) cost table because
         the relevance classes were computed over exactly the statements
         these clusters represent. *)
      (match reuse with
      | None -> ()
      | Some _ ->
          let s_cluster_id_of = Hashtbl.create (max 16 n_clusters) in
          Array.iteri (fun id k -> Hashtbl.replace s_cluster_id_of k id) cluster_keys;
          let s_by_design = Hashtbl.create (max 16 n_configs) in
          List.iter
            (fun (c, costs) ->
              match design_keys.(c) with
              | Some dk -> Hashtbl.replace s_by_design dk costs
              | None -> ())
            (List.concat_map snd results);
          for c = 0 to n_configs - 1 do
            let src = column_src.(c) in
            if src <> c then
              match (design_keys.(c), design_keys.(src)) with
              | Some dk, Some dk_src -> (
                  match Hashtbl.find_opt s_by_design dk_src with
                  | Some costs -> Hashtbl.replace s_by_design dk costs
                  | None -> ())
              | _ -> ()
          done;
          pending_exec_summary := Some (s_cluster_id_of, s_by_design));
      locals
    end
  in
  List.iter (fun local -> Cost_cache.merge ~into:cache local) locals;
  (* TRANS matrix: designs become bitmasks over the sorted structure
     universe and every structure's build cost is computed once up front,
     so the n_configs^2 pairs only pay word-level set arithmetic — with a
     per-domain memo on the added-structure mask, a pair whose build set
     was already summed costs a single lookup.  Mask bits are visited in
     ascending universe order, which is exactly [Design.fold]'s sorted
     order over the diff, so each entry is the bit-identical float
     [Cost_model.transition_cost] computes. *)
  let trans =
    Obs.Span.with_span "problem.build.trans" @@ fun () ->
    let universe =
      let seen = Hashtbl.create 32 in
      Array.iter
        (fun design ->
          Design.fold
            (fun s () ->
              let key = Cost_key.structure s in
              if not (Hashtbl.mem seen key) then Hashtbl.replace seen key s)
            design ())
        designs;
      (* cddpd-lint: allow determinism — fold collects members that are sorted by Structure.compare below *)
      let members = Hashtbl.fold (fun _ s acc -> s :: acc) seen [] in
      Array.of_list (List.sort Structure.compare members)
    in
    let n_structures = Array.length universe in
    let index_of = Hashtbl.create (max 16 n_structures) in
    Array.iteri (fun i s -> Hashtbl.replace index_of (Cost_key.structure s) i) universe;
    let build_cost =
      Array.map
        (fun s ->
          Cost_cache.structure_build_cost cache params
            (stats_of (Structure.table s))
            s)
        universe
    in
    let words = max 1 ((n_structures + 62) / 63) in
    let mask_of design =
      let mask = Array.make words 0 in
      Design.fold
        (fun s () ->
          let i = Hashtbl.find index_of (Cost_key.structure s) in
          mask.(i / 63) <- mask.(i / 63) lor (1 lsl (i mod 63)))
        design ();
      mask
    in
    let masks = Array.map mask_of designs in
    (* TRANS delta reuse: configurations that also existed in the
       previous build (matched by design key, statistics unchanged — the
       summary would have been dropped otherwise) copy their pairwise
       entries verbatim from the previous matrix. *)
    let prev_of =
      match reuse_summary with
      | None -> None
      | Some s ->
          Some
            (Array.init n_configs (fun c ->
                 match design_keys.(c) with
                 | Some dk -> (
                     match Hashtbl.find_opt s.s_id_of_design dk with
                     | Some id -> id
                     | None -> -1)
                 | None -> -1))
    in
    let prev_trans =
      match reuse_summary with Some s -> s.s_trans | None -> [||]
    in
    let trans = Array.make_matrix n_configs n_configs 0.0 in
    let chunk_tallies =
      Parallel.map_chunks ?jobs ~min_per_domain:8 ~n:n_configs (fun ~lo ~hi ->
          let memo = Hashtbl.create 256 in
          let hits = ref 0 in
          let copied = ref 0 in
          let key_buf = Buffer.create (words * 12) in
          let added = Array.make words 0 in
          for i = lo to hi - 1 do
            let from_mask = masks.(i) in
            let row = trans.(i) in
            let pi = match prev_of with Some p -> p.(i) | None -> -1 in
            let prev_row = if pi >= 0 then Some prev_trans.(pi) else None in
            for j = 0 to n_configs - 1 do
              if i <> j then begin
                let pj =
                  match (prev_row, prev_of) with
                  | Some _, Some p -> p.(j)
                  | _ -> -1
                in
                if pj >= 0 then begin
                  (match prev_row with
                  | Some prev_row -> row.(j) <- prev_row.(pj)
                  | None -> assert false);
                  incr copied
                end
                else begin
                  let to_mask = masks.(j) in
                  let removed = ref 0 in
                  Buffer.clear key_buf;
                  for w = 0 to words - 1 do
                    let a = to_mask.(w) land lnot from_mask.(w) in
                    added.(w) <- a;
                    removed := !removed + popcount (from_mask.(w) land lnot to_mask.(w));
                    Buffer.add_string key_buf (string_of_int a);
                    Buffer.add_char key_buf ','
                  done;
                  let key = Buffer.contents key_buf in
                  let build_sum =
                    match Hashtbl.find_opt memo key with
                    | Some v ->
                        incr hits;
                        v
                    | None ->
                        let acc = ref 0.0 in
                        for w = 0 to words - 1 do
                          let bits = ref added.(w) in
                          let bit = ref (w * 63) in
                          while !bits <> 0 do
                            if !bits land 1 = 1 then acc := !acc +. build_cost.(!bit);
                            bits := !bits lsr 1;
                            incr bit
                          done
                        done;
                        Hashtbl.replace memo key !acc;
                        !acc
                  in
                  row.(j) <-
                    build_sum
                    +. (params.Cost_model.drop_cost *. float_of_int !removed)
                end
              end
            done
          done;
          (!hits, !copied))
    in
    List.iter (fun (hits, _) -> Obs.Counter.add m_trans_memoized hits) chunk_tallies;
    (match reuse with
    | None -> ()
    | Some r ->
        let copied =
          List.fold_left (fun acc (_, c) -> acc + c) 0 chunk_tallies
        in
        r.Reuse.t_trans_blocks_reused <- r.Reuse.t_trans_blocks_reused + copied;
        Obs.Counter.add m_reopt_trans_reused copied);
    trans
  in
  (* Hand the completed state to the session: the next build reuses this
     one's cluster costs and TRANS entries as long as keys match and the
     statistics fingerprints below still hold. *)
  (match reuse with
  | None -> ()
  | Some r -> (
      r.Reuse.t_builds <- r.Reuse.t_builds + 1;
      match !pending_exec_summary with
      | None -> ()
      | Some (s_cluster_id_of, s_by_design) ->
          let s_id_of_design = Hashtbl.create (max 16 n_configs) in
          Array.iteri
            (fun c dk ->
              match dk with
              | Some dk -> Hashtbl.replace s_id_of_design dk c
              | None -> ())
            design_keys;
          let s_fingerprints = Hashtbl.create 8 in
          (if Hashtbl.length fp_tbl > 0 then
             (* cddpd-lint: allow determinism — keyed copy into a fresh table; each key is visited once *)
             Hashtbl.iter (fun t fp -> Hashtbl.replace s_fingerprints t fp) fp_tbl
           else
             (* cddpd-lint: allow determinism — keyed copy into a fresh table; each key is visited once *)
             Hashtbl.iter
               (fun t stats ->
                 Hashtbl.replace s_fingerprints t (Table_stats.fingerprint stats))
               stats_tbl);
          r.Reuse.summary <-
            Some { s_cluster_id_of; s_by_design; s_id_of_design; s_trans = trans; s_fingerprints }));
  Cost_cache.publish_obs cache;
  make_t ~steps ~space ~initial:initial_id ~exec ~trans ~count_initial_change

let of_matrices ~steps ~space ~initial ~exec ~trans ?(count_initial_change = false) () =
  let n_steps = Array.length steps in
  let n_configs = Config_space.size space in
  if n_steps = 0 then invalid_arg "Problem.of_matrices: no steps";
  if initial < 0 || initial >= n_configs then
    invalid_arg "Problem.of_matrices: initial out of range";
  if Array.length exec <> n_steps then
    invalid_arg "Problem.of_matrices: exec has wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: exec row has wrong width";
      Array.iter
        (fun c -> if c < 0.0 then invalid_arg "Problem.of_matrices: negative exec cost")
        row)
    exec;
  if Array.length trans <> n_configs then
    invalid_arg "Problem.of_matrices: trans has wrong number of rows";
  Array.iteri
    (fun i row ->
      if Array.length row <> n_configs then
        invalid_arg "Problem.of_matrices: trans row has wrong width";
      Array.iteri
        (fun j c ->
          if c < 0.0 then invalid_arg "Problem.of_matrices: negative trans cost";
          if i = j && not (Float.equal c 0.0) then
            invalid_arg "Problem.of_matrices: non-zero self-transition")
        row)
    trans;
  make_t ~steps ~space ~initial ~exec ~trans ~count_initial_change

let to_graph t = Lazy.force t.graph

let initial_for_counting t = if t.count_initial_change then Some t.initial else None

let path_cost t path = Staged_dag.path_cost (to_graph t) path

let path_changes t path =
  Staged_dag.path_changes (to_graph t) ~initial:(initial_for_counting t) path

let restrict t ids =
  let with_initial = if List.mem t.initial ids then ids else t.initial :: ids in
  let sub_space, mapping = Config_space.restrict t.space with_initial in
  let n = Array.length mapping in
  let exec =
    Array.map (fun row -> Array.init n (fun j -> row.(mapping.(j)))) t.exec
  in
  let trans =
    Array.init n (fun i -> Array.init n (fun j -> t.trans.(mapping.(i)).(mapping.(j))))
  in
  let initial =
    let rec find i = if mapping.(i) = t.initial then i else find (i + 1) in
    find 0
  in
  ( make_t ~steps:t.steps ~space:sub_space ~initial ~exec ~trans
      ~count_initial_change:t.count_initial_change,
    mapping )
