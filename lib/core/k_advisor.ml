module Kaware = Cddpd_graph.Kaware
module Obs = Cddpd_obs
module Timer = Cddpd_util.Timer

let m_profile_points = Obs.Registry.counter "advisor.k_advisor.profile_points"
let h_point_s = Obs.Registry.histogram "advisor.k_advisor.point_s"

type point = { k : int; cost : float; captured : float }

type recommendation = {
  suggested_k : int;
  capture_target : float;
  unconstrained_changes : int;
  profile : point list;
}

let raw_profile problem =
  Obs.Span.with_span "advisor.k_advisor.profile" @@ fun () ->
  let graph = Problem.to_graph problem in
  let initial = Problem.initial_for_counting problem in
  let unconstrained = Optimizer.unconstrained problem in
  let l = unconstrained.Solution.changes in
  (* Walk k upward, threading each point's optimum as the next point's
     branch-and-bound seed: a ≤ (k-1)-changes schedule is also feasible at
     k, and pruning is exact, so the profile costs are unchanged. *)
  let rec walk k upper_bound acc =
    if k > l then List.rev acc
    else begin
      let point, elapsed =
        Timer.time (fun () ->
            match Kaware.solve ?upper_bound graph ~k ~initial with
            | Some (cost, _) -> (k, cost)
            | None ->
                (* Only k = 0 under the counted-initial convention can be
                   infeasible... and even then staying on the initial config is
                   a path, so this cannot happen. *)
                assert false)
      in
      Obs.Counter.incr m_profile_points;
      Obs.Histogram.observe h_point_s elapsed;
      walk (k + 1) (Some (snd point)) (point :: acc)
    end
  in
  let costs = walk 0 None [] in
  (l, unconstrained.Solution.cost, costs)

let profile problem =
  let _, best_cost, costs = raw_profile problem in
  let static_cost = match costs with (_, c) :: _ -> c | [] -> assert false in
  let total_benefit = static_cost -. best_cost in
  List.map
    (fun (k, cost) ->
      let captured =
        if total_benefit <= 0.0 then 1.0 else (static_cost -. cost) /. total_benefit
      in
      { k; cost; captured })
    costs

let suggest ?(capture_target = 0.9) problem =
  if capture_target < 0.0 || capture_target > 1.0 then
    invalid_arg "K_advisor.suggest: capture_target outside [0, 1]";
  let points = profile problem in
  let l = List.length points - 1 in
  let suggested_k =
    match List.find_opt (fun p -> p.captured >= capture_target) points with
    | Some p -> p.k
    | None -> l
  in
  {
    suggested_k;
    capture_target;
    unconstrained_changes = l;
    profile = points;
  }
