(** Unified entry point to every solver in the paper.

    All solvers return a {!Solution.t} whose [cost] and [changes] are
    recomputed from the instance, so heuristic solvers cannot misreport.

    The exact constrained solvers ([Kaware], [Ranking], and [Hybrid]'s
    k-aware fall-back) are branch-and-bound seeded: the merging heuristic
    refined from the unconstrained optimum is always a feasible
    ≤ [k]-changes schedule, and its cost is passed as the solvers'
    [upper_bound].  Pruning is exact (see {!Cddpd_graph.Kaware.solve} and
    {!Cddpd_graph.Ranking.solve_constrained}), so the returned schedules
    are unchanged — the bound only cuts work. *)

type error =
  | Infeasible  (** no schedule satisfies the change budget *)
  | Ranking_gave_up of Cddpd_graph.Ranking.gave_up
      (** ranking stopped without finding a schedule within the budget —
          the payload says whether the space was exhausted or which budget
          ([max_paths] / [max_queue]) was hit, and how many paths were
          examined (the paper's worst case) *)

val solve :
  Problem.t ->
  method_name:Solution.method_name ->
  ?k:int ->
  ?jobs:int ->
  ?max_paths:int ->
  ?max_queue:int ->
  ?upper_bound:float ->
  unit ->
  (Solution.t, error) result
(** Run one solver.  [k] is required by every method except
    [Unconstrained] (raises [Invalid_argument] when missing).
    [jobs] forces the domain count of the k-aware parallel relaxation;
    [max_paths] (default 1_000_000) and [max_queue] (default unbounded)
    bound the [Ranking] enumeration.

    [upper_bound] warm-starts the exact solvers' branch-and-bound: it
    must be the cost of some feasible ≤ [k]-changes schedule of this
    instance (serve passes the incumbent's hold-at-the-current-design
    cost).  The effective seed is the tighter of this bound and the
    merging seed ([reopt.warm_start_bound_used] counts when the caller's
    bound won); pruning stays exact, so a valid bound never changes the
    returned schedule — only how much work finding it takes.

    None of these knobs changes the returned schedule.  Elapsed
    wall-clock time is recorded in the solution. *)

val unconstrained : Problem.t -> Solution.t
(** Convenience: the sequence-graph optimum. *)

val hybrid_uses_merging : l:int -> k:int -> bool
(** The hybrid rule (Section 6.4's conclusion): with [l] changes in the
    unconstrained optimum, use merging when [k > l / 2] (few merge steps
    needed), the k-aware graph otherwise. *)
