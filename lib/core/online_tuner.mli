(** A reactive online tuner, the related-work baseline.

    The paper contrasts its offline constrained designs with on-line
    approaches (Bruno/Chaudhuri, COLT): mechanisms that observe the
    workload as it runs and switch designs when the recent past justifies
    the transition cost.  This module implements that policy at step
    granularity so examples and ablation benches can compare the three
    regimes (static, online-reactive, offline-constrained) on equal
    footing.

    Policy: after executing each step, estimate every configuration's EXEC
    over the last [window] steps; switch to the best configuration [b] if

    {v (cost(current) - cost(b)) * horizon / window > threshold * TRANS(current, b) v}

    i.e. if the recent benefit, extrapolated [horizon] steps forward, pays
    for the transition. *)

type params = {
  window : int;  (** how many recent steps to evaluate over (default 2) *)
  horizon : int;  (** extrapolation horizon in steps (default 4) *)
  threshold : float;  (** required benefit/cost ratio (default 1.0) *)
}

val default_params : params

val decide :
  params:params ->
  window_cost:(int -> float) ->
  trans_cost:(int -> float) ->
  n_configs:int ->
  current:int ->
  window_len:float ->
  unit ->
  int
(** One reactive decision, the policy of {!run} factored out so other
    harnesses (notably the serve loop's [Reactive] regime) can apply it at
    their own granularity: [window_cost c] is configuration [c]'s EXEC over
    the recent window (whose length in steps is [window_len]),
    [trans_cost c] the cost of switching to [c] from [current].  Returns
    the configuration to use next — [current] unless some cheaper
    configuration's extrapolated benefit pays for the transition.  Raises
    [Invalid_argument] if [window_len <= 0]. *)

val run : ?params:params -> Problem.t -> int array
(** The configuration the tuner would have used for each step.  The tuner
    only sees steps it has already executed: the config for step [s]
    depends on steps [0 .. s-1] only, and step 0 runs under the initial
    configuration. *)
