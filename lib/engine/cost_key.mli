(** Identity keys for what-if costing.

    Memoizing the cost model needs keys with two properties.  They must be
    collision-safe — [Hashtbl.hash] does not qualify, because its bounded
    traversal ignores the tails of deep values — and they should be
    *cost-identities*, not syntactic identities: the workloads of the
    paper draw predicate constants at random, so
    [SELECT b FROM t WHERE a = 17] and [... WHERE a = 99] are distinct
    statements that usually cost exactly the same.

    {!statement} therefore serialises precisely what
    {!Cost_model.statement_cost} reads: the statement's shape (constructor,
    table, projection, per-predicate column / operator / value-kind, in
    predicate order), each predicate's selectivity under the given
    statistics (as exact float bits), and the table-shape numbers the cost
    formulas use (row count, page count, histogram count, and the group
    column's cardinality for aggregates).  Fields the cost model ignores —
    INSERT values, UPDATE assignments, the aggregate function — are
    deliberately left out, which is where the memo hit rate comes from.

    Soundness invariant: equal keys imply equal [statement_cost] under
    every design (asserted by property test against random statements).
    Anyone extending the cost model to read a new statement field must
    extend the key too.  Structure and design keys remain injective:
    distinct designs always get distinct keys. *)

val statement : Table_stats.t -> Cddpd_sql.Ast.statement -> string
(** The statement's cost identity under the given table statistics. *)

val structure : Cddpd_catalog.Structure.t -> string
(** ["I:<table>:<col>,<col>"] for an index, ["V:<table>:<col>"] for a
    materialized view.  Unlike {!Cddpd_catalog.Structure.name}, the table
    is part of the key. *)

val design : Cddpd_catalog.Design.t -> string
(** The design's structure keys joined with ["|"], in the design's
    canonical (sorted-set) order; [""] for the empty design. *)

val statement_under_design :
  design_key:string ->
  Table_stats.t ->
  Cddpd_sql.Ast.statement ->
  string
(** The memo key of one [EXEC(S, C)] evaluation: [design_key], a newline,
    then {!statement}.  Neither component can contain a newline, so the
    pairing is unambiguous. *)
