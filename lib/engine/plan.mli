(** Physical access plans for select statements. *)

type range_bound = {
  op : Cddpd_sql.Ast.cmp; (** never [Eq] *)
  value : int;
}

type access_path =
  | Full_scan
      (** Scan every heap page, filter, project. *)
  | Index_seek of {
      index : Cddpd_catalog.Index_def.t;
      eq_prefix : int list;
          (** Constants bound by equality to the index's leading columns. *)
      range : (range_bound option * range_bound option) option;
          (** Optional lower/upper bound on the next index column. *)
      covering : bool;
          (** Every column the query references is in the index key, so no
              heap fetches are needed. *)
    }
  | Index_only_scan of { index : Cddpd_catalog.Index_def.t }
      (** Scan the index leaf level instead of the (wider) heap; applicable
          when the index covers the query but no prefix is sargable.  This
          is what makes a composite index like I(a,b) useful for queries on
          b alone. *)
  | View_probe of {
      view : Cddpd_catalog.View_def.t;
      group_value : int option;
          (** [Some v]: fetch one group's row; [None]: scan all groups *)
    }
      (** Answer an aggregate query from a materialized view instead of the
          base table (only for [Select_agg] statements whose predicates are
          all on the grouping column). *)

type t = {
  path : access_path;
  estimated_rows : float; (** rows expected to satisfy all predicates *)
  estimated_cost : float; (** cost-model units (page I/O equivalents) *)
}

val count_choice : t -> unit
(** Bump the [plan.chosen.*] observability counter matching this plan's
    access path.  The planner calls it once per winning plan; a no-op
    while instrumentation is disabled. *)

val pp_access_path : Format.formatter -> access_path -> unit

val pp : Format.formatter -> t -> unit
