(** The what-if cost model: EXEC, TRANS and SIZE.

    This is the engine's stand-in for a commercial optimizer's what-if
    interface.  Given table statistics and a hypothetical physical design,
    it estimates the cost of executing a statement ([EXEC(S, C)]), of
    changing the physical design ([TRANS(Ci, Cj)]), and the size of a
    design ([SIZE(C)]) — the three quantities Definition 1 of the paper is
    stated in.  Costs are in page-I/O-equivalent units. *)

type params = {
  page_io : float;  (** cost of touching one page (the unit: 1.0) *)
  row_cpu : float;  (** per-row predicate evaluation / copying *)
  rid_fetch : float;  (** heap page fetch per qualifying rid *)
  sort_cpu : float;  (** per row·log2(rows) during index build *)
  drop_cost : float;  (** dropping one index (catalog-only) *)
  build_write_ratio : float;
      (** write cost of one index page relative to a read *)
  leaf_fill : float;  (** assumed leaf fill factor of a built index *)
}

val default_params : params
(** page_io 1.0, row_cpu 0.001, rid_fetch 1.0, sort_cpu 0.0002,
    drop_cost 1.0, build_write_ratio 1.0, leaf_fill 0.9. *)

(** {1 Index size and shape} *)

val index_leaf_entry_bytes : Cddpd_catalog.Index_def.t -> int
(** Bytes per leaf entry: one 8-byte word per key column plus two for the
    rid, matching [Btree]'s physical layout. *)

val index_leaf_pages : params -> rows:int -> Cddpd_catalog.Index_def.t -> int
(** Estimated leaf page count at the assumed fill factor. *)

val index_size_pages : params -> rows:int -> Cddpd_catalog.Index_def.t -> int
(** Estimated total page count (leaves + internal levels + root). *)

val index_size_bytes : params -> rows:int -> Cddpd_catalog.Index_def.t -> int

val index_height : params -> rows:int -> Cddpd_catalog.Index_def.t -> int
(** Estimated levels, root to leaf inclusive. *)

val view_rows : Table_stats.t -> Cddpd_catalog.View_def.t -> int
(** Estimated group count (distinct values of the grouping column). *)

val view_size_pages : params -> stats:Table_stats.t -> Cddpd_catalog.View_def.t -> int

val view_size_bytes : params -> stats:Table_stats.t -> Cddpd_catalog.View_def.t -> int

val view_height : params -> stats:Table_stats.t -> Cddpd_catalog.View_def.t -> int
(** Estimated lookup-tree height. *)

val structure_size_bytes :
  params -> stats:Table_stats.t -> Cddpd_catalog.Structure.t -> int

val design_size_bytes :
  params -> stats_of:(string -> Table_stats.t) -> Cddpd_catalog.Design.t -> int
(** SIZE(C): total bytes of all structures in the design. *)

(** {1 EXEC} *)

val choose_plan :
  params -> Table_stats.t -> Cddpd_catalog.Design.t -> Cddpd_sql.Ast.select -> Plan.t
(** Pick the cheapest access path for the select under the design:
    the full scan, or any index whose leading columns are bound by equality
    predicates (optionally followed by one range-bound column). *)

val select_cost :
  params -> Table_stats.t -> Cddpd_catalog.Design.t -> Cddpd_sql.Ast.select -> float
(** Cost of the chosen plan. *)

val rebind_select_plan : Cddpd_sql.Ast.select -> Plan.t -> Plan.t option
(** [rebind_select_plan select plan] re-extracts [select]'s literals into
    a plan memoized under the statement's [Cost_key] (which pins the plan
    shape and the estimator's floats but not literal bindings): the
    equality-prefix values and range bounds of an index seek.  [None] when
    the plan's shape does not fit the statement — impossible for a
    key-equal statement; callers then recompute with {!choose_plan}. *)

val rebind_agg_plan :
  group_by:string ->
  where:Cddpd_sql.Ast.predicate list ->
  Plan.t ->
  Plan.t option
(** {!rebind_select_plan} for aggregate plans: rebinds the view-probe
    group value. *)

val statement_cost :
  params -> Table_stats.t -> Cddpd_catalog.Design.t -> Cddpd_sql.Ast.statement -> float
(** EXEC(S, C) for one statement: plan cost for selects; heap append plus
    per-index maintenance for inserts; find-plan cost plus per-affected-row
    writes and index maintenance for DELETE/UPDATE (indexes make updates
    cheaper to find but dearer to maintain — the classic trade-off the
    dynamic advisor weighs). *)

(** {1 TRANS} *)

val choose_agg_plan :
  params ->
  Table_stats.t ->
  Cddpd_catalog.Design.t ->
  table:string ->
  group_by:string ->
  where:Cddpd_sql.Ast.predicate list ->
  Plan.t
(** Access path for an aggregate query: a matching materialized view (probe
    or scan) when the design has one and every predicate is an equality on
    the grouping column, else a full scan with on-the-fly aggregation. *)

val build_cost : params -> Table_stats.t -> Cddpd_catalog.Index_def.t -> float
(** Scan the table, sort the entries, write the index pages. *)

val view_build_cost : params -> Table_stats.t -> Cddpd_catalog.View_def.t -> float
(** Scan the table, aggregate, write the view pages. *)

val structure_build_cost : params -> Table_stats.t -> Cddpd_catalog.Structure.t -> float
(** {!build_cost} or {!view_build_cost}, by structure kind — the
    per-structure term {!transition_cost} sums (and {!Cost_cache}
    memoizes). *)

val transition_cost :
  params ->
  stats_of:(string -> Table_stats.t) ->
  from_design:Cddpd_catalog.Design.t ->
  to_design:Cddpd_catalog.Design.t ->
  float
(** TRANS(Ci, Cj): build every index in [to_design - from_design], drop
    every index in [from_design - to_design].  Zero iff the designs are
    equal. *)
