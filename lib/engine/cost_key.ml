module Ast = Cddpd_sql.Ast
module Tuple = Cddpd_storage.Tuple
module Structure = Cddpd_catalog.Structure
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Design = Cddpd_catalog.Design

(* Int vs Text decides whether a value participates in index-prefix and
   range matching (int_value in Cost_model), independently of selectivity. *)
let add_value_kind buf v =
  Buffer.add_char buf (match v with Tuple.Int _ -> 'i' | Tuple.Text _ -> 't')

let op_char op =
  match op with
  | Ast.Eq -> '='
  | Ast.Lt -> '<'
  | Ast.Le -> 'l'
  | Ast.Gt -> '>'
  | Ast.Ge -> 'g'

(* One predicate: shape plus its selectivity under [stats], as exact float
   bits.  The cost formulas read a predicate only through these. *)
let add_pred stats buf pred =
  (match pred with
  | Ast.Cmp { column; op; value } ->
      Buffer.add_char buf (op_char op);
      Buffer.add_string buf column;
      Buffer.add_char buf ':';
      add_value_kind buf value
  | Ast.Between { column; low; high } ->
      Buffer.add_char buf 'b';
      Buffer.add_string buf column;
      Buffer.add_char buf ':';
      add_value_kind buf low;
      add_value_kind buf high);
  Buffer.add_char buf '#';
  Buffer.add_string buf
    (Printf.sprintf "%Lx" (Int64.bits_of_float (Table_stats.predicate_selectivity stats pred)));
  Buffer.add_char buf ';'

let statement stats stmt =
  let buf = Buffer.create 96 in
  (* Table-shape fingerprint: every cost formula scales with these, and a
     cache handle may outlive one statistics snapshot. *)
  Buffer.add_string buf
    (Printf.sprintf "%d.%d.%d@" (Table_stats.row_count stats)
       (Table_stats.page_count stats) (Table_stats.n_histograms stats));
  let add_preds where = List.iter (add_pred stats buf) where in
  (match stmt with
  | Ast.Select { projection; table; where } ->
      Buffer.add_string buf "S:";
      Buffer.add_string buf table;
      Buffer.add_char buf ':';
      (match projection with
      | Ast.Star -> Buffer.add_char buf '*'
      | Ast.Columns cs -> Buffer.add_string buf (String.concat "," cs));
      Buffer.add_char buf ':';
      add_preds where
  | Ast.Select_agg { table; group_by; where; _ } ->
      (* The aggregate function is not part of the key: view probe and scan
         costs depend only on the group column's shape. *)
      let groups =
        match Table_stats.histogram stats group_by with
        | Some h -> Histogram.n_distinct h
        | None -> -1
      in
      Buffer.add_string buf "A:";
      Buffer.add_string buf table;
      Buffer.add_char buf ':';
      Buffer.add_string buf group_by;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int groups);
      Buffer.add_char buf ':';
      add_preds where
  | Ast.Insert { table; _ } ->
      (* Heap append + index maintenance: the values never enter the cost. *)
      Buffer.add_string buf "N:";
      Buffer.add_string buf table
  | Ast.Delete { table; where } ->
      Buffer.add_string buf "D:";
      Buffer.add_string buf table;
      Buffer.add_char buf ':';
      add_preds where
  | Ast.Update { table; where; _ } ->
      (* Assignments are rewrites of found rows; only the WHERE costs. *)
      Buffer.add_string buf "U:";
      Buffer.add_string buf table;
      Buffer.add_char buf ':';
      add_preds where);
  Buffer.contents buf

let structure s =
  match s with
  | Structure.Index i ->
      Printf.sprintf "I:%s:%s" (Index_def.table i)
        (String.concat "," (Index_def.columns i))
  | Structure.View v ->
      Printf.sprintf "V:%s:%s" (View_def.table v) (View_def.group_by v)

let design d =
  (* Design.fold visits the underlying sorted set in order, so equal
     designs always serialise identically. *)
  let parts = Design.fold (fun s acc -> structure s :: acc) d [] in
  String.concat "|" (List.rev parts)

let statement_under_design ~design_key stats stmt =
  design_key ^ "\n" ^ statement stats stmt
