module Ast = Cddpd_sql.Ast
module Parser = Cddpd_sql.Parser
module Schema = Cddpd_catalog.Schema
module Design = Cddpd_catalog.Design
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure
module Tuple = Cddpd_storage.Tuple
module Heap_file = Cddpd_storage.Heap_file
module Buffer_pool = Cddpd_storage.Buffer_pool
module Disk = Cddpd_storage.Disk
module Obs = Cddpd_obs

let m_migrations = Obs.Registry.counter "database.migrations"
let m_structures_built = Obs.Registry.counter "database.structures_built"
let m_structures_dropped = Obs.Registry.counter "database.structures_dropped"

type table_state = {
  schema : Schema.table;
  heap : Heap_file.t;
  mutable indexes : Index.t list;
  mutable views : Mat_view.t list;
  mutable stats : Table_stats.t option; (* None when stale *)
  mutable stats_gen : int; (* bumped whenever the snapshot is invalidated or replaced *)
}

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  params : Cost_model.params;
  tables : (string, table_state) Hashtbl.t;
  table_order : string list;
  mutable design_memo : (Design.t * string) option;
      (* deployed design + its Cost_key, dropped on any structure change *)
  plan_cache : Plan_cache.t;
}

let create ?(pool_capacity = 256) ?readahead ?(params = Cost_model.default_params)
    schemas =
  (match schemas with [] -> invalid_arg "Database.create: no tables" | _ :: _ -> ());
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:pool_capacity ?readahead disk in
  let tables = Hashtbl.create 8 in
  List.iter
    (fun (schema : Schema.table) ->
      if Hashtbl.mem tables schema.Schema.name then
        invalid_arg "Database.create: duplicate table name";
      Hashtbl.replace tables schema.Schema.name
        {
          schema;
          heap = Heap_file.create pool;
          indexes = [];
          views = [];
          stats = None;
          stats_gen = 0;
        })
    schemas;
  {
    disk;
    pool;
    params;
    tables;
    table_order = List.map (fun (s : Schema.table) -> s.Schema.name) schemas;
    design_memo = None;
    plan_cache = Plan_cache.create ();
  }

let params t = t.params

let table_state t name =
  match Hashtbl.find_opt t.tables name with
  | Some state -> state
  | None -> invalid_arg (Printf.sprintf "Database: unknown table %s" name)

let schema t name =
  Option.map (fun state -> state.schema) (Hashtbl.find_opt t.tables name)

let tables t = List.map (fun name -> (table_state t name).schema) t.table_order

let row_count t name = Heap_file.n_tuples (table_state t name).heap

(* -- statistics ----------------------------------------------------------- *)

let collect_stats state =
  let columns = state.schema.Schema.columns in
  let int_columns =
    List.filter_map
      (fun (c : Schema.column) ->
        match c.Schema.ty with
        | Schema.Int_type -> Some c.Schema.name
        | Schema.Text_type -> None)
      columns
  in
  let n = Heap_file.n_tuples state.heap in
  let buffers =
    List.map
      (fun name -> (name, Schema.column_index_exn state.schema name, Array.make n 0))
      int_columns
  in
  let row = ref 0 in
  Heap_file.iter state.heap (fun _rid tuple ->
      List.iter (fun (_, pos, buf) -> buf.(!row) <- Tuple.int_exn tuple.(pos)) buffers;
      incr row);
  let histograms = List.map (fun (name, _, buf) -> (name, Histogram.build buf)) buffers in
  Table_stats.make ~row_count:n ~page_count:(Heap_file.n_pages state.heap) ~histograms

let table_stats t name =
  let state = table_state t name in
  match state.stats with
  | Some stats -> stats
  | None ->
      let stats = collect_stats state in
      state.stats <- Some stats;
      stats

(* Invalidation bumps the table's statistics generation; [analyze] bumps
   it too because it *replaces* the snapshot.  Lazy materialization in
   [table_stats] does not bump, so within one generation there is at most
   one snapshot and generation equality proves two [table_stats] results
   are physically the same object — the fence the serve fast path keys
   cost identities on. *)
let invalidate_stats state =
  state.stats <- None;
  state.stats_gen <- state.stats_gen + 1

let analyze t =
  List.iter
    (fun name ->
      let state = table_state t name in
      state.stats <- Some (collect_stats state);
      state.stats_gen <- state.stats_gen + 1)
    t.table_order

let stats_generation t name = (table_state t name).stats_gen

(* -- loading -------------------------------------------------------------- *)

let insert_row state tuple =
  (match Schema.validate_tuple state.schema tuple with
  | Ok () -> ()
  | Error message -> invalid_arg ("Database.load: " ^ message));
  let rid = Heap_file.insert state.heap tuple in
  List.iter (fun index -> Index.insert_entry index tuple rid) state.indexes;
  List.iter (fun view -> Mat_view.apply_insert view tuple) state.views

let validate_row state tuple =
  match Schema.validate_tuple state.schema tuple with
  | Ok () -> ()
  | Error message -> invalid_arg ("Database.load: " ^ message)

(* Bulk path: append every row to the heap first, then rebuild each
   existing index ([Index.build]: one heap scan, sort, [Btree.bulk_load])
   and materialized view from scratch, instead of descending a tree per
   row per structure.  Structure list order is preserved; old tree pages
   are not reclaimed, the same convention as [drop_index].  All rows are
   validated up front, so a bad row rejects the whole batch before any
   mutation (the row-at-a-time path fails mid-way instead). *)
let bulk_load t state rows =
  Array.iter (validate_row state) rows;
  let heap_was_empty = Heap_file.n_tuples state.heap = 0 in
  let rids = Array.map (fun tuple -> Heap_file.insert state.heap tuple) rows in
  state.indexes <-
    List.map
      (fun i ->
        (* When the batch is the whole heap, build each tree straight from
           the in-memory rows and the rids just assigned — no heap rescan,
           no per-row tuple decode. *)
        if heap_was_empty then
          Index.build_of_rows t.pool state.schema (Index.def i) ~rows ~rids
        else Index.build t.pool state.schema state.heap (Index.def i))
      state.indexes;
  state.views <-
    List.map (fun v -> Mat_view.build t.pool state.schema state.heap (Mat_view.def v)) state.views

let load ?(bulk = true) t ~table rows =
  let state = table_state t table in
  (match (bulk, state.indexes, state.views) with
  | false, _, _ | true, [], [] -> Array.iter (insert_row state) rows
  | true, _, _ -> bulk_load t state rows);
  (* Invalidate rather than recompute: statistics are rebuilt on the first
     [table_stats] call, the same convention as the DML paths.  Loading a
     table that is never analyzed costs no histogram pass. *)
  invalidate_stats state

(* -- physical design ------------------------------------------------------ *)

(* Iterate in declared table order (not Hashtbl order) so the resulting
   design — and anything derived from it, like migration sequences — is
   deterministic across processes and hash seeds. *)
let compute_design t =
  List.fold_left
    (fun acc name ->
      let state = table_state t name in
      let acc =
        List.fold_left
          (fun acc index -> Design.add (Index.def index) acc)
          acc state.indexes
      in
      List.fold_left (fun acc view -> Design.add_view (Mat_view.def view) acc) acc state.views)
    Design.empty t.table_order

let current_design t =
  match t.design_memo with
  | Some (design, _) -> design
  | None ->
      let design = compute_design t in
      t.design_memo <- Some (design, Cost_key.design design);
      design

let design_key t =
  match t.design_memo with
  | Some (_, key) -> key
  | None ->
      let design = compute_design t in
      let key = Cost_key.design design in
      t.design_memo <- Some (design, key);
      key

(* Every actual structure change drops the design memo and flushes the
   plan memo: entries under the old design key would linger unreachable
   (the key embeds the design) and only waste the table's capacity. *)
let design_changed t =
  t.design_memo <- None;
  Plan_cache.invalidate t.plan_cache

let build_index t def =
  let state = table_state t (Index_def.table def) in
  let already = List.exists (fun i -> Index_def.equal (Index.def i) def) state.indexes in
  if not already then begin
    let index = Index.build t.pool state.schema state.heap def in
    state.indexes <- index :: state.indexes;
    design_changed t
  end

let drop_index t def =
  let state = table_state t (Index_def.table def) in
  if List.exists (fun i -> Index_def.equal (Index.def i) def) state.indexes then begin
    (* Pages of the dropped tree are not reclaimed by the simulated disk;
       dropping is a catalog-only operation, as in the cost model. *)
    state.indexes <-
      List.filter (fun i -> not (Index_def.equal (Index.def i) def)) state.indexes;
    design_changed t
  end

let build_view t def =
  let state = table_state t (View_def.table def) in
  let already = List.exists (fun v -> View_def.equal (Mat_view.def v) def) state.views in
  if not already then begin
    let view = Mat_view.build t.pool state.schema state.heap def in
    state.views <- view :: state.views;
    design_changed t
  end

let drop_view t def =
  let state = table_state t (View_def.table def) in
  if List.exists (fun v -> View_def.equal (Mat_view.def v) def) state.views then begin
    state.views <-
      List.filter (fun v -> not (View_def.equal (Mat_view.def v) def)) state.views;
    design_changed t
  end

let build_structure t structure =
  match structure with
  | Structure.Index def -> build_index t def
  | Structure.View def -> build_view t def

let drop_structure t structure =
  match structure with
  | Structure.Index def -> drop_index t def
  | Structure.View def -> drop_view t def

let migrate_to t target =
  let current = current_design t in
  let to_drop = Design.diff current target and to_build = Design.diff target current in
  Obs.Counter.incr m_migrations;
  Obs.Counter.add m_structures_dropped (Design.cardinality to_drop);
  Obs.Counter.add m_structures_built (Design.cardinality to_build);
  Design.fold (fun s () -> drop_structure t s) to_drop ();
  Design.fold (fun s () -> build_structure t s) to_build ()

(* -- execution ------------------------------------------------------------ *)

type exec_result = {
  rows : Tuple.t list;
  affected : int;
  plan : Plan.t option;
  logical_io : int;
  physical_io : int;
}

let pool_accesses t =
  let s = Buffer_pool.stats t.pool in
  s.Buffer_pool.hits + s.Buffer_pool.misses

let disk_reads t = (Disk.stats t.disk).Disk.reads

let compare_matches op c =
  match op with
  | Ast.Eq -> c = 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let eval_predicate schema tuple pred =
  match pred with
  | Ast.Cmp { column; op; value } ->
      let pos = Schema.column_index_exn schema column in
      compare_matches op (Tuple.compare_value tuple.(pos) value)
  | Ast.Between { column; low; high } ->
      let pos = Schema.column_index_exn schema column in
      Tuple.compare_value tuple.(pos) low >= 0
      && Tuple.compare_value tuple.(pos) high <= 0

(* Field accessor for a record encoded at [base] in [buf].  When every
   column before [pos] is an integer the field offset is fixed, so the
   accessor is a direct 8-byte read (the scan hot path); otherwise it
   falls back to the generic walk. *)
let compile_field_read schema pos =
  let columns = schema.Schema.columns in
  let rec all_int_prefix i cols =
    match cols with
    | [] -> true
    | (c : Schema.column) :: rest ->
        i >= pos || (c.Schema.ty = Schema.Int_type && all_int_prefix (i + 1) rest)
  in
  match List.nth_opt columns pos with
  | Some { Schema.ty = Schema.Int_type; _ } when all_int_prefix 0 columns ->
      (* tag byte at base + 2 + 9*pos, payload right after *)
      let off = 2 + (9 * pos) + 1 in
      fun buf base -> Tuple.Int (Int64.to_int (Bytes.get_int64_le buf (base + off)))
  | Some _ | None -> fun buf base -> Tuple.get_field_at buf ~base pos

(* Compile the conjunction to run against encoded records, resolving
   column positions and field offsets once — the scan hot path must not
   decode whole tuples or search the schema per row. *)
let compile_predicates_slices schema preds =
  (* Fixed-offset integer predicate: compare without boxing the field and
     with the operator resolved at compile time. *)
  let int_fast_path column op v =
    let pos = Schema.column_index_exn schema column in
    let columns = schema.Schema.columns in
    let all_int_prefix =
      List.for_all (fun (c : Schema.column) -> c.Schema.ty = Schema.Int_type) columns
    in
    if not all_int_prefix then None
    else
      let off = 2 + (9 * pos) + 1 in
      let read buf base = Int64.to_int (Bytes.get_int64_le buf (base + off)) in
      Some
        (match op with
        | Ast.Eq -> fun buf base -> read buf base = v
        | Ast.Lt -> fun buf base -> read buf base < v
        | Ast.Le -> fun buf base -> read buf base <= v
        | Ast.Gt -> fun buf base -> read buf base > v
        | Ast.Ge -> fun buf base -> read buf base >= v)
  in
  let compile pred =
    match pred with
    | Ast.Cmp { column; op; value = Tuple.Int v } when Option.is_some (int_fast_path column op v)
      -> (
        match int_fast_path column op v with Some test -> test | None -> assert false)
    | Ast.Cmp { column; op; value } ->
        let read = compile_field_read schema (Schema.column_index_exn schema column) in
        fun buf base -> compare_matches op (Tuple.compare_value (read buf base) value)
    | Ast.Between { column; low = Tuple.Int lo; high = Tuple.Int hi }
      when Option.is_some (int_fast_path column Ast.Ge lo) ->
        let ge = Option.get (int_fast_path column Ast.Ge lo) in
        let le = Option.get (int_fast_path column Ast.Le hi) in
        fun buf base -> ge buf base && le buf base
    | Ast.Between { column; low; high } ->
        let read = compile_field_read schema (Schema.column_index_exn schema column) in
        fun buf base ->
          let v = read buf base in
          Tuple.compare_value v low >= 0 && Tuple.compare_value v high <= 0
  in
  match List.map compile preds with
  | [] -> fun _buf _base -> true
  | [ single ] -> single
  | compiled -> fun buf base -> List.for_all (fun test -> test buf base) compiled

let compile_project_slices schema projection =
  let positions =
    match projection with
    | Ast.Star -> List.init (Schema.arity schema) (fun i -> i)
    | Ast.Columns cs -> List.map (Schema.column_index_exn schema) cs
  in
  let reads = Array.of_list (List.map (compile_field_read schema) positions) in
  fun buf base -> Array.map (fun read -> read buf base) reads

let project schema projection tuple =
  match projection with
  | Ast.Star -> tuple
  | Ast.Columns cs ->
      let positions = List.map (Schema.column_index_exn schema) cs in
      Array.of_list (List.map (fun pos -> tuple.(pos)) positions)

let key_position key_columns column =
  let rec go i columns =
    match columns with
    | [] -> failwith "Database: covering plan references a non-key column"
    | c :: rest -> if String.equal c column then i else go (i + 1) rest
  in
  go 0 key_columns

(* Compile the conjunction to run against index entries (leaf buffer +
   entry offset; key column j's value at offset + 8j); only valid when
   every predicate column is a key column, which covering plans guarantee.
   Int-typed comparisons are resolved at compile time since index keys are
   always integers. *)
let compile_predicates_on_entry key_columns preds =
  let int_bound name value =
    match value with
    | Tuple.Int v -> v
    | Tuple.Text _ -> failwith ("Database: covering plan with text literal in " ^ name)
  in
  let entry_value buf pos off = Int64.to_int (Bytes.get_int64_le buf (pos + off)) in
  let compile pred =
    match pred with
    | Ast.Cmp { column; op; value } -> (
        let off = 8 * key_position key_columns column in
        let v = int_bound column value in
        match op with
        | Ast.Eq -> fun buf pos -> entry_value buf pos off = v
        | Ast.Lt -> fun buf pos -> entry_value buf pos off < v
        | Ast.Le -> fun buf pos -> entry_value buf pos off <= v
        | Ast.Gt -> fun buf pos -> entry_value buf pos off > v
        | Ast.Ge -> fun buf pos -> entry_value buf pos off >= v)
    | Ast.Between { column; low; high } ->
        let off = 8 * key_position key_columns column in
        let lo = int_bound column low and hi = int_bound column high in
        fun buf pos ->
          let v = entry_value buf pos off in
          v >= lo && v <= hi
  in
  match List.map compile preds with
  | [] -> fun _buf _pos -> true
  | [ single ] -> single
  | compiled -> fun buf pos -> List.for_all (fun test -> test buf pos) compiled

(* Compile the projection against index entries. *)
let compile_project_entry key_columns projection =
  match projection with
  | Ast.Star -> failwith "Database: covering plan with * projection"
  | Ast.Columns cs ->
      let offsets = Array.of_list (List.map (fun c -> 8 * key_position key_columns c) cs) in
      fun buf pos ->
        Array.map
          (fun off -> Tuple.Int (Int64.to_int (Bytes.get_int64_le buf (pos + off))))
          offsets

let run_select state (select : Ast.select) plan =
  let matches tuple = List.for_all (eval_predicate state.schema tuple) select.Ast.where in
  let emit = project state.schema select.Ast.projection in
  let find_index def =
    match List.find_opt (fun i -> Index_def.equal (Index.def i) def) state.indexes with
    | Some index -> index
    | None -> failwith "Database: plan references an index that is not materialised"
  in
  match plan.Plan.path with
  | Plan.Full_scan ->
      let row_matches = compile_predicates_slices state.schema select.Ast.where in
      let emit_slice = compile_project_slices state.schema select.Ast.projection in
      let rows = ref [] in
      Heap_file.iter_slices state.heap (fun buf base ->
          if row_matches buf base then rows := emit_slice buf base :: !rows);
      List.rev !rows
  | Plan.Index_seek { index = def; eq_prefix; range; covering } ->
      let index = find_index def in
      if covering then
        let key_columns = Index.columns index in
        let entry_matches = compile_predicates_on_entry key_columns select.Ast.where in
        let emit_entry = compile_project_entry key_columns select.Ast.projection in
        let rows = ref [] in
        Index.probe_slices index ~eq_prefix ~range (fun buf pos ->
            if entry_matches buf pos then rows := emit_entry buf pos :: !rows);
        List.rev !rows
      else
        let rids = Index.probe index ~eq_prefix ~range in
        List.filter_map
          (fun rid ->
            match Heap_file.fetch state.heap rid with
            | Some tuple when matches tuple -> Some (emit tuple)
            | Some _ | None -> None)
          rids
  | Plan.Index_only_scan { index = def } ->
      let index = find_index def in
      let key_columns = Index.columns index in
      let entry_matches = compile_predicates_on_entry key_columns select.Ast.where in
      let emit_entry = compile_project_entry key_columns select.Ast.projection in
      let rows = ref [] in
      Index.scan_slices index (fun buf pos ->
          if entry_matches buf pos then rows := emit_entry buf pos :: !rows);
      List.rev !rows
  | Plan.View_probe _ -> failwith "Database: view plan for a non-aggregate query"

(* Victim collection for DELETE/UPDATE: plan the WHERE clause like a
   SELECT * (never covered, so the plan yields heap rows) and return the
   matching (rid, tuple) pairs before any mutation. *)
let collect_matching t state ~table ~where =
  let find_select = { Ast.projection = Ast.Star; table; where } in
  let stats = table_stats t table in
  let plan = Cost_model.choose_plan t.params stats (current_design t) find_select in
  let matches tuple = List.for_all (eval_predicate state.schema tuple) where in
  let victims =
    match plan.Plan.path with
    | Plan.Full_scan ->
        let out = ref [] in
        Heap_file.iter state.heap (fun rid tuple ->
            if matches tuple then out := (rid, tuple) :: !out);
        List.rev !out
    | Plan.Index_seek { index = def; eq_prefix; range; covering = _ } ->
        let index =
          match
            List.find_opt (fun i -> Index_def.equal (Index.def i) def) state.indexes
          with
          | Some index -> index
          | None -> failwith "Database: plan references an index that is not materialised"
        in
        Index.probe index ~eq_prefix ~range
        |> List.filter_map (fun rid ->
               match Heap_file.fetch state.heap rid with
               | Some tuple when matches tuple -> Some (rid, tuple)
               | Some _ | None -> None)
    | Plan.Index_only_scan _ | Plan.View_probe _ ->
        (* Star projections are never covered, and DML never plans views. *)
        assert false
  in
  (victims, plan)

let delete_row state rid tuple =
  ignore (Heap_file.delete state.heap rid);
  List.iter (fun index -> ignore (Index.delete_entry index tuple rid)) state.indexes;
  List.iter (fun view -> Mat_view.apply_delete view tuple) state.views

let run_delete t ~table ~where =
  let state = table_state t table in
  let victims, plan = collect_matching t state ~table ~where in
  List.iter (fun (rid, tuple) -> delete_row state rid tuple) victims;
  invalidate_stats state;
  (List.length victims, plan)

let run_update t ~table ~assignments ~where =
  let state = table_state t table in
  let victims, plan = collect_matching t state ~table ~where in
  let apply tuple =
    let updated = Array.copy tuple in
    List.iter
      (fun (column, value) ->
        updated.(Schema.column_index_exn state.schema column) <- value)
      assignments;
    updated
  in
  (* Implemented as delete + reinsert, which keeps every index consistent
     even when an assignment touches a key column. *)
  List.iter
    (fun (rid, tuple) ->
      delete_row state rid tuple;
      insert_row state (apply tuple))
    victims;
  invalidate_stats state;
  (List.length victims, plan)

(* Run an aggregate query: either from a matching materialized view or by
   scanning and hashing on the fly. *)
let run_select_agg t ~table ~group_by ~aggregate ~where plan =
  let state = table_state t table in
  let emit group value = [| Tuple.Int group; Tuple.Int value |] in
  match plan.Plan.path with
  | Plan.View_probe { view = view_def; group_value } -> (
      let view =
        match
          List.find_opt
            (fun v -> View_def.equal (Mat_view.def v) view_def)
            state.views
        with
        | Some view -> view
        | None -> failwith "Database: plan references a view that is not materialised"
      in
      let of_row (row : Mat_view.row) =
        let value =
          match aggregate with
          | Ast.Count_star -> row.Mat_view.count
          | Ast.Sum column ->
              let rec position i columns =
                match columns with
                | [] -> failwith "Database: view lacks the summed column"
                | c :: rest -> if String.equal c column then i else position (i + 1) rest
              in
              row.Mat_view.sums.(position 0 (Mat_view.sum_columns view))
        in
        emit row.Mat_view.group_value value
      in
      match group_value with
      | Some g -> (
          match Mat_view.lookup view g with
          | Some row -> [ of_row row ]
          | None -> [])
      | None ->
          let out = ref [] in
          Mat_view.scan view (fun row -> out := of_row row :: !out);
          List.rev !out)
  | Plan.Full_scan ->
      (* Hash aggregation over a filtered scan. *)
      let matches = compile_predicates_slices state.schema where in
      let group_read = compile_field_read state.schema (Schema.column_index_exn state.schema group_by) in
      let agg_read =
        match aggregate with
        | Ast.Count_star -> None
        | Ast.Sum column ->
            Some (compile_field_read state.schema (Schema.column_index_exn state.schema column))
      in
      let groups = Hashtbl.create 64 in
      Heap_file.iter_slices state.heap (fun buf base ->
          if matches buf base then begin
            let g = Tuple.int_exn (group_read buf base) in
            let delta =
              match agg_read with
              | None -> 1
              | Some read -> Tuple.int_exn (read buf base)
            in
            Hashtbl.replace groups g (delta + Option.value ~default:0 (Hashtbl.find_opt groups g))
          end);
      Hashtbl.to_seq groups |> List.of_seq
      |> List.sort (fun (g1, v1) (g2, v2) ->
             let c = Int.compare g1 g2 in
             if c <> 0 then c else Int.compare v1 v2)
      |> List.map (fun (g, v) -> emit g v)
  | Plan.Index_seek _ | Plan.Index_only_scan _ ->
      failwith "Database: unexpected plan for an aggregate query"

(* Plan-choice memo, engaged only when the caller passes the statement's
   cost-identity key (serve's ingest fast path).  The combined
   [design_key ^ "\n" ^ statement_key] is self-fencing against statistics
   churn — see {!Plan_cache} — so a hit returns the bit-identical plan a
   fresh choice would make, with the statement's own literals rebound into
   the cached path.  [Plan.count_choice] keeps the plan.chosen.* metrics
   consistent with the slow path. *)
let memoized_plan t ~statement_key ~rebind compute =
  match statement_key with
  | None -> compute ()
  | Some skey -> (
      let key = design_key t ^ "\n" ^ skey in
      match Plan_cache.find t.plan_cache key with
      | Some cached -> (
          match rebind cached with
          | Some plan ->
              Plan.count_choice plan;
              plan
          | None ->
              let plan = compute () in
              Plan_cache.store t.plan_cache key plan;
              plan)
      | None ->
          let plan = compute () in
          Plan_cache.store t.plan_cache key plan;
          plan)

let plan_cache_stats t = Plan_cache.stats t.plan_cache

let execute ?statement_key ?(skip_check = false) t statement =
  if not skip_check then Check.statement_exn (tables t) statement;
  let logical_before = pool_accesses t in
  let physical_before = disk_reads t in
  let rows, affected, plan =
    match statement with
    | Ast.Select select ->
        let state = table_state t select.Ast.table in
        let plan =
          memoized_plan t ~statement_key
            ~rebind:(Cost_model.rebind_select_plan select)
            (fun () ->
              Cost_model.choose_plan t.params
                (table_stats t select.Ast.table)
                (current_design t) select)
        in
        (run_select state select plan, 0, Some plan)
    | Ast.Select_agg { table; group_by; aggregate; where } ->
        let plan =
          memoized_plan t ~statement_key
            ~rebind:(Cost_model.rebind_agg_plan ~group_by ~where)
            (fun () ->
              Cost_model.choose_agg_plan t.params (table_stats t table)
                (current_design t) ~table ~group_by ~where)
        in
        (run_select_agg t ~table ~group_by ~aggregate ~where plan, 0, Some plan)
    | Ast.Insert { table; values } ->
        let state = table_state t table in
        insert_row state (Array.of_list values);
        invalidate_stats state;
        ([], 1, None)
    | Ast.Delete { table; where } ->
        let affected, plan = run_delete t ~table ~where in
        ([], affected, Some plan)
    | Ast.Update { table; assignments; where } ->
        let affected, plan = run_update t ~table ~assignments ~where in
        ([], affected, Some plan)
  in
  {
    rows;
    affected;
    plan;
    logical_io = pool_accesses t - logical_before;
    physical_io = disk_reads t - physical_before;
  }

let execute_sql t sql = execute t (Parser.parse_exn sql)

(* -- measurement ---------------------------------------------------------- *)

let io_counters t = (pool_accesses t, disk_reads t)

let reset_io_counters t =
  Buffer_pool.reset_stats t.pool;
  Disk.reset_stats t.disk

let drop_buffer_cache t = Buffer_pool.drop_cache t.pool
