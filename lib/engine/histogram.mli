(** Equi-depth histograms over integer columns.

    The what-if optimizer needs selectivity estimates for equality and
    range predicates; an equi-depth histogram with per-bucket distinct
    counts is the classic structure for this (and what commercial systems
    use).  Built from the full column, so estimates are exact up to
    within-bucket uniformity assumptions. *)

type t

val build : ?buckets:int -> int array -> t
(** [build ?buckets values] builds a histogram with at most [buckets]
    buckets (default 64).  The input array is not modified.  Raises
    [Invalid_argument] if [buckets <= 0]. *)

val n_values : t -> int
(** Total number of (non-distinct) values the histogram summarises. *)

val n_distinct : t -> int
(** Exact number of distinct values seen at build time. *)

val selectivity_eq : t -> int -> float
(** Estimated fraction of rows with column = v, in [\[0,1\]]. *)

val selectivity_range : t -> lo:int option -> hi:int option -> float
(** Estimated fraction of rows with lo <= column <= hi (either bound may be
    absent), in [\[0,1\]]. *)

val fingerprint : t -> string
(** Digest of the histogram's full contents (every bucket boundary,
    count and distinct count).  Two histograms with equal fingerprints
    produce identical selectivity estimates for every predicate. *)

val min_value : t -> int option
(** Smallest value, [None] for an empty histogram. *)

val max_value : t -> int option
(** Largest value, [None] for an empty histogram. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering of bucket boundaries and counts. *)
