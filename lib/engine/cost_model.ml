module Ast = Cddpd_sql.Ast
module Index_def = Cddpd_catalog.Index_def
module View_def = Cddpd_catalog.View_def
module Structure = Cddpd_catalog.Structure
module Design = Cddpd_catalog.Design
module Tuple = Cddpd_storage.Tuple
module Page = Cddpd_storage.Page

(* -- observability ----------------------------------------------------------- *)

module Obs = Cddpd_obs

let m_calls = Obs.Registry.counter "cost_model.calls"
let m_repeat_calls = Obs.Registry.counter "cost_model.repeat_calls"

(* Cache-worthiness probe: [repeat_calls] counts statement_cost calls whose
   cost identity (Cost_key — statement shape, selectivities, design) was
   costed before — i.e. the hits a memo table in front of the cost model
   would get.  Tracked only while instrumentation is enabled; keyed by
   Cost_key (collision-safe for distinct costs), so the count is exact.
   The mutex makes the probe safe when Problem.build costs in parallel; it
   is only taken while instrumentation is on. *)
let seen_calls : (string, unit) Hashtbl.t = Hashtbl.create 4096

let seen_calls_mutex = Mutex.create ()

let () = Obs.Registry.on_reset (fun () -> Hashtbl.reset seen_calls)

let note_statement_cost_call stats statement design =
  Obs.Counter.incr m_calls;
  if Obs.Registry.enabled () then begin
    let key =
      Cost_key.statement_under_design ~design_key:(Cost_key.design design) stats statement
    in
    Mutex.protect seen_calls_mutex (fun () ->
        if Hashtbl.mem seen_calls key then Obs.Counter.incr m_repeat_calls
        else Hashtbl.add seen_calls key ())
  end

type params = {
  page_io : float;
  row_cpu : float;
  rid_fetch : float;
  sort_cpu : float;
  drop_cost : float;
  build_write_ratio : float;
  leaf_fill : float;
}

let default_params =
  {
    page_io = 1.0;
    row_cpu = 0.001;
    rid_fetch = 1.0;
    sort_cpu = 0.0002;
    drop_cost = 1.0;
    build_write_ratio = 1.0;
    leaf_fill = 0.9;
  }

(* -- index shape --------------------------------------------------------- *)

(* Mirrors Btree's layout: header 7 bytes, rid stored as two extra key
   components. *)
let btree_header = 7

let index_leaf_entry_bytes index = (List.length (Index_def.columns index) + 2) * 8

let leaf_entries_per_page index = (Page.size - btree_header) / index_leaf_entry_bytes index

let internal_fanout index =
  ((Page.size - btree_header - 4) / (index_leaf_entry_bytes index + 4)) + 1

let ceil_div a b = (a + b - 1) / b

let index_leaf_pages params ~rows index =
  if rows = 0 then 1
  else
    let per_page =
      max 1 (int_of_float (float_of_int (leaf_entries_per_page index) *. params.leaf_fill))
    in
    ceil_div rows per_page

let index_height params ~rows index =
  let fanout = max 2 (internal_fanout index) in
  let rec levels pages acc = if pages <= 1 then acc else levels (ceil_div pages fanout) (acc + 1) in
  levels (index_leaf_pages params ~rows index) 1

let index_size_pages params ~rows index =
  let fanout = max 2 (internal_fanout index) in
  let rec total pages acc =
    if pages <= 1 then acc + (if acc = 0 then 1 else pages)
    else total (ceil_div pages fanout) (acc + pages)
  in
  total (index_leaf_pages params ~rows index) 0

let index_size_bytes params ~rows index = index_size_pages params ~rows index * Page.size

(* -- view shape ------------------------------------------------------------ *)

(* Estimated number of distinct group values, from the column histogram. *)
let view_rows stats view =
  match Table_stats.histogram stats (View_def.group_by view) with
  | Some h -> max 1 (Histogram.n_distinct h)
  | None -> max 1 (Table_stats.row_count stats / 10)

(* View row: group + count + one sum per histogrammed column; stored as an
   all-int tuple in a slotted heap page plus a 3-component lookup tree. *)
let view_row_bytes stats =
  let n_sums = Table_stats.n_histograms stats in
  2 + (9 * (2 + n_sums)) + 4 (* slot entry *)

let view_heap_pages stats view =
  let per_page = max 1 ((Page.size - 4) / view_row_bytes stats) in
  ceil_div (view_rows stats view) per_page

(* The lookup tree has 3-component keys: reuse the index estimators via a
   synthetic 1-column definition (1 logical column + rid = 3 components). *)
let view_tree_shape_index view =
  Index_def.make ~table:(View_def.table view) ~columns:[ View_def.group_by view ]

let view_size_pages params ~stats view =
  view_heap_pages stats view
  + index_size_pages params ~rows:(view_rows stats view) (view_tree_shape_index view)

let view_size_bytes params ~stats view = view_size_pages params ~stats view * Page.size

let view_height params ~stats view =
  index_height params ~rows:(view_rows stats view) (view_tree_shape_index view)

let structure_size_bytes params ~stats structure =
  match structure with
  | Structure.Index index ->
      index_size_bytes params ~rows:(Table_stats.row_count stats) index
  | Structure.View view -> view_size_bytes params ~stats view

let design_size_bytes params ~stats_of design =
  Design.fold
    (fun structure acc ->
      acc + structure_size_bytes params ~stats:(stats_of (Structure.table structure)) structure)
    design 0

(* -- plan selection ------------------------------------------------------- *)

let int_value v = match v with Tuple.Int i -> Some i | Tuple.Text _ -> None

let full_scan_cost params stats =
  let pages = float_of_int (max 1 (Table_stats.page_count stats)) in
  let rows = float_of_int (Table_stats.row_count stats) in
  (params.page_io *. pages) +. (params.row_cpu *. rows)

(* A range bound on the column right after the equality prefix, if the
   query has exactly one usable comparison on it. *)
let range_on_column select column =
  let bounds =
    List.filter_map
      (fun pred ->
        match pred with
        | Ast.Cmp { op = Ast.Eq; _ } -> None
        | Ast.Cmp { column = c; op; value } when String.equal c column -> (
            match int_value value with
            | Some v -> Some (`Cmp (op, v))
            | None -> None)
        | Ast.Between { column = c; low; high } when String.equal c column -> (
            match (int_value low, int_value high) with
            | Some lo, Some hi -> Some (`Between (lo, hi))
            | _ -> None)
        | Ast.Cmp _ | Ast.Between _ -> None)
      select.Ast.where
  in
  match bounds with
  | [ `Cmp (op, v) ] -> (
      match op with
      | Ast.Lt | Ast.Le -> Some (None, Some { Plan.op; value = v })
      | Ast.Gt | Ast.Ge -> Some (Some { Plan.op; value = v }, None)
      | Ast.Eq -> None)
  | [ `Between (lo, hi) ] ->
      Some (Some { Plan.op = Ast.Ge; value = lo }, Some { Plan.op = Ast.Le; value = hi })
  | [] | _ :: _ :: _ -> None

(* The predicates an index seek with prefix [eq_cols] and optional range on
   [range_col] covers, for selectivity purposes. *)
let seek_selectivity stats select eq_cols range_col =
  let covered pred =
    match pred with
    | Ast.Cmp { column; op = Ast.Eq; _ } -> List.mem column eq_cols
    | Ast.Cmp { column; _ } | Ast.Between { column; _ } -> (
        match range_col with Some c -> String.equal c column | None -> false)
  in
  List.fold_left
    (fun acc pred ->
      if covered pred then acc *. Table_stats.predicate_selectivity stats pred else acc)
    1.0 select.Ast.where

(* Whether the index key contains every column the select references, so
   the query can be answered without touching the heap. *)
let index_covers select index =
  match select.Ast.projection with
  | Ast.Star -> false (* [*] references every table column *)
  | Ast.Columns _ ->
      let key = Index_def.columns index in
      List.for_all (fun c -> List.mem c key) (Ast.referenced_columns (Ast.Select select))

(* Covering leaf scan: read the whole (narrow) leaf level instead of the
   heap.  Applicable whenever the index covers the query; chosen by the
   planner when no seek beats it. *)
let index_only_scan_plan params stats select index =
  if not (index_covers select index) then None
  else
    let rows = Table_stats.row_count stats in
    let leaf_pages = float_of_int (index_leaf_pages params ~rows index) in
    let cost = (params.page_io *. leaf_pages) +. (params.row_cpu *. float_of_int rows) in
    Some
      {
        Plan.path = Plan.Index_only_scan { index };
        estimated_rows = Table_stats.estimate_rows stats select.Ast.where;
        estimated_cost = cost;
      }

(* Try to use [index] for [select]; None if the index gives no sargable
   prefix. *)
let index_seek_plan params stats select index =
  let eq = Ast.eq_columns select in
  let rec match_prefix columns acc =
    match columns with
    | [] -> (List.rev acc, None)
    | col :: rest -> (
        match List.assoc_opt col eq with
        | Some value -> (
            match int_value value with
            | Some v -> match_prefix rest ((col, v) :: acc)
            | None -> (List.rev acc, Some col))
        | None -> (List.rev acc, Some col))
  in
  let prefix, next_col = match_prefix (Index_def.columns index) [] in
  let range =
    match next_col with
    | Some col -> range_on_column select col
    | None -> None
  in
  match (prefix, range) with
  | [], None -> None
  | _ ->
      let eq_cols = List.map fst prefix in
      let range_col = match range with Some _ -> next_col | None -> None in
      let sel = seek_selectivity stats select eq_cols range_col in
      let rows = float_of_int (Table_stats.row_count stats) in
      let matched = sel *. rows in
      let per_page = float_of_int (max 1 (leaf_entries_per_page index)) in
      let leaf_pages_touched = Float.max 1.0 (Float.ceil (matched /. per_page)) in
      let height = float_of_int (index_height params ~rows:(Table_stats.row_count stats) index) in
      let all_rows_sel = Table_stats.conjunction_selectivity stats select.Ast.where in
      (* A covering seek never touches the heap; a covering seek also
         requires every residual predicate column to be in the key, which
         [index_covers] implies. *)
      let covering = index_covers select index in
      let fetch = if covering then 0.0 else params.rid_fetch *. matched in
      let cost =
        (params.page_io *. (height +. leaf_pages_touched))
        +. fetch
        +. (params.row_cpu *. matched)
      in
      Some
        {
          Plan.path =
            Plan.Index_seek { index; eq_prefix = List.map snd prefix; range; covering };
          estimated_rows = all_rows_sel *. rows;
          estimated_cost = cost;
        }

let choose_plan params stats design select =
  let scan =
    {
      Plan.path = Plan.Full_scan;
      estimated_rows = Table_stats.estimate_rows stats select.Ast.where;
      estimated_cost = full_scan_cost params stats;
    }
  in
  let consider candidate best =
    match candidate with
    | Some plan when plan.Plan.estimated_cost < best.Plan.estimated_cost -> plan
    | Some _ | None -> best
  in
  let best =
    Design.fold_indexes
      (fun index best ->
        if not (String.equal (Index_def.table index) select.Ast.table) then best
        else
          best
          |> consider (index_seek_plan params stats select index)
          |> consider (index_only_scan_plan params stats select index))
      design scan
  in
  Plan.count_choice best;
  best

let select_cost params stats design select =
  (choose_plan params stats design select).Plan.estimated_cost

(* -- aggregate queries ------------------------------------------------------ *)

(* A view answers the aggregate query iff it groups by the same column and
   every predicate is an equality on that column (the probe key). *)
let view_answers ~group_by ~where view =
  String.equal (View_def.group_by view) group_by
  && List.for_all
       (fun pred ->
         match pred with
         | Ast.Cmp { column; op = Ast.Eq; _ } -> String.equal column group_by
         | Ast.Cmp _ | Ast.Between _ -> false)
       where

let group_eq_value ~group_by ~where =
  List.find_map
    (fun pred ->
      match pred with
      | Ast.Cmp { column; op = Ast.Eq; value = Tuple.Int v }
        when String.equal column group_by ->
          Some v
      | Ast.Cmp _ | Ast.Between _ -> None)
    where

let choose_agg_plan params stats design ~table ~group_by ~where =
  (* Baseline: scan the heap and aggregate on the fly. *)
  let groups =
    match Table_stats.histogram stats group_by with
    | Some h -> float_of_int (max 1 (Histogram.n_distinct h))
    | None -> Float.max 1.0 (float_of_int (Table_stats.row_count stats) /. 10.)
  in
  let scan =
    {
      Plan.path = Plan.Full_scan;
      estimated_rows = groups;
      estimated_cost =
        full_scan_cost params stats
        +. (params.row_cpu *. float_of_int (Table_stats.row_count stats));
    }
  in
  let best =
    Design.fold_views
      (fun view best ->
        if
          String.equal (View_def.table view) table
          && view_answers ~group_by ~where view
        then begin
          let group_value = group_eq_value ~group_by ~where in
          let cost =
            match group_value with
            | Some _ ->
                (* Probe: tree descent plus one heap fetch. *)
                params.page_io *. float_of_int (view_height params ~stats view + 1)
            | None ->
                (* Scan every view row via the tree leaves and heap pages. *)
                params.page_io *. float_of_int (view_size_pages params ~stats view)
                +. (params.row_cpu *. groups)
          in
          let estimated_rows = match group_value with Some _ -> 1.0 | None -> groups in
          if cost < best.Plan.estimated_cost then
            { Plan.path = Plan.View_probe { view; group_value }; estimated_rows;
              estimated_cost = cost }
          else best
        end
        else best)
      design scan
  in
  Plan.count_choice best;
  best

(* -- plan-memo rebinding ----------------------------------------------------

   A plan cached under a [Cost_key.statement_under_design] key fixes the
   access-path shape and the estimator's floats: the key embeds the
   projection, the predicate sequence (operator, column, literal kind) and
   the exact selectivity bits of every predicate, and the cost formulas
   read a statement only through those, so key-equal statements choose the
   bit-identical plan.  What the cached plan cannot carry is the *literal*
   bindings of the statement that populated the entry.  Rebinding replays
   only the literal extraction of [index_seek_plan] / [choose_agg_plan]
   against the new statement — the same prefix walk over the same index
   key, the same single-range rule — leaving every float untouched.
   [None] (caller recomputes from scratch) is the defensive answer to any
   structural surprise, which cannot happen for a correctly keyed call. *)

let rebind_select_plan select plan =
  match plan.Plan.path with
  | Plan.Full_scan | Plan.Index_only_scan _ ->
      (* No literals in the path. *)
      Some plan
  | Plan.View_probe _ -> None
  | Plan.Index_seek { index; eq_prefix; range; covering } -> (
      let eq = Ast.eq_columns select in
      (* Re-extract the equality prefix: same key columns, new literals. *)
      let rec take columns k acc =
        if k = 0 then Some (List.rev acc)
        else
          match columns with
          | [] -> None
          | col :: rest -> (
              match List.assoc_opt col eq with
              | Some value -> (
                  match int_value value with
                  | Some v -> take rest (k - 1) (v :: acc)
                  | None -> None)
              | None -> None)
      in
      let n = List.length eq_prefix in
      let key_columns = Index_def.columns index in
      match take key_columns n [] with
      | None -> None
      | Some eq_prefix -> (
          let range' =
            match List.nth_opt key_columns n with
            | Some col -> range_on_column select col
            | None -> None
          in
          (* The cached floats assume the same seek shape: the range must
             be present in both or neither. *)
          match (range, range') with
          | None, None ->
              Some
                {
                  plan with
                  Plan.path = Plan.Index_seek { index; eq_prefix; range = None; covering };
                }
          | Some _, (Some _ as range') ->
              Some
                {
                  plan with
                  Plan.path = Plan.Index_seek { index; eq_prefix; range = range'; covering };
                }
          | None, Some _ | Some _, None -> None))

let rebind_agg_plan ~group_by ~where plan =
  match plan.Plan.path with
  | Plan.Full_scan -> Some plan
  | Plan.Index_seek _ | Plan.Index_only_scan _ -> None
  | Plan.View_probe { view; group_value } -> (
      let group_value' = group_eq_value ~group_by ~where in
      match (group_value, group_value') with
      | None, None -> Some plan
      | Some _, (Some _ as group_value) ->
          Some { plan with Plan.path = Plan.View_probe { view; group_value } }
      | None, Some _ | Some _, None -> None)

(* Per affected base row: each index pays a root-to-leaf update; each view
   pays a lookup plus a row rewrite. *)
let index_maintenance_cost params stats design table =
  let index_part =
    Design.fold_indexes
      (fun index acc ->
        if String.equal (Index_def.table index) table then
          acc
          +. (params.page_io
             *. float_of_int
                  (index_height params ~rows:(Table_stats.row_count stats) index + 1))
        else acc)
      design 0.0
  in
  Design.fold_views
    (fun view acc ->
      if String.equal (View_def.table view) table then
        acc +. (params.page_io *. float_of_int (view_height params ~stats view + 3))
      else acc)
    design index_part

(* DELETE/UPDATE find their victims like a SELECT * (never covered, so the
   plan always yields heap rows), then pay per-row write and index
   maintenance. *)
let dml_cost params stats design ~table ~where ~writes_per_row =
  let find_select = { Ast.projection = Ast.Star; table; where } in
  let find = select_cost params stats design find_select in
  let affected = Table_stats.estimate_rows stats where in
  let maintenance = index_maintenance_cost params stats design table in
  find +. (affected *. ((writes_per_row *. params.page_io) +. maintenance))

let statement_cost params stats design statement =
  note_statement_cost_call stats statement design;
  match statement with
  | Ast.Select select -> select_cost params stats design select
  | Ast.Select_agg { table; group_by; where; _ } ->
      (choose_agg_plan params stats design ~table ~group_by ~where).Plan.estimated_cost
  | Ast.Insert { table; _ } ->
      params.page_io +. index_maintenance_cost params stats design table
  | Ast.Delete { table; where } ->
      dml_cost params stats design ~table ~where ~writes_per_row:1.0
  | Ast.Update { table; where; _ } ->
      (* Delete the old version, insert the new one: two heap writes and
         double index maintenance per affected row. *)
      2.0 *. dml_cost params stats design ~table ~where ~writes_per_row:1.0

(* -- transitions ---------------------------------------------------------- *)

let build_cost params stats index =
  let rows = Table_stats.row_count stats in
  let scan = float_of_int (max 1 (Table_stats.page_count stats)) *. params.page_io in
  let sort =
    if rows <= 1 then 0.0
    else params.sort_cpu *. float_of_int rows *. (log (float_of_int rows) /. log 2.0)
  in
  let write =
    params.build_write_ratio *. params.page_io
    *. float_of_int (index_size_pages params ~rows index)
  in
  scan +. sort +. write

(* Building a view: scan the base table, aggregate (cpu), write the view
   pages. *)
let view_build_cost params stats view =
  let scan = float_of_int (max 1 (Table_stats.page_count stats)) *. params.page_io in
  let cpu = params.row_cpu *. float_of_int (Table_stats.row_count stats) in
  let write =
    params.build_write_ratio *. params.page_io
    *. float_of_int (view_size_pages params ~stats view)
  in
  scan +. cpu +. write

let structure_build_cost params stats structure =
  match structure with
  | Structure.Index index -> build_cost params stats index
  | Structure.View view -> view_build_cost params stats view

let transition_cost params ~stats_of ~from_design ~to_design =
  let built = Design.diff to_design from_design in
  let dropped = Design.diff from_design to_design in
  let build_total =
    Design.fold
      (fun structure acc ->
        acc
        +. structure_build_cost params (stats_of (Structure.table structure)) structure)
      built 0.0
  in
  build_total +. (params.drop_cost *. float_of_int (Design.cardinality dropped))
