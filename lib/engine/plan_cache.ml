(* Plan-choice memo for the serve ingest fast path.

   Keys are [Cost_key.statement_under_design] strings, which are
   self-fencing: the statement half embeds the statistics shape and the
   exact selectivity bits of every predicate, and the design half embeds
   the deployed structure set, so a key computed under the current
   statistics and design can only collide with an entry whose plan choice
   is bit-identical.  No explicit statistics invalidation is needed — a
   stale snapshot yields a different key.  Design changes *are* fenced
   explicitly (see [invalidate]) only to bound the table: entries under an
   old design key would otherwise linger unreachable.

   Cached plans fix the access-path *shape* and the estimator's floats;
   literal bindings ([eq_prefix], range bounds, group probes) are rebound
   per statement by [Cost_model.rebind_select_plan]/[rebind_agg_plan]. *)

module Obs = Cddpd_obs

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;
}

type t = {
  table : (string, Plan.t) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let m_hits = Obs.Registry.counter "plan_cache.hits"
let m_misses = Obs.Registry.counter "plan_cache.misses"
let m_invalidations = Obs.Registry.counter "plan_cache.invalidations"

let default_capacity = 8192

let create ?(capacity = default_capacity) () =
  {
    table = Hashtbl.create 256;
    capacity = max 16 capacity;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.table;
  }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some plan ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr m_hits;
      Some plan
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr m_misses;
      None

let store t key plan =
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  Hashtbl.replace t.table key plan

let invalidate t =
  if Hashtbl.length t.table > 0 then begin
    Hashtbl.reset t.table;
    t.invalidations <- t.invalidations + 1;
    Obs.Counter.incr m_invalidations
  end
