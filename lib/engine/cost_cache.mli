(** Memoized what-if costing.

    A cache in front of {!Cost_model}: [EXEC(S, C)] results are memoized
    per (statement cost-identity, design) under the keys of {!Cost_key} —
    statements with the same shape and selectivities share an entry, which
    is where most of the hit rate comes from — and structure build costs
    (the expensive part of [TRANS]) are memoized per structure, so a
    transition matrix over [n] configurations pays cost-model work once
    per {e distinct structure} instead of once per ordered configuration
    pair.

    A cache is only sound while the cost-model parameters behind it are
    fixed: keys identify the statement's cost inputs (including a
    table-statistics fingerprint) and the design, not the params.
    {!Cddpd_core.Problem.build} uses one fresh cache per build.  Cached
    results are the {e bit-identical} floats the uncached computation
    produces — memoization never changes an answer, only whether
    {!Cost_model.statement_cost} runs (so the [cost_model.calls] counter
    counts misses only when a cache is in front).

    {2 Eviction}

    Statement entries live in two generations of at most [capacity]
    entries each.  Inserting into a full current generation discards the
    previous generation wholesale and starts a new one — a hit in the old
    generation re-promotes the entry first, so hot entries survive
    rotation and eviction stays O(1) amortised with no per-entry
    bookkeeping.  Structure build costs are never evicted (there are at
    most as many as candidate structures).

    {2 Domains}

    Hit/miss/eviction tallies are atomics, so concurrent readers may
    share a cache; the hash tables themselves are unsynchronised.  The
    contract for parallel use is the one {!Cddpd_core.Problem.build}
    follows: give each domain its own cache ({!create_local}) and
    {!merge} the locals afterwards, or share a cache across domains only
    for phases that cannot miss (pre-warmed via {!warm_structures}, which
    makes every subsequent {!transition_cost} lookup a read-only hit).

    {2 Observability}

    {!publish_obs} adds the not-yet-published part of a cache's tallies
    to the [cost_cache.hits] / [cost_cache.misses] /
    [cost_cache.evictions] counters; see docs/OBSERVABILITY.md. *)

type t

type stats = { hits : int; misses : int; evictions : int; generations : int }
(** [generations] counts statement-store rotations: each one discarded a
    full previous generation and started a new current one.  A cache that
    never rotated has [generations = 0]. *)

val create : ?capacity:int -> unit -> t
(** A fresh, empty, enabled cache.  [capacity] (default [65536]) bounds
    each statement-entry generation.  Raises [Invalid_argument] if
    [capacity < 1]. *)

val disabled : t
(** The pass-through cache: every operation delegates straight to
    {!Cost_model}, nothing is stored, stats stay zero. *)

val is_enabled : t -> bool

val create_local : t -> t
(** An empty cache with the same configuration, for one worker domain;
    [create_local disabled] is {!disabled}. *)

val merge : into:t -> t -> unit
(** Fold a worker's entries and tallies into [into] (first writer of a
    key wins; both caches must be quiescent).  No-op when either side is
    {!disabled}. *)

val stats : t -> stats

val publish_obs : t -> unit
(** Add this cache's tallies to the global [cost_cache.*] counters;
    repeated calls publish only the increment since the previous call. *)

val invalidate_builds : t -> unit
(** Drop every memoized structure build cost.  Structure build keys
    ({!Cost_key.structure}) do {e not} embed table statistics, so a cache
    that outlives a statistics change (data loads, DML) must be
    explicitly invalidated before its build memo is trusted again —
    statement entries self-invalidate (their keys embed a stats
    fingerprint) and are left alone.  No-op on {!disabled}. *)

(** {1 Default-enablement knob (the [--no-cost-cache] flag)} *)

val default_enabled : unit -> bool
(** Whether cost-cache consumers should cache by default ([true] at
    startup). *)

val set_default_enabled : bool -> unit

(** {1 Cached costing} *)

val statement_cost :
  t ->
  Cost_model.params ->
  Table_stats.t ->
  design:Cddpd_catalog.Design.t ->
  ?design_key:string ->
  Cddpd_sql.Ast.statement ->
  float
(** [EXEC(S, C)], computing via {!Cost_model.statement_cost} on a miss.
    [design_key] must be [Cost_key.design design] when supplied (callers
    costing many statements under one design precompute it once). *)

val structure_build_cost :
  t -> Cost_model.params -> Table_stats.t -> Cddpd_catalog.Structure.t -> float
(** Memoized {!Cost_model.structure_build_cost}. *)

val warm_structures :
  t ->
  Cost_model.params ->
  stats_of:(string -> Table_stats.t) ->
  Cddpd_catalog.Structure.t list ->
  unit
(** Precompute build costs for every listed structure, so later
    {!transition_cost} calls over designs drawn from these structures hit
    without writing — the invariant that makes sharing the cache across
    read-only domains safe. *)

val transition_cost :
  t ->
  Cost_model.params ->
  stats_of:(string -> Table_stats.t) ->
  from_design:Cddpd_catalog.Design.t ->
  to_design:Cddpd_catalog.Design.t ->
  float
(** [TRANS(Ci, Cj)] as {!Cost_model.transition_cost} computes it, but
    with each built structure's cost drawn from the memo. *)
