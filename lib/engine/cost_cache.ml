module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Obs = Cddpd_obs

let m_hits = Obs.Registry.counter "cost_cache.hits"
let m_misses = Obs.Registry.counter "cost_cache.misses"
let m_evictions = Obs.Registry.counter "cost_cache.evictions"
let m_generations = Obs.Registry.counter "cost_cache.generations"

type stats = { hits : int; misses : int; evictions : int; generations : int }

type cache = {
  capacity : int;
  mutable current : (string, float) Hashtbl.t;
  mutable previous : (string, float) Hashtbl.t;
  builds : (string, float) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  generations : int Atomic.t;
  (* publish_obs watermarks *)
  mutable published_hits : int;
  mutable published_misses : int;
  mutable published_evictions : int;
  mutable published_generations : int;
}

type t = Disabled | Enabled of cache

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Cost_cache.create: capacity < 1";
  Enabled
    {
      capacity;
      current = Hashtbl.create (min capacity 1024);
      previous = Hashtbl.create 16;
      builds = Hashtbl.create 64;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      generations = Atomic.make 0;
      published_hits = 0;
      published_misses = 0;
      published_evictions = 0;
      published_generations = 0;
    }

let disabled = Disabled

let is_enabled t = match t with Enabled _ -> true | Disabled -> false

let create_local t =
  match t with Disabled -> Disabled | Enabled c -> create ~capacity:c.capacity ()

let stats t =
  match t with
  | Disabled -> { hits = 0; misses = 0; evictions = 0; generations = 0 }
  | Enabled c ->
      {
        hits = Atomic.get c.hits;
        misses = Atomic.get c.misses;
        evictions = Atomic.get c.evictions;
        generations = Atomic.get c.generations;
      }

let publish_obs t =
  match t with
  | Disabled -> ()
  | Enabled c ->
      let hits = Atomic.get c.hits
      and misses = Atomic.get c.misses
      and evictions = Atomic.get c.evictions
      and generations = Atomic.get c.generations in
      Obs.Counter.add m_hits (hits - c.published_hits);
      Obs.Counter.add m_misses (misses - c.published_misses);
      Obs.Counter.add m_evictions (evictions - c.published_evictions);
      Obs.Counter.add m_generations (generations - c.published_generations);
      c.published_hits <- hits;
      c.published_misses <- misses;
      c.published_evictions <- evictions;
      c.published_generations <- generations

(* -- default-enablement knob ------------------------------------------------ *)

(* cddpd-lint: allow domain-unsafe-state — process-wide default toggled by the CLI on the main domain before any solver runs; workers never write it *)
let enabled_by_default = ref true

let default_enabled () = !enabled_by_default

let set_default_enabled on = enabled_by_default := on

(* -- generational statement-entry store ------------------------------------- *)

let insert c key v =
  if Hashtbl.length c.current >= c.capacity then begin
    let discarded = Hashtbl.length c.previous in
    if discarded > 0 then ignore (Atomic.fetch_and_add c.evictions discarded);
    Atomic.incr c.generations;
    c.previous <- c.current;
    c.current <- Hashtbl.create (min c.capacity 1024)
  end;
  Hashtbl.replace c.current key v

let find_or_compute c key compute =
  match Hashtbl.find_opt c.current key with
  | Some v ->
      Atomic.incr c.hits;
      v
  | None -> (
      match Hashtbl.find_opt c.previous key with
      | Some v ->
          (* Promote, so rotation keeps hot entries. *)
          Atomic.incr c.hits;
          insert c key v;
          v
      | None ->
          Atomic.incr c.misses;
          let v = compute () in
          insert c key v;
          v)

(* -- cached costing ---------------------------------------------------------- *)

let statement_cost t params stats ~design ?design_key statement =
  match t with
  | Disabled -> Cost_model.statement_cost params stats design statement
  | Enabled c ->
      let design_key =
        match design_key with Some k -> k | None -> Cost_key.design design
      in
      find_or_compute c
        (Cost_key.statement_under_design ~design_key stats statement)
        (fun () -> Cost_model.statement_cost params stats design statement)

let structure_build_cost t params stats structure =
  match t with
  | Disabled -> Cost_model.structure_build_cost params stats structure
  | Enabled c -> (
      let key = Cost_key.structure structure in
      match Hashtbl.find_opt c.builds key with
      | Some v ->
          Atomic.incr c.hits;
          v
      | None ->
          Atomic.incr c.misses;
          let v = Cost_model.structure_build_cost params stats structure in
          Hashtbl.replace c.builds key v;
          v)

let invalidate_builds t =
  match t with Disabled -> () | Enabled c -> Hashtbl.reset c.builds

let warm_structures t params ~stats_of structures =
  List.iter
    (fun structure ->
      ignore
        (structure_build_cost t params (stats_of (Structure.table structure)) structure))
    structures

let transition_cost t params ~stats_of ~from_design ~to_design =
  match t with
  | Disabled -> Cost_model.transition_cost params ~stats_of ~from_design ~to_design
  | Enabled _ ->
      (* Same fold order as Cost_model.transition_cost, so the cached sum
         is bit-identical to the uncached one. *)
      let built = Design.diff to_design from_design in
      let dropped = Design.diff from_design to_design in
      let build_total =
        Design.fold
          (fun structure acc ->
            acc
            +. structure_build_cost t params
                 (stats_of (Structure.table structure))
                 structure)
          built 0.0
      in
      build_total
      +. (params.Cost_model.drop_cost *. float_of_int (Design.cardinality dropped))

(* -- merging worker caches ---------------------------------------------------- *)

let merge ~into src =
  match (into, src) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled dst, Enabled src ->
      let keep key v =
        if
          (not (Hashtbl.mem dst.current key)) && not (Hashtbl.mem dst.previous key)
        then insert dst key v
      in
      (* Keyed insert-if-absent: each key is visited once, so visit order
         cannot change the merge — to_seq keeps the determinism rule green
         without a waiver. *)
      Seq.iter (fun (key, v) -> keep key v) (Hashtbl.to_seq src.previous);
      Seq.iter (fun (key, v) -> keep key v) (Hashtbl.to_seq src.current);
      Seq.iter
        (fun (key, v) ->
          if not (Hashtbl.mem dst.builds key) then Hashtbl.replace dst.builds key v)
        (Hashtbl.to_seq src.builds);
      ignore (Atomic.fetch_and_add dst.hits (Atomic.get src.hits));
      ignore (Atomic.fetch_and_add dst.misses (Atomic.get src.misses));
      ignore (Atomic.fetch_and_add dst.evictions (Atomic.get src.evictions));
      ignore (Atomic.fetch_and_add dst.generations (Atomic.get src.generations))
