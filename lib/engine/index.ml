module Btree = Cddpd_storage.Btree
module Heap_file = Cddpd_storage.Heap_file
module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def

type t = {
  def : Index_def.t;
  tree : Btree.t;
  positions : int array; (* tuple positions of the key columns *)
}

let def t = t.def

let key_positions schema index =
  List.map
    (fun column ->
      match Schema.column_type schema column with
      | None ->
          invalid_arg
            (Printf.sprintf "Index.build: column %s not in table %s" column
               schema.Schema.name)
      | Some Schema.Text_type ->
          invalid_arg
            (Printf.sprintf "Index.build: column %s is text; only integer keys supported"
               column)
      | Some Schema.Int_type -> Schema.column_index_exn schema column)
    (Index_def.columns index)
  |> Array.of_list

let physical_key positions tuple (rid : Heap_file.rid) =
  let n = Array.length positions in
  let key = Array.make (n + 2) 0 in
  for i = 0 to n - 1 do
    key.(i) <- Tuple.int_exn tuple.(positions.(i))
  done;
  key.(n) <- rid.Heap_file.page;
  key.(n + 1) <- rid.Heap_file.slot;
  key

(* Lexicographic sort of physical keys.  When the observed range of every
   component fits a packed 62-bit word, each key is packed into one int
   (high component in high bits, values offset to be nonnegative), the
   packed ints are sorted monomorphically, and the components are
   unpacked back in place — about 4x faster than comparator sort on the
   key arrays.  Keys whose ranges don't fit (or overflow [hi - lo]) fall
   back to the comparator. *)
let sort_keys ~key_len (keys : int array array) =
  let n = Array.length keys in
  if n > 1 then begin
    let lo = Array.make key_len max_int and hi = Array.make key_len min_int in
    Array.iter
      (fun key ->
        for j = 0 to key_len - 1 do
          let v = key.(j) in
          if v < lo.(j) then lo.(j) <- v;
          if v > hi.(j) then hi.(j) <- v
        done)
      keys;
    let bits_of_range j =
      let range = hi.(j) - lo.(j) in
      if range < 0 then 63 (* subtraction overflowed: the span needs the full word *)
      else begin
        let b = ref 1 in
        while range lsr !b <> 0 do
          incr b
        done;
        !b
      end
    in
    let widths = Array.init key_len bits_of_range in
    let total = Array.fold_left ( + ) 0 widths in
    if total <= 62 then begin
      let packed =
        Array.map
          (fun key ->
            let p = ref 0 in
            for j = 0 to key_len - 1 do
              p := (!p lsl widths.(j)) lor (key.(j) - lo.(j))
            done;
            !p)
          keys
      in
      Cddpd_util.Int_sort.sort packed;
      Array.iteri
        (fun i p ->
          let key = keys.(i) in
          let p = ref p in
          for j = key_len - 1 downto 0 do
            key.(j) <- (!p land ((1 lsl widths.(j)) - 1)) + lo.(j);
            p := !p lsr widths.(j)
          done)
        packed
    end
    else begin
      let compare_keys a b =
        let rec go i =
          if i = key_len then 0
          else
            let c = Int.compare a.(i) b.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      Array.sort compare_keys keys
    end
  end

let of_sorted_keys pool index positions keys =
  let key_len = Array.length positions + 2 in
  { def = index; tree = Btree.bulk_load pool ~key_len keys; positions }

let build pool schema heap index =
  let positions = key_positions schema index in
  let entries = ref [] in
  Heap_file.iter heap (fun rid tuple ->
      entries := physical_key positions tuple rid :: !entries);
  let keys = Array.of_list !entries in
  sort_keys ~key_len:(Array.length positions + 2) keys;
  of_sorted_keys pool index positions keys

let build_of_rows pool schema index ~rows ~rids =
  if Array.length rows <> Array.length rids then
    invalid_arg "Index.build_of_rows: rows and rids differ in length";
  let positions = key_positions schema index in
  let keys =
    Array.init (Array.length rows) (fun i ->
        physical_key positions rows.(i) rids.(i))
  in
  sort_keys ~key_len:(Array.length positions + 2) keys;
  of_sorted_keys pool index positions keys

let insert_entry t tuple rid = Btree.insert t.tree (physical_key t.positions tuple rid)

let delete_entry t tuple rid = Btree.delete t.tree (physical_key t.positions tuple rid)

let columns t = Index_def.columns t.def

let probe_bounds t ~eq_prefix ~range =
  let n = Array.length t.positions in
  let plen = List.length eq_prefix in
  if plen > n then invalid_arg "Index.probe: prefix longer than the key";
  let key_len = n + 2 in
  let lo = Array.make key_len min_int in
  let hi = Array.make key_len max_int in
  List.iteri
    (fun i v ->
      lo.(i) <- v;
      hi.(i) <- v)
    eq_prefix;
  (match range with
  | None -> ()
  | Some (low_bound, high_bound) ->
      if plen >= n then invalid_arg "Index.probe: range bound beyond the key";
      (match low_bound with
      | None -> ()
      | Some { Plan.op; value } -> (
          match op with
          | Cddpd_sql.Ast.Gt -> lo.(plen) <- value + 1
          | Cddpd_sql.Ast.Ge -> lo.(plen) <- value
          | Cddpd_sql.Ast.Eq | Cddpd_sql.Ast.Lt | Cddpd_sql.Ast.Le ->
              invalid_arg "Index.probe: not a lower bound"));
      (match high_bound with
      | None -> ()
      | Some { Plan.op; value } -> (
          match op with
          | Cddpd_sql.Ast.Lt -> hi.(plen) <- value - 1
          | Cddpd_sql.Ast.Le -> hi.(plen) <- value
          | Cddpd_sql.Ast.Eq | Cddpd_sql.Ast.Gt | Cddpd_sql.Ast.Ge ->
              invalid_arg "Index.probe: not an upper bound")));
  (lo, hi)

let probe t ~eq_prefix ~range =
  let n = Array.length t.positions in
  let lo, hi = probe_bounds t ~eq_prefix ~range in
  let rids = ref [] in
  Btree.iter_range t.tree ~lo ~hi (fun key ->
      rids := { Heap_file.page = key.(n); slot = key.(n + 1) } :: !rids);
  List.rev !rids

let probe_entries t ~eq_prefix ~range =
  let n = Array.length t.positions in
  let lo, hi = probe_bounds t ~eq_prefix ~range in
  let entries = ref [] in
  Btree.iter_range t.tree ~lo ~hi (fun key ->
      entries := Array.sub key 0 n :: !entries);
  List.rev !entries

let scan_entries t f =
  let n = Array.length t.positions in
  Btree.iter_all t.tree (fun key -> f (Array.sub key 0 n))

let probe_slices t ~eq_prefix ~range f =
  let lo, hi = probe_bounds t ~eq_prefix ~range in
  Btree.iter_range_slices t.tree ~lo ~hi f

let scan_slices t f =
  let key_len = Array.length t.positions + 2 in
  let lo = Array.make key_len min_int in
  let hi = Array.make key_len max_int in
  Btree.iter_range_slices t.tree ~lo ~hi f

let height t = Btree.height t.tree

let n_pages t = Btree.n_pages t.tree

let n_entries t = Btree.n_entries t.tree
