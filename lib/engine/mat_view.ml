module Buffer_pool = Cddpd_storage.Buffer_pool
module Heap_file = Cddpd_storage.Heap_file
module Btree = Cddpd_storage.Btree
module Tuple = Cddpd_storage.Tuple
module Schema = Cddpd_catalog.Schema
module View_def = Cddpd_catalog.View_def

type t = {
  def : View_def.t;
  heap : Heap_file.t;
  tree : Btree.t; (* keys: [group; rid.page; rid.slot] *)
  group_pos : int;
  sum_columns : string list;
  sum_positions : int array;
  mutable groups : int;
}

type row = { group_value : int; count : int; sums : int array }

let def t = t.def

let sum_columns t = t.sum_columns

let n_groups t = t.groups

let n_pages t = Heap_file.n_pages t.heap + Btree.n_pages t.tree

let height t = Btree.height t.tree

(* View rows are stored as tuples [g; count; sums...]. *)
let encode_row row =
  Array.append
    [| Tuple.Int row.group_value; Tuple.Int row.count |]
    (Array.map (fun s -> Tuple.Int s) row.sums)

let decode_row tuple =
  {
    group_value = Tuple.int_exn tuple.(0);
    count = Tuple.int_exn tuple.(1);
    sums = Array.init (Array.length tuple - 2) (fun i -> Tuple.int_exn tuple.(i + 2));
  }

let tree_key group (rid : Heap_file.rid) = [| group; rid.Heap_file.page; rid.Heap_file.slot |]

let int_columns schema =
  List.filter_map
    (fun (c : Schema.column) ->
      match c.Schema.ty with
      | Schema.Int_type -> Some c.Schema.name
      | Schema.Text_type -> None)
    schema.Schema.columns

let store_row t row =
  let rid = Heap_file.insert t.heap (encode_row row) in
  Btree.insert t.tree (tree_key row.group_value rid)

(* Find the stored rid for a group, if any. *)
let find_rid t group =
  let found = ref None in
  Btree.iter_prefix t.tree ~prefix:[| group |] (fun key ->
      found := Some { Heap_file.page = key.(1); slot = key.(2) });
  !found

let lookup t group =
  match find_rid t group with
  | None -> None
  | Some rid -> (
      match Heap_file.fetch t.heap rid with
      | Some tuple -> Some (decode_row tuple)
      | None -> failwith "Mat_view: dangling view row")

let remove_row t group rid =
  ignore (Heap_file.delete t.heap rid);
  ignore (Btree.delete t.tree (tree_key group rid))

let scan t f =
  (* Scan the view heap directly: one page access per view page, not one
     per group (the tree is only for point lookups). *)
  Heap_file.iter t.heap (fun _rid tuple -> f (decode_row tuple))

let apply_base_change t tuple ~sign =
  let group_value = Tuple.int_exn tuple.(t.group_pos) in
  let delta = Array.map (fun pos -> sign * Tuple.int_exn tuple.(pos)) t.sum_positions in
  match find_rid t group_value with
  | Some rid ->
      let old_row =
        match Heap_file.fetch t.heap rid with
        | Some old_tuple -> decode_row old_tuple
        | None -> failwith "Mat_view: dangling view row"
      in
      remove_row t group_value rid;
      let count = old_row.count + sign in
      if count < 0 then failwith "Mat_view: negative group count";
      if count = 0 then t.groups <- t.groups - 1
      else
        store_row t
          {
            group_value;
            count;
            sums = Array.mapi (fun i s -> s + delta.(i)) old_row.sums;
          }
  | None ->
      if sign < 0 then failwith "Mat_view: delete for an absent group";
      t.groups <- t.groups + 1;
      store_row t { group_value; count = 1; sums = delta }

let apply_insert t tuple = apply_base_change t tuple ~sign:1

let apply_delete t tuple = apply_base_change t tuple ~sign:(-1)

let build pool schema heap view =
  let group_by = View_def.group_by view in
  (match Schema.column_type schema group_by with
  | Some Schema.Int_type -> ()
  | Some Schema.Text_type ->
      invalid_arg
        (Printf.sprintf "Mat_view.build: group column %s is text" group_by)
  | None ->
      invalid_arg
        (Printf.sprintf "Mat_view.build: column %s not in table %s" group_by
           schema.Schema.name));
  let sum_columns = int_columns schema in
  let sum_positions =
    Array.of_list (List.map (Schema.column_index_exn schema) sum_columns)
  in
  let group_pos = Schema.column_index_exn schema group_by in
  (* Aggregate the base table in memory, then bulk-materialise. *)
  let groups = Hashtbl.create 256 in
  Heap_file.iter heap (fun _rid tuple ->
      let g = Tuple.int_exn tuple.(group_pos) in
      let count, sums =
        match Hashtbl.find_opt groups g with
        | Some entry -> entry
        | None ->
            let entry = (ref 0, Array.make (Array.length sum_positions) 0) in
            Hashtbl.replace groups g entry;
            entry
      in
      incr count;
      Array.iteri
        (fun i pos -> sums.(i) <- sums.(i) + Tuple.int_exn tuple.(pos))
        sum_positions);
  let t =
    {
      def = view;
      heap = Heap_file.create pool;
      tree = Btree.create pool ~key_len:3;
      group_pos;
      sum_columns;
      sum_positions;
      groups = Hashtbl.length groups;
    }
  in
  (* Store in ascending group order so the heap is clustered by group. *)
  let sorted =
    Hashtbl.to_seq groups
    |> Seq.map (fun (g, (count, sums)) -> (g, !count, sums))
    |> List.of_seq
    |> List.sort (fun (g1, _, _) (g2, _, _) -> Int.compare g1 g2)
  in
  List.iter
    (fun (group_value, count, sums) -> store_row t { group_value; count; sums })
    sorted;
  t
